//! The streaming `Session` path must produce **identical**
//! `EngineReport`s (TPC, per-policy speculation statistics) to the legacy
//! collect-then-replay path, on every workload and every history-based
//! policy. One CPU pass per workload drives both: the session feeds the
//! streaming engines live while an `EventCollector` captures the same
//! event stream for the batch replay.

use loopspec::prelude::*;

/// The policies the acceptance criteria name: IDLE, STR, STR(i).
fn streaming_engines(tus: usize) -> Vec<(&'static str, Box<dyn EngineSink + Send>)> {
    vec![
        ("IDLE", Box::new(StreamEngine::new(IdlePolicy::new(), tus))),
        ("STR", Box::new(StreamEngine::new(StrPolicy::new(), tus))),
        (
            "STR(3)",
            Box::new(StreamEngine::new(StrNestedPolicy::new(3), tus)),
        ),
    ]
}

fn batch_report(trace: &AnnotatedTrace, name: &str, tus: usize) -> EngineReport {
    match name {
        "IDLE" => Engine::new(trace, IdlePolicy::new(), tus).run(),
        "STR" => Engine::new(trace, StrPolicy::new(), tus).run(),
        "STR(3)" => Engine::new(trace, StrNestedPolicy::new(3), tus).run(),
        other => panic!("unknown policy {other}"),
    }
}

/// Runs one workload once; checks every policy at `tus` thread units,
/// through both fan-out shapes: independent boxed `StreamEngine` sinks
/// (chunk-delivered by the session) and the shared-annotation
/// `EngineGrid` registered as a single sink.
fn check_workload(name: &str, tus: usize) {
    let w = workload_by_name(name).expect("workload exists");
    let program = w.build(Scale::Test).expect("assembles");

    let mut collector = EventCollector::default();
    let mut engines = streaming_engines(tus);
    let mut grid = loopspec::mt::EngineGrid::new();
    grid.push_idle(tus);
    grid.push_str(tus);
    grid.push_str_nested(3, tus);
    let mut session = Session::new();
    session.observe_loops(&mut collector);
    for (_, engine) in engines.iter_mut() {
        session.observe_loops(&mut **engine);
    }
    session.observe_loops(&mut grid);
    let out = session
        .run(&program, RunLimits::default())
        .expect("workload runs");
    assert!(out.halted(), "{name} must halt");

    let (events, n) = collector.into_parts();
    assert_eq!(n, out.instructions);
    let trace = AnnotatedTrace::build(&events, n);

    for (lane, (policy, engine)) in engines.into_iter().enumerate() {
        let streamed = engine
            .finished_report()
            .unwrap_or_else(|| panic!("{name}/{policy}: stream did not end"));
        let batch = batch_report(&trace, policy, tus);
        assert_eq!(
            *streamed, batch,
            "{name}: streaming vs batch diverged for {policy} @ {tus} TUs"
        );
        assert_eq!(
            grid.report(lane).expect("grid finished"),
            &batch,
            "{name}: grid lane vs batch diverged for {policy} @ {tus} TUs"
        );
    }
}

#[test]
fn all_workloads_idle_str_strnested_at_4_tus() {
    for w in all_workloads() {
        check_workload(w.name, 4);
    }
}

#[test]
fn tu_sweep_on_representative_workloads() {
    // Deep nesting (go), recursion (li), interpreter dispatch (perl),
    // regular FP loops (swim): sweep the TU axis too.
    for name in ["go", "li", "perl", "swim"] {
        for tus in [2usize, 8, 16] {
            check_workload(name, tus);
        }
    }
}

#[test]
fn suitability_filter_streams_identically() {
    // A wrapped policy (the §2.3.2 not-suitable-loops filter) exercises
    // the policy feedback path (on_thread_outcome) in both drivers.
    let w = workload_by_name("applu").unwrap();
    let program = w.build(Scale::Test).unwrap();

    let mut collector = EventCollector::default();
    let mut engine = StreamEngine::new(
        loopspec::mt::SuitabilityFilter::new(StrPolicy::new(), 8, 0.5),
        4,
    );
    let mut session = Session::new();
    session
        .observe_loops(&mut collector)
        .observe_loops(&mut engine);
    session.run(&program, RunLimits::default()).unwrap();

    let (events, n) = collector.into_parts();
    let trace = AnnotatedTrace::build(&events, n);
    let batch = Engine::new(
        &trace,
        loopspec::mt::SuitabilityFilter::new(StrPolicy::new(), 8, 0.5),
        4,
    )
    .run();
    assert_eq!(engine.report().unwrap(), &batch);
}
