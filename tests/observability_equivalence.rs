//! Telemetry must be strictly out-of-band: a run with span timing and
//! journal recording enabled must produce **byte-identical** simulation
//! artifacts — engine reports, session summaries, serialized snapshot
//! bytes — to a telemetry-disabled run. That property is the license
//! for instrumenting the hot paths at all, so it is checked here over
//! the full 18-program workload suite and the generated scenario
//! families, on a run shape that crosses a mid-stream checkpoint.
//!
//! The second half stresses the registry itself: one shared counter
//! hammered concurrently from every `ParallelSinkSet` worker thread
//! must conserve counts exactly (no lost increments, no double counts).

use std::sync::{Mutex, MutexGuard, OnceLock};

use loopspec::gen::families;
use loopspec::prelude::*;

/// `obs::set_enabled` is process-global state; tests that toggle it
/// must not interleave.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn make_grid() -> EngineGrid {
    let mut g = EngineGrid::new();
    g.push_idle(4);
    g.push_str(4);
    g.push_str_nested(3, 4);
    g
}

/// Everything a run produces that the paper's numbers depend on.
#[derive(Debug, PartialEq)]
struct Artifacts {
    instructions: u64,
    snapshot: Vec<u8>,
    reports: Vec<EngineReport>,
}

/// Total committed instructions of one uninterrupted pass (used to
/// place the mid-stream checkpoint).
fn instruction_count(program: &Program) -> u64 {
    let session = Session::new();
    let out = session.run(program, RunLimits::default()).expect("runs");
    assert!(out.halted(), "suite programs must halt");
    out.instructions
}

/// Runs `program` with a serialized checkpoint taken at `cut`, then to
/// completion; captures every output telemetry could conceivably have
/// perturbed.
fn run_artifacts(program: &Program, cut: u64) -> Artifacts {
    let mut grid = make_grid();
    let mut session = Session::new();
    session.observe_checkpointable(&mut grid);
    let mid = session
        .advance(program, RunLimits::with_fuel(cut))
        .expect("advances to the cut");
    assert_eq!(mid.instructions, cut);
    let snapshot = session.checkpoint().expect("checkpointable").to_bytes();
    let out = session
        .advance(program, RunLimits::default())
        .expect("runs to completion");
    assert!(out.halted());
    drop(session);
    let reports = (0..grid.len())
        .map(|lane| grid.report(lane).expect("grid finished").clone())
        .collect();
    Artifacts {
        instructions: out.instructions,
        snapshot,
        reports,
    }
}

/// Same program, telemetry on vs off: the artifacts must match bit for
/// bit.
fn check_program(label: &str, program: &Program) {
    let total = instruction_count(program);
    let cut = (total / 2).max(1);
    loopspec::obs::set_enabled(true);
    let instrumented = run_artifacts(program, cut);
    loopspec::obs::set_enabled(false);
    let silent = run_artifacts(program, cut);
    loopspec::obs::set_enabled(true);
    assert_eq!(
        instrumented, silent,
        "{label}: telemetry perturbed the simulation"
    );
}

#[test]
fn all_workloads_run_byte_identical_with_telemetry_on_and_off() {
    let _serial = obs_lock();
    for w in all_workloads() {
        let program = w.build(Scale::Test).expect("assembles");
        check_program(w.name, &program);
    }
}

#[test]
fn generated_families_run_byte_identical_with_telemetry_on_and_off() {
    let _serial = obs_lock();
    for family in families() {
        for seed in [0u64, 1] {
            let ast = family.generate(seed, 1);
            let program = compile_ast(&ast).expect("family compiles");
            check_program(&format!("{}:{seed}", family.name), &program);
        }
    }
}

/// A loop-event sink that bumps a shared registry counter for every
/// event it absorbs, and keeps a thread-local tally as the oracle.
struct HammerSink {
    shared: loopspec::obs::Counter,
    local: u64,
}

impl LoopEventSink for HammerSink {
    fn on_loop_event(&mut self, _ev: &LoopEvent) {
        self.shared.inc();
        self.local += 1;
    }

    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        self.shared.add(events.len() as u64);
        self.local += events.len() as u64;
    }

    fn on_stream_end(&mut self, _instructions: u64) {}
}

#[test]
fn parallel_sink_workers_conserve_counter_increments() {
    const WORKERS: usize = 8;
    let registry = loopspec::obs::Registry::new();
    let shared = registry.counter("hammer_events");

    let w = workload_by_name("go").expect("workload exists");
    let program = w.build(Scale::Test).expect("assembles");

    let mut collector = EventCollector::default();
    let mut pool: ParallelSinkSet<HammerSink> = (0..WORKERS)
        .map(|_| HammerSink {
            shared: shared.clone(),
            local: 0,
        })
        .collect();
    let mut session = Session::new();
    session
        .observe_loops(&mut collector)
        .observe_loops(&mut pool);
    session
        .run(&program, RunLimits::default())
        .expect("workload runs");

    let (events, _) = collector.into_parts();
    let locals: Vec<u64> = pool.into_inner().into_iter().map(|s| s.local).collect();
    let expected = events.len() as u64 * WORKERS as u64;
    assert!(expected > 0, "the workload must produce loop events");
    assert_eq!(
        locals.iter().sum::<u64>(),
        expected,
        "every worker sees the full event stream"
    );
    assert_eq!(
        shared.get(),
        expected,
        "concurrent increments from {WORKERS} worker threads must conserve counts"
    );
}
