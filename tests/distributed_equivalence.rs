//! The distributed-replay acceptance criterion: running the whole
//! 18-workload suite across N **worker processes** (the real
//! `dist_run` binary, spawned and fed frames over pipes) must produce
//! per-lane reports and serialized final sink state **byte-identical**
//! to the single-pass in-process `Session` — for N ∈ {2, 4}, and
//! again after a worker is killed mid-shard (the coordinator requeues
//! the lost job from its last good snapshot).
//!
//! The worker processes are the `dist_run` binary in `--worker` mode
//! (`CARGO_BIN_EXE_dist_run`), so this suite exercises the exact
//! production path: process spawn, stdio pipe transport, frame
//! protocol, snapshot chaining, crash recovery.

use std::collections::HashMap;
use std::process::Command;

use loopspec::dist::worker::CRASH_AFTER_ENV;
use loopspec::dist::{single_pass_outcome, WorkloadOutcome};
use loopspec::prelude::*;

/// Lanes for the comparison: one per policy family (the full 20-lane
/// grid is priced by the bench; equivalence only needs coverage).
fn lanes() -> Vec<LaneSpec> {
    vec![
        LaneSpec::Idle { tus: 4 },
        LaneSpec::Str { tus: 4 },
        LaneSpec::StrNested { limit: 3, tus: 4 },
    ]
}

/// Fixed fuel per shard — small enough that every workload crosses
/// several snapshot boundaries at `Scale::Test`.
const SHARD_FUEL: u64 = 30_000;

fn spec() -> SuiteSpec {
    SuiteSpec::new(
        all_workloads().iter().map(|w| w.name),
        Scale::Test,
        lanes(),
        Plan::sliced(SHARD_FUEL),
    )
}

/// A worker-process command for the real `dist_run` binary.
fn worker_command() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dist_run"));
    cmd.arg("--worker");
    cmd
}

/// The single-pass references, computed once and shared by every
/// distributed configuration under test.
fn references(spec: &SuiteSpec) -> HashMap<String, WorkloadOutcome> {
    spec.workloads
        .iter()
        .map(|name| {
            let r = single_pass_outcome(name, spec.scale, &spec.lanes, spec.total_fuel)
                .expect("reference run succeeds");
            (name.clone(), r)
        })
        .collect()
}

fn assert_byte_identical(
    outcome: &loopspec::dist::DistOutcome,
    references: &HashMap<String, WorkloadOutcome>,
    ctx: &str,
) {
    assert_eq!(outcome.outcomes.len(), references.len(), "{ctx}");
    for o in &outcome.outcomes {
        let r = &references[&o.workload];
        assert_eq!(
            o.instructions, r.instructions,
            "{ctx}: {} instruction count",
            o.workload
        );
        assert_eq!(
            o.lanes, r.lanes,
            "{ctx}: {} lane reports must be byte-identical",
            o.workload
        );
        assert_eq!(
            o.state, r.state,
            "{ctx}: {} serialized sink state must be byte-identical",
            o.workload
        );
        if r.instructions > SHARD_FUEL {
            assert!(
                o.shards_run > 1,
                "{ctx}: {} is longer than one slice and must cross shard \
                 boundaries (ran {})",
                o.workload,
                o.shards_run
            );
        }
    }
}

#[test]
fn multi_process_suite_matches_single_pass_for_2_and_4_workers() {
    let spec = spec();
    let references = references(&spec);
    for workers in [2usize, 4] {
        let coordinator =
            Coordinator::spawn_with(workers, |_| worker_command()).expect("workers spawn");
        let outcome = coordinator
            .run_suite(&spec)
            .unwrap_or_else(|e| panic!("N={workers}: {e}"));
        assert_eq!(outcome.workers_lost, 0, "N={workers}");
        assert_eq!(outcome.workers_respawned, 0, "N={workers}");
        assert!(outcome.handoff_bytes > 0, "N={workers}: snapshots crossed");
        assert!(
            outcome.jobs_dispatched > spec.workloads.len() as u64,
            "N={workers}: chains took multiple jobs"
        );
        assert_byte_identical(&outcome, &references, &format!("N={workers}"));
    }
}

#[test]
fn killed_worker_mid_shard_replenishes_the_pool_and_stays_byte_identical() {
    let spec = spec();
    let references = references(&spec);
    for workers in [2usize, 4] {
        // Worker 0 is rigged to vanish (no reply, exit 3) upon
        // receiving its 4th job — after real work has flowed through
        // it, mid-suite. The coordinator must requeue its in-flight
        // chain from the last good snapshot AND spawn a replacement
        // process so the pool stays at `workers` strong.
        let coordinator = Coordinator::spawn_with(workers, |i| {
            let mut cmd = worker_command();
            if i == 0 {
                cmd.env(CRASH_AFTER_ENV, "3");
            }
            cmd
        })
        .expect("workers spawn");
        let outcome = coordinator
            .run_suite(&spec)
            .unwrap_or_else(|e| panic!("N={workers} with crash: {e}"));
        assert_eq!(outcome.workers_lost, 1, "N={workers}: one worker died");
        assert_eq!(
            outcome.workers_respawned, 1,
            "N={workers}: the pool was replenished to full strength"
        );
        let retries: u32 = outcome.outcomes.iter().map(|o| o.retries).sum();
        assert_eq!(
            retries, 1,
            "N={workers}: exactly the in-flight chain was requeued"
        );
        assert_byte_identical(&outcome, &references, &format!("N={workers} crash"));
    }
}

#[test]
fn poison_chain_fails_instead_of_grinding_through_replacements() {
    // Every worker — initial and replacement alike — crashes on its
    // first job. The first deaths are absorbed by respawns; as soon as
    // a replacement dies on the same chain, the run must fail with the
    // workload named, not keep burning fresh processes.
    let spec = spec();
    let coordinator = Coordinator::spawn_with(2, |_| {
        let mut cmd = worker_command();
        cmd.env(CRASH_AFTER_ENV, "0");
        cmd
    })
    .expect("workers spawn");
    let err = coordinator.run_suite(&spec).expect_err("must fail");
    assert!(
        matches!(err, DistError::Failed { ref workload, .. } if !workload.is_empty()),
        "got: {err}"
    );
}

#[test]
fn losing_every_worker_fails_instead_of_hanging() {
    // Both workers are rigged to crash and respawn is disabled: 18
    // chains cannot finish on 6 jobs, so the run must end in
    // AllWorkersDied — promptly and with all children reaped, not a
    // hang. (With respawn left on, the pool would be replenished; the
    // strict path is what this test pins down.)
    let spec = spec();
    let coordinator = Coordinator::spawn_with(2, |_| {
        let mut cmd = worker_command();
        cmd.env(CRASH_AFTER_ENV, "3");
        cmd
    })
    .expect("workers spawn")
    .no_respawn();
    let err = coordinator.run_suite(&spec).expect_err("must fail");
    assert!(
        matches!(err, DistError::AllWorkersDied { .. }),
        "got: {err}"
    );
}
