//! Property-style tests over *randomly generated structured programs*:
//! for any terminating program the builder can express, the detector must
//! emit a well-formed event stream, detection must be deterministic, and
//! the speculation engine must obey its conservation laws.
//!
//! The original suite used `proptest`; the build environment is offline,
//! so the same generators run off a deterministic xorshift RNG.

use loopspec::prelude::*;
use loopspec_testutil::Rng;
use std::collections::HashMap;

/// A structured statement tree — the generator's portable AST.
#[derive(Debug, Clone)]
enum Stmt {
    /// `n` filler ALU instructions.
    Work(u8),
    /// Counted loop with a fixed trip count.
    Loop(u8, Vec<Stmt>),
    /// Counted loop with an RNG trip count in `1..=n`.
    VarLoop(u8, Vec<Stmt>),
    /// Count-down while loop.
    While(u8, Vec<Stmt>),
    /// Two-sided conditional on RNG parity.
    If(Vec<Stmt>, Vec<Stmt>),
    /// Early exit from the innermost loop (no-op outside loops).
    BreakIf,
}

fn arb_stmt(r: &mut Rng, depth: u32) -> Stmt {
    // Depth cap keeps loop nesting within the builder's register pool.
    let leafy = depth >= 3 || r.below(2) == 0;
    if leafy {
        if r.below(4) == 0 {
            Stmt::BreakIf
        } else {
            Stmt::Work(r.range(1, 12) as u8)
        }
    } else {
        let body = |r: &mut Rng| {
            (0..r.range(1, 3))
                .map(|_| arb_stmt(r, depth + 1))
                .collect::<Vec<_>>()
        };
        match r.below(4) {
            0 => Stmt::Loop(r.below(5) as u8, body(r)),
            1 => Stmt::VarLoop(r.range(1, 5) as u8, body(r)),
            2 => Stmt::While(r.range(1, 5) as u8, body(r)),
            _ => {
                let t = body(r);
                let e = body(r);
                Stmt::If(t, e)
            }
        }
    }
}

fn arb_program(r: &mut Rng) -> Vec<Stmt> {
    (0..r.range(1, 5)).map(|_| arb_stmt(r, 0)).collect()
}

/// Lowers a statement list through the builder. `in_loop` gates
/// `BreakIf`.
fn emit(b: &mut ProgramBuilder, stmts: &[Stmt], in_loop: bool) {
    for s in stmts {
        match s {
            Stmt::Work(n) => b.work(*n as u32),
            Stmt::Loop(n, body) => {
                b.counted_loop(*n as i64, |b, _i| emit(b, body, true));
            }
            Stmt::VarLoop(n, body) => {
                let r = b.alloc_reg();
                b.rng_below(r, *n as i32);
                b.addi(r, r, 1);
                b.counted_loop(r, |b, _i| emit(b, body, true));
                b.free_reg(r);
            }
            Stmt::While(n, body) => {
                let c = b.alloc_reg();
                b.li(c, *n as i64);
                b.while_loop(
                    |_| (Cond::GtS, c, Reg::R0),
                    |b| {
                        b.addi(c, c, -1);
                        emit(b, body, true);
                    },
                );
                b.free_reg(c);
            }
            Stmt::If(t, e) => {
                let r = b.alloc_reg();
                b.rng_below(r, 2);
                b.if_else(
                    Cond::Eq,
                    r,
                    Reg::R0,
                    |b| emit(b, t, in_loop),
                    |b| emit(b, e, in_loop),
                );
                b.free_reg(r);
            }
            Stmt::BreakIf => {
                if in_loop {
                    let r = b.alloc_reg();
                    b.rng_below(r, 8);
                    b.break_if(Cond::Eq, r, Reg::R0);
                    b.free_reg(r);
                }
            }
        }
    }
}

fn build_and_run(stmts: &[Stmt], seed: i64) -> (Vec<LoopEvent>, u64) {
    let mut b = ProgramBuilder::with_seed(seed);
    emit(&mut b, stmts, false);
    let program = b.finish().expect("generated program assembles");
    let mut c = EventCollector::default();
    let summary = Cpu::new()
        .run(&program, &mut c, RunLimits::with_fuel(500_000))
        .expect("generated program executes");
    assert!(
        summary.halted(),
        "generated programs must terminate (ran {} instrs)",
        summary.retired
    );
    c.into_parts()
}

/// Event-stream well-formedness (same checker as the integration tests,
/// reduced: dense iterations, matched open/close, monotone positions).
fn check_events(events: &[LoopEvent]) {
    let mut open: HashMap<LoopId, u32> = HashMap::new();
    let mut last_pos = 0u64;
    for e in events {
        assert!(e.pos() >= last_pos, "position went backwards at {e}");
        last_pos = e.pos();
        match *e {
            LoopEvent::ExecutionStart { loop_id, .. } => {
                assert!(open.insert(loop_id, 1).is_none(), "double open {loop_id}");
            }
            LoopEvent::IterationStart { loop_id, iter, .. } => {
                let last = open
                    .get_mut(&loop_id)
                    .unwrap_or_else(|| panic!("iteration of closed {loop_id}"));
                assert_eq!(iter, *last + 1, "non-dense iteration index");
                *last = iter;
            }
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                ..
            }
            | LoopEvent::Evicted {
                loop_id,
                iterations,
                ..
            } => {
                let last = open
                    .remove(&loop_id)
                    .unwrap_or_else(|| panic!("close of unopened {loop_id}"));
                assert_eq!(iterations, last);
            }
            LoopEvent::OneShot { .. } => {}
        }
    }
    assert!(open.is_empty(), "unflushed loops at halt");
}

const CASES: u64 = 48;

fn case(seed: u64) -> (Vec<Stmt>, i64) {
    let mut r = Rng::new(seed);
    let stmts = arb_program(&mut r);
    let rng_seed = r.below(1_000_000) as i64;
    (stmts, rng_seed)
}

#[test]
fn random_programs_produce_well_formed_events() {
    for seed in 0..CASES {
        let (stmts, s) = case(seed);
        let (events, _) = build_and_run(&stmts, s);
        check_events(&events);
    }
}

#[test]
fn detection_is_deterministic() {
    for seed in 0..CASES {
        let (stmts, s) = case(seed);
        let (a, na) = build_and_run(&stmts, s);
        let (b, nb) = build_and_run(&stmts, s);
        assert_eq!(na, nb, "seed {seed}");
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn engine_laws_hold_on_random_programs() {
    for seed in 0..CASES {
        let (stmts, s) = case(seed);
        let (events, n) = build_and_run(&stmts, s);
        let trace = AnnotatedTrace::build(&events, n);
        let ideal = ideal_tpc(&trace);
        assert!(ideal.tpc >= 1.0 - 1e-9);
        for tus in [2usize, 4] {
            let r = Engine::new(&trace, StrPolicy::new(), tus).run();
            assert_eq!(r.spec.threads_spawned, r.spec.resolved());
            assert!(r.cycles <= n);
            assert!(r.tpc() >= 1.0 - 1e-9);
            assert!(
                r.tpc() <= ideal.tpc + 1e-9,
                "seed {seed}: STR@{tus} tpc {} beats oracle {}",
                r.tpc(),
                ideal.tpc
            );
        }
    }
}

#[test]
fn streaming_engine_matches_batch_on_random_programs() {
    for seed in 0..CASES {
        let (stmts, s) = case(seed);
        let (events, n) = build_and_run(&stmts, s);
        let trace = AnnotatedTrace::build(&events, n);
        for tus in [2usize, 4] {
            let mut streaming = StreamEngine::new(StrNestedPolicy::new(2), tus);
            for e in &events {
                streaming.on_loop_event(e);
            }
            streaming.on_stream_end(n);
            let batch = Engine::new(&trace, StrNestedPolicy::new(2), tus).run();
            assert_eq!(
                streaming.into_report(),
                batch,
                "seed {seed}: streaming vs batch diverged at {tus} TUs"
            );
        }
    }
}

#[test]
fn loop_stats_are_internally_consistent() {
    for seed in 0..CASES {
        let (stmts, s) = case(seed);
        let (events, n) = build_and_run(&stmts, s);
        let mut stats = LoopStats::new();
        stats.observe_all(&events);
        let r = stats.report(n);
        assert!(r.iterations >= r.executions, "seed {seed}");
        assert!(r.max_nesting as f64 >= r.avg_nesting, "seed {seed}");
        assert!(r.static_loops as u64 <= r.executions, "seed {seed}");
        if r.executions > 0 {
            assert!(r.iter_per_exec >= 1.0, "seed {seed}");
        }
    }
}

#[test]
fn hit_ratio_monotone_in_table_size() {
    for seed in 0..CASES {
        let (stmts, s) = case(seed);
        let (events, _) = build_and_run(&stmts, s);
        for kind in [TableKind::Let, TableKind::Lit] {
            let mut prev = -1.0f64;
            for entries in [2usize, 4, 8, 16] {
                let mut sim = TableHitSim::new(kind, entries);
                sim.observe_all(&events);
                let pct = sim.ratio().percent();
                assert!(
                    pct >= prev - 1e-9,
                    "seed {seed}: {kind:?} hit ratio fell from {prev} to {pct} at {entries} entries"
                );
                prev = pct;
            }
        }
    }
}
