//! Property tests over *randomly generated structured programs*: for any
//! terminating program the builder can express, the detector must emit a
//! well-formed event stream, detection must be deterministic, and the
//! speculation engine must obey its conservation laws.

use loopspec::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// A structured statement tree — the generator's portable AST.
#[derive(Debug, Clone)]
enum Stmt {
    /// `n` filler ALU instructions.
    Work(u8),
    /// Counted loop with a fixed trip count.
    Loop(u8, Vec<Stmt>),
    /// Counted loop with an RNG trip count in `1..=n`.
    VarLoop(u8, Vec<Stmt>),
    /// Count-down while loop.
    While(u8, Vec<Stmt>),
    /// Two-sided conditional on RNG parity.
    If(Vec<Stmt>, Vec<Stmt>),
    /// Early exit from the innermost loop (no-op outside loops).
    BreakIf,
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![(1u8..12).prop_map(Stmt::Work), Just(Stmt::BreakIf),];
    leaf.prop_recursive(
        3,  // depth: keeps loop nesting within the register pool
        24, // total nodes
        4,  // items per collection
        |inner| {
            prop_oneof![
                (0u8..5, prop::collection::vec(inner.clone(), 1..3))
                    .prop_map(|(n, b)| Stmt::Loop(n, b)),
                (1u8..5, prop::collection::vec(inner.clone(), 1..3))
                    .prop_map(|(n, b)| Stmt::VarLoop(n, b)),
                (1u8..5, prop::collection::vec(inner.clone(), 1..3))
                    .prop_map(|(n, b)| Stmt::While(n, b)),
                (
                    prop::collection::vec(inner.clone(), 1..3),
                    prop::collection::vec(inner, 1..3)
                )
                    .prop_map(|(t, e)| Stmt::If(t, e)),
            ]
        },
    )
}

fn arb_program() -> impl Strategy<Value = Vec<Stmt>> {
    prop::collection::vec(arb_stmt(), 1..5)
}

/// Lowers a statement list through the builder. `in_loop` gates
/// `BreakIf`.
fn emit(b: &mut ProgramBuilder, stmts: &[Stmt], in_loop: bool) {
    for s in stmts {
        match s {
            Stmt::Work(n) => b.work(*n as u32),
            Stmt::Loop(n, body) => {
                b.counted_loop(*n as i64, |b, _i| emit(b, body, true));
            }
            Stmt::VarLoop(n, body) => {
                let r = b.alloc_reg();
                b.rng_below(r, *n as i32);
                b.addi(r, r, 1);
                b.counted_loop(r, |b, _i| emit(b, body, true));
                b.free_reg(r);
            }
            Stmt::While(n, body) => {
                let c = b.alloc_reg();
                b.li(c, *n as i64);
                b.while_loop(
                    |_| (Cond::GtS, c, Reg::R0),
                    |b| {
                        b.addi(c, c, -1);
                        emit(b, body, true);
                    },
                );
                b.free_reg(c);
            }
            Stmt::If(t, e) => {
                let r = b.alloc_reg();
                b.rng_below(r, 2);
                b.if_else(
                    Cond::Eq,
                    r,
                    Reg::R0,
                    |b| emit(b, t, in_loop),
                    |b| emit(b, e, in_loop),
                );
                b.free_reg(r);
            }
            Stmt::BreakIf => {
                if in_loop {
                    let r = b.alloc_reg();
                    b.rng_below(r, 8);
                    b.break_if(Cond::Eq, r, Reg::R0);
                    b.free_reg(r);
                }
            }
        }
    }
}

fn build_and_run(stmts: &[Stmt], seed: i64) -> (Vec<LoopEvent>, u64) {
    let mut b = ProgramBuilder::with_seed(seed);
    emit(&mut b, stmts, false);
    let program = b.finish().expect("generated program assembles");
    let mut c = EventCollector::default();
    let summary = Cpu::new()
        .run(&program, &mut c, RunLimits::with_fuel(500_000))
        .expect("generated program executes");
    assert!(
        summary.halted(),
        "generated programs must terminate (ran {} instrs)",
        summary.retired
    );
    c.into_parts()
}

/// Event-stream well-formedness (same checker as the integration tests,
/// reduced: dense iterations, matched open/close, monotone positions).
fn check_events(events: &[LoopEvent]) -> Result<(), TestCaseError> {
    let mut open: HashMap<LoopId, u32> = HashMap::new();
    let mut last_pos = 0u64;
    for e in events {
        prop_assert!(e.pos() >= last_pos, "position went backwards at {e}");
        last_pos = e.pos();
        match *e {
            LoopEvent::ExecutionStart { loop_id, .. } => {
                prop_assert!(open.insert(loop_id, 1).is_none(), "double open {loop_id}");
            }
            LoopEvent::IterationStart { loop_id, iter, .. } => {
                let last = open.get_mut(&loop_id);
                prop_assert!(last.is_some(), "iteration of closed {loop_id}");
                let last = last.unwrap();
                prop_assert_eq!(iter, *last + 1, "non-dense iteration index");
                *last = iter;
            }
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                ..
            }
            | LoopEvent::Evicted {
                loop_id,
                iterations,
                ..
            } => {
                let last = open.remove(&loop_id);
                prop_assert!(last.is_some(), "close of unopened {loop_id}");
                prop_assert_eq!(iterations, last.unwrap());
            }
            LoopEvent::OneShot { .. } => {}
        }
    }
    prop_assert!(open.is_empty(), "unflushed loops at halt");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_programs_produce_well_formed_events(stmts in arb_program(), seed in 0i64..1_000_000) {
        let (events, _) = build_and_run(&stmts, seed);
        check_events(&events)?;
    }

    #[test]
    fn detection_is_deterministic(stmts in arb_program(), seed in 0i64..1_000_000) {
        let (a, na) = build_and_run(&stmts, seed);
        let (b, nb) = build_and_run(&stmts, seed);
        prop_assert_eq!(na, nb);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn engine_laws_hold_on_random_programs(stmts in arb_program(), seed in 0i64..1_000_000) {
        let (events, n) = build_and_run(&stmts, seed);
        let trace = AnnotatedTrace::build(&events, n);
        let ideal = ideal_tpc(&trace);
        prop_assert!(ideal.tpc >= 1.0 - 1e-9);
        for tus in [2usize, 4] {
            let r = Engine::new(&trace, StrPolicy::new(), tus).run();
            prop_assert_eq!(r.spec.threads_spawned, r.spec.resolved());
            prop_assert!(r.cycles <= n);
            prop_assert!(r.tpc() >= 1.0 - 1e-9);
            prop_assert!(r.tpc() <= ideal.tpc + 1e-9,
                "STR@{} tpc {} beats oracle {}", tus, r.tpc(), ideal.tpc);
        }
    }

    #[test]
    fn loop_stats_are_internally_consistent(stmts in arb_program(), seed in 0i64..1_000_000) {
        let (events, n) = build_and_run(&stmts, seed);
        let mut stats = LoopStats::new();
        stats.observe_all(&events);
        let r = stats.report(n);
        prop_assert!(r.iterations >= r.executions);
        prop_assert!(r.max_nesting as f64 >= r.avg_nesting);
        prop_assert!(r.static_loops as u64 <= r.executions);
        if r.executions > 0 {
            prop_assert!(r.iter_per_exec >= 1.0);
        }
    }

    #[test]
    fn hit_ratio_monotone_in_table_size(stmts in arb_program(), seed in 0i64..1_000_000) {
        let (events, _) = build_and_run(&stmts, seed);
        for kind in [TableKind::Let, TableKind::Lit] {
            let mut prev = -1.0f64;
            for entries in [2usize, 4, 8, 16] {
                let mut sim = TableHitSim::new(kind, entries);
                sim.observe_all(&events);
                let pct = sim.ratio().percent();
                prop_assert!(pct >= prev - 1e-9,
                    "{:?} hit ratio fell from {} to {} at {} entries", kind, prev, pct, entries);
                prev = pct;
            }
        }
    }
}
