//! Property-style tests over *randomly generated structured programs*:
//! for any terminating program the generator can express, the detector
//! must emit a well-formed event stream, detection must be
//! deterministic, and the speculation engine must obey its conservation
//! laws.
//!
//! The statement tree, generator and lowering live in `loopspec-gen`
//! (`arb_program` + `compile`); this suite drives them off a
//! deterministic xorshift RNG — the original used `proptest`, but the
//! build environment is offline. With [`ArbConfig::default`] the
//! generator mixes calls, dispatch tables and memory traffic into the
//! historical loop/branch shape distribution, so these laws now cover
//! every AST node the compiler can emit.

use loopspec::gen::{check_events, Rng};
use loopspec::prelude::*;

fn build_and_run(ast: &AstProgram) -> (Vec<LoopEvent>, u64) {
    let program = compile_ast(ast).expect("generated program compiles");
    let mut c = EventCollector::default();
    let summary = Cpu::new()
        .run(&program, &mut c, RunLimits::with_fuel(2_000_000))
        .expect("generated program executes");
    assert!(
        summary.halted(),
        "generated programs must terminate (ran {} instrs)",
        summary.retired
    );
    c.into_parts()
}

const CASES: u64 = 48;

fn case(seed: u64) -> AstProgram {
    let mut r = Rng::new(seed);
    arb_program(&mut r, ArbConfig::default())
}

#[test]
fn random_programs_produce_well_formed_events() {
    for seed in 0..CASES {
        let ast = case(seed);
        let (events, _) = build_and_run(&ast);
        check_events(&events).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn generation_and_detection_are_deterministic() {
    for seed in 0..CASES {
        let x = case(seed);
        let y = case(seed);
        assert_eq!(
            x.stmt_count(),
            y.stmt_count(),
            "seed {seed}: generator not deterministic"
        );
        let (a, na) = build_and_run(&x);
        let (b, nb) = build_and_run(&y);
        assert_eq!(na, nb, "seed {seed}");
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn engine_laws_hold_on_random_programs() {
    for seed in 0..CASES {
        let ast = case(seed);
        let (events, n) = build_and_run(&ast);
        let trace = AnnotatedTrace::build(&events, n);
        let ideal = ideal_tpc(&trace);
        assert!(ideal.tpc >= 1.0 - 1e-9);
        for tus in [2usize, 4] {
            let r = Engine::new(&trace, StrPolicy::new(), tus).run();
            assert_eq!(r.spec.threads_spawned, r.spec.resolved());
            assert!(r.cycles <= n);
            assert!(r.tpc() >= 1.0 - 1e-9);
            assert!(
                r.tpc() <= ideal.tpc + 1e-9,
                "seed {seed}: STR@{tus} tpc {} beats oracle {}",
                r.tpc(),
                ideal.tpc
            );
        }
    }
}

#[test]
fn streaming_engine_matches_batch_on_random_programs() {
    for seed in 0..CASES {
        let ast = case(seed);
        let (events, n) = build_and_run(&ast);
        let trace = AnnotatedTrace::build(&events, n);
        for tus in [2usize, 4] {
            let mut streaming = StreamEngine::new(StrNestedPolicy::new(2), tus);
            for e in &events {
                streaming.on_loop_event(e);
            }
            streaming.on_stream_end(n);
            let batch = Engine::new(&trace, StrNestedPolicy::new(2), tus).run();
            assert_eq!(
                streaming.into_report(),
                batch,
                "seed {seed}: streaming vs batch diverged at {tus} TUs"
            );
        }
    }
}

#[test]
fn loop_stats_are_internally_consistent() {
    for seed in 0..CASES {
        let ast = case(seed);
        let (events, n) = build_and_run(&ast);
        let mut stats = LoopStats::new();
        stats.observe_all(&events);
        let r = stats.report(n);
        assert!(r.iterations >= r.executions, "seed {seed}");
        assert!(r.max_nesting as f64 >= r.avg_nesting, "seed {seed}");
        assert!(r.static_loops as u64 <= r.executions, "seed {seed}");
        if r.executions > 0 {
            assert!(r.iter_per_exec >= 1.0, "seed {seed}");
        }
    }
}

#[test]
fn hit_ratio_monotone_in_table_size() {
    for seed in 0..CASES {
        let ast = case(seed);
        let (events, _) = build_and_run(&ast);
        for kind in [TableKind::Let, TableKind::Lit] {
            let mut prev = -1.0f64;
            for entries in [2usize, 4, 8, 16] {
                let mut sim = TableHitSim::new(kind, entries);
                sim.observe_all(&events);
                let pct = sim.ratio().percent();
                assert!(
                    pct >= prev - 1e-9,
                    "seed {seed}: {kind:?} hit ratio fell from {prev} to {pct} at {entries} entries"
                );
                prev = pct;
            }
        }
    }
}
