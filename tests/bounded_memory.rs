//! Bounded-memory regression: a scaled-up workload through the pure
//! streaming path must retain O(CLS-depth + run-ahead window) events, not
//! O(instructions). This is the property that lets the pipeline process
//! arbitrarily long runs — the ROADMAP's "as fast and as big as the
//! hardware allows" — without the three full-trace materializations the
//! legacy path performs.

use loopspec::prelude::*;

#[test]
fn streaming_engine_buffering_is_bounded_on_a_large_run() {
    // `compress` at Full scale: millions of instructions, hundreds of
    // thousands of loop events.
    let w = workload_by_name("compress").expect("workload exists");
    let program = w.build(Scale::Full).expect("assembles");

    let mut engine = StreamEngine::new(StrPolicy::new(), 4);
    let mut counter = CountingSink::default();
    let mut session = Session::new();
    session
        .observe_loops(&mut engine)
        .observe_loops(&mut counter);
    let out = session
        .run(&program, RunLimits::default())
        .expect("workload runs");
    assert!(out.halted());

    assert!(
        out.instructions > 1_000_000,
        "scaled run too small to be meaningful: {} instructions",
        out.instructions
    );
    assert!(
        counter.events > 50_000,
        "event stream too small to be meaningful: {} events",
        counter.events
    );

    let peak = engine.peak_buffered();
    // The CLS holds at most 16 live loops; the run-ahead window adds the
    // events of roughly one iteration body; chunked fan-out adds at most
    // one undrained chunk (DEFAULT_EVENT_CHUNK = 256 events, counted
    // once in `pending` and once in the retained iteration starts).
    // 1024 bounds all three while staying two orders of magnitude below
    // the stream — O(instructions) retention would blow through it
    // immediately.
    assert!(
        peak <= 1024,
        "peak buffered events {peak} is not O(CLS depth + chunk); {} events total",
        counter.events
    );
    assert!(
        (peak as u64) < counter.events / 100,
        "peak buffered events {peak} scales with the stream ({} events)",
        counter.events
    );

    // And the report is still exactly right: cross-check against a
    // second, materialized run.
    let mut collector = EventCollector::default();
    Cpu::new()
        .run(&program, &mut collector, RunLimits::default())
        .expect("runs");
    let (events, n) = collector.into_parts();
    assert_eq!(n, out.instructions);
    assert_eq!(events.len() as u64, counter.events);
    let batch = Engine::new(&AnnotatedTrace::build(&events, n), StrPolicy::new(), 4).run();
    assert_eq!(engine.report().unwrap(), &batch);
}

#[test]
fn deep_nesting_bounds_track_cls_depth() {
    // A 5-deep nest (the builder's register pool caps structured
    // nesting): live annotation state tracks the nesting depth, pending
    // never grows with total iteration count.
    let mut b = ProgramBuilder::new();
    fn nest(b: &mut ProgramBuilder, depth: u32) {
        if depth == 0 {
            b.work(2);
        } else {
            b.counted_loop(6, |b, _| nest(b, depth - 1));
        }
    }
    nest(&mut b, 5);
    let program = b.finish().expect("assembles");

    let mut engine = StreamEngine::new(StrNestedPolicy::new(2), 8);
    let mut counter = CountingSink::default();
    let mut session = Session::new();
    session
        .observe_loops(&mut engine)
        .observe_loops(&mut counter);
    session.run(&program, RunLimits::default()).expect("runs");

    assert!(counter.events > 5_000, "events: {}", counter.events);
    // Live annotation state tracks the nesting depth; the pending queue
    // adds at most one event chunk (256) before the per-chunk drain.
    assert!(
        engine.peak_buffered() <= 640,
        "peak {} for a 5-deep nest",
        engine.peak_buffered()
    );
}
