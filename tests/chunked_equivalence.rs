//! Property test for the batching contract (`core::sink`): **chunked
//! delivery is bit-identical to per-event delivery** — for arbitrary
//! chunk sizes, on arbitrary structured programs, including final
//! partial chunks that straddle `on_stream_end` (both from a clean halt
//! and from fuel exhaustion, where the trailing CLS flush lands in the
//! last chunk).
//!
//! The generators run off the shared seeded xorshift RNG
//! (`loopspec-testutil`), as the build environment has no `proptest`.

use loopspec::mt::EngineGrid;
use loopspec::prelude::*;
use loopspec_testutil::Rng;

/// A random structured program: nested counted loops with filler work.
/// Loop bounds include 1 (one-shot events) and the builder seed varies
/// the RNG-driven instruction mix.
fn random_program(r: &mut Rng) -> Program {
    fn block(b: &mut ProgramBuilder, r: &mut Rng, depth: u32) {
        for _ in 0..r.range(1, 4) {
            if depth < 3 && r.below(2) == 0 {
                let n = r.range(1, 9) as i64;
                b.counted_loop(n, |b, _| block(b, r, depth + 1));
            } else {
                b.work(r.range(1, 10) as u32);
            }
        }
    }
    let mut b = ProgramBuilder::with_seed(r.below(1_000_000) as i64);
    block(&mut b, r, 0);
    // Guarantee at least one loop so every case exercises the detector.
    let n = r.range(2, 7) as i64;
    b.counted_loop(n, |b, _| b.work(2));
    b.finish().expect("generated program assembles")
}

/// Everything a session run produces that equivalence must preserve.
#[derive(Debug, PartialEq)]
struct Outcome {
    events: Vec<LoopEvent>,
    instructions: u64,
    str4: EngineReport,
    idle2: EngineReport,
    grid: Vec<EngineReport>,
}

/// Runs one session with the given CLS chunk capacity: an event
/// collector, two standalone stream engines and a shared-annotation
/// grid all observe the same pass.
fn run_with_chunk(program: &Program, chunk: usize, limits: RunLimits) -> Outcome {
    let mut collected = EventCollector::default();
    let mut str4 = StreamEngine::new(StrPolicy::new(), 4);
    let mut idle2 = StreamEngine::new(IdlePolicy::new(), 2);
    let mut grid = EngineGrid::new();
    grid.push_str(8);
    grid.push_str_nested(2, 4);

    let mut session = Session::with_cls(Cls::default().with_chunk_capacity(chunk));
    session
        .observe_loops(&mut collected)
        .observe_loops(&mut str4)
        .observe_loops(&mut idle2)
        .observe_loops(&mut grid);
    let out = session.run(program, limits).expect("program runs");

    let (events, instructions) = collected.into_parts();
    assert_eq!(instructions, out.instructions);
    Outcome {
        events,
        instructions,
        str4: str4.into_report(),
        idle2: idle2.into_report(),
        grid: grid.reports().expect("grid finished").to_vec(),
    }
}

/// The per-event reference: feed the recorded stream one event at a
/// time (chunk size 1 *at the sink boundary*, not just in the session)
/// and close it, then compare against a batch replay too.
fn check_against_reference(o: &Outcome, seed: u64) {
    let mut str4 = StreamEngine::new(StrPolicy::new(), 4);
    for ev in &o.events {
        str4.on_loop_event(ev);
    }
    str4.on_stream_end(o.instructions);
    assert_eq!(str4.into_report(), o.str4, "seed {seed}: per-event STR@4");

    let trace = AnnotatedTrace::build(&o.events, o.instructions);
    assert_eq!(
        Engine::new(&trace, StrPolicy::new(), 4).run(),
        o.str4,
        "seed {seed}: batch STR@4"
    );
    assert_eq!(
        Engine::new(&trace, IdlePolicy::new(), 2).run(),
        o.idle2,
        "seed {seed}: batch IDLE@2"
    );
    assert_eq!(
        Engine::new(&trace, StrPolicy::new(), 8).run(),
        o.grid[0],
        "seed {seed}: batch STR@8 (grid lane 0)"
    );
    assert_eq!(
        Engine::new(&trace, StrNestedPolicy::new(2), 4).run(),
        o.grid[1],
        "seed {seed}: batch STR(2)@4 (grid lane 1)"
    );
}

const CASES: u64 = 24;

#[test]
fn chunked_sessions_match_per_event_delivery() {
    for seed in 0..CASES {
        let mut r = Rng::new(seed);
        let program = random_program(&mut r);

        // Chunk capacity 1 degenerates to per-instruction delivery: the
        // reference outcome.
        let reference = run_with_chunk(&program, 1, RunLimits::default());
        assert!(
            !reference.events.is_empty(),
            "seed {seed}: generator produced no loops"
        );
        check_against_reference(&reference, seed);

        // Arbitrary chunk sizes, including one drawn from the RNG and
        // one larger than any stream (the whole run becomes a single
        // partial chunk flushed at on_stream_end).
        let drawn = r.range(2, 512) as usize;
        for chunk in [2usize, 3, 7, 64, 256, drawn, 1 << 20] {
            let outcome = run_with_chunk(&program, chunk, RunLimits::default());
            assert_eq!(outcome, reference, "seed {seed}: chunk {chunk}");
        }
    }
}

#[test]
fn chunks_straddling_stream_end_match_on_truncated_runs() {
    // Fuel exhaustion cuts the stream mid-loop: the detector flush at
    // the cut appends trailing ExecutionEnd events *after* the last
    // instruction, so the final chunk straddles on_stream_end. Every
    // chunk size must agree on those trailing events and on the
    // engines' truncated-stream closes.
    for seed in 0..CASES {
        let mut r = Rng::new(0x5eed ^ seed);
        let program = random_program(&mut r);
        let fuel = r.range(150, 2500);
        let limits = RunLimits::with_fuel(fuel);

        let reference = run_with_chunk(&program, 1, limits);
        check_against_reference(&reference, seed);
        for chunk in [2usize, 5, 37, 256, 1 << 20] {
            let outcome = run_with_chunk(&program, chunk, limits);
            assert_eq!(outcome, reference, "seed {seed}: fuel {fuel} chunk {chunk}");
        }
    }
}

#[test]
fn raw_sink_chunking_matches_for_any_split() {
    // Below the session: slicing one recorded stream into arbitrary
    // chunk runs and feeding them straight to the sinks must also be
    // invariant (this is the contract every `on_loop_events` override
    // promises).
    for seed in 0..CASES {
        let mut r = Rng::new(0xc4a1 ^ seed);
        let program = random_program(&mut r);
        let mut c = EventCollector::default();
        Cpu::new()
            .run(&program, &mut c, RunLimits::default())
            .expect("runs");
        let (events, n) = c.into_parts();

        let reference = {
            let mut e = StreamEngine::new(StrNestedPolicy::new(1), 4);
            for ev in &events {
                e.on_loop_event(ev);
            }
            e.on_stream_end(n);
            e.into_report()
        };

        // Random split points, fresh per attempt.
        for attempt in 0..3 {
            let mut engine = StreamEngine::new(StrNestedPolicy::new(1), 4);
            let mut collected: Vec<LoopEvent> = Vec::new();
            let mut counter = CountingSink::default();
            let mut rest = &events[..];
            while !rest.is_empty() {
                let take = (r.range(1, 40) as usize).min(rest.len());
                let (chunk, tail) = rest.split_at(take);
                engine.on_loop_events(chunk);
                collected.on_loop_events(chunk);
                counter.on_loop_events(chunk);
                rest = tail;
            }
            engine.on_stream_end(n);
            collected.on_stream_end(n);
            counter.on_stream_end(n);
            assert_eq!(collected, events, "seed {seed} attempt {attempt}");
            assert_eq!(counter.events, events.len() as u64);
            assert_eq!(counter.instructions, n);
            assert_eq!(
                engine.into_report(),
                reference,
                "seed {seed} attempt {attempt}"
            );
        }
    }
}
