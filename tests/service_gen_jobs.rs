//! Generated-scenario jobs through the persistent service: valid
//! `gen:<family>:<seed>` specs must complete with reports byte-identical
//! to the in-process single-pass reference (and hit the
//! content-addressed cache on resubmission), while malformed gen tokens
//! must be turned away at admission control with the `SvcStats`
//! counters still satisfying their invariants —
//! `submitted == accepted + rejected` and
//! `accepted == completed + failed + in_flight` — with every rejected
//! submission accounted for in `failed`.
//!
//! Workers are real `svc_run --worker` processes, so this exercises the
//! same wire path production traffic takes.

use std::process::Command;

use loopspec::dist::{single_pass_outcome, JobSpec, Policy};
use loopspec::gen::families;
use loopspec::prelude::*;

fn worker_command() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_svc_run"));
    cmd.arg("--worker");
    cmd
}

fn spawn_service() -> Service {
    Service::spawn_with(
        SvcConfig {
            workers: 2,
            ..SvcConfig::default()
        },
        |_| worker_command(),
    )
    .expect("service starts")
}

fn gen_spec(name: &str) -> JobSpec {
    JobSpec::new(name)
        .policies([Policy::Str, Policy::StrNested { limit: 2 }])
        .tus([4])
}

#[test]
fn generated_jobs_complete_and_cache_like_named_workloads() {
    let service = spawn_service();
    let client = service.client();

    let mut submitted = 0u64;
    for family in families().iter().take(3) {
        let name = loopspec::workloads::families::name_of(family.name, 5);
        let spec = gen_spec(&name);
        let reference = single_pass_outcome(&name, spec.scale, &spec.lane_specs(), spec.total_fuel)
            .expect("reference run succeeds");

        let fresh = client.run(spec.clone()).expect("gen job completes");
        submitted += 1;
        assert_eq!(fresh.report.instructions, reference.instructions, "{name}");
        assert_eq!(fresh.report.lanes, reference.lanes, "{name}");
        assert_eq!(fresh.report.state, reference.state, "{name}");

        let again = client.run(spec).expect("resubmission completes");
        submitted += 1;
        assert!(again.cached, "{name}: identical spec should hit the cache");
        assert_eq!(again.report, fresh.report, "{name}: cache altered report");
    }

    let stats = service.stats();
    service.shutdown();
    assert_eq!(stats.submitted, submitted);
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.failed + stats.in_flight
    );
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.in_flight, 0);
    assert!(stats.cache_hits >= 3, "expected cache hits, got {stats:?}");
}

#[test]
fn malformed_gen_jobs_are_refused_at_admission_with_consistent_counters() {
    let service = spawn_service();
    let client = service.client();

    // One good job first, so the counters mix completed and failed work.
    let good = loopspec::workloads::families::name_of("chase", 0);
    client
        .run(gen_spec(&good))
        .expect("valid gen job completes");

    let bad_names = [
        "gen:",
        "gen:chase",
        "gen:chase:",
        "gen:chase:seed",
        "gen:chase:-1",
        "gen::7",
        "gen:unknownfamily:7",
        "gen:CHASE:7",
    ];
    for name in bad_names {
        match client.run(gen_spec(name)) {
            Err(SvcError::Failed { message }) => assert!(
                message.contains("invalid job spec"),
                "{name}: unexpected refusal text: {message}"
            ),
            other => panic!("{name}: admission control let it through: {other:?}"),
        }
    }

    // A structurally valid gen name with a bad lane list must also be
    // refused — gen jobs get no special pass on the rest of validation.
    let no_lanes = JobSpec::new(good.clone()).policies([]).tus([]);
    assert!(matches!(
        client.run(no_lanes),
        Err(SvcError::Failed { message }) if message.contains("invalid job spec")
    ));

    let stats = service.stats();
    service.shutdown();
    let refused = bad_names.len() as u64 + 1;
    assert_eq!(stats.submitted, refused + 1);
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.failed + stats.in_flight
    );
    assert_eq!(stats.failed, refused, "every bad spec lands in failed");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.in_flight, 0);
    // Refused specs never reach the cache layer.
    assert_eq!(stats.cache_hits + stats.cache_misses + stats.coalesced, 1);
}
