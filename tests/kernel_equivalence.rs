//! The kernel-extension acceptance criterion: a registered kernel
//! executing natively must be **observably indistinguishable** from
//! instruction-by-instruction execution of its body — for every
//! registered kernel and for generated programs that interleave
//! kernel calls with ordinary code.
//!
//! Four execution paths are held to byte-identity per workload:
//!
//! 1. the legacy interpreter (`Interp::Legacy`),
//! 2. the pre-decoded interpreter (the production default),
//! 3. an in-process sharded run (K = 4 snapshot-linked shards),
//! 4. a 2-worker-process distributed run (the real `dist_run` binary
//!    over stdio pipes).
//!
//! Compared artifacts: per-lane engine reports, serialized final sink
//! state, total instruction counts, and — for the two interpreters —
//! the **mid-stream snapshot bytes** of a checkpoint taken halfway
//! through the run (which lands inside a kernel body for the `kern:`
//! drivers, exercising the v3 pause cursor).

use std::process::Command;

use loopspec::core::SnapshotState;
use loopspec::dist::single_pass_outcome;
use loopspec::isa::kernel;
use loopspec::prelude::*;

/// Engine lanes: one per policy family (coverage, not the full grid).
fn lanes() -> Vec<LaneSpec> {
    vec![
        LaneSpec::Idle { tus: 4 },
        LaneSpec::Str { tus: 4 },
        LaneSpec::StrNested { limit: 3, tus: 4 },
    ]
}

fn grid() -> EngineGrid {
    let mut g = EngineGrid::new();
    g.push_idle(4);
    g.push_str(4);
    g.push_str_nested(3, 4);
    g
}

/// Every workload under test: each registered kernel through its
/// calibrated `kern:` driver, plus generated `kernels`-family programs
/// (kernel calls interleaved with ordinary statements) for five seeds.
fn workload_names() -> Vec<String> {
    let mut names: Vec<String> = kernel::all()
        .iter()
        .map(|def| format!("kern:{}", def.name))
        .collect();
    assert!(names.len() >= 4, "the builtin registry shrank");
    names.extend((0..5).map(|seed| format!("gen:kernels:{seed}")));
    names
}

/// One in-process pass: checkpoint at `cut` instructions, run to the
/// end, return everything the equivalence compares.
struct PassResult {
    snapshot: Vec<u8>,
    reports: Vec<EngineReport>,
    state: Vec<u8>,
    instructions: u64,
}

fn in_process(program: &Program, interp: Interp, cut: u64) -> PassResult {
    let mut g = grid();
    let mut session = Session::new();
    session.set_interp(interp);
    session.observe_checkpointable(&mut g);
    let mut summary = session
        .advance(program, RunLimits::with_fuel(cut))
        .expect("advances to the cut");
    assert!(!session.is_ended(), "the cut must land mid-stream");
    let snapshot = session.checkpoint().expect("checkpointable").to_bytes();
    while !session.is_ended() {
        summary = session
            .advance(program, RunLimits::with_fuel(cut))
            .expect("advances");
    }
    let reports = g.reports().expect("stream ended").to_vec();
    let mut enc = loopspec::isa::snap::Enc::new();
    g.save_state(&mut enc);
    PassResult {
        snapshot,
        reports,
        state: enc.into_bytes(),
        instructions: summary.instructions,
    }
}

/// Total retired instructions of `program`, measured raw.
fn instruction_count(program: &Program) -> u64 {
    let decoded = DecodedProgram::new(program);
    let mut tracer = loopspec::cpu::NullTracer;
    let out = Cpu::new()
        .run_decoded(&decoded, &mut tracer, RunLimits::with_fuel(2_000_000_000))
        .expect("runs");
    assert!(out.halted(), "workload must halt");
    out.retired
}

#[test]
fn legacy_decoded_and_sharded_paths_are_byte_identical() {
    for name in workload_names() {
        let program = build_named(&name, Scale::Test)
            .expect("known name")
            .expect("assembles");
        let total = instruction_count(&program);
        let cut = (total / 2).max(1);

        let legacy = in_process(&program, Interp::Legacy, cut);
        let decoded = in_process(&program, Interp::Decoded, cut);

        assert_eq!(legacy.instructions, total, "{name}: stream length");
        assert_eq!(
            legacy.instructions, decoded.instructions,
            "{name}: instruction count"
        );
        assert_eq!(
            legacy.snapshot, decoded.snapshot,
            "{name}: mid-stream snapshot bytes must be interpreter-independent"
        );
        assert_eq!(legacy.reports, decoded.reports, "{name}: lane reports");
        assert_eq!(legacy.state, decoded.state, "{name}: final sink state");

        // Sharded K=4: the same grid fed across snapshot-linked shards.
        let sharded = ShardedRun::new(4)
            .run(&program, RunLimits::with_fuel(total), grid)
            .expect("sharded run succeeds");
        assert!(
            sharded.shards_run > 1,
            "{name}: must cross shard boundaries"
        );
        let shard_reports = sharded.sink.reports().expect("stream ended");
        assert_eq!(decoded.reports, shard_reports, "{name}: sharded reports");
        let mut enc = loopspec::isa::snap::Enc::new();
        sharded.sink.save_state(&mut enc);
        assert_eq!(
            decoded.state,
            enc.into_bytes(),
            "{name}: sharded sink state"
        );
    }
}

#[test]
fn two_worker_distributed_runs_match_the_single_pass() {
    let spec = SuiteSpec::new(workload_names(), Scale::Test, lanes(), Plan::sliced(30_000));
    let coordinator = Coordinator::spawn_with(2, |_| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_dist_run"));
        cmd.arg("--worker");
        cmd
    })
    .expect("workers spawn");
    let outcome = coordinator.run_suite(&spec).expect("suite succeeds");
    assert_eq!(outcome.workers_lost, 0);
    for o in &outcome.outcomes {
        let reference = single_pass_outcome(&o.workload, spec.scale, &spec.lanes, spec.total_fuel)
            .expect("reference run succeeds");
        assert_eq!(
            o.instructions, reference.instructions,
            "{}: instruction count",
            o.workload
        );
        assert_eq!(
            o.lanes, reference.lanes,
            "{}: lane reports must be byte-identical",
            o.workload
        );
        assert_eq!(
            o.state, reference.state,
            "{}: serialized sink state must be byte-identical",
            o.workload
        );
        // Short generated programs can fit one slice; longer ones must
        // really cross checkpoint boundaries.
        if reference.instructions > 30_000 {
            assert!(o.shards_run > 1, "{}: crossed shard boundaries", o.workload);
        }
    }
}
