//! Snapshot round-trip property: checkpointing a session at an
//! *arbitrary* retired-instruction boundary, serializing the snapshot to
//! bytes, and resuming it into fresh sinks must be indistinguishable
//! from never having stopped — same event stream, same engine reports,
//! bit for bit.
//!
//! Cut positions are chosen by the seeded testutil RNG (the offline
//! substitute for `proptest`), so checkpoints land everywhere the
//! mechanism has interesting state: mid-chunk (events buffered in the
//! detector but not yet delivered to loop sinks), inside open —
//! still-undetected-end — loop executions, between executions of the
//! same static loop (predictor history live), and immediately before
//! the halt.

use loopspec::prelude::*;
use loopspec_testutil::Rng;

/// A compact random structured program: nested counted loops (some with
/// RNG trip counts), straight-line work, early breaks.
fn random_program(r: &mut Rng) -> Program {
    fn body(b: &mut ProgramBuilder, r: &mut Rng, depth: u32) {
        let stmts = r.range(1, 4);
        for _ in 0..stmts {
            if depth >= 3 || r.below(2) == 0 {
                b.work(r.range(1, 12) as u32);
            } else if r.below(4) == 0 {
                let n = r.range(1, 6) as i32;
                let reg = b.alloc_reg();
                b.rng_below(reg, n);
                b.addi(reg, reg, 1);
                b.counted_loop(reg, |b, _| body(b, r, depth + 1));
                b.free_reg(reg);
            } else {
                let trips = r.range(1, 9) as i64;
                let brk = r.below(3) == 0;
                b.counted_loop(trips, |b, i| {
                    body(b, r, depth + 1);
                    if brk {
                        b.with_reg(|b, lim| {
                            b.li(lim, 5);
                            b.break_if(Cond::GeS, i, lim);
                        });
                    }
                });
            }
        }
    }
    let mut b = ProgramBuilder::with_seed(r.next() as i64);
    body(&mut b, r, 0);
    b.finish().expect("random program assembles")
}

fn make_grid() -> EngineGrid {
    let mut g = EngineGrid::new();
    g.push_idle(4);
    g.push_str(4);
    g.push_str_nested(1, 2);
    g
}

struct Sinks {
    events: EventCollector,
    engine: StreamEngine<StrPolicy>,
    grid: EngineGrid,
}

impl Sinks {
    fn new() -> Self {
        Sinks {
            events: EventCollector::default(),
            engine: StreamEngine::new(StrPolicy::new(), 4),
            grid: make_grid(),
        }
    }
}

/// Runs `program` uninterrupted; returns the sinks and instruction count.
fn uninterrupted(program: &Program) -> (Sinks, u64) {
    let mut s = Sinks::new();
    let mut session = Session::new();
    session
        .observe_checkpointable(&mut s.events)
        .observe_checkpointable(&mut s.engine)
        .observe_checkpointable(&mut s.grid);
    let out = session.run(program, RunLimits::default()).expect("runs");
    assert!(out.halted(), "random programs must halt");
    (s, out.instructions)
}

/// Runs `program` in segments cut at the (sorted, strictly increasing)
/// positions in `cuts`, crossing a serialized snapshot and fresh sinks
/// at every cut.
fn segmented(program: &Program, cuts: &[u64]) -> Sinks {
    let mut handoff: Option<Vec<u8>> = None;
    let mut executed = 0u64;
    for &cut in cuts {
        assert!(cut > executed);
        let mut s = Sinks::new();
        let mut session = Session::new();
        session
            .observe_checkpointable(&mut s.events)
            .observe_checkpointable(&mut s.engine)
            .observe_checkpointable(&mut s.grid);
        if let Some(bytes) = handoff.take() {
            let snap = Snapshot::from_bytes(&bytes).expect("container decodes");
            session.resume(&snap).expect("resumes");
        }
        let out = session
            .advance(program, RunLimits::with_fuel(cut - executed))
            .expect("advances");
        assert!(!out.halted(), "cuts are strictly before the halt");
        executed = out.instructions;
        assert_eq!(executed, cut);
        let snap = session.checkpoint().expect("checkpointable");
        assert_eq!(snap.instructions(), cut);
        let bytes = snap.to_bytes();
        assert_eq!(
            bytes,
            session.checkpoint().unwrap().to_bytes(),
            "snapshot bytes are deterministic"
        );
        handoff = Some(bytes);
    }
    // Final segment to completion.
    let mut s = Sinks::new();
    let mut session = Session::new();
    session
        .observe_checkpointable(&mut s.events)
        .observe_checkpointable(&mut s.engine)
        .observe_checkpointable(&mut s.grid);
    if let Some(bytes) = handoff {
        let snap = Snapshot::from_bytes(&bytes).expect("container decodes");
        session.resume(&snap).expect("resumes");
    }
    let out = session
        .advance(program, RunLimits::default())
        .expect("advances");
    assert!(out.halted());
    s
}

fn assert_identical(split: &Sinks, reference: &Sinks, ctx: &str) {
    assert_eq!(split.events.events(), reference.events.events(), "{ctx}");
    assert_eq!(
        split.events.instructions(),
        reference.events.instructions(),
        "{ctx}"
    );
    assert_eq!(split.engine.report(), reference.engine.report(), "{ctx}");
    assert_eq!(split.grid.reports(), reference.grid.reports(), "{ctx}");
}

#[test]
fn random_programs_checkpoint_anywhere() {
    let mut rng = Rng::new(0x10_05_ec);
    for case in 0..16 {
        let program = random_program(&mut rng);
        let (reference, n) = uninterrupted(&program);
        if n < 4 {
            continue;
        }
        // 1 to 3 random cuts, strictly increasing, strictly inside the
        // run — landing mid-chunk and inside open loops by construction
        // (events only flush at chunk boundaries and the halt).
        let mut cuts: Vec<u64> = (0..rng.range(1, 4)).map(|_| rng.range(1, n)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let split = segmented(&program, &cuts);
        assert_identical(&split, &reference, &format!("case {case}, cuts {cuts:?}"));
    }
}

#[test]
fn exhaustive_cut_sweep_on_a_nested_loop() {
    // Every single retirement boundary of a doubly nested program with a
    // trailing second execution (live predictor history): the checkpoint
    // must be exact no matter where it lands — mid-chunk, inside the
    // inner loop, between the two executions of the kernel.
    let mut b = ProgramBuilder::new();
    b.define_func("kernel", |b| {
        b.counted_loop(6, |b, _| {
            b.counted_loop(4, |b, _| b.work(2));
        });
    });
    b.call_func("kernel");
    b.call_func("kernel");
    let program = b.finish().unwrap();

    let (reference, n) = uninterrupted(&program);
    for cut in 1..n {
        let split = segmented(&program, &[cut]);
        assert_identical(&split, &reference, &format!("cut {cut}"));
    }
}

#[test]
fn checkpoint_mid_chunk_carries_undelivered_events() {
    // With the default 256-event chunk, a cut after a few iterations is
    // guaranteed to land mid-chunk: the detector has emitted events that
    // no loop sink has seen yet. The snapshot must carry them.
    let mut b = ProgramBuilder::new();
    b.counted_loop(100, |b, _| b.work(3));
    let program = b.finish().unwrap();

    let mut probe = EventCollector::default();
    let mut session = Session::new();
    session.observe_checkpointable(&mut probe);
    session.advance(&program, RunLimits::with_fuel(40)).unwrap();
    // A handful of iterations have retired...
    let snap = session.checkpoint().unwrap();
    drop(session);
    // ...but none of their events were delivered (chunk not full).
    assert!(probe.events().is_empty(), "cut landed mid-chunk");
    assert!(
        !snap.to_bytes().is_empty() && snap.instructions() == 40,
        "snapshot captured the boundary"
    );

    let (reference, _) = uninterrupted(&program);
    let split = segmented(&program, &[40]);
    assert_identical(&split, &reference, "mid-chunk cut");
}

#[test]
fn resumed_suitability_filter_keeps_its_history() {
    // A learning policy (the §2.3.2 not-suitable filter) must carry its
    // outcome history across the snapshot, not relearn from scratch.
    let mut b = ProgramBuilder::with_seed(3);
    b.define_func("noisy", |b| {
        let r = b.alloc_reg();
        b.rng_below(r, 9);
        b.addi(r, r, 1);
        b.counted_loop(r, |b, _| b.work(4));
        b.free_reg(r);
    });
    b.counted_loop(60, |b, _| b.call_func("noisy"));
    let program = b.finish().unwrap();

    let make = || {
        StreamEngine::new(
            loopspec::mt::SuitabilityFilter::new(StrPolicy::new(), 8, 0.5),
            4,
        )
    };

    let mut reference = make();
    let mut session = Session::new();
    session.observe_checkpointable(&mut reference);
    let single = session.run(&program, RunLimits::default()).unwrap();

    let out = ShardedRun::new(5)
        .run(&program, RunLimits::with_fuel(single.instructions), make)
        .unwrap();
    assert_eq!(out.sink.report(), reference.report());
}
