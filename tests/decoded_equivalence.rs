//! The decoded front-end's bit-identity contract: the pre-decoded
//! threaded-code interpreter (with superinstruction fusion) must be
//! indistinguishable from the legacy fetch/decode loop — same
//! [`InstrEvent`] streams under a full-demand tracer, same loop events
//! and engine reports, and byte-identical snapshots across checkpoint
//! cuts that land mid-fused-block and mid-chunk — on all 18 workloads
//! and on randomly generated structured programs.

use loopspec::prelude::*;
use loopspec_testutil::Rng;

// ---------------------------------------------------------------------
// Raw-CPU equivalence on random programs.

/// Full-demand tracer: records every event verbatim, so any divergence
/// in reads, writes, memory accesses or control outcomes is caught.
#[derive(Debug, Default)]
struct Recorder {
    events: Vec<InstrEvent>,
}

impl Tracer for Recorder {
    fn on_retire(&mut self, ev: &InstrEvent) {
        self.events.push(*ev);
    }
}

fn arch_state(cpu: &Cpu) -> Vec<u8> {
    let mut enc = loopspec::isa::snap::Enc::new();
    cpu.save_state(&mut enc);
    enc.into_bytes()
}

/// A compact random structured program: nested counted loops, two-sided
/// conditionals, static loads/stores, float work and calls — enough
/// variety to exercise every fused-pair shape and straight-line run the
/// decoder emits.
fn random_program(seed: u64) -> Program {
    let mut r = Rng::new(seed);
    let mut b = ProgramBuilder::with_seed(seed as i64);
    let slot = b.alloc_static(8);
    let acc = b.alloc_reg();
    b.li(acc, 0);
    for _ in 0..r.range(1, 4) {
        let trip = r.range(2, 9) as i64;
        let inner = r.range(2, 6) as i64;
        let work = r.range(1, 7) as u32;
        match r.below(4) {
            0 => b.counted_loop(trip, |b, i| {
                b.work(work);
                b.op(AluOp::Add, acc, acc, i);
            }),
            1 => b.counted_loop(trip, |b, i| {
                b.counted_loop(inner, |b, j| {
                    b.work(work);
                    b.op(AluOp::Xor, acc, acc, j);
                });
                b.op(AluOp::Add, acc, acc, i);
            }),
            2 => b.counted_loop(trip, |b, i| {
                b.if_else(
                    Cond::Eq,
                    i,
                    Reg::R0,
                    |b| b.work(work),
                    |b| {
                        b.store_idx(i, slot, i);
                        b.load_idx(acc, slot, i);
                    },
                );
            }),
            _ => b.counted_loop(trip, |b, i| {
                b.fwork(work.min(3));
                let t = b.alloc_reg();
                b.rng_below(t, 6);
                b.break_if(Cond::Eq, t, Reg::R0);
                b.free_reg(t);
                b.op(AluOp::Sub, acc, acc, i);
            }),
        }
    }
    b.store_static(acc, slot);
    b.free_reg(acc);
    b.finish().expect("generated program assembles")
}

#[test]
fn random_programs_match_legacy_events_and_state() {
    for seed in 0..32u64 {
        let p = random_program(seed);
        let decoded = DecodedProgram::new(&p);

        let mut legacy_cpu = Cpu::new();
        let mut legacy = Recorder::default();
        let a = legacy_cpu
            .run(&p, &mut legacy, RunLimits::with_fuel(200_000))
            .expect("legacy runs");

        let mut decoded_cpu = Cpu::new();
        let mut traced = Recorder::default();
        let b = decoded_cpu
            .run_decoded(&decoded, &mut traced, RunLimits::with_fuel(200_000))
            .expect("decoded runs");

        assert_eq!(a.retired, b.retired, "seed {seed}");
        assert_eq!(a.completion, b.completion, "seed {seed}");
        assert_eq!(legacy.events, traced.events, "seed {seed}");
        assert_eq!(
            arch_state(&legacy_cpu),
            arch_state(&decoded_cpu),
            "seed {seed}"
        );
    }
}

#[test]
fn random_programs_survive_odd_fuel_slices() {
    // Resume the decoded interpreter in fuel slices chosen to land
    // inside fused pairs and straight-line runs; every pause must sit
    // on an instruction boundary with state equal to the legacy
    // interpreter paused at the same count.
    for seed in 0..12u64 {
        let p = random_program(seed);
        let decoded = DecodedProgram::new(&p);
        let fuel = 7 + seed % 5;

        let mut legacy_cpu = Cpu::new();
        let mut decoded_cpu = Cpu::new();
        let mut legacy = Recorder::default();
        let mut traced = Recorder::default();
        let mut first = true;
        loop {
            let (a, b) = if first {
                first = false;
                (
                    legacy_cpu
                        .run(&p, &mut legacy, RunLimits::with_fuel(fuel))
                        .expect("legacy runs"),
                    decoded_cpu
                        .run_decoded(&decoded, &mut traced, RunLimits::with_fuel(fuel))
                        .expect("decoded runs"),
                )
            } else {
                (
                    legacy_cpu
                        .resume(&p, &mut legacy, RunLimits::with_fuel(fuel))
                        .expect("legacy resumes"),
                    decoded_cpu
                        .resume_decoded(&decoded, &mut traced, RunLimits::with_fuel(fuel))
                        .expect("decoded resumes"),
                )
            };
            assert_eq!(a.completion, b.completion, "seed {seed}");
            assert_eq!(
                arch_state(&legacy_cpu),
                arch_state(&decoded_cpu),
                "seed {seed} pause"
            );
            if a.halted() {
                break;
            }
        }
        assert_eq!(legacy.events, traced.events, "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Session-level equivalence on the paper's workload suite.

fn session_pass(p: &Program, interp: Interp) -> (Vec<LoopEvent>, u64, Vec<EngineReport>) {
    let mut events = EventCollector::default();
    let mut grid = EngineGrid::new();
    grid.push_idle(4);
    grid.push_str(4);
    grid.push_str_nested(2, 4);
    let mut session = Session::new();
    session.set_interp(interp);
    session.observe_loops(&mut events).observe_loops(&mut grid);
    session.run(p, RunLimits::default()).expect("runs");
    let reports = grid.reports().expect("finished").to_vec();
    let (evs, n) = events.into_parts();
    (evs, n, reports)
}

#[test]
fn all_workloads_match_legacy_sessions() {
    for w in all_workloads() {
        let p = w.build(Scale::Test).expect("assembles");
        let (ea, na, ra) = session_pass(&p, Interp::Legacy);
        let (eb, nb, rb) = session_pass(&p, Interp::Decoded);
        assert_eq!(na, nb, "{}", w.name);
        assert_eq!(ea, eb, "{}", w.name);
        assert_eq!(ra, rb, "{}", w.name);
    }
}

// ---------------------------------------------------------------------
// Snapshot bytes across checkpoint cuts.

fn make_engine() -> StreamEngine<StrPolicy> {
    StreamEngine::new(StrPolicy::new(), 4)
}

/// Advances in `fuel`-sized slices, checkpointing at every pause, and
/// returns (snapshot byte blobs, final report).
fn checkpoint_chain(p: &Program, interp: Interp, fuel: u64) -> (Vec<Vec<u8>>, EngineReport) {
    let mut engine = make_engine();
    let mut session = Session::new();
    session.set_interp(interp);
    session.observe_checkpointable(&mut engine);
    let mut snaps = Vec::new();
    loop {
        let s = session
            .advance(p, RunLimits::with_fuel(fuel))
            .expect("advances");
        if s.halted() {
            break;
        }
        snaps.push(session.checkpoint().expect("checkpointable").to_bytes());
    }
    (snaps, engine.report().expect("finished").clone())
}

#[test]
fn checkpoint_bytes_match_at_mid_block_and_mid_chunk_cuts() {
    let w = workload_by_name("compress").expect("exists");
    let p = w.build(Scale::Test).expect("assembles");
    // 997 is odd and coprime to the 256-event chunk size, so cuts land
    // mid-chunk; and it is not a multiple of any basic-block length, so
    // the decoded interpreter is forced to pause inside fused runs.
    let (snaps_legacy, report_legacy) = checkpoint_chain(&p, Interp::Legacy, 997);
    let (snaps_decoded, report_decoded) = checkpoint_chain(&p, Interp::Decoded, 997);
    assert_eq!(snaps_legacy.len(), snaps_decoded.len());
    assert!(!snaps_legacy.is_empty(), "the run must pause at least once");
    for (k, (a, b)) in snaps_legacy.iter().zip(&snaps_decoded).enumerate() {
        assert_eq!(a, b, "snapshot bytes diverge at cut {k}");
    }
    assert_eq!(report_legacy, report_decoded);
}

#[test]
fn snapshots_resume_across_interpreters() {
    let w = workload_by_name("go").expect("exists");
    let p = w.build(Scale::Test).expect("assembles");

    let mut reference = make_engine();
    let mut session = Session::new();
    session.set_interp(Interp::Legacy);
    session.observe_checkpointable(&mut reference);
    session.run(&p, RunLimits::default()).expect("runs");
    let expected = reference.report().expect("finished").clone();

    for (from, to) in [
        (Interp::Legacy, Interp::Decoded),
        (Interp::Decoded, Interp::Legacy),
    ] {
        let mut engine_a = make_engine();
        let mut session_a = Session::new();
        session_a.set_interp(from);
        session_a.observe_checkpointable(&mut engine_a);
        let s = session_a
            .advance(&p, RunLimits::with_fuel(12_345))
            .expect("advances");
        assert!(!s.halted(), "go must outlive the first slice");
        let bytes = session_a.checkpoint().expect("checkpointable").to_bytes();

        let mut engine_b = make_engine();
        let mut session_b = Session::new();
        session_b.set_interp(to);
        session_b.observe_checkpointable(&mut engine_b);
        session_b
            .resume(&Snapshot::from_bytes(&bytes).expect("decodes"))
            .expect("resumes");
        session_b
            .advance(&p, RunLimits::default())
            .expect("finishes");
        assert_eq!(
            engine_b.report().expect("finished"),
            &expected,
            "{from}->{to}"
        );
    }
}

#[test]
fn sharded_runs_match_across_interpreters() {
    let w = workload_by_name("compress").expect("exists");
    let p = w.build(Scale::Test).expect("assembles");
    let make_grid = || {
        let mut g = EngineGrid::new();
        g.push_idle(4);
        g.push_str(4);
        g
    };

    let mut reference = make_grid();
    let mut session = Session::new();
    session.set_interp(Interp::Legacy);
    session.observe_checkpointable(&mut reference);
    let single = session.run(&p, RunLimits::default()).expect("runs");

    // ShardedRun builds its sessions internally, which default to the
    // decoded interpreter: K=4 decoded shards must reproduce the legacy
    // single pass bit for bit.
    let out = ShardedRun::new(4)
        .run(&p, RunLimits::with_fuel(single.instructions), make_grid)
        .expect("sharded run succeeds");
    assert_eq!(out.shards_run, 4);
    assert_eq!(out.sink.reports(), reference.reports());
}
