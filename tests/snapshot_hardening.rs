//! Adversarial-input hardening for the snapshot codec: whatever bytes
//! arrive — truncated, bit-flipped, or outright garbage — decoding
//! must fail with a clean `SnapError`/`SnapshotError`, never panic,
//! and never attempt an allocation sized by attacker-controlled input.
//!
//! Snapshot bytes now cross process boundaries (the `loopspec-dist`
//! wire protocol ships them through pipes and sockets), so the decode
//! path is exposed to torn writes, dying peers, and corrupt transports
//! — this suite is the paranoia those paths deserve. Three layers are
//! attacked, all with the seeded testutil RNG:
//!
//! 1. the outer container (`Snapshot::from_bytes`): its FNV checksum
//!    must catch every truncation and bit flip;
//! 2. the inner sections (`Session::resume`): with the checksum
//!    *recomputed* after corruption, the flipped bytes reach the
//!    per-layer `load_state` decoders — which must error (or accept a
//!    still-valid state) without panicking;
//! 3. the dist frame layer (`FrameBuf`): corrupt lengths and payloads
//!    are rejected before any allocation.

use loopspec::core::snap::{fnv1a, FrameBuf, SnapError};
use loopspec::prelude::*;
use loopspec_testutil::Rng;

/// A realistic snapshot: the compress workload paused mid-run with a
/// three-lane grid and an event collector registered.
fn sample_snapshot() -> Vec<u8> {
    let w = workload_by_name("compress").expect("workload exists");
    let program = w.build(Scale::Test).expect("assembles");
    let mut events = EventCollector::default();
    let mut grid = EngineGrid::new();
    grid.push_idle(4);
    grid.push_str(4);
    grid.push_str_nested(3, 4);
    let mut session = Session::new();
    session
        .observe_checkpointable(&mut events)
        .observe_checkpointable(&mut grid);
    session
        .advance(&program, RunLimits::with_fuel(30_000))
        .expect("runs");
    session.checkpoint().expect("checkpointable").to_bytes()
}

/// Tries to resume `bytes` into a freshly configured session; the
/// result may be `Ok` (the corruption landed in a don't-care or
/// still-valid spot) or `Err` — anything but a panic.
fn try_resume(bytes: &[u8]) -> Result<(), String> {
    let snapshot = Snapshot::from_bytes(bytes).map_err(|e| e.to_string())?;
    let mut events = EventCollector::default();
    let mut grid = EngineGrid::new();
    grid.push_idle(4);
    grid.push_str(4);
    grid.push_str_nested(3, 4);
    let mut session = Session::new();
    session
        .observe_checkpointable(&mut events)
        .observe_checkpointable(&mut grid);
    session.resume(&snapshot).map_err(|e| e.to_string())
}

/// Re-seals a container whose payload was mutated, so the corruption
/// penetrates past the checksum into the section decoders.
fn reseal(bytes: &mut [u8]) {
    let payload_len = bytes.len() - 8;
    let sum = fnv1a(&bytes[..payload_len]);
    bytes[payload_len..].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_truncation_fails_cleanly() {
    let bytes = sample_snapshot();
    // Every prefix, dense at the edges, seeded-sampled in the middle
    // (the container is tens of kilobytes).
    let mut rng = Rng::new(0xdead_0001);
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((bytes.len().saturating_sub(64)..bytes.len()).collect::<Vec<_>>());
    cuts.extend((0..512).map(|_| rng.below(bytes.len() as u64) as usize));
    for cut in cuts {
        assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must not decode"
        );
    }
}

#[test]
fn every_sampled_bit_flip_is_caught_by_the_checksum() {
    let bytes = sample_snapshot();
    let mut rng = Rng::new(0xdead_0002);
    for _ in 0..512 {
        let byte = rng.below(bytes.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        let mut bad = bytes.clone();
        bad[byte] ^= 1 << bit;
        assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "bit flip at {byte}.{bit} must not decode"
        );
    }
}

#[test]
fn resealed_corruption_reaches_section_decoders_without_panicking() {
    let bytes = sample_snapshot();
    let mut rng = Rng::new(0xdead_0003);
    let mut survived = 0u32;
    for _ in 0..512 {
        let mut bad = bytes.clone();
        // 1 to 4 independent flips, then a recomputed checksum: the
        // container now *looks* intact, so the flipped bytes flow into
        // the CPU / detector / engine-grid state decoders.
        for _ in 0..rng.range(1, 5) {
            let byte = rng.below((bad.len() - 8) as u64) as usize;
            bad[byte] ^= 1 << rng.below(8);
        }
        reseal(&mut bad);
        if try_resume(&bad).is_ok() {
            survived += 1; // flipped a don't-care or still-valid value
        }
    }
    // No assertion on the split: the property is "no panic, no
    // unbounded allocation". But a decoder that accepted *everything*
    // would mean the echoes and tags verify nothing.
    assert!(survived < 512, "some corruption must be detected");
}

#[test]
fn random_garbage_never_decodes() {
    let mut rng = Rng::new(0xdead_0004);
    for len in [0usize, 1, 7, 8, 64, 4096] {
        for _ in 0..64 {
            let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            assert!(Snapshot::from_bytes(&garbage).is_err());
        }
    }
}

#[test]
fn hostile_length_prefixes_cannot_oversize_allocations() {
    // A container whose inner length fields claim the moon: the
    // bounds-checked decoder must reject them against the remaining
    // input instead of allocating.
    let bytes = sample_snapshot();
    let mut rng = Rng::new(0xdead_0005);
    for _ in 0..256 {
        let mut bad = bytes.clone();
        // Overwrite 8 aligned-ish bytes somewhere in the payload with a
        // huge little-endian value — if it lands on a length/count
        // field, the decoder sees a multi-terabyte claim.
        let at = rng.below((bad.len() - 16) as u64) as usize;
        bad[at..at + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        reseal(&mut bad);
        let _ = try_resume(&bad); // must not panic or OOM
    }

    // Same property at the dist frame layer, where the length prefix
    // is fully attacker-controlled.
    let mut buf = FrameBuf::new(1 << 20);
    buf.extend(&u32::MAX.to_le_bytes());
    assert_eq!(
        buf.next_frame(),
        Err(SnapError::Corrupt {
            what: "frame length"
        })
    );
}

#[test]
fn pristine_snapshot_still_resumes_after_all_that() {
    // Sanity: the unmutated bytes decode and resume fine (the suite
    // attacks real snapshots, not strawmen).
    let bytes = sample_snapshot();
    try_resume(&bytes).expect("pristine snapshot resumes");
}

// ---- v3 kernel-state section ----------------------------------------
//
// The v3 container opens with a kernel-registry echo (ids + body
// fingerprints) right after the magic/version words, and the CPU
// section can carry a kernel pause cursor when the checkpoint lands
// mid-`KernelCall`. These are new decode surfaces; they get the same
// treatment as the rest of the container.

/// A snapshot paused *inside* a kernel body: the `kern:` drivers issue
/// 4096-trip kernel calls (tens of thousands of retired instructions
/// each), so a 10 K-fuel pause lands mid-call and the container
/// carries the v3 pause cursor, not just the registry echo.
fn kernel_snapshot() -> Vec<u8> {
    let program = build_named("kern:ksum", Scale::Test)
        .expect("kern:ksum is a known name")
        .expect("assembles");
    let mut events = EventCollector::default();
    let mut session = Session::new();
    session.observe_checkpointable(&mut events);
    session
        .advance(&program, RunLimits::with_fuel(10_000))
        .expect("runs");
    session.checkpoint().expect("checkpointable").to_bytes()
}

/// Resumes kernel-snapshot `bytes` into a matching session.
fn try_resume_kernel(bytes: &[u8]) -> Result<(), String> {
    let snapshot = Snapshot::from_bytes(bytes).map_err(|e| e.to_string())?;
    let mut events = EventCollector::default();
    let mut session = Session::new();
    session.observe_checkpointable(&mut events);
    session.resume(&snapshot).map_err(|e| e.to_string())
}

/// Byte length of the kernel-registry echo, which spans
/// `payload[8 .. 8 + len]` (magic and version words come first).
fn kernel_section_len() -> usize {
    let mut enc = loopspec::isa::snap::Enc::new();
    loopspec::isa::kernel::save_state(&mut enc);
    enc.into_bytes().len()
}

#[test]
fn v2_containers_are_rejected_with_a_clean_typed_error() {
    use loopspec::core::snap::SnapError;
    use loopspec::pipeline::SnapshotError;

    let mut bytes = kernel_snapshot();
    // The version word sits at payload bytes [4..8], after the magic.
    bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
    reseal(&mut bytes);
    let err = Snapshot::from_bytes(&bytes).expect_err("v2 must not decode");
    assert!(
        matches!(
            err,
            SnapshotError::Codec(SnapError::Mismatch {
                what: "snapshot version"
            })
        ),
        "want a typed version mismatch, got {err:?}"
    );
}

#[test]
fn kernel_section_truncations_fail_cleanly() {
    let bytes = kernel_snapshot();
    let cut_end = 8 + kernel_section_len();
    assert!(bytes.len() > cut_end, "container extends past the echo");
    // Every prefix ending inside the registry echo (and the words
    // before it): the checksum must reject each one.
    for cut in 0..=cut_end {
        assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must not decode"
        );
    }
}

#[test]
fn kernel_section_bitflips_never_panic_and_are_mostly_caught() {
    let bytes = kernel_snapshot();
    let klen = kernel_section_len();
    let mut rng = Rng::new(0xdead_0006);
    let mut survived = 0u32;
    const TRIES: u32 = 512;
    for _ in 0..TRIES {
        let mut bad = bytes.clone();
        // Flip inside the registry echo, then reseal so the corruption
        // reaches the id/fingerprint checks instead of the checksum.
        let byte = 8 + rng.below(klen as u64) as usize;
        bad[byte] ^= 1 << rng.below(8);
        reseal(&mut bad);
        if try_resume_kernel(&bad).is_ok() {
            survived += 1;
        }
    }
    // A corrupted registry echo (count, id, or fingerprint) must not
    // resume against the built-in registry. Don't demand zero
    // survivors — a flip can land in a don't-care encoding corner —
    // but the echo must verify *something*.
    assert!(
        survived < TRIES / 4,
        "registry echo verifies ids and fingerprints ({survived}/{TRIES} survived)"
    );
}

#[test]
fn mid_kernel_snapshot_resumes_cleanly_when_pristine() {
    let bytes = kernel_snapshot();
    try_resume_kernel(&bytes).expect("pristine mid-kernel snapshot resumes");
}
