//! Cross-crate integration: the full paper pipeline on real workloads,
//! with structural invariants checked at every stage.

use loopspec::prelude::*;
use std::collections::HashMap;

/// Replays an event stream through a stack machine and checks
/// well-formedness: starts before iterations, matched ends, monotone
/// positions, dense iteration indices.
fn check_event_stream(events: &[LoopEvent]) {
    let mut open: HashMap<LoopId, u32> = HashMap::new(); // loop -> last iter index
    let mut last_pos = 0u64;
    for e in events {
        assert!(e.pos() >= last_pos, "positions must be monotone: {e}");
        last_pos = e.pos();
        match *e {
            LoopEvent::ExecutionStart { loop_id, .. } => {
                let prev = open.insert(loop_id, 1);
                assert!(prev.is_none(), "{loop_id} double-opened");
            }
            LoopEvent::IterationStart { loop_id, iter, .. } => {
                let last = open
                    .get_mut(&loop_id)
                    .unwrap_or_else(|| panic!("iteration of closed {loop_id}"));
                assert_eq!(iter, *last + 1, "iteration indices must be dense");
                *last = iter;
            }
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                ..
            }
            | LoopEvent::Evicted {
                loop_id,
                iterations,
                ..
            } => {
                let last = open
                    .remove(&loop_id)
                    .unwrap_or_else(|| panic!("end of closed {loop_id}"));
                assert_eq!(iterations, last, "end must report the latest iteration");
            }
            LoopEvent::OneShot { .. } => {}
        }
        assert!(
            open.len() <= 16,
            "open loops cannot exceed the CLS capacity"
        );
    }
    assert!(open.is_empty(), "halt must flush the CLS: {open:?}");
}

fn run_workload(name: &str) -> (Vec<LoopEvent>, u64) {
    let w = workload_by_name(name).expect("workload exists");
    let program = w.build(Scale::Test).expect("assembles");
    let mut c = EventCollector::default();
    let summary = Cpu::new()
        .run(&program, &mut c, RunLimits::default())
        .expect("runs");
    assert!(summary.halted());
    c.into_parts()
}

#[test]
fn event_streams_are_well_formed_for_every_workload() {
    for w in all_workloads() {
        let (events, _) = run_workload(w.name);
        check_event_stream(&events);
    }
}

#[test]
fn engine_conservation_laws_hold_across_policies() {
    for name in ["compress", "go", "mgrid", "perl"] {
        let (events, n) = run_workload(name);
        let trace = AnnotatedTrace::build(&events, n);
        let ideal = ideal_tpc(&trace);
        for tus in [2usize, 4, 16] {
            for report in [
                Engine::new(&trace, IdlePolicy::new(), tus).run(),
                Engine::new(&trace, StrPolicy::new(), tus).run(),
                Engine::new(&trace, StrNestedPolicy::new(2), tus).run(),
            ] {
                // Every launched thread resolves exactly once.
                assert_eq!(
                    report.spec.threads_spawned,
                    report.spec.resolved(),
                    "{name}/{tus}: {:?}",
                    report.spec
                );
                // Time can only shrink vs sequential execution.
                assert!(report.cycles <= n, "{name}/{tus}");
                assert!(report.tpc() >= 1.0 - 1e-9, "{name}/{tus}");
                // And never beat the oracle with infinite resources.
                assert!(
                    report.tpc() <= ideal.tpc + 1e-9,
                    "{name}/{tus}: {} > ideal {}",
                    report.tpc(),
                    ideal.tpc
                );
            }
        }
    }
}

#[test]
fn str_tpc_is_monotone_in_thread_units() {
    for name in ["swim", "hydro2d", "vortex"] {
        let (events, n) = run_workload(name);
        let trace = AnnotatedTrace::build(&events, n);
        let mut prev = 0.0;
        for tus in [2usize, 4, 8, 16] {
            let tpc = Engine::new(&trace, StrPolicy::new(), tus).run().tpc();
            assert!(
                tpc >= prev - 0.05,
                "{name}: TPC fell from {prev} to {tpc} at {tus} TUs"
            );
            prev = tpc;
        }
    }
}

#[test]
fn stats_and_annotation_agree_on_totals() {
    for name in ["li", "turb3d"] {
        let (events, n) = run_workload(name);
        let mut stats = LoopStats::new();
        stats.observe_all(&events);
        let report = stats.report(n);
        let trace = AnnotatedTrace::build(&events, n);
        let one_shots = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::OneShot { .. }))
            .count() as u64;
        // The annotator drops one-shots; stats count them as executions.
        assert_eq!(
            report.executions,
            trace.execs.len() as u64 + one_shots,
            "{name}"
        );
        // Detected iterations = total iterations minus the undetected
        // first iteration of every multi-iteration execution.
        let multi = trace.execs.len() as u64;
        assert_eq!(
            trace.detected_iterations(),
            report.iterations - one_shots - multi,
            "{name}"
        );
    }
}

#[test]
fn table_hit_sims_are_bounded_by_unbounded_tables() {
    let (events, _) = run_workload("gcc");
    for kind in [TableKind::Let, TableKind::Lit] {
        let mut best = TableHitSim::unbounded(kind);
        best.observe_all(&events);
        for entries in [2usize, 8] {
            let mut sim = TableHitSim::new(kind, entries);
            sim.observe_all(&events);
            assert!(
                sim.ratio().percent() <= best.ratio().percent() + 1e-9,
                "{kind:?}[{entries}] beats unbounded"
            );
        }
    }
}

#[test]
fn dataspec_profile_is_sane_on_a_workload() {
    let w = workload_by_name("m88ksim").unwrap();
    let program = w.build(Scale::Test).unwrap();
    let mut prof = DataSpecProfiler::new();
    Cpu::new()
        .run(&program, &mut prof, RunLimits::default())
        .unwrap();
    let r = prof.report();
    assert!(r.iterations > 100);
    for v in [
        r.same_path_percent,
        r.lr_pred_percent,
        r.lm_pred_percent,
        r.all_lr_percent,
        r.all_lm_percent,
        r.all_data_percent,
    ] {
        assert!((0.0..=100.0).contains(&v), "{r:?}");
    }
    // all-data is the conjunction: can't beat its components.
    assert!(r.all_data_percent <= r.all_lr_percent + 1e-9);
    assert!(r.all_data_percent <= r.all_lm_percent + 1e-9);
}

#[test]
fn overlapped_loops_are_tracked() {
    // Hand-assembled overlapped loops (paper Figure 2c/2d):
    // T1 < T2 <= B1 < B2. Flow: run [T1,B1] twice, fall through into
    // [T2,B2] twice, exit.
    use loopspec::asm::Assembler;
    use loopspec::isa::Instruction;

    let mut a = Assembler::new();
    let (x, y) = (Reg::R8, Reg::R9);
    a.emit(Instruction::LoadImm { rd: x, imm: 2 }); // loop-1 counter
    a.emit(Instruction::LoadImm { rd: y, imm: 2 }); // loop-2 counter
    let t1 = a.label_here();
    a.emit(Instruction::AluImm {
        op: AluOp::Add,
        rd: x,
        ra: x,
        imm: -1,
    });
    let t2 = a.label_here();
    a.emit(Instruction::Nop);
    a.branch(Cond::GtS, x, Reg::R0, t1); // B1: closes loop 1
    a.emit(Instruction::AluImm {
        op: AluOp::Add,
        rd: y,
        ra: y,
        imm: -1,
    });
    a.branch(Cond::GtS, y, Reg::R0, t2); // B2: closes loop 2
    a.emit(Instruction::Halt);
    let program = a.finish().unwrap();

    let mut c = EventCollector::default();
    Cpu::new()
        .run(&program, &mut c, RunLimits::default())
        .unwrap();
    let (events, _) = c.into_parts();
    check_event_stream(&events);
    let starts: Vec<LoopId> = events
        .iter()
        .filter_map(|e| match e {
            LoopEvent::ExecutionStart { loop_id, .. } => Some(*loop_id),
            _ => None,
        })
        .collect();
    // Both loops detected; loop 2's first iteration overlaps loop 1's
    // last (they coexist on the CLS).
    assert_eq!(starts.len(), 2, "{events:?}");
}
