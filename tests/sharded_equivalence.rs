//! The sharded-replay acceptance criterion: splitting one workload
//! trace into K contiguous, checkpoint-linked shards (each shard a
//! fresh process-shaped worker: new sinks, state restored from
//! serialized snapshot bytes) must produce **bit-identical** policy
//! reports and event streams to the single-pass `Session`, for
//! K ∈ {2, 4, 8}, on all 18 workloads.

use loopspec::prelude::*;

/// The policy lanes every comparison checks: one per policy family.
fn make_grid() -> EngineGrid {
    let mut g = EngineGrid::new();
    g.push_idle(4);
    g.push_str(4);
    g.push_str_nested(3, 4);
    g
}

struct Sinks {
    events: EventCollector,
    grid: EngineGrid,
}

impl Sinks {
    fn new() -> Self {
        Sinks {
            events: EventCollector::default(),
            grid: make_grid(),
        }
    }
}

impl LoopEventSink for Sinks {
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        self.events.on_loop_event(ev);
        self.grid.on_loop_event(ev);
    }

    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        self.events.on_loop_events(events);
        self.grid.on_loop_events(events);
    }

    fn on_stream_end(&mut self, instructions: u64) {
        self.events.on_stream_end(instructions);
        self.grid.on_stream_end(instructions);
    }
}

impl SnapshotState for Sinks {
    fn save_state(&self, out: &mut loopspec::core::snap::Enc) {
        self.events.save_state(out);
        self.grid.save_state(out);
    }

    fn load_state(
        &mut self,
        src: &mut loopspec::core::snap::Dec<'_>,
    ) -> Result<(), loopspec::core::snap::SnapError> {
        self.events.load_state(src)?;
        self.grid.load_state(src)
    }
}

fn check_workload(name: &str) {
    let w = workload_by_name(name).expect("workload exists");
    let program = w.build(Scale::Test).expect("assembles");

    // Reference: one uninterrupted streaming pass.
    let mut reference = Sinks::new();
    let mut session = Session::new();
    session.observe_checkpointable(&mut reference);
    let single = session.run(&program, RunLimits::default()).expect("runs");
    assert!(single.halted(), "{name} must halt");

    for shards in [2usize, 4, 8] {
        let out = ShardedRun::new(shards)
            .run(
                &program,
                RunLimits::with_fuel(single.instructions),
                Sinks::new,
            )
            .unwrap_or_else(|e| panic!("{name} K={shards}: {e}"));
        assert_eq!(
            out.summary.instructions, single.instructions,
            "{name} K={shards}: instruction count"
        );
        assert_eq!(
            out.sink.grid.reports(),
            reference.grid.reports(),
            "{name} K={shards}: policy reports must be bit-identical"
        );
        assert_eq!(
            out.sink.events.events(),
            reference.events.events(),
            "{name} K={shards}: event stream must be bit-identical"
        );
        assert_eq!(out.shards_run, shards, "{name} K={shards}: all shards ran");
        assert!(
            out.handoff_bytes > 0,
            "{name} K={shards}: snapshots crossed"
        );
    }
}

#[test]
fn sharded_replay_matches_single_pass_on_all_workloads() {
    for w in all_workloads() {
        check_workload(w.name);
    }
}

#[test]
fn worker_thread_handoff_matches_in_thread_sharding() {
    // The pipeline-style worker handoff (snapshot bytes through
    // channels) is the same computation as the in-thread loop.
    for name in ["compress", "li"] {
        let w = workload_by_name(name).unwrap();
        let program = w.build(Scale::Test).unwrap();
        let n = {
            let mut probe = loopspec_core::CountingSink::default();
            let mut session = Session::new();
            session.observe_loops(&mut probe);
            session
                .run(&program, RunLimits::default())
                .unwrap()
                .instructions
        };
        let seq = ShardedRun::new(4)
            .run(&program, RunLimits::with_fuel(n), Sinks::new)
            .unwrap();
        let par = ShardedRun::new(4)
            .run_on_workers(&program, RunLimits::with_fuel(n), Sinks::new)
            .unwrap();
        assert_eq!(seq.sink.grid.reports(), par.sink.grid.reports(), "{name}");
        assert_eq!(seq.handoff_bytes, par.handoff_bytes, "{name}");
    }
}
