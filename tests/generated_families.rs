//! Seeded scenario families, cross-checked over every execution path.
//!
//! Each family × seed pair is pushed through the full differential
//! harness in `loopspec-gen`: legacy interpreter vs pre-decoded
//! front-end (including resume across arbitrary fuel cuts), batch
//! engines vs the streaming session vs K-sharded runs, with reports
//! required to be byte-identical everywhere. These are the fixed seeds
//! CI pins; `genfuzz` sweeps wider ranges of the same corpus.

use loopspec::gen::{families, family_by_name, harness, ReplayToken};
use loopspec::prelude::*;

/// The fixed seed set every family must pass. Deliberately includes
/// "ugly" seeds (large, bit-dense) alongside the small ones the corpus
/// runner defaults to.
const SEEDS: [u64; 5] = [0, 1, 2, 0xDEAD_BEEF, u64::MAX / 7];

#[test]
fn every_family_passes_the_differential_harness_on_fixed_seeds() {
    for family in families() {
        for &seed in &SEEDS {
            let check = harness::check_program(family, seed, 1).unwrap_or_else(|f| panic!("{f}"));
            assert!(
                check.instructions > 0,
                "{}:{seed}: empty program",
                family.name
            );
        }
    }
}

#[test]
fn family_registry_is_complete_and_stable() {
    assert!(
        families().len() >= 5,
        "the paper's fig6 sweep needs at least five loop-shape families"
    );
    let mut names: Vec<_> = families().iter().map(|f| f.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), families().len(), "duplicate family names");
    for f in families() {
        assert!(family_by_name(f.name).is_some());
        // Same (seed, size) must always yield the same program.
        let a = f.generate(7, 1);
        let b = f.generate(7, 1);
        assert_eq!(a.stmt_count(), b.stmt_count());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{} not seeded", f.name);
        // Different seeds should not collapse to one program.
        let c = f.generate(8, 1);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "{} ignores its seed",
            f.name
        );
    }
}

#[test]
fn families_exercise_distinct_loop_shapes() {
    // The corpus only earns its keep if the families genuinely differ:
    // every family must produce loop events, and the per-family event
    // streams must not all look alike.
    let mut signatures = Vec::new();
    for family in families() {
        let check = harness::check_program(family, 0, 1).unwrap_or_else(|f| panic!("{f}"));
        signatures.push((family.name, check.instructions, check.loop_events));
    }
    let with_loops = signatures.iter().filter(|(_, _, ev)| *ev > 0).count();
    assert!(
        with_loops >= 5,
        "families without loop events: {signatures:?}"
    );
    let mut counts: Vec<_> = signatures.iter().map(|(_, n, _)| *n).collect();
    counts.sort_unstable();
    counts.dedup();
    assert!(
        counts.len() >= 4,
        "instruction counts suspiciously uniform: {signatures:?}"
    );
}

#[test]
fn corpus_runner_reports_per_family() {
    let reports = harness::run_corpus(2, 1);
    assert_eq!(reports.len(), families().len());
    for r in &reports {
        assert!(r.ok(), "{}: {:?}", r.family, r.failures);
        assert_eq!(r.seeds, 2);
        assert_eq!(r.passed, 2);
        assert!(r.instructions > 0);
    }
}

#[test]
fn harness_failures_print_a_parsable_replay_line() {
    // Failing-seed ergonomics: whatever a harness failure prints must
    // round-trip through the shared replay-line parser, so a captured
    // panic or CI log can always be turned back into `genfuzz --replay`.
    let failure = harness::Failure {
        family: "dispatch".to_string(),
        seed: 0xDEAD_BEEF,
        what: "sharded K=4 report diverged from single pass".to_string(),
    };
    let printed = failure.to_string();
    assert!(
        printed.contains("genfuzz --replay dispatch:3735928559"),
        "failure text lost its reproduction line: {printed}"
    );
    let (family, seed) =
        loopspec_testutil::parse_replay_line(&printed).expect("replay line parses back");
    assert_eq!(family, "dispatch");
    assert_eq!(seed, 0xDEAD_BEEF);
    // And the parsed pair addresses a real family + program.
    let token: ReplayToken = format!("{family}:{seed}").parse().unwrap();
    assert!(token.program(1).is_some());
}

#[test]
fn replay_tokens_round_trip_through_workload_names() {
    for family in families() {
        for &seed in &SEEDS {
            let name = loopspec::workloads::families::name_of(family.name, seed);
            assert!(known_name(&name), "{name} not admitted");
            let token: ReplayToken = name.parse().unwrap();
            assert_eq!(token.family, family.name);
            assert_eq!(token.seed, seed);
            // The name builds the exact program the harness checked.
            let via_name = build_named(&name, Scale::Test)
                .expect("gen name resolves")
                .expect("gen name compiles");
            let direct = compile_ast(&family.generate(seed, Scale::Test.factor() as u32)).unwrap();
            assert_eq!(via_name, direct, "{name}: name path diverges");
        }
    }
}
