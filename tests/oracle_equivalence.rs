//! The two-phase streaming oracle acceptance criterion: Figure 5 rows
//! and oracle lane reports must be **bit-identical** between the legacy
//! materialized path (`AnnotatedTrace` + batch `Engine`) and the
//! two-phase streaming path (phase 1: `IterationCountLog` in the normal
//! fan-out; phase 2: oracle lanes fed the recorded counts) — on all 18
//! workloads, through checkpoints cutting mid-chunk through an oracle
//! lane, and across a sharded (K=4) replay.

use loopspec::prelude::*;
use loopspec_testutil::Rng;

/// Figure 5's "reduced part" fraction (mirrors
/// `loopspec_bench::experiments::FIG5_PREFIX_FRACTION`; the bench crate
/// is not a dependency of the root tests).
const FIG5_PREFIX_FRACTION: f64 = 0.25;

/// One CPU pass over `name`: the event stream, the instruction count,
/// and the phase-1 count-log feed recorded live in the session fan-out.
fn run_phase1(name: &str) -> (Program, Vec<LoopEvent>, u64, OracleFeed) {
    let w = workload_by_name(name).expect("workload exists");
    let program = w.build(Scale::Test).expect("assembles");
    let mut collector = EventCollector::default();
    let mut log = IterationCountLog::new();
    let mut session = Session::new();
    session
        .observe_loops(&mut collector)
        .observe_loops(&mut log);
    let out = session
        .run(&program, RunLimits::default())
        .expect("workload runs");
    assert!(out.halted(), "{name} must halt");
    let (events, n) = collector.into_parts();
    (program, events, n, log.into_feed())
}

/// The event prefix the Figure 5 "reduced part" studies, plus its cut
/// — through the same [`prefix_split`] the figure harness uses, so the
/// cut rule cannot diverge between them.
fn fig5_prefix(events: &[LoopEvent], instructions: u64) -> (usize, u64) {
    prefix_split(events, instructions, FIG5_PREFIX_FRACTION)
}

#[test]
fn fig5_rows_bit_identical_on_all_18_workloads() {
    for w in all_workloads() {
        let (_, events, n, feed) = run_phase1(w.name);

        // Legacy: materialize the trace, replay the batch oracle.
        let trace = AnnotatedTrace::build(&events, n);
        let legacy_all = ideal_tpc(&trace);
        let (split, cut) = fig5_prefix(&events, n);
        let legacy_prefix = ideal_tpc(&AnnotatedTrace::build(&events[..split], cut));

        // Two-phase: the session-recorded feed drives the full run; the
        // prefix is its own two-phase run over the event prefix.
        let streaming_all = ideal_tpc_with_feed(&events, n, &feed);
        let streaming_prefix = ideal_tpc_streaming(&events[..split], cut);

        assert_eq!(streaming_all, legacy_all, "{}: full-run row", w.name);
        assert_eq!(streaming_prefix, legacy_prefix, "{}: prefix row", w.name);
    }
}

#[test]
fn oracle_lane_reports_bit_identical_on_all_18_workloads() {
    for w in all_workloads() {
        let (_, events, n, feed) = run_phase1(w.name);
        let trace = AnnotatedTrace::build(&events, n);

        // Bounded and unbounded oracle lanes in an EngineGrid, beside a
        // history lane, all over one phase-2 pass.
        let mut grid = EngineGrid::new();
        let o4 = grid.push_oracle(4, feed.clone());
        let ideal = grid.push_oracle_unbounded(feed.clone());
        let str4 = grid.push_str(4);
        grid.on_loop_events(&events);
        grid.on_stream_end(n);
        assert_eq!(
            grid.report(o4).unwrap(),
            &Engine::new(&trace, OraclePolicy::new(), 4).run(),
            "{}: grid ORACLE@4",
            w.name
        );
        assert_eq!(
            grid.report(ideal).unwrap(),
            &Engine::unbounded(&trace, OraclePolicy::new()).run(),
            "{}: grid unbounded oracle",
            w.name
        );
        assert_eq!(
            grid.report(str4).unwrap(),
            &Engine::new(&trace, StrPolicy::new(), 4).run(),
            "{}: STR lane beside oracle lanes",
            w.name
        );

        // A standalone StreamEngine oracle lane agrees too.
        let mut engine =
            StreamEngine::with_feed(OraclePolicy::new(), 8, feed).expect("valid TU count");
        engine.on_loop_events(&events);
        engine.on_stream_end(n);
        assert_eq!(
            engine.report().unwrap(),
            &Engine::new(&trace, OraclePolicy::new(), 8).run(),
            "{}: StreamEngine ORACLE@8",
            w.name
        );
    }
}

/// Phase 2 as a *session* over the program: checkpoint at an arbitrary
/// (often mid-chunk) boundary, serialize, resume into a fresh oracle
/// lane built with the same feed, finish — the report must equal an
/// uninterrupted phase 2.
#[test]
fn checkpoint_resume_cuts_mid_chunk_through_an_oracle_lane() {
    let mut rng = Rng::new(0x0_0ac1e ^ 0xD15C0);
    for name in ["compress", "li", "swim"] {
        let (program, _, n, feed) = run_phase1(name);

        // Uninterrupted phase 2 over a re-execution of the program.
        let mut reference =
            StreamEngine::with_feed(OraclePolicy::new(), 4, feed.clone()).expect("valid");
        let mut session = Session::new();
        session.observe_checkpointable(&mut reference);
        let single = session
            .run(&program, RunLimits::default())
            .expect("phase 2 runs");
        assert_eq!(single.instructions, n);

        for _ in 0..4 {
            // Odd cuts land inside the detector's 256-event chunk with
            // high probability; the buffered events travel with the
            // snapshot.
            let cut = rng.range(1, n.max(2));
            let mut first = StreamEngine::with_feed(OraclePolicy::new(), 4, feed.clone()).unwrap();
            let mut session_a = Session::new();
            session_a.observe_checkpointable(&mut first);
            let s = session_a
                .advance(&program, RunLimits::with_fuel(cut))
                .expect("first segment");
            if s.halted() {
                continue; // cut landed at the very end; nothing to resume
            }
            let bytes = session_a.checkpoint().expect("checkpointable").to_bytes();

            let mut second = StreamEngine::with_feed(OraclePolicy::new(), 4, feed.clone()).unwrap();
            let mut session_b = Session::new();
            session_b.observe_checkpointable(&mut second);
            session_b
                .resume(&Snapshot::from_bytes(&bytes).expect("container decodes"))
                .expect("resumes");
            let out = session_b
                .advance(&program, RunLimits::default())
                .expect("second segment");
            assert!(out.halted(), "{name}: resumed run must finish");
            assert_eq!(
                second.report(),
                reference.report(),
                "{name}: oracle lane resumed at {cut} diverged"
            );
        }
    }
}

/// Phase 2 split into K=4 snapshot-linked shards must merge to the same
/// oracle report as one uninterrupted pass; phase 1 itself (the count
/// log) shards the same way.
#[test]
fn sharded_oracle_run_matches_single_pass() {
    for name in ["compress", "go"] {
        let (program, _, n, feed) = run_phase1(name);

        // Reference phase 2: one pass, one oracle grid.
        let make_grid = {
            let feed = feed.clone();
            move || {
                let mut g = EngineGrid::new();
                g.push_oracle(4, feed.clone());
                g.push_oracle_unbounded(feed.clone());
                g.push_str(4);
                g
            }
        };
        let mut reference = make_grid();
        let mut session = Session::new();
        session.observe_checkpointable(&mut reference);
        let single = session
            .run(&program, RunLimits::default())
            .expect("phase 2 runs");
        assert_eq!(single.instructions, n);

        let out = ShardedRun::new(4)
            .run(&program, RunLimits::with_fuel(n), make_grid)
            .expect("sharded phase 2 runs");
        assert_eq!(out.shards_run, 4, "{name}: all shards executed");
        assert_eq!(
            out.sink.reports(),
            reference.reports(),
            "{name}: sharded oracle grid diverged"
        );

        // Phase 1 shards too: a sharded count log records the same
        // future as the single-pass one.
        let sharded_log = ShardedRun::new(4)
            .run(&program, RunLimits::with_fuel(n), IterationCountLog::new)
            .expect("sharded phase 1 runs");
        assert_eq!(
            sharded_log.sink.into_feed().fingerprint(),
            feed.fingerprint(),
            "{name}: sharded count log diverged"
        );
    }
}
