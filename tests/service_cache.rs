//! The replay-service cache acceptance criterion: for **every** one of
//! the 18 workloads, a repeated submission must be answered from the
//! content-addressed cache, and the cached report must be
//! **byte-identical** — lane reports and serialized sink state — both
//! to the fresh service computation and to a single-pass in-process
//! `Session` over the same spec. The cache must also degrade safely:
//! entries evicted under capacity pressure recompute (still
//! byte-identical), and a corrupted entry is detected by its seal,
//! evicted, and recomputed — never served.
//!
//! The worker processes are the `svc_run` binary in `--worker` mode
//! (`CARGO_BIN_EXE_svc_run`), so this suite exercises the production
//! path: process spawn, stdio pipe transport, frame protocol, snapshot
//! chaining.

use std::process::Command;

use loopspec::dist::{single_pass_outcome, JobSpec, Policy, Report};
use loopspec::prelude::*;

/// Fixed fuel per shard — small enough that every workload crosses
/// several snapshot boundaries at `Scale::Test`.
const SHARD_FUEL: u64 = 30_000;

/// One policy per family (the full 20-lane grid is priced by the
/// bench; cache correctness only needs coverage).
fn spec_for(name: &str) -> JobSpec {
    JobSpec::new(name)
        .policies([Policy::Idle, Policy::Str, Policy::StrNested { limit: 3 }])
        .tus([4])
        .plan(Plan::sliced(SHARD_FUEL))
}

/// A worker-process command for the real `svc_run` binary.
fn worker_command() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_svc_run"));
    cmd.arg("--worker");
    cmd
}

fn service(workers: usize, cache_capacity: usize) -> Service {
    Service::spawn_with(
        SvcConfig {
            workers,
            cache_capacity,
            ..SvcConfig::default()
        },
        |_| worker_command(),
    )
    .expect("workers spawn")
}

/// The report must match the single-pass in-process reference byte for
/// byte: instruction count, every lane report, and the full serialized
/// sink state.
fn assert_matches_reference(report: &Report, spec: &JobSpec, ctx: &str) {
    let r = single_pass_outcome(
        &spec.workload,
        spec.scale,
        &spec.lane_specs(),
        spec.total_fuel,
    )
    .expect("reference run succeeds");
    assert_eq!(
        report.instructions, r.instructions,
        "{ctx}: {} instruction count",
        spec.workload
    );
    assert_eq!(
        report.lanes, r.lanes,
        "{ctx}: {} lane reports must be byte-identical",
        spec.workload
    );
    assert_eq!(
        report.state, r.state,
        "{ctx}: {} serialized sink state must be byte-identical",
        spec.workload
    );
}

#[test]
fn every_workload_caches_and_stays_byte_identical() {
    let service = service(4, 64);
    let client = service.client();
    for w in all_workloads() {
        let spec = spec_for(w.name);
        let fresh = client.run(spec.clone()).expect("fresh run succeeds");
        assert!(!fresh.cached, "{}: first submission computes", w.name);
        let again = client.run(spec.clone()).expect("repeat succeeds");
        assert!(again.cached, "{}: repeat must be a cache hit", w.name);
        assert_eq!(
            fresh.report, again.report,
            "{}: cached report must equal the fresh one byte for byte",
            w.name
        );
        assert_matches_reference(&fresh.report, &spec, "fresh");
        assert_matches_reference(&again.report, &spec, "cached");
    }
    let stats = service.stats();
    let n = all_workloads().len() as u64;
    assert_eq!(stats.cache_hits, n, "one hit per workload");
    assert_eq!(stats.cache_misses, n, "one miss per workload");
    assert_eq!(stats.evictions, 0, "capacity 64 holds all 18 entries");
    assert_eq!(stats.submitted, 2 * n);
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.failed + stats.in_flight
    );
    service.shutdown();
}

#[test]
fn evicted_entries_recompute_byte_identically() {
    // Capacity 1: B's insertion evicts A, so A's second submission is
    // a miss again — recomputed, not wrongly served from a stale or
    // missing slot — and still byte-identical to its first answer.
    let service = service(2, 1);
    let client = service.client();
    let a = spec_for("compress");
    let b = spec_for("go");

    let a1 = client.run(a.clone()).expect("a computes");
    let b1 = client.run(b.clone()).expect("b computes, evicting a");
    let a2 = client.run(a.clone()).expect("a recomputes");
    assert!(!a2.cached, "a was evicted and must recompute");
    assert_eq!(a1.report, a2.report, "recomputed a is byte-identical");
    let b2 = client.run(b.clone()).expect("b recomputes");
    assert!(!b2.cached, "a's recompute evicted b in turn");
    assert_eq!(b1.report, b2.report, "recomputed b is byte-identical");

    let stats = service.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 4);
    assert!(stats.evictions >= 2, "capacity pressure evicted twice");
    service.shutdown();
}

#[test]
fn corrupted_cache_entries_are_evicted_and_recomputed() {
    let service = service(2, 64);
    let client = service.client();
    let spec = spec_for("li");

    let fresh = client.run(spec.clone()).expect("computes");
    assert!(!fresh.cached);
    assert!(
        service.corrupt_cache_entry(spec.fingerprint()),
        "the entry exists to be corrupted"
    );
    let again = client.run(spec.clone()).expect("recomputes");
    assert!(!again.cached, "the seal must reject the corrupted entry");
    assert_eq!(
        fresh.report, again.report,
        "recomputed report is byte-identical"
    );
    assert_matches_reference(&again.report, &spec, "recomputed");

    // The recompute repopulated the cache; the third query hits.
    let third = client.run(spec.clone()).expect("hits");
    assert!(third.cached, "the repaired entry serves again");
    assert_eq!(fresh.report, third.report);

    let stats = service.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    assert!(stats.evictions >= 1, "corruption counts as an eviction");
    service.shutdown();
}
