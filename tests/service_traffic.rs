//! The multi-tenant acceptance criterion: 3 concurrent clients
//! submitting 12 jobs each (36 submissions over 6 distinct specs)
//! against one persistent service must yield, for every spec, at least
//! one answer straight from the content-addressed cache, with **every**
//! report — fresh, coalesced, or cached — byte-identical to a
//! single-pass in-process reference, and with the metrics invariants
//! (`submitted == accepted + rejected`,
//! `accepted == completed + failed + in_flight`) holding at the end.
//! The same bar must hold with a worker rigged to die mid-run: the
//! scheduler requeues from the last good snapshot, respawns under the
//! pool budget, and no client observes the loss.
//!
//! The worker processes are the `svc_run` binary in `--worker` mode
//! (`CARGO_BIN_EXE_svc_run`) — the production path end to end.

use std::collections::HashMap;
use std::process::Command;

use loopspec::dist::worker::CRASH_AFTER_ENV;
use loopspec::dist::{single_pass_outcome, JobSpec, Policy, Report, WorkloadOutcome};
use loopspec::prelude::*;

const CLIENTS: usize = 3;
const JOBS_PER_CLIENT: usize = 12;
const WORKERS: usize = 4;

/// Fixed fuel per shard — small enough that every workload crosses
/// several snapshot boundaries at `Scale::Test`.
const SHARD_FUEL: u64 = 30_000;

/// The 6 distinct specs of the traffic mix. 36 submissions over 6
/// specs guarantee every spec repeats across clients.
fn specs() -> Vec<JobSpec> {
    ["compress", "go", "li", "ijpeg", "perl", "vortex"]
        .iter()
        .map(|w| {
            JobSpec::new(*w)
                .policies([Policy::Idle, Policy::Str, Policy::StrNested { limit: 3 }])
                .tus([4])
                .plan(Plan::sliced(SHARD_FUEL))
        })
        .collect()
}

fn worker_command() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_svc_run"));
    cmd.arg("--worker");
    cmd
}

/// Single-pass in-process references, one per spec, keyed by workload.
fn references(specs: &[JobSpec]) -> HashMap<String, WorkloadOutcome> {
    specs
        .iter()
        .map(|s| {
            let r = single_pass_outcome(&s.workload, s.scale, &s.lane_specs(), s.total_fuel)
                .expect("reference run succeeds");
            (s.workload.clone(), r)
        })
        .collect()
}

fn assert_matches_reference(report: &Report, reference: &WorkloadOutcome, ctx: &str) {
    assert_eq!(
        report.instructions, reference.instructions,
        "{ctx}: instruction count"
    );
    assert_eq!(report.lanes, reference.lanes, "{ctx}: lane reports");
    assert_eq!(
        report.state, reference.state,
        "{ctx}: serialized sink state"
    );
}

/// Drives the full mixed-traffic scenario against `service` and checks
/// every acceptance clause. Consumes and shuts the service down,
/// returning the final stats snapshot.
fn run_mixed_traffic(service: Service, ctx: &str) -> SvcStats {
    let specs = specs();
    let references = references(&specs);

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = service.client();
            let specs = specs.clone();
            std::thread::spawn(move || {
                let mut answers = Vec::with_capacity(JOBS_PER_CLIENT);
                for j in 0..JOBS_PER_CLIENT {
                    let spec = specs[(c + j) % specs.len()].clone();
                    let completion = client
                        .run(spec.clone())
                        .unwrap_or_else(|e| panic!("client {c} job {j}: {e}"));
                    answers.push((spec.workload.clone(), completion));
                }
                answers
            })
        })
        .collect();

    let mut per_spec_hits: HashMap<String, u64> = HashMap::new();
    let mut completions = 0u64;
    for handle in handles {
        for (workload, completion) in handle.join().expect("client thread") {
            completions += 1;
            if completion.cached {
                *per_spec_hits.entry(workload.clone()).or_default() += 1;
            }
            assert_matches_reference(
                &completion.report,
                &references[&workload],
                &format!("{ctx}: {workload}"),
            );
        }
    }
    assert_eq!(completions, (CLIENTS * JOBS_PER_CLIENT) as u64, "{ctx}");

    // The concurrent phase may coalesce instead of hitting; one more
    // sequential round against the now-warm cache must be pure hits —
    // at least one per repeated spec, deterministically.
    let client = service.client();
    for spec in &specs {
        let completion = client.run(spec.clone()).expect("warm query succeeds");
        assert!(
            completion.cached,
            "{ctx}: {} must be answered from the cache",
            spec.workload
        );
        *per_spec_hits.entry(spec.workload.clone()).or_default() += 1;
        assert_matches_reference(
            &completion.report,
            &references[&spec.workload],
            &format!("{ctx}: {} warm", spec.workload),
        );
    }
    for spec in &specs {
        assert!(
            per_spec_hits.get(&spec.workload).copied().unwrap_or(0) >= 1,
            "{ctx}: {} repeated but never hit the cache",
            spec.workload
        );
    }

    let stats = service.stats();
    let total = (CLIENTS * JOBS_PER_CLIENT + specs.len()) as u64;
    assert_eq!(stats.submitted, total, "{ctx}");
    assert_eq!(stats.rejected, 0, "{ctx}: queue 64 never pushes back");
    assert_eq!(stats.failed, 0, "{ctx}: every job answered");
    assert_eq!(stats.in_flight, 0, "{ctx}: nothing left running");
    assert_eq!(stats.queue_depth, 0, "{ctx}");
    assert_eq!(stats.submitted, stats.accepted + stats.rejected, "{ctx}");
    assert_eq!(
        stats.accepted,
        stats.completed + stats.failed + stats.in_flight,
        "{ctx}"
    );
    assert_eq!(
        stats.cache_hits + stats.cache_misses + stats.coalesced,
        total,
        "{ctx}: every submission is a hit, a miss, or a coalesce"
    );
    assert_eq!(
        stats.cache_misses,
        specs.len() as u64,
        "{ctx}: each distinct spec computes exactly once"
    );
    assert!(
        stats.cache_hits >= specs.len() as u64,
        "{ctx}: at least the warm round hit"
    );
    service.shutdown();
    stats
}

#[test]
fn mixed_traffic_is_cached_coalesced_and_byte_identical() {
    let service = Service::spawn_with(
        SvcConfig {
            workers: WORKERS,
            ..SvcConfig::default()
        },
        |_| worker_command(),
    )
    .expect("workers spawn");
    let stats = run_mixed_traffic(service, "healthy pool");
    assert_eq!(stats.workers_lost, 0, "no worker should die");
    assert_eq!(stats.workers_respawned, 0);
}

#[test]
fn mixed_traffic_survives_a_worker_killed_mid_run() {
    // Worker 0 vanishes (no reply, exit 3) on its 3rd job — after real
    // work has flowed through it. The scheduler must requeue its
    // in-flight job from the last good snapshot and respawn a
    // replacement (which gets a fresh slot index, so it is NOT
    // re-rigged); clients see completed, byte-identical answers and
    // the metrics still balance.
    let service = Service::spawn_with(
        SvcConfig {
            workers: WORKERS,
            ..SvcConfig::default()
        },
        |i| {
            let mut cmd = worker_command();
            if i == 0 {
                cmd.env(CRASH_AFTER_ENV, "2");
            }
            cmd
        },
    )
    .expect("workers spawn");
    let probe = service.client();
    let stats = run_mixed_traffic(service, "killed worker");
    assert_eq!(stats.workers_lost, 1, "exactly the rigged worker died");
    assert_eq!(stats.workers_respawned, 1, "the pool was replenished");
    // The service is gone; the stats query through a stale client
    // proves disconnection is an error, not a hang.
    assert!(
        probe.stats().is_err(),
        "clients outliving the service error"
    );
}
