//! # loopspec — dynamic loop detection and thread-level control speculation
//!
//! A from-scratch Rust reproduction of **Tubella & González, “Control
//! Speculation in Multithreaded Processors through Dynamic Loop
//! Detection” (HPCA 1998)**: a hardware mechanism that discovers loops in
//! the committed instruction stream (no compiler/ISA support), gathers
//! per-loop history in small associative tables, and uses it to run
//! *future loop iterations* speculatively on idle thread units.
//!
//! This facade re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`isa`] | `loopspec-isa` | The SLA RISC instruction set |
//! | [`asm`] | `loopspec-asm` | Assembler + structured program builder |
//! | [`cpu`] | `loopspec-cpu` | Functional simulator with ATOM-style tracing |
//! | [`core`] | `loopspec-core` | CLS loop detector, LET/LIT tables, statistics |
//! | [`mt`] | `loopspec-mt` | Thread-speculation engine (TPC, IDLE/STR/STR(i)) |
//! | [`dataspec`] | `loopspec-dataspec` | Live-in value predictability (paper §4) |
//! | [`workloads`] | `loopspec-workloads` | 18 SPEC95-shaped synthetic programs |
//!
//! ## Quickstart
//!
//! ```
//! use loopspec::prelude::*;
//!
//! // 1. Write a program (or pick a workload from `loopspec::workloads`).
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(100, |b, _i| b.work(20));
//! let program = b.finish()?;
//!
//! // 2. Run it once, detecting loops on the fly.
//! let mut collector = EventCollector::default();
//! Cpu::new().run(&program, &mut collector, RunLimits::default())?;
//! let (events, instructions) = collector.into_parts();
//!
//! // 3. Ask the speculation engine what a 4-context machine gets.
//! let trace = AnnotatedTrace::build(&events, instructions);
//! let report = Engine::new(&trace, StrPolicy::new(), 4).run();
//! assert!(report.tpc() > 2.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-vs-measured results; `cargo run --release -p loopspec-bench
//! --bin repro -- all` regenerates every table and figure.

#![deny(missing_docs)]

pub use loopspec_asm as asm;
pub use loopspec_core as core;
pub use loopspec_cpu as cpu;
pub use loopspec_dataspec as dataspec;
pub use loopspec_isa as isa;
pub use loopspec_mt as mt;
pub use loopspec_workloads as workloads;

/// The most common types, importable in one line.
pub mod prelude {
    pub use loopspec_asm::{Operand, Program, ProgramBuilder};
    pub use loopspec_core::{
        Cls, EventCollector, LoopDetector, LoopEvent, LoopId, LoopStats, TableHitSim, TableKind,
    };
    pub use loopspec_cpu::{Cpu, InstrEvent, RunLimits, Tracer};
    pub use loopspec_dataspec::DataSpecProfiler;
    pub use loopspec_isa::{Addr, AluOp, Cond, Instruction, Reg};
    pub use loopspec_mt::{
        ideal_tpc, AnnotatedTrace, Engine, IdlePolicy, StrNestedPolicy, StrPolicy,
    };
    pub use loopspec_workloads::{all as all_workloads, by_name as workload_by_name, Scale};
}
