//! # loopspec — dynamic loop detection and thread-level control speculation
//!
//! A from-scratch Rust reproduction of **Tubella & González, "Control
//! Speculation in Multithreaded Processors through Dynamic Loop
//! Detection" (HPCA 1998)**: a hardware mechanism that discovers loops in
//! the committed instruction stream (no compiler/ISA support), gathers
//! per-loop history in small associative tables, and uses it to run
//! *future loop iterations* speculatively on idle thread units.
//!
//! This facade re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`isa`] | `loopspec-isa` | The SLA RISC instruction set |
//! | [`asm`] | `loopspec-asm` | Assembler + structured program builder |
//! | [`cpu`] | `loopspec-cpu` | Functional simulator with ATOM-style tracing |
//! | [`core`] | `loopspec-core` | CLS loop detector, LET/LIT tables, statistics |
//! | [`mt`] | `loopspec-mt` | Thread-speculation engine (TPC, IDLE/STR/STR(i)) |
//! | [`dataspec`] | `loopspec-dataspec` | Live-in value predictability (paper §4) |
//! | [`obs`] | `loopspec-obs` | Out-of-band telemetry: metric registry, spans, event journal |
//! | [`pipeline`] | `loopspec-pipeline` | Single-pass streaming `Session` |
//! | [`dist`] | `loopspec-dist` | Multi-process distributed replay (coordinator/workers) |
//! | [`svc`] | `loopspec-svc` | Persistent replay service with a content-addressed report cache |
//! | [`gen`] | `loopspec-gen` | Structured-program compiler, seeded scenario families, differential harness |
//! | [`workloads`] | `loopspec-workloads` | 18 SPEC95-shaped synthetic programs + `gen:` scenario names |
//!
//! Failures from any layer unify into [`enum@Error`], so application
//! code can `?` across assembler, CPU, session, wire, distributed and
//! service calls with one error type.
//!
//! ## Quickstart
//!
//! One pass over the program drives detection, statistics and the
//! speculation engine simultaneously — the streaming pipeline mirrors
//! the paper's hardware, where everything watches the commit stream
//! live:
//!
//! ```
//! use loopspec::prelude::*;
//!
//! // 1. Write a program (or pick a workload from `loopspec::workloads`).
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(100, |b, _i| b.work(20));
//! let program = b.finish()?;
//!
//! // 2. Run it once; every analysis taps the same committed stream.
//! let mut engine = StreamEngine::new(StrPolicy::new(), 4);
//! let mut stats = LoopStats::new();
//! let mut session = Session::new();
//! session.observe_loops(&mut engine).observe_loops(&mut stats);
//! let out = session.run(&program, RunLimits::default())?;
//!
//! // 3. What does a 4-context machine get?
//! let report = engine.report().expect("stream ended");
//! assert_eq!(report.instructions, out.instructions);
//! assert!(report.tpc() > 2.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The legacy two-pass shape (collect a `Vec<LoopEvent>`, then replay it
//! through [`mt::AnnotatedTrace`] and [`mt::Engine`]) remains available
//! and produces identical reports — it is the cross-check reference the
//! equivalence suites compare against. Oracle studies stream too: a
//! phase-1 [`mt::IterationCountLog`] records per-execution iteration
//! counts, and a second streaming pass replays them into oracle lanes
//! through an [`mt::OracleFeed`] ([`mt::ideal_tpc_streaming`] packages
//! the pair for Figure 5).
//!
//! See `DESIGN.md` at the repository root for the architecture and
//! `cargo run --release -p loopspec-bench --bin repro -- all` to
//! regenerate every table and figure of the paper.

#![deny(missing_docs)]

mod error;

pub use error::Error;

pub use loopspec_asm as asm;
pub use loopspec_core as core;
pub use loopspec_cpu as cpu;
pub use loopspec_dataspec as dataspec;
pub use loopspec_dist as dist;
pub use loopspec_gen as gen;
pub use loopspec_isa as isa;
pub use loopspec_mt as mt;
pub use loopspec_obs as obs;
pub use loopspec_pipeline as pipeline;
pub use loopspec_svc as svc;
pub use loopspec_workloads as workloads;

/// The most common types, importable in one line.
pub mod prelude {
    pub use loopspec_asm::{Operand, Program, ProgramBuilder};
    pub use loopspec_core::{
        Cls, CountingSink, EventCollector, LoopDetector, LoopEvent, LoopEventSink, LoopId,
        LoopStats, TableHitSim, TableKind,
    };
    pub use loopspec_cpu::{Cpu, DecodedProgram, Demand, InstrEvent, RunLimits, Tracer};
    pub use loopspec_dataspec::{DataSpecProfiler, LiveInProfiler};
    pub use loopspec_dist::{
        Coordinator, DistError, DistOutcome, JobSpec, LaneReport, LaneSpec, Policy, SuiteSpec,
        SvcStats, WorkerLink,
    };
    pub use loopspec_gen::{
        arb_program, compile as compile_ast, families, family_by_name, ArbConfig, AstProgram,
        Family, ReplayToken,
    };
    pub use loopspec_isa::{Addr, AluOp, Cond, Instruction, Reg};
    pub use loopspec_mt::{
        ideal_tpc, ideal_tpc_streaming, ideal_tpc_with_feed, prefix_split, AnnotatedTrace,
        AnyStreamEngine, Engine, EngineGrid, EngineReport, EngineSink, IdlePolicy,
        IterationCountLog, OracleFeed, OraclePolicy, StrNestedPolicy, StrPolicy, StreamEngine,
        StreamError,
    };
    pub use loopspec_pipeline::{
        CheckpointSink, Interp, ParallelSinkSet, Plan, Session, SessionSummary, ShardedRun,
        SinkSet, Snapshot, SnapshotState,
    };
    pub use loopspec_svc::{Client, Completion, Service, SvcConfig, SvcError};
    pub use loopspec_workloads::{
        all as all_workloads, build_named, by_name as workload_by_name, known_name, Scale,
    };

    pub use crate::Error;
}
