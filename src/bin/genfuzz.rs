//! `genfuzz` — the differential harness over generated scenario
//! families.
//!
//! ```text
//! genfuzz [--seeds N] [--size S] [--families a,b,..] [--out FILE]
//!         [--skip-service]
//! genfuzz --replay <family>:<seed> [--size S]
//! genfuzz --list
//! genfuzz --worker            # internal: serve dist jobs on stdin/stdout
//! ```
//!
//! Default mode runs the fixed-seed corpus: every registered family ×
//! `--seeds` consecutive seeds through [`loopspec::gen::harness`]
//! (legacy vs decoded CPU, batch vs streaming vs K-sharded engines, all
//! cross-checked bit for bit), printing one row per family. Unless
//! `--skip-service` is given, it then pushes one `gen:<family>:<seed>`
//! job per family through a real multi-process [`Service`] (this binary
//! re-entered with `--worker`) and compares the distributed report
//! against the in-process single-pass reference — the same byte-identity
//! bar the calibrated kernels are held to.
//!
//! Every failure prints a self-contained `genfuzz --replay family:seed`
//! line (also written to `--out`, which CI uploads as an artifact), and
//! the process exits non-zero.

use std::io::Write as _;

use loopspec::dist::{single_pass_outcome, worker, JobSpec, Policy};
use loopspec::gen::{families, family_by_name, harness, FamilyReport, ReplayToken};
use loopspec::obs::{journal, EventKind};
use loopspec::svc::{Service, SvcConfig};

fn usage() -> ! {
    eprintln!(
        "usage: genfuzz [--seeds N] [--size S] [--families a,b,..] [--out FILE] [--skip-service]\n\
         \x20      genfuzz --replay <family>:<seed> [--size S]\n\
         \x20      genfuzz --list"
    );
    std::process::exit(2);
}

fn main() {
    // Spawned service workers re-enter here; this serves and never
    // returns.
    worker::maybe_serve_stdio();

    let mut seeds = 4u64;
    let mut size = 1u32;
    let mut replay: Option<String> = None;
    let mut wanted: Option<Vec<String>> = None;
    let mut out: Option<String> = None;
    let mut skip_service = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--size" => {
                size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .unwrap_or_else(|| usage());
            }
            "--families" => {
                wanted = Some(
                    args.next()
                        .unwrap_or_else(|| usage())
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--replay" => replay = Some(args.next().unwrap_or_else(|| usage())),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--skip-service" => skip_service = true,
            "--list" => {
                for f in families() {
                    println!("{:>10}  {}", f.name, f.description);
                }
                return;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if let Some(token) = replay {
        run_replay(&token, size);
        return;
    }

    let selected: Vec<_> = match &wanted {
        Some(names) => names
            .iter()
            .map(|n| {
                family_by_name(n).copied().unwrap_or_else(|| {
                    eprintln!("genfuzz: unknown family '{n}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => families().to_vec(),
    };

    println!(
        "genfuzz: {} families x {seeds} seeds at size {size}",
        selected.len()
    );
    println!(
        "{:>10} {:>6} {:>6} {:>14} {:>12}",
        "family", "seeds", "pass", "instructions", "loop events"
    );
    let mut reports: Vec<FamilyReport> = Vec::new();
    for f in &selected {
        let r = harness::run_family(f, seeds, size);
        println!(
            "{:>10} {:>6} {:>6} {:>14} {:>12}",
            r.family, r.seeds, r.passed, r.instructions, r.loop_events
        );
        // Stamp the sweep outcome into the event journal so a crash or
        // CI artifact dump still shows how far the corpus got.
        journal::record(
            EventKind::SweepSummary,
            r.instructions,
            size,
            format!(
                "{}: {}/{} seeds passed, {} loop events",
                r.family, r.passed, r.seeds, r.loop_events
            ),
        );
        reports.push(r);
    }

    let mut replay_lines: Vec<String> = Vec::new();
    for r in &reports {
        for f in &r.failures {
            eprintln!("{f}");
            journal::record(
                EventKind::ReplayToken,
                f.seed,
                size,
                format!("{}:{}", r.family, f.seed),
            );
            replay_lines.push(format!("genfuzz --replay {}:{}", r.family, f.seed));
        }
    }

    if !skip_service && replay_lines.is_empty() {
        if let Err(lines) = service_leg(&selected, size) {
            replay_lines.extend(lines);
        }
    }

    if let Some(path) = out {
        let body = if replay_lines.is_empty() {
            "ok\n".to_string()
        } else {
            replay_lines.join("\n") + "\n"
        };
        if let Err(e) = std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes()))
        {
            eprintln!("genfuzz: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    if !replay_lines.is_empty() {
        eprintln!(
            "genfuzz: {} failure(s); replay lines above",
            replay_lines.len()
        );
        std::process::exit(1);
    }
    println!("genfuzz: all checks passed");
}

/// Re-runs one `(family, seed)` pair with full detail — the
/// self-contained reproduction path printed by every failure.
fn run_replay(token: &str, size: u32) {
    let token: ReplayToken = token.parse().unwrap_or_else(|e| {
        eprintln!("genfuzz: bad replay token: {e}");
        std::process::exit(2);
    });
    let family = family_by_name(&token.family).unwrap_or_else(|| {
        eprintln!("genfuzz: unknown family '{}' (try --list)", token.family);
        std::process::exit(2);
    });
    journal::record(EventKind::ReplayToken, token.seed, size, token.to_string());
    let ast = family.generate(token.seed, size);
    println!(
        "replaying {token} at size {size}: {} statements, {} functions, {} arrays",
        ast.stmt_count(),
        ast.funcs.len(),
        ast.arrays.len()
    );
    match harness::check_program(family, token.seed, size) {
        Ok(c) => println!(
            "ok: {} instructions, {} loop events, all paths agree",
            c.instructions, c.loop_events
        ),
        Err(f) => {
            eprintln!("{f}");
            std::process::exit(1);
        }
    }
}

/// The distributed leg: one `gen:` job per family through a spawned
/// multi-process service, each report compared byte for byte against
/// the in-process single-pass reference. Returns replay lines on
/// failure.
fn service_leg(selected: &[loopspec::gen::Family], size: u32) -> Result<(), Vec<String>> {
    // The gen size parameter is Scale::factor(); Test maps to 1.
    if size != 1 {
        println!("genfuzz: service leg runs at size 1 only, skipping (size {size})");
        return Ok(());
    }
    let service = match Service::spawn(SvcConfig {
        workers: 2,
        ..SvcConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("genfuzz: failed to start the service: {e}");
            return Err(vec!["(service failed to start)".into()]);
        }
    };
    let client = service.client();
    let mut lines = Vec::new();
    for f in selected {
        let name = format!("gen:{}:0", f.name);
        let spec = JobSpec::new(name.clone())
            .policies([Policy::Idle, Policy::Str])
            .tus([2, 4]);
        let reference =
            match single_pass_outcome(&name, spec.scale, &spec.lane_specs(), spec.total_fuel) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("genfuzz: {name}: reference run failed: {e}");
                    lines.push(format!("genfuzz --replay {}:0", f.name));
                    continue;
                }
            };
        match client.run(spec) {
            Ok(completion) => {
                let r = &completion.report;
                if r.instructions != reference.instructions
                    || r.lanes != reference.lanes
                    || r.state != reference.state
                {
                    eprintln!("genfuzz: {name}: distributed report diverges from single pass");
                    lines.push(format!("genfuzz --replay {}:0", f.name));
                } else {
                    println!(
                        "service: {name} ok ({} instructions, {} lanes)",
                        r.instructions,
                        r.lanes.len()
                    );
                }
            }
            Err(e) => {
                eprintln!("genfuzz: {name}: service run failed: {e}");
                lines.push(format!("genfuzz --replay {}:0", f.name));
            }
        }
    }
    let stats = service.stats();
    service.shutdown();
    let consistent = stats.submitted == stats.accepted + stats.rejected
        && stats.accepted == stats.completed + stats.failed + stats.in_flight;
    if !consistent {
        eprintln!("genfuzz: service metrics invariants violated: {stats:?}");
        lines.push("(service metrics inconsistent)".into());
    }
    if lines.is_empty() {
        Ok(())
    } else {
        Err(lines)
    }
}
