//! `svc_run` — the persistent replay service driver.
//!
//! ```text
//! svc_run [--workers N] [--clients C] [--jobs J] [--queue Q]
//!         [--cache E] [--scale test|small|full] [--metrics] [WORKLOAD...]
//! svc_run --worker            # internal: serve jobs on stdin/stdout
//! ```
//!
//! Starts a [`Service`] over N spawned worker processes (copies of
//! this binary with `--worker`), then drives it with C concurrent
//! client threads submitting J jobs each, drawn round-robin from the
//! requested workloads — so repeated specs exercise the
//! content-addressed report cache and concurrent distinct specs
//! exercise the multi-tenant scheduler. Prints one row per submission
//! outcome class and the full plain-text metrics surface at the end.

use loopspec::dist::{worker, JobSpec, Policy};
use loopspec::svc::{Service, SvcConfig, SvcError};
use loopspec::workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: svc_run [--workers N] [--clients C] [--jobs J] [--queue Q] \
         [--cache E] [--scale test|small|full|huge] [--metrics] [WORKLOAD...]"
    );
    std::process::exit(2);
}

fn main() {
    // Spawned workers re-enter here; this serves and never returns.
    worker::maybe_serve_stdio();

    let mut workers = 4usize;
    let mut clients = 3usize;
    let mut jobs = 12usize;
    let mut queue_limit = 64usize;
    let mut cache_capacity = 256usize;
    let mut scale = Scale::Test;
    let mut metrics = false;
    let mut workloads: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |target: &mut usize| {
            *target = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
        };
        match arg.as_str() {
            "--workers" => numeric(&mut workers),
            "--clients" => numeric(&mut clients),
            "--jobs" => numeric(&mut jobs),
            "--queue" => numeric(&mut queue_limit),
            "--cache" => numeric(&mut cache_capacity),
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    Some("huge") => Scale::Huge,
                    _ => usage(),
                };
            }
            "--metrics" => metrics = true,
            "--help" | "-h" => usage(),
            w if !w.starts_with('-') => workloads.push(w.to_string()),
            _ => usage(),
        }
    }
    if workers == 0 || clients == 0 || jobs == 0 || queue_limit == 0 {
        usage();
    }
    if workloads.is_empty() {
        workloads = ["compress", "go", "li", "ijpeg", "perl", "vortex"]
            .iter()
            .map(|w| w.to_string())
            .collect();
    }

    // The traffic mix: one spec per requested workload, submitted
    // round-robin — with more submissions than distinct specs, repeats
    // are guaranteed and the cache must earn its keep.
    let specs: Vec<JobSpec> = workloads
        .iter()
        .map(|w| {
            let mut spec = JobSpec::new(w.clone())
                .scale(scale)
                .policies([Policy::Idle, Policy::Str])
                .tus([2, 4]);
            if scale == Scale::Huge {
                // ~10⁴× the Test instruction count: widen the shards so
                // the shard count stays sane, and the fuel budget so
                // the run completes.
                spec = spec
                    .plan(loopspec::pipeline::Plan::sliced(50_000_000))
                    .total_fuel(2_000_000_000);
            }
            spec
        })
        .collect();

    let service = match Service::spawn(SvcConfig {
        workers,
        queue_limit,
        cache_capacity,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("svc_run: failed to start the service: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "svc_run: {clients} clients x {jobs} jobs over {} distinct specs, \
         {workers} workers, queue {queue_limit}, cache {cache_capacity}",
        specs.len()
    );

    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let client = service.client();
            let specs = specs.clone();
            std::thread::spawn(move || {
                let (mut done, mut cached, mut rejected, mut failed) = (0u64, 0u64, 0u64, 0u64);
                for j in 0..jobs {
                    let spec = specs[(c * jobs + j) % specs.len()].clone();
                    match client.run(spec) {
                        Ok(completion) => {
                            done += 1;
                            if completion.cached {
                                cached += 1;
                            }
                        }
                        Err(SvcError::Rejected { .. }) => rejected += 1,
                        Err(_) => failed += 1,
                    }
                }
                (c, done, cached, rejected, failed)
            })
        })
        .collect();

    println!(
        "{:>8} {:>6} {:>7} {:>9} {:>7}",
        "client", "done", "cached", "rejected", "failed"
    );
    let mut any_failed = false;
    for handle in handles {
        let (c, done, cached, rejected, failed) = handle.join().expect("client thread");
        any_failed |= failed > 0;
        println!("{c:>8} {done:>6} {cached:>7} {rejected:>9} {failed:>7}");
    }

    println!("\n{}", service.metrics_text());
    let stats = service.stats();
    service.shutdown();

    if metrics {
        // The process-wide registry (pipeline/dist layers record here;
        // the service's own counters were printed above from its
        // per-instance registry), then a one-line JSON snapshot and
        // the structured event journal.
        println!("== metrics ==");
        print!("{}", loopspec::obs::global().render_text());
        println!("== metrics json ==");
        println!("{}", loopspec::obs::global().snapshot_json());
        println!("== journal ==");
        print!("{}", loopspec::obs::journal::lines());
    }

    let consistent = stats.submitted == stats.accepted + stats.rejected
        && stats.accepted == stats.completed + stats.failed + stats.in_flight;
    if !consistent {
        eprintln!("svc_run: metrics invariants violated: {stats:?}");
        std::process::exit(1);
    }
    if any_failed {
        eprintln!("svc_run: some jobs failed");
        std::process::exit(1);
    }
}
