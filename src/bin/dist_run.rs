//! `dist_run` — the multi-process distributed replay driver.
//!
//! ```text
//! dist_run [--workers N] [--shard-fuel F] [--scale test|small|full]
//!          [--verify] [--metrics] [WORKLOAD...]
//! dist_run --worker            # internal: serve jobs on stdin/stdout
//! ```
//!
//! The coordinator spawns N copies of this same binary with `--worker`,
//! schedules the requested workloads (default: the whole 18-program
//! suite) as a job queue of snapshot-linked shards over the full
//! 20-lane (policy × TU) grid, and prints one row per workload.
//! `--verify` additionally recomputes every workload with a single
//! uninterrupted in-process pass and checks the distributed results are
//! byte-identical.

use loopspec::dist::{worker, Coordinator, JobSpec};
use loopspec::pipeline::Plan;
use loopspec::workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: dist_run [--workers N] [--shard-fuel F] \
         [--scale test|small|full|huge] [--verify] [--metrics] [WORKLOAD...]"
    );
    std::process::exit(2);
}

fn main() {
    // Spawned workers re-enter here; this serves and never returns.
    worker::maybe_serve_stdio();

    let mut workers = 4usize;
    let mut shard_fuel: Option<u64> = None;
    let mut scale = Scale::Test;
    let mut verify = false;
    let mut metrics = false;
    let mut workloads: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--shard-fuel" => {
                shard_fuel = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    Some("huge") => Scale::Huge,
                    _ => usage(),
                };
            }
            "--verify" => verify = true,
            "--metrics" => metrics = true,
            "--help" | "-h" => usage(),
            w if !w.starts_with('-') => workloads.push(w.to_string()),
            _ => usage(),
        }
    }
    // Huge runs retire ~10⁴× more instructions than Test; keep the
    // default shard count (not shard size) roughly constant, and give
    // the fuel budget enough headroom that the run completes.
    let shard_fuel = shard_fuel.unwrap_or(match scale {
        Scale::Huge => 50_000_000,
        _ => 25_000,
    });
    if workers == 0 || shard_fuel == 0 {
        usage();
    }

    if workloads.is_empty() {
        workloads = loopspec::workloads::all()
            .iter()
            .map(|w| w.name.to_string())
            .collect();
    }
    // One typed template describes the whole study (the default
    // JobSpec grid IS the paper's 20-lane grid); the suite just runs
    // it over every requested workload.
    let mut template = JobSpec::new(workloads[0].clone())
        .scale(scale)
        .plan(Plan::sliced(shard_fuel));
    if scale == Scale::Huge {
        template = template.total_fuel(2_000_000_000);
    }
    let mut spec = template.suite();
    spec.workloads = workloads;

    let coordinator = match Coordinator::spawn(workers) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dist_run: failed to spawn workers: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "dist_run: {} workloads x {} lanes over {workers} workers, {shard_fuel} fuel/shard",
        spec.workloads.len(),
        spec.lanes.len(),
    );

    let outcome = match coordinator.run_suite(&spec) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dist_run: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{:>10} {:>12} {:>7} {:>8} {:>10}",
        "workload", "instrs", "shards", "retries", "TPC(STR@4)"
    );
    for o in &outcome.outcomes {
        // Lane 6 of the default grid is STR with 4 TUs; fall back to
        // the first lane for custom grids.
        let tpc = o
            .lanes
            .iter()
            .find(|l| l.policy == "STR" && l.tus == 4)
            .or(o.lanes.first())
            .map_or(0.0, |l| l.tpc());
        println!(
            "{:>10} {:>12} {:>7} {:>8} {:>10.2}",
            o.workload, o.instructions, o.shards_run, o.retries, tpc
        );
    }
    println!(
        "{} jobs dispatched, {} snapshot bytes shipped, {} workers lost",
        outcome.jobs_dispatched, outcome.handoff_bytes, outcome.workers_lost
    );

    if verify {
        match outcome.verify_single_pass(&spec) {
            Ok(()) => println!("verified: all workloads byte-identical to the single pass"),
            Err(e) => {
                eprintln!("dist_run: verification FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if metrics {
        // Coordinator-side view: dist_* counters and the shard-wall
        // histogram recorded into the process-wide registry, a
        // one-line JSON snapshot, and the structured event journal.
        println!("== metrics ==");
        print!("{}", loopspec::obs::global().render_text());
        println!("== metrics json ==");
        println!("{}", loopspec::obs::global().snapshot_json());
        println!("== journal ==");
        print!("{}", loopspec::obs::journal::lines());
    }
}
