//! The workspace-wide error type.
//!
//! Every layer of the stack has its own precise error enum — assembly
//! ([`AsmError`]), execution ([`CpuError`]), codecs ([`SnapError`]),
//! sessions ([`SnapshotError`]), streaming engines ([`StreamError`]),
//! the wire protocol ([`WireError`]), distributed runs ([`DistError`]),
//! and the replay service ([`SvcError`]). Application code that drives
//! several layers at once used to juggle all of them; [`enum@Error`]
//! absorbs each via `From`, so `?` works across the whole workspace:
//!
//! ```
//! use loopspec::prelude::*;
//!
//! fn assemble_and_run() -> Result<u64, loopspec::Error> {
//!     let mut b = ProgramBuilder::new();
//!     b.counted_loop(10, |b, _i| b.work(5));
//!     let program = b.finish()?; // AsmError
//!     let mut stats = LoopStats::new();
//!     let mut session = Session::new();
//!     session.observe_loops(&mut stats);
//!     let out = session.run(&program, RunLimits::default())?; // SnapshotError
//!     Ok(out.instructions)
//! }
//! assert!(assemble_and_run().unwrap() > 0);
//! ```

use std::fmt;

use loopspec_asm::AsmError;
use loopspec_core::snap::SnapError;
use loopspec_cpu::CpuError;
use loopspec_dist::{DistError, JobError, WireError};
use loopspec_mt::StreamError;
use loopspec_pipeline::SnapshotError;
use loopspec_svc::SvcError;

/// Any failure the workspace can produce, one layer per variant: each
/// layer's precise error converts in via `From`, so `?` works across
/// assembly, execution, codecs, sessions, streaming, the wire
/// protocol, distributed runs, and the replay service at once.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Program assembly failed.
    Asm(AsmError),
    /// The simulated CPU faulted.
    Cpu(CpuError),
    /// A byte codec rejected its input (snapshot, frame, cache entry).
    Codec(SnapError),
    /// A streaming session failed (run, advance, checkpoint, resume).
    Session(SnapshotError),
    /// A streaming speculation engine was misdriven.
    Stream(StreamError),
    /// A frame transport failed or decoded to garbage.
    Wire(WireError),
    /// A distributed run failed.
    Dist(DistError),
    /// The replay service refused or failed a job.
    Svc(SvcError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Asm(e) => write!(f, "assembly: {e}"),
            Error::Cpu(e) => write!(f, "cpu: {e}"),
            Error::Codec(e) => write!(f, "codec: {e}"),
            Error::Session(e) => write!(f, "session: {e}"),
            Error::Stream(e) => write!(f, "stream: {e}"),
            Error::Wire(e) => write!(f, "wire: {e}"),
            Error::Dist(e) => write!(f, "distributed run: {e}"),
            Error::Svc(e) => write!(f, "replay service: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Asm(e) => Some(e),
            Error::Cpu(e) => Some(e),
            Error::Codec(e) => Some(e),
            Error::Session(e) => Some(e),
            Error::Stream(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::Dist(e) => Some(e),
            Error::Svc(e) => Some(e),
        }
    }
}

impl From<AsmError> for Error {
    fn from(e: AsmError) -> Self {
        Error::Asm(e)
    }
}

impl From<CpuError> for Error {
    fn from(e: CpuError) -> Self {
        Error::Cpu(e)
    }
}

impl From<SnapError> for Error {
    fn from(e: SnapError) -> Self {
        Error::Codec(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Error::Session(e)
    }
}

impl From<StreamError> for Error {
    fn from(e: StreamError) -> Self {
        Error::Stream(e)
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<DistError> for Error {
    fn from(e: DistError) -> Self {
        Error::Dist(e)
    }
}

impl From<JobError> for Error {
    /// Job-admission failures unwrap to the layer that produced them:
    /// lane errors are [`StreamError`]s (constructed by
    /// [`loopspec_mt::validate_tus`], so a bad TU count reads the same
    /// here as from `StreamEngine::try_new`), the rest are codec
    /// errors.
    fn from(e: JobError) -> Self {
        match e {
            JobError::Spec(e) => Error::Codec(e),
            JobError::Lanes(e) => Error::Stream(e),
        }
    }
}

impl From<SvcError> for Error {
    fn from(e: SvcError) -> Self {
        Error::Svc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_layer_converts_and_displays() {
        let cases: Vec<(Error, &str)> = vec![
            (SnapError::Corrupt { what: "frame tag" }.into(), "codec:"),
            (CpuError::MemoryLimit { pages: 9 }.into(), "cpu:"),
            (StreamError::BadTus { got: 1 }.into(), "stream:"),
            (
                JobError::Lanes(StreamError::BadTus { got: 1 }).into(),
                "stream:",
            ),
            (
                JobError::Spec(SnapError::Corrupt { what: "frame tag" }).into(),
                "codec:",
            ),
            (
                DistError::AllWorkersDied {
                    completed: 1,
                    total: 2,
                }
                .into(),
                "distributed run:",
            ),
            (
                WireError::Codec(SnapError::Corrupt { what: "frame tag" }).into(),
                "wire:",
            ),
            (SvcError::Disconnected.into(), "replay service:"),
            (SnapshotError::StreamEnded.into(), "session:"),
        ];
        for (err, prefix) in cases {
            assert!(err.to_string().starts_with(prefix), "{err}");
            assert!(err.source().is_some(), "{err} must expose its cause");
        }
    }
}
