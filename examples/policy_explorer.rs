//! Speculation-policy explorer: sweep IDLE / STR / STR(1..3) across
//! thread-unit counts for one workload and print the TPC matrix plus
//! hit-ratio details — an interactive version of the paper's Figures 6-7
//! and Table 2.
//!
//! ```text
//! cargo run --release --example policy_explorer -- hydro2d
//! cargo run --release --example policy_explorer -- perl small
//! ```

use loopspec::mt::{EngineReport, SpeculationPolicy};
use loopspec::prelude::*;

fn run_policy(
    trace: &AnnotatedTrace,
    policy: &str,
    tus: usize,
) -> Result<EngineReport, Box<dyn std::error::Error>> {
    Ok(match policy {
        "IDLE" => Engine::new(trace, IdlePolicy::new(), tus).run(),
        "STR" => Engine::new(trace, StrPolicy::new(), tus).run(),
        "STR(1)" => Engine::new(trace, StrNestedPolicy::new(1), tus).run(),
        "STR(2)" => Engine::new(trace, StrNestedPolicy::new(2), tus).run(),
        "STR(3)" => Engine::new(trace, StrNestedPolicy::new(3), tus).run(),
        other => return Err(format!("unknown policy {other}").into()),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "hydro2d".to_string());
    let scale = match args.next().as_deref() {
        None | Some("test") => Scale::Test,
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        Some(other) => return Err(format!("unknown scale `{other}`").into()),
    };
    let workload = workload_by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;

    let program = workload.build(scale)?;
    let mut collector = EventCollector::default();
    Cpu::new().run(
        &program,
        &mut collector,
        RunLimits::with_fuel(1_000_000_000),
    )?;
    let (events, instructions) = collector.into_parts();
    let trace = AnnotatedTrace::build(&events, instructions);

    println!(
        "== {} at {scale:?} scale: {} instructions, {} detected executions ==\n",
        workload.name,
        instructions,
        trace.execs.len()
    );

    // Sanity anchor: the ideal machine, via the two-phase streaming
    // oracle (count-log forward pass + fed oracle replay).
    println!(
        "ideal (infinite TUs, oracle): TPC {:.1}\n",
        ideal_tpc_streaming(&events, instructions).tpc
    );

    let policies = ["IDLE", "STR", "STR(1)", "STR(2)", "STR(3)"];
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}",
        "policy", "2 TUs", "4 TUs", "8 TUs", "16 TUs"
    );
    for p in policies {
        print!("{p:>8}");
        for tus in [2, 4, 8, 16] {
            let r = run_policy(&trace, p, tus)?;
            print!(" {:>8.3}", r.tpc());
        }
        println!();
    }

    println!("\nSTR(3) @ 4 TUs detail (the paper's Table 2 view):");
    let r = run_policy(&trace, "STR(3)", 4)?;
    println!(
        "  speculations        {:>10}\n  threads/speculation {:>10.2}\n  hit ratio           {:>9.2}%\n  instr to verify     {:>10.1}\n  TPC                 {:>10.2}",
        r.spec.spec_actions,
        r.spec.threads_per_spec(),
        r.spec.hit_ratio_percent(),
        r.spec.instr_to_verif(),
        r.tpc()
    );
    // The StrPolicy type also exposes its paper name:
    assert_eq!(StrPolicy::new().name(), "STR");
    Ok(())
}
