//! Data-speculation probe (the paper's §4): profile a workload's loop
//! iterations, find each loop's most frequent control path, and measure
//! how stride-predictable the live-in registers and memory locations
//! are.
//!
//! ```text
//! cargo run --release --example livein_predictor -- compress
//! ```

use loopspec::dataspec::{PredOutcome, StridePredictor};
use loopspec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_string());
    let workload = workload_by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;

    // --- Standalone predictor demo: the LIT stores (last value, stride)
    // per live-in location and predicts `last + stride`.
    let mut demo: StridePredictor<&str> = StridePredictor::new();
    for v in [100u64, 110, 120, 130] {
        let _ = demo.observe("induction", v);
    }
    assert_eq!(demo.observe("induction", 140), PredOutcome::Correct);
    println!("stride predictor demo: 100,110,120,130 -> predicts 140 ✓\n");

    // --- Full §4 profile of the chosen workload.
    let program = workload.build(Scale::Test)?;
    let mut profiler = DataSpecProfiler::new();
    Cpu::new().run(&program, &mut profiler, RunLimits::with_fuel(1_000_000_000))?;
    let r = profiler.report();

    println!(
        "== {} data-speculation statistics (Figure 8 view) ==",
        workload.name
    );
    println!("profiled iterations        {:>10}", r.iterations);
    println!("distinct loops             {:>10}", r.loops);
    println!("same path                  {:>9.1}%", r.same_path_percent);
    println!("live-in regs predicted     {:>9.1}%", r.lr_pred_percent);
    println!("live-in mem predicted      {:>9.1}%", r.lm_pred_percent);
    println!("iterations w/ all lr ok    {:>9.1}%", r.all_lr_percent);
    println!("iterations w/ all lm ok    {:>9.1}%", r.all_lm_percent);
    println!("iterations w/ all data ok  {:>9.1}%", r.all_data_percent);
    println!(
        "\n(the paper reports ~85% same-path coverage across SPEC95, with high\n live-in predictability — see EXPERIMENTS.md for the full comparison)"
    );
    Ok(())
}
