//! Per-workload loop anatomy report: Table-1-style statistics plus
//! LET/LIT hit ratios for one of the 18 SPEC95-shaped workloads.
//!
//! ```text
//! cargo run --release --example loop_report -- swim small
//! cargo run --release --example loop_report -- gcc
//! ```

use loopspec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "compress".to_string());
    let scale = match args.next().as_deref() {
        None | Some("test") => Scale::Test,
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        Some(other) => return Err(format!("unknown scale `{other}`").into()),
    };

    let Some(workload) = workload_by_name(&name) else {
        let names: Vec<&str> = all_workloads().iter().map(|w| w.name).collect();
        return Err(format!("unknown workload `{name}`; pick one of {names:?}").into());
    };

    println!("== {} ({}) ==", workload.name, workload.description);
    let program = workload.build(scale)?;
    println!("static code: {} instructions", program.len());

    let mut collector = EventCollector::default();
    Cpu::new().run(
        &program,
        &mut collector,
        RunLimits::with_fuel(1_000_000_000),
    )?;
    let (events, instructions) = collector.into_parts();

    let mut stats = LoopStats::new();
    stats.observe_all(&events);
    let r = stats.report(instructions);
    let p = workload.paper;
    println!("\n{:24} {:>12} {:>12}", "metric", "measured", "paper");
    println!("{:-<50}", "");
    println!(
        "{:24} {:>12} {:>9}e9",
        "instructions", r.instructions, p.instr_g
    );
    println!(
        "{:24} {:>12} {:>12}",
        "static loops", r.static_loops, p.loops
    );
    println!(
        "{:24} {:>12.2} {:>12.2}",
        "iterations/execution", r.iter_per_exec, p.iter_per_exec
    );
    println!(
        "{:24} {:>12.1} {:>12.1}",
        "instructions/iteration", r.instr_per_iter, p.instr_per_iter
    );
    println!(
        "{:24} {:>12.2} {:>12.2}",
        "avg nesting", r.avg_nesting, p.avg_nl
    );
    println!(
        "{:24} {:>12} {:>12}",
        "max nesting", r.max_nesting, p.max_nl
    );

    println!("\nLET/LIT hit ratios (LRU):");
    for kind in [TableKind::Let, TableKind::Lit] {
        for entries in [2usize, 4, 8, 16] {
            let mut sim = TableHitSim::new(kind, entries);
            sim.observe_all(&events);
            print!("  {kind:?}[{entries:>2}] {:>6.2}%", sim.ratio().percent());
        }
        println!();
    }
    Ok(())
}
