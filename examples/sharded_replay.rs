//! Sharded replay: checkpoint → serialize → resume → merged report,
//! bit-identical to a single uninterrupted pass.
//!
//! ```text
//! cargo run --example sharded_replay
//! ```
//!
//! The session's state at any retired-instruction boundary — CPU
//! cursor, CLS detector (including its undelivered event chunk), and
//! every registered engine's annotation + decision-core state — fits in
//! a small snapshot with a deterministic byte form. This example runs
//! the `compress` workload three ways and shows all of them agree:
//!
//! 1. one uninterrupted streaming pass (the reference);
//! 2. a manual checkpoint/resume: run half, serialize the snapshot,
//!    restore it into *fresh* sinks (as another process would), finish;
//! 3. `ShardedRun`: the same trace as 4 checkpoint-linked shards, each
//!    handing serialized snapshot bytes to the next.

use loopspec::prelude::*;

fn engines() -> SinkSet<AnyStreamEngine> {
    [
        AnyStreamEngine::idle(4),
        AnyStreamEngine::str(4),
        AnyStreamEngine::str_nested(3, 4),
    ]
    .into_iter()
    .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = workload_by_name("compress").expect("workload exists");
    let program = workload.build(Scale::Test)?;

    // 1. The reference: one uninterrupted pass.
    let mut reference = engines();
    let mut session = Session::new();
    session.observe_checkpointable(&mut reference);
    let single = session.run(&program, RunLimits::default())?;
    println!(
        "single pass      : {} instructions, TPC(STR@4) = {:.2}",
        single.instructions,
        reference.get(1).unwrap().report().unwrap().tpc()
    );

    // 2. Manual checkpoint at the halfway boundary.
    let mut first_half = engines();
    let mut session = Session::new();
    session.observe_checkpointable(&mut first_half);
    session.advance(&program, RunLimits::with_fuel(single.instructions / 2))?;
    let bytes = session.checkpoint()?.to_bytes();
    drop(session);
    println!(
        "checkpoint       : {} bytes at instruction {}",
        bytes.len(),
        single.instructions / 2
    );

    // A fresh session with fresh sinks — nothing survives but the bytes
    // (exactly what crossing a process boundary looks like).
    let mut second_half = engines();
    let mut session = Session::new();
    session.observe_checkpointable(&mut second_half);
    session.resume(&Snapshot::from_bytes(&bytes)?)?;
    let resumed = session.advance(&program, RunLimits::default())?;
    assert!(resumed.halted());
    println!(
        "resume + finish  : {} instructions, TPC(STR@4) = {:.2}",
        resumed.instructions,
        second_half.get(1).unwrap().report().unwrap().tpc()
    );

    // 3. The same run as 4 checkpoint-linked shards.
    let sharded =
        ShardedRun::new(4).run(&program, RunLimits::with_fuel(single.instructions), engines)?;
    println!(
        "4 shards         : {} instructions, {} handoff bytes across {} boundaries",
        sharded.summary.instructions,
        sharded.handoff_bytes,
        sharded.shards_run - 1
    );

    // All three agree, engine for engine, bit for bit.
    for (i, reference) in reference.iter().enumerate() {
        let half = second_half.get(i).unwrap().report();
        let shard = sharded.sink.get(i).unwrap().report();
        assert_eq!(reference.report(), half, "engine {i}: manual resume");
        assert_eq!(reference.report(), shard, "engine {i}: sharded run");
    }
    println!(
        "all {} engine reports bit-identical across the three runs ✓",
        reference.len()
    );
    Ok(())
}
