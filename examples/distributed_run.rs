//! Distributed replay: N worker *processes*, one job queue of
//! snapshot-linked shards, results byte-identical to a single pass.
//!
//! ```text
//! cargo run --example distributed_run
//! ```
//!
//! The coordinator re-invokes this same executable with `--worker` to
//! spawn its pool (which is why `maybe_serve_stdio` is the first line
//! of `main`), slices each workload into fixed-fuel shards, and chains
//! the shards across whichever workers are free — every handoff is a
//! serialized [`Snapshot`](loopspec::pipeline::Snapshot) crossing a
//! pipe. At the end, every workload is recomputed in-process with one
//! uninterrupted `Session` and the distributed lane reports *and*
//! final sink state are required to match byte for byte.

use loopspec::dist::worker;
use loopspec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawned workers re-enter here; this serves jobs and never returns.
    worker::maybe_serve_stdio();

    let spec = SuiteSpec::new(
        ["compress", "go", "li", "swim"],
        Scale::Test,
        vec![
            LaneSpec::Idle { tus: 4 },
            LaneSpec::Str { tus: 4 },
            LaneSpec::StrNested { limit: 3, tus: 4 },
        ],
        Plan::sliced(20_000),
    );

    let workers = 2;
    let coordinator = Coordinator::spawn(workers)?;
    println!(
        "{} workloads x {} lanes across {workers} worker processes",
        spec.workloads.len(),
        spec.lanes.len()
    );

    let outcome = coordinator.run_suite(&spec)?;
    for o in &outcome.outcomes {
        println!(
            "{:>10}: {:>7} instructions in {} shards, TPC(STR@4) = {:.2}",
            o.workload,
            o.instructions,
            o.shards_run,
            o.lanes[1].tpc()
        );
    }
    println!(
        "{} jobs, {} snapshot bytes shipped between processes",
        outcome.jobs_dispatched, outcome.handoff_bytes
    );

    // The acceptance bar: reports and serialized sink state must be
    // indistinguishable from one uninterrupted in-process pass.
    outcome.verify_single_pass(&spec)?;
    println!("all workloads byte-identical to the single pass ✓");
    Ok(())
}
