//! Replay as a service: one persistent scheduler, many clients, a
//! content-addressed report cache.
//!
//! ```text
//! cargo run --example replay_service
//! ```
//!
//! The service re-invokes this same executable with `--worker` to
//! spawn its pool (which is why `maybe_serve_stdio` is the first line
//! of `main`), then two concurrent clients submit overlapping
//! [`JobSpec`]s. The first submission of each spec computes over the
//! worker pool; every repeat is answered from the cache in O(1) —
//! byte-identical by construction, which the example checks — and the
//! plain-text metrics endpoint accounts for every submission.

use loopspec::dist::{worker, JobSpec, Policy};
use loopspec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawned workers re-enter here; this serves jobs and never returns.
    worker::maybe_serve_stdio();

    let service = Service::spawn(SvcConfig {
        workers: 2,
        ..SvcConfig::default()
    })?;

    // Two tenants, overlapping studies: each submits the same three
    // specs, so three compute and three hit the cache (or coalesce,
    // when both ask while the first is still computing).
    let specs: Vec<JobSpec> = ["compress", "go", "li"]
        .iter()
        .map(|w| {
            JobSpec::new(*w)
                .policies([Policy::Str, Policy::StrNested { limit: 3 }])
                .tus([4, 16])
        })
        .collect();

    let clients: Vec<_> = (0..2)
        .map(|tenant| {
            let client = service.client();
            let specs = specs.clone();
            std::thread::spawn(move || {
                specs
                    .into_iter()
                    .map(|spec| {
                        let name = spec.workload.clone();
                        let completion = client.run(spec).expect("job succeeds");
                        (tenant, name, completion)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut answers: Vec<(usize, String, Completion)> = Vec::new();
    for handle in clients {
        answers.extend(handle.join().expect("client thread"));
    }
    for (tenant, name, completion) in &answers {
        println!(
            "tenant {tenant}: {name:>10} {:>7} instructions, {} lanes{}",
            completion.report.instructions,
            completion.report.lanes.len(),
            if completion.cached {
                "  (cache hit)"
            } else {
                ""
            },
        );
    }

    // Identical specs must get identical bytes, cached or not.
    for (tenant, name, completion) in &answers {
        let twin = answers
            .iter()
            .find(|(t, n, _)| t != tenant && n == name)
            .expect("both tenants ran every spec");
        assert_eq!(
            completion.report, twin.2.report,
            "{name}: the two tenants' reports must be byte-identical"
        );
    }

    // A warm repeat is a guaranteed cache hit — no worker touched.
    let warm = service.client().run(specs[0].clone())?;
    assert!(warm.cached, "the warm repeat must hit the cache");
    println!("\nwarm repeat answered from the cache ✓\n");

    println!("{}", service.metrics_text());
    let stats = service.stats();
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
    assert_eq!(
        stats.accepted,
        stats.completed + stats.failed + stats.in_flight
    );
    service.shutdown();
    Ok(())
}
