//! Quickstart: detect the loops of a small program and measure the
//! thread-level parallelism a 4-context machine would extract from it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use loopspec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature "image filter": 40 rows x 60 columns with a small
    // per-pixel kernel, followed by a histogram pass.
    let mut b = ProgramBuilder::new();
    let image = b.alloc_static(40 * 60);
    let hist = b.alloc_static(16);
    b.counted_loop(40, |b, row| {
        b.counted_loop(60, |b, col| {
            b.with_reg(|b, off| {
                b.op_imm(AluOp::Mul, off, row, 60);
                b.op(AluOp::Add, off, off, col);
                b.with_reg(|b, px| {
                    b.load_idx(px, image, off);
                    b.addi(px, px, 1);
                    b.store_idx(px, image, off);
                });
            });
            b.work(6);
        });
    });
    b.counted_loop(16, |b, bin| {
        b.with_reg(|b, v| {
            b.load_idx(v, hist, bin);
            b.addi(v, v, 1);
            b.store_idx(v, hist, bin);
        });
    });
    let program = b.finish()?;
    println!("program: {} static instructions", program.len());

    // Execute once; the detector watches every retired instruction.
    let mut collector = EventCollector::default();
    let summary = Cpu::new().run(&program, &mut collector, RunLimits::default())?;
    println!("executed: {} instructions", summary.retired);

    // Loop statistics (the paper's Table 1 for this program).
    let (events, instructions) = collector.into_parts();
    let mut stats = LoopStats::new();
    stats.observe_all(&events);
    let report = stats.report(instructions);
    println!(
        "loops: {} static, {} executions, {:.1} iterations/execution, max nesting {}",
        report.static_loops, report.executions, report.iter_per_exec, report.max_nesting
    );

    // Thread-level parallelism under the paper's STR policy.
    let trace = AnnotatedTrace::build(&events, instructions);
    for tus in [2, 4, 8] {
        let engine = Engine::new(&trace, StrPolicy::new(), tus).run();
        println!(
            "{tus} thread units: TPC = {:.2} ({} threads verified, {} squashed)",
            engine.tpc(),
            engine.spec.verified,
            engine.spec.squashed_misspec
        );
    }
    // The ideal machine streams too: a forward pass records iteration
    // counts, a second streaming pass replays them into the oracle.
    let ideal = ideal_tpc_streaming(&events, instructions);
    println!("infinite thread units (oracle): TPC = {:.1}", ideal.tpc);
    Ok(())
}
