//! Operation codes and their value-level semantics.
//!
//! The evaluation functions live here (rather than in the CPU crate) so
//! that the operation enums and their meaning cannot drift apart, and so
//! that other tools (e.g. a future static analyser) can reuse them.

use std::fmt;

/// Integer ALU operation, used by both register-register and
/// register-immediate instruction forms.
///
/// All operations are defined on 64-bit values with wrapping two's
/// complement arithmetic; there are no arithmetic traps. Division and
/// remainder by zero produce `0`, mirroring the "no trap" convention used
/// by trace-driven simulators.
///
/// ```
/// use loopspec_isa::AluOp;
/// assert_eq!(AluOp::Add.eval(2, 3), 5);
/// assert_eq!(AluOp::Div.eval(10, 0), 0); // no trap
/// assert_eq!(AluOp::SltS.eval(-1i64 as u64, 0), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum AluOp {
    /// Wrapping addition.
    Add = 0,
    /// Wrapping subtraction.
    Sub = 1,
    /// Wrapping multiplication.
    Mul = 2,
    /// Signed division (`0` when the divisor is `0`).
    Div = 3,
    /// Signed remainder (`0` when the divisor is `0`).
    Rem = 4,
    /// Bitwise AND.
    And = 5,
    /// Bitwise OR.
    Or = 6,
    /// Bitwise XOR.
    Xor = 7,
    /// Logical shift left (shift amount taken modulo 64).
    Shl = 8,
    /// Logical shift right (shift amount taken modulo 64).
    Shr = 9,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sar = 10,
    /// Set to `1` if `a < b` as signed values, else `0`.
    SltS = 11,
    /// Set to `1` if `a < b` as unsigned values, else `0`.
    SltU = 12,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::SltS,
        AluOp::SltU,
    ];

    /// Applies the operation to two 64-bit operands.
    #[inline(always)]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    (a as i64).wrapping_rem(b as i64) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32),
            AluOp::Shr => a.wrapping_shr(b as u32),
            AluOp::Sar => ((a as i64).wrapping_shr(b as u32)) as u64,
            AluOp::SltS => ((a as i64) < (b as i64)) as u64,
            AluOp::SltU => (a < b) as u64,
        }
    }

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::SltS => "slts",
            AluOp::SltU => "sltu",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Binary floating-point operation on `f64` values.
///
/// ```
/// use loopspec_isa::FAluOp;
/// assert_eq!(FAluOp::Mul.eval(3.0, 4.0), 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum FAluOp {
    /// IEEE-754 addition.
    Add = 0,
    /// IEEE-754 subtraction.
    Sub = 1,
    /// IEEE-754 multiplication.
    Mul = 2,
    /// IEEE-754 division.
    Div = 3,
    /// Minimum of the operands (`a` if either is NaN).
    Min = 4,
    /// Maximum of the operands (`a` if either is NaN).
    Max = 5,
}

impl FAluOp {
    /// All binary FP operations, in encoding order.
    pub const ALL: [FAluOp; 6] = [
        FAluOp::Add,
        FAluOp::Sub,
        FAluOp::Mul,
        FAluOp::Div,
        FAluOp::Min,
        FAluOp::Max,
    ];

    /// Applies the operation to two `f64` operands.
    #[inline(always)]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FAluOp::Add => a + b,
            FAluOp::Sub => a - b,
            FAluOp::Mul => a * b,
            FAluOp::Div => a / b,
            FAluOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
            FAluOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FAluOp::Add => "fadd",
            FAluOp::Sub => "fsub",
            FAluOp::Mul => "fmul",
            FAluOp::Div => "fdiv",
            FAluOp::Min => "fmin",
            FAluOp::Max => "fmax",
        }
    }
}

impl fmt::Display for FAluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary floating-point operation on `f64` values.
///
/// ```
/// use loopspec_isa::FUnOp;
/// assert_eq!(FUnOp::Abs.eval(-2.5), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum FUnOp {
    /// Negation.
    Neg = 0,
    /// Absolute value.
    Abs = 1,
    /// Square root (NaN for negative inputs, per IEEE-754).
    Sqrt = 2,
}

impl FUnOp {
    /// All unary FP operations, in encoding order.
    pub const ALL: [FUnOp; 3] = [FUnOp::Neg, FUnOp::Abs, FUnOp::Sqrt];

    /// Applies the operation to an `f64` operand.
    #[inline(always)]
    pub fn eval(self, a: f64) -> f64 {
        match self {
            FUnOp::Neg => -a,
            FUnOp::Abs => a.abs(),
            FUnOp::Sqrt => a.sqrt(),
        }
    }

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FUnOp::Neg => "fneg",
            FUnOp::Abs => "fabs",
            FUnOp::Sqrt => "fsqrt",
        }
    }
}

impl fmt::Display for FUnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch/compare condition on two 64-bit integer operands.
///
/// ```
/// use loopspec_isa::Cond;
/// assert!(Cond::LtS.eval(-3i64 as u64, 1));
/// assert!(!Cond::LtU.eval(-3i64 as u64, 1)); // unsigned: huge value
/// assert_eq!(Cond::Eq.negate(), Cond::Ne);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum Cond {
    /// Equal.
    Eq = 0,
    /// Not equal.
    Ne = 1,
    /// Signed less-than.
    LtS = 2,
    /// Signed less-or-equal.
    LeS = 3,
    /// Signed greater-than.
    GtS = 4,
    /// Signed greater-or-equal.
    GeS = 5,
    /// Unsigned less-than.
    LtU = 6,
    /// Unsigned greater-or-equal.
    GeU = 7,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 8] = [
        Cond::Eq,
        Cond::Ne,
        Cond::LtS,
        Cond::LeS,
        Cond::GtS,
        Cond::GeS,
        Cond::LtU,
        Cond::GeU,
    ];

    /// Evaluates the condition on two 64-bit operands.
    #[inline(always)]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::LtS => (a as i64) < (b as i64),
            Cond::LeS => (a as i64) <= (b as i64),
            Cond::GtS => (a as i64) > (b as i64),
            Cond::GeS => (a as i64) >= (b as i64),
            Cond::LtU => a < b,
            Cond::GeU => a >= b,
        }
    }

    /// Returns the logically opposite condition.
    ///
    /// `cond.negate().eval(a, b) == !cond.eval(a, b)` for all operands.
    #[inline]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::LtS => Cond::GeS,
            Cond::LeS => Cond::GtS,
            Cond::GtS => Cond::LeS,
            Cond::GeS => Cond::LtS,
            Cond::LtU => Cond::GeU,
            Cond::GeU => Cond::LtU,
        }
    }

    /// Short mnemonic used by the disassembler (suffix of `b`/`fcmp`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::LtS => "lt",
            Cond::LeS => "le",
            Cond::GtS => "gt",
            Cond::GeS => "ge",
            Cond::LtU => "ltu",
            Cond::GeU => "geu",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_basics() {
        assert_eq!(AluOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.eval(3, 7), 21);
        assert_eq!(AluOp::Div.eval((-9i64) as u64, 3), (-3i64) as u64);
        assert_eq!(AluOp::Rem.eval(9, 4), 1);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shr.eval((-1i64) as u64, 63), 1);
        assert_eq!(AluOp::Sar.eval((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::SltU.eval(1, 2), 1);
        assert_eq!(AluOp::SltS.eval(1, 2), 1);
        assert_eq!(AluOp::SltS.eval(2, 1), 0);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(AluOp::Div.eval(42, 0), 0);
        assert_eq!(AluOp::Rem.eval(42, 0), 0);
    }

    #[test]
    fn div_min_by_minus_one_does_not_trap() {
        // i64::MIN / -1 overflows in Rust; our semantics wrap.
        assert_eq!(
            AluOp::Div.eval(i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
    }

    #[test]
    fn falu_basics() {
        assert_eq!(FAluOp::Add.eval(1.5, 2.5), 4.0);
        assert_eq!(FAluOp::Min.eval(3.0, -2.0), -2.0);
        assert_eq!(FAluOp::Max.eval(3.0, -2.0), 3.0);
        assert_eq!(FUnOp::Sqrt.eval(9.0), 3.0);
        assert_eq!(FUnOp::Neg.eval(1.0), -1.0);
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        let samples: [(u64, u64); 5] = [(0, 0), (1, 2), (2, 1), ((-5i64) as u64, 3), (u64::MAX, 0)];
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for &(a, b) in &samples {
                assert_eq!(c.negate().eval(a, b), !c.eval(a, b), "cond {c}");
            }
        }
    }
}
