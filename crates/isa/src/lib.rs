//! # loopspec-isa — the SLA instruction set architecture
//!
//! SLA (*Simple Loop Architecture*) is a small, regular RISC instruction set
//! that plays the role the DEC Alpha ISA plays in Tubella & González,
//! ["Control Speculation in Multithreaded Processors through Dynamic Loop
//! Detection" (HPCA 1998)]: it is the machine language in which the workload
//! programs are expressed and whose *committed control-transfer instructions*
//! drive the dynamic loop detector.
//!
//! The dynamic loop-detection mechanism of the paper observes only
//!
//! * the address (`pc`) of each committed instruction,
//! * whether it is a conditional branch / jump / call / return,
//! * whether a conditional branch was taken, and its target address,
//! * (for data-speculation statistics) the registers and memory locations
//!   read and written,
//!
//! so any RISC-like ISA generates the same event language. SLA keeps exactly
//! the features the experiments need: 32 integer registers (with `r0`
//! hardwired to zero), 32 floating-point registers, word-addressed data
//! memory, compare-and-branch conditional branches, direct and indirect
//! jumps, and explicit call/return instructions with a link register.
//!
//! ## Quick example
//!
//! ```
//! use loopspec_isa::{Instruction, AluOp, Cond, Reg, Addr, ControlKind};
//!
//! let add = Instruction::AluImm { op: AluOp::Add, rd: Reg::R1, ra: Reg::R1, imm: 1 };
//! assert_eq!(add.control_kind(), ControlKind::None);
//!
//! let loop_branch = Instruction::Branch {
//!     cond: Cond::LtS, ra: Reg::R1, rb: Reg::R2, target: Addr::new(4),
//! };
//! assert!(matches!(loop_branch.control_kind(), ControlKind::CondBranch { .. }));
//!
//! // Instructions round-trip through the 64-bit machine encoding.
//! let word = add.encode();
//! assert_eq!(Instruction::decode(word).unwrap(), add);
//! ```
//!
//! The crate is deliberately free of simulator state: execution semantics
//! live in [`loopspec-cpu`], program construction in [`loopspec-asm`].
//!
//! [`loopspec-cpu`]: ../loopspec_cpu/index.html
//! [`loopspec-asm`]: ../loopspec_asm/index.html

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod addr;
mod decoded;
mod encode;
mod instr;
pub mod kernel;
mod op;
mod reg;
pub mod snap;

pub use addr::Addr;
pub use decoded::{DecodedImage, DecodedOp, FlatCode, FlatOp};
pub use encode::{DecodeError, LOAD_IMM_MAX, LOAD_IMM_MIN};
pub use instr::{ControlKind, Instruction, RegUse};
pub use op::{AluOp, Cond, FAluOp, FUnOp};
pub use reg::{FReg, Reg};
