//! Architectural registers.

use std::fmt;

macro_rules! define_regfile {
    (
        $(#[$meta:meta])*
        $name:ident, $prefix:literal, $count:literal,
        [$($variant:ident = $idx:literal),+ $(,)?]
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        #[repr(u8)]
        pub enum $name {
            $(
                #[doc = concat!("Register ", $prefix, stringify!($idx), ".")]
                $variant = $idx,
            )+
        }

        impl $name {
            /// Number of registers in this file.
            pub const COUNT: usize = $count;

            /// All registers in index order.
            pub const ALL: [$name; $count] = [$($name::$variant),+];

            /// Creates a register from its index.
            ///
            /// Returns `None` when `index >= Self::COUNT`.
            ///
            /// ```
            #[doc = concat!("use loopspec_isa::", stringify!($name), ";")]
            #[doc = concat!("assert_eq!(", stringify!($name), "::from_index(0), Some(", stringify!($name), "::ALL[0]));")]
            #[doc = concat!("assert_eq!(", stringify!($name), "::from_index(", stringify!($count), "), None);")]
            /// ```
            #[inline]
            pub const fn from_index(index: usize) -> Option<Self> {
                if index < $count {
                    Some(Self::ALL[index])
                } else {
                    None
                }
            }

            /// Returns the index of this register within its file.
            #[inline]
            pub const fn index(self) -> usize {
                self as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.index())
            }
        }
    };
}

define_regfile! {
    /// An integer register.
    ///
    /// SLA has 32 integer registers holding 64-bit values. [`Reg::R0`] is
    /// hardwired to zero: reads return `0` and writes are discarded, exactly
    /// like MIPS `$zero` / Alpha `R31`. The upper registers carry the
    /// software conventions used by the `loopspec-asm` program builder
    /// ([`Reg::SP`] as stack pointer and [`Reg::RA`] as link register), but
    /// nothing in the hardware model depends on those roles.
    ///
    /// ```
    /// use loopspec_isa::Reg;
    /// assert_eq!(Reg::SP, Reg::R29);
    /// assert_eq!(Reg::from_index(30), Some(Reg::RA));
    /// assert_eq!(Reg::R7.index(), 7);
    /// ```
    Reg, "r", 32,
    [
        R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
        R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
        R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
        R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
        R29 = 29, R30 = 30, R31 = 31,
    ]
}

define_regfile! {
    /// A floating-point register.
    ///
    /// SLA has 32 floating-point registers holding IEEE-754 `f64` values.
    /// Unlike the integer file there is no hardwired zero.
    ///
    /// ```
    /// use loopspec_isa::FReg;
    /// assert_eq!(FReg::F3.to_string(), "f3");
    /// ```
    FReg, "f", 32,
    [
        F0 = 0, F1 = 1, F2 = 2, F3 = 3, F4 = 4, F5 = 5, F6 = 6, F7 = 7,
        F8 = 8, F9 = 9, F10 = 10, F11 = 11, F12 = 12, F13 = 13, F14 = 14,
        F15 = 15, F16 = 16, F17 = 17, F18 = 18, F19 = 19, F20 = 20, F21 = 21,
        F22 = 22, F23 = 23, F24 = 24, F25 = 25, F26 = 26, F27 = 27, F28 = 28,
        F29 = 29, F30 = 30, F31 = 31,
    ]
}

impl Reg {
    /// The hardwired-zero register (reads as 0, writes ignored).
    pub const ZERO: Reg = Reg::R0;
    /// Software convention: stack pointer.
    pub const SP: Reg = Reg::R29;
    /// Software convention: link (return-address) register.
    pub const RA: Reg = Reg::R30;
    /// Software convention: assembler/builder scratch register.
    pub const AT: Reg = Reg::R31;

    /// Returns `true` for the hardwired-zero register.
    ///
    /// ```
    /// use loopspec_isa::Reg;
    /// assert!(Reg::R0.is_zero());
    /// assert!(!Reg::R1.is_zero());
    /// ```
    #[inline]
    pub const fn is_zero(self) -> bool {
        matches!(self, Reg::R0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_all_agree() {
        assert_eq!(Reg::ALL.len(), Reg::COUNT);
        assert_eq!(FReg::ALL.len(), FReg::COUNT);
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn from_index_round_trips() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg::from_index(i).unwrap().index(), i);
        }
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(FReg::from_index(99), None);
    }

    #[test]
    fn conventions() {
        assert_eq!(Reg::ZERO, Reg::R0);
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::RA.index(), 30);
        assert!(Reg::ZERO.is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R17.to_string(), "r17");
        assert_eq!(FReg::F0.to_string(), "f0");
    }
}
