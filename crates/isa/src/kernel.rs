//! The kernel registry: named, fingerprinted instruction bodies that a
//! [`Instruction::KernelCall`] dispatches natively.
//!
//! A *kernel* is a short straight-line-plus-backedge body written in a
//! restricted integer subset of the ISA. The CPU may execute a
//! registered kernel through a specialized dispatch loop instead of the
//! general interpreter, but the contract is strict **observational
//! equivalence**: the body's instructions retire one by one, each with
//! a synthesized trace event at a stable *virtual address*
//! ([`virtual_pc`]), bit-identical to inlining the body at those
//! addresses and running it through the ordinary interpreter. The loop
//! detector therefore sees the kernel's backward branch as a perfectly
//! ordinary static loop, keyed by a pc that no real program address can
//! collide with ([`KERNEL_PC_BASE`]).
//!
//! ## The kernel ABI
//!
//! A kernel behaves like a leaf call under the workspace calling
//! convention:
//!
//! * arguments arrive in `r2..r5` (the argument registers),
//! * the result is left in `r1` (the return-value register),
//! * `r1..r5`, `r7` and `r31` may be clobbered; every other register —
//!   including the generated-code virtual-register pools — is
//!   preserved,
//! * memory indices are masked with [`KMASK`] (baked into the body as
//!   an immediate), so a kernel touches at most `KMASK + 1` words per
//!   base pointer regardless of its trip count.
//!
//! ## Fingerprints
//!
//! Each body is hashed (FNV-1a over its id, name and encoded words)
//! into [`KernelDef::fingerprint`]; [`registry_fingerprint`] folds all
//! of them in id order. Snapshots and distributed job specs embed these
//! sums so state can never silently cross a kernel-set boundary: a
//! checkpoint taken under one registry refuses to resume under another
//! ([`check_state`]), and cached reports key on the registry hash.

use std::sync::OnceLock;

use crate::snap::{fnv1a_update, Dec, Enc, SnapError, FNV1A_INIT};
use crate::{Addr, AluOp, Cond, ControlKind, Instruction, Reg, RegUse};

/// Base of the virtual code-address space kernel bodies retire at.
///
/// Real programs are bounded far below this (the assembler's code
/// segment is a few thousand words), so virtual pcs can never collide
/// with a program address — the loop detector keys kernel loops
/// separately from everything else by construction.
pub const KERNEL_PC_BASE: u32 = 0x4000_0000;

/// Index mask baked into kernel bodies: array subscripts are masked to
/// `0..=KMASK`, bounding the memory footprint of any kernel invocation
/// to `KMASK + 1` words (32 KiB) per base pointer.
pub const KMASK: i32 = 4095;

/// The virtual address at which body instruction `bpc` of kernel `id`
/// retires: `KERNEL_PC_BASE | id << 16 | bpc`.
///
/// Stable across interpreters, shards and processes — it depends only
/// on the registry, never on machine state — which is what makes the
/// synthesized event stream reproducible.
#[inline]
pub fn virtual_pc(id: u32, bpc: u32) -> Addr {
    debug_assert!(id <= MAX_ID && bpc <= 0xffff);
    Addr::new(KERNEL_PC_BASE | id << 16 | bpc)
}

/// Largest registrable kernel id (ids pack into bits `[16, 30)` of the
/// virtual pc).
pub const MAX_ID: u32 = (1 << 14) - 1;

/// A registered kernel: a stable id, a human name, the body, and the
/// static tables the native dispatch loop consumes.
#[derive(Debug, Clone)]
pub struct KernelDef {
    /// Stable registry id (the `KernelCall` immediate).
    pub id: u32,
    /// Human-readable name (`kern:<name>` workload selectors use it).
    pub name: &'static str,
    /// One-line description for catalogs and docs.
    pub description: &'static str,
    body: Vec<Instruction>,
    kinds: Vec<ControlKind>,
    uses: Vec<RegUse>,
    fingerprint: u64,
}

impl KernelDef {
    fn new(id: u32, name: &'static str, description: &'static str, body: Vec<Instruction>) -> Self {
        assert!((1..=MAX_ID).contains(&id), "kernel id {id} out of range");
        if let Err(why) = validate_body(&body) {
            panic!("kernel {name} (id {id}) has an invalid body: {why}");
        }
        let mut h = fnv1a_update(FNV1A_INIT, &id.to_le_bytes());
        h = fnv1a_update(h, name.as_bytes());
        h = fnv1a_update(h, &(body.len() as u64).to_le_bytes());
        for i in &body {
            h = fnv1a_update(h, &i.encode().to_le_bytes());
        }
        KernelDef {
            id,
            name,
            description,
            kinds: body.iter().map(|i| i.control_kind()).collect(),
            uses: body.iter().map(|i| i.reg_use()).collect(),
            fingerprint: h,
            body,
        }
    }

    /// The kernel body: the exact instruction sequence whose retirement
    /// the dispatch synthesizes.
    pub fn body(&self) -> &[Instruction] {
        &self.body
    }

    /// Pre-computed [`ControlKind`] per body pc.
    pub fn kinds(&self) -> &[ControlKind] {
        &self.kinds
    }

    /// Pre-computed [`RegUse`] per body pc.
    pub fn uses(&self) -> &[RegUse] {
        &self.uses
    }

    /// FNV-1a sum over the kernel's id, name and encoded body words.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Why a body is not a valid kernel. See [`validate_body`].
pub type BodyError = &'static str;

/// Checks the kernel-body subset rules:
///
/// * non-empty, at most `0xffff` instructions (bodies pack their pc
///   into 16 virtual-address bits);
/// * integer straight-line ops and conditional branches only — no
///   halt, no calls or returns, no jumps, no FP, no nested kernels;
/// * branch targets stay inside `0..=len` (`len` — one past the end —
///   is the completion exit);
/// * every register read or written is in the kernel ABI set
///   (`r0..r5`, `r7`, `r31`), so a kernel can never disturb the
///   caller's preserved registers.
pub fn validate_body(body: &[Instruction]) -> Result<(), BodyError> {
    if body.is_empty() {
        return Err("empty body");
    }
    if body.len() > 0xffff {
        return Err("body exceeds 65535 instructions");
    }
    let ok_reg = |r: Reg| matches!(r.index(), 0..=5 | 7 | 31);
    for instr in body {
        match *instr {
            Instruction::Nop
            | Instruction::Alu { .. }
            | Instruction::AluImm { .. }
            | Instruction::LoadImm { .. }
            | Instruction::Load { .. }
            | Instruction::Store { .. } => {}
            Instruction::Branch { target, .. } => {
                if target.index() as usize > body.len() {
                    return Err("branch target outside the body");
                }
            }
            _ => return Err("instruction outside the kernel subset"),
        }
        let u = instr.reg_use();
        if !u.reads_iter().all(ok_reg) || !u.write.is_none_or(ok_reg) {
            return Err("register outside the kernel ABI set");
        }
    }
    Ok(())
}

fn li(rd: Reg, imm: i64) -> Instruction {
    Instruction::LoadImm { rd, imm }
}
fn alu(op: AluOp, rd: Reg, ra: Reg, rb: Reg) -> Instruction {
    Instruction::Alu { op, rd, ra, rb }
}
fn alui(op: AluOp, rd: Reg, ra: Reg, imm: i32) -> Instruction {
    Instruction::AluImm { op, rd, ra, imm }
}
fn branch(cond: Cond, ra: Reg, rb: Reg, target: u32) -> Instruction {
    Instruction::Branch {
        cond,
        ra,
        rb,
        target: Addr::new(target),
    }
}

/// The built-in kernels. Bodies follow one shape — init, guard branch
/// for the zero-trip case, counted loop with a backward branch — so the
/// loop detector sees each as one static loop at its virtual address.
///
/// ABI reminder: `r2` is the first argument (always the trip count
/// `n`), `r1` the result, `r7`/`r31` scratch.
fn builtins() -> Vec<KernelDef> {
    use AluOp::*;
    use Reg::{R0, R1, R2, R3, R31, R4, R5, R7};
    let ksum = vec![
        li(R1, 0),                     // 0: acc <- 0
        li(R31, 0),                    // 1: i <- 0
        branch(Cond::GeS, R31, R2, 9), // 2: zero-trip guard
        alui(And, R7, R31, KMASK),     // 3: idx <- i & KMASK
        alu(Add, R7, R7, R3),          // 4: addr <- base + idx
        Instruction::Load {
            rd: R7,
            base: R7,
            offset: 0,
        }, // 5: tmp <- mem[addr]
        alu(Add, R1, R1, R7),          // 6: acc += tmp
        alui(Add, R31, R31, 1),        // 7: i += 1
        branch(Cond::LtS, R31, R2, 3), // 8: loop back edge
    ];
    let kfill = vec![
        alu(Add, R1, R4, R0),          // 0: val <- seed
        li(R31, 0),                    // 1: i <- 0
        branch(Cond::GeS, R31, R2, 9), // 2: zero-trip guard
        alui(And, R7, R31, KMASK),     // 3: idx <- i & KMASK
        alu(Add, R7, R7, R3),          // 4: addr <- base + idx
        Instruction::Store {
            src: R1,
            base: R7,
            offset: 0,
        }, // 5: mem[addr] <- val
        alui(Add, R1, R1, 5),          // 6: val += 5
        alui(Add, R31, R31, 1),        // 7: i += 1
        branch(Cond::LtS, R31, R2, 3), // 8: loop back edge
    ];
    let kdot = vec![
        li(R1, 0),                      // 0: acc <- 0
        li(R31, 0),                     // 1: i <- 0
        branch(Cond::GeS, R31, R2, 12), // 2: zero-trip guard
        alui(And, R7, R31, KMASK),      // 3: idx <- i & KMASK
        alu(Add, R5, R7, R3),           // 4: pa <- a + idx
        Instruction::Load {
            rd: R5,
            base: R5,
            offset: 0,
        }, // 5: va <- mem[pa]
        alu(Add, R7, R7, R4),           // 6: pb <- b + idx
        Instruction::Load {
            rd: R7,
            base: R7,
            offset: 0,
        }, // 7: vb <- mem[pb]
        alu(Mul, R5, R5, R7),           // 8: va *= vb
        alu(Add, R1, R1, R5),           // 9: acc += va
        alui(Add, R31, R31, 1),         // 10: i += 1
        branch(Cond::LtS, R31, R2, 3),  // 11: loop back edge
    ];
    let khash = vec![
        alu(Add, R1, R3, R0),             // 0: h <- seed
        li(R31, 0),                       // 1: i <- 0
        branch(Cond::GeS, R31, R2, 9),    // 2: zero-trip guard
        alui(Mul, R1, R1, 1_103_515_245), // 3: h *= LCG multiplier
        alu(Add, R1, R1, R31),            // 4: h += i
        alui(Shr, R7, R1, 17),            // 5: t <- h >> 17
        alu(Xor, R1, R1, R7),             // 6: h ^= t
        alui(Add, R31, R31, 1),           // 7: i += 1
        branch(Cond::LtS, R31, R2, 3),    // 8: loop back edge
    ];
    vec![
        KernelDef::new(
            1,
            "ksum",
            "sum of a masked array window: r1 <- Σ mem[r3 + (i & KMASK)]",
            ksum,
        ),
        KernelDef::new(
            2,
            "kfill",
            "arithmetic fill: mem[r3 + (i & KMASK)] <- r4 + 5i",
            kfill,
        ),
        KernelDef::new(
            3,
            "kdot",
            "dot product of two masked windows at r3 and r4",
            kdot,
        ),
        KernelDef::new(
            4,
            "khash",
            "pure-register LCG/xorshift mix of r3 over n rounds",
            khash,
        ),
    ]
}

fn registry() -> &'static [KernelDef] {
    static REGISTRY: OnceLock<Vec<KernelDef>> = OnceLock::new();
    REGISTRY.get_or_init(builtins)
}

/// All registered kernels, in id order.
pub fn all() -> &'static [KernelDef] {
    registry()
}

/// Looks a kernel up by registry id.
pub fn lookup(id: u32) -> Option<&'static KernelDef> {
    registry().iter().find(|k| k.id == id)
}

/// Looks a kernel up by name (the `kern:<name>` selector).
pub fn by_name(name: &str) -> Option<&'static KernelDef> {
    registry().iter().find(|k| k.name == name)
}

/// FNV-1a fold of every registered kernel's fingerprint, in id order —
/// the one number that identifies "the kernel set this process runs".
pub fn registry_fingerprint() -> u64 {
    let mut h = FNV1A_INIT;
    for k in registry() {
        h = fnv1a_update(h, &k.fingerprint.to_le_bytes());
    }
    h
}

/// Layout tag opening the kernel-registry snapshot section.
const SECTION_TAG: u8 = 0x4b; // 'K'

/// Writes the kernel-registry echo section: tag, kernel count, then
/// each kernel's `(id, fingerprint)` in id order, closed by the folded
/// [`registry_fingerprint`].
///
/// The section describes the *registry*, not machine state — resume-
/// time kernel progress lives in the CPU snapshot. Embedding it lets
/// [`check_state`] refuse checkpoints from a differently built binary.
pub fn save_state(enc: &mut Enc) {
    enc.u8(SECTION_TAG);
    let ks = registry();
    enc.u32(ks.len() as u32);
    for k in ks {
        enc.u32(k.id);
        enc.u64(k.fingerprint);
    }
    enc.u64(registry_fingerprint());
}

/// Verifies a section written by [`save_state`] against the live
/// registry.
///
/// # Errors
///
/// [`SnapError::Corrupt`] for a bad tag or impossible count;
/// [`SnapError::Mismatch`] when the snapshot's kernel set differs from
/// this process's — resuming would silently change what `KernelCall`s
/// execute, so it is refused.
pub fn check_state(dec: &mut Dec<'_>) -> Result<(), SnapError> {
    dec.tag(SECTION_TAG, "kernel section tag")?;
    let n = dec.u32()? as usize;
    let ks = registry();
    if n > ks.len() + 1024 {
        return Err(SnapError::Corrupt {
            what: "kernel count",
        });
    }
    if n != ks.len() {
        return Err(SnapError::Mismatch {
            what: "kernel count",
        });
    }
    for k in ks {
        if dec.u32()? != k.id || dec.u64()? != k.fingerprint {
            return Err(SnapError::Mismatch {
                what: "kernel fingerprint",
            });
        }
    }
    if dec.u64()? != registry_fingerprint() {
        return Err(SnapError::Mismatch {
            what: "kernel registry fingerprint",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_register_and_validate() {
        let ks = all();
        assert_eq!(ks.len(), 4);
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(k.id as usize, i + 1, "ids are dense from 1");
            assert!(validate_body(k.body()).is_ok());
            assert_eq!(k.kinds().len(), k.body().len());
            assert_eq!(k.uses().len(), k.body().len());
            assert_eq!(lookup(k.id).unwrap().name, k.name);
            assert_eq!(by_name(k.name).unwrap().id, k.id);
        }
        assert!(lookup(0).is_none());
        assert!(lookup(99).is_none());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn fingerprints_are_distinct_and_fold_into_the_registry_sum() {
        let ks = all();
        for a in ks {
            for b in ks {
                if a.id != b.id {
                    assert_ne!(a.fingerprint(), b.fingerprint());
                }
            }
        }
        // Deterministic across calls.
        assert_eq!(registry_fingerprint(), registry_fingerprint());
    }

    #[test]
    fn virtual_pcs_are_disjoint_per_kernel_and_above_program_space() {
        let a = virtual_pc(1, 0);
        let b = virtual_pc(2, 0);
        assert!(a.index() >= KERNEL_PC_BASE);
        assert_ne!(a, b);
        assert_eq!(virtual_pc(3, 7).index() & 0xffff, 7);
    }

    #[test]
    fn body_validation_rejects_escapes() {
        assert_eq!(validate_body(&[]), Err("empty body"));
        assert!(validate_body(&[Instruction::Halt]).is_err());
        assert!(validate_body(&[Instruction::Ret { link: Reg::RA }]).is_err());
        assert!(validate_body(&[Instruction::KernelCall { id: 1 }]).is_err());
        assert!(validate_body(&[Instruction::Jump {
            target: Addr::new(0)
        }])
        .is_err());
        // Branch past one-past-the-end is invalid; to it is the exit.
        assert!(validate_body(&[branch(Cond::Eq, Reg::R0, Reg::R0, 2)]).is_err());
        assert!(validate_body(&[branch(Cond::Eq, Reg::R0, Reg::R0, 1)]).is_ok());
        // A preserved register outside the ABI set is refused.
        assert!(validate_body(&[alui(AluOp::Add, Reg::R8, Reg::R0, 1)]).is_err());
        assert!(validate_body(&[alui(AluOp::Add, Reg::R1, Reg::R0, 1)]).is_ok());
    }

    #[test]
    fn snapshot_section_round_trips_and_rejects_tampering() {
        let mut enc = Enc::new();
        save_state(&mut enc);
        let bytes = enc.into_bytes();
        check_state(&mut Dec::new(&bytes)).unwrap();
        // A flipped fingerprint byte is a mismatch, not a panic.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x40;
        assert!(matches!(
            check_state(&mut Dec::new(&bad)),
            Err(SnapError::Mismatch { .. })
        ));
        // A wrong tag is corrupt.
        let mut bad = bytes.clone();
        bad[0] = 0x00;
        assert!(matches!(
            check_state(&mut Dec::new(&bad)),
            Err(SnapError::Corrupt { .. })
        ));
        // Truncation is a clean typed error.
        for cut in 0..bytes.len() {
            assert!(check_state(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }
}
