//! Code addresses.

use std::fmt;
use std::ops::{Add, Sub};

/// A code address: the index of an instruction in program memory.
///
/// SLA code is word-addressed — every instruction occupies one slot and
/// `Addr(n)` names the `n`-th instruction. The loop detector's central
/// notions (*"backward branch"*, *"loop body `[T, B]`"*) are comparisons on
/// this type, so it implements a total order.
///
/// ```
/// use loopspec_isa::Addr;
/// let t = Addr::new(10);
/// let b = Addr::new(20);
/// assert!(t < b);
/// assert_eq!(b - t, 10);
/// assert_eq!((t + 3).index(), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Addr(u32);

impl Addr {
    /// The address of the first instruction slot.
    pub const ZERO: Addr = Addr(0);

    /// Creates an address from an instruction index.
    ///
    /// ```
    /// use loopspec_isa::Addr;
    /// assert_eq!(Addr::new(7).index(), 7);
    /// ```
    #[inline]
    pub const fn new(index: u32) -> Self {
        Addr(index)
    }

    /// Returns the instruction index of this address.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the address of the next instruction slot.
    ///
    /// This is the fall-through successor of a non-control instruction and
    /// the return address of a call at `self`.
    ///
    /// # Panics
    ///
    /// Panics if the address space (2³² slots) would overflow; programs of
    /// that size cannot be assembled in the first place.
    #[inline]
    pub fn next(self) -> Self {
        Addr(self.0.checked_add(1).expect("code address overflow"))
    }

    /// Returns `true` when a transfer from `self` to `target` moves
    /// backwards (or to the same instruction), the defining property of a
    /// loop-closing branch in the paper's model.
    ///
    /// ```
    /// use loopspec_isa::Addr;
    /// assert!(Addr::new(9).is_backward_to(Addr::new(4)));
    /// assert!(Addr::new(9).is_backward_to(Addr::new(9))); // self-loop
    /// assert!(!Addr::new(4).is_backward_to(Addr::new(9)));
    /// ```
    #[inline]
    pub fn is_backward_to(self, target: Addr) -> bool {
        target <= self
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#06x}", self.0)
    }
}

impl From<u32> for Addr {
    fn from(index: u32) -> Self {
        Addr(index)
    }
}

impl From<Addr> for u32 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl From<Addr> for usize {
    fn from(a: Addr) -> Self {
        a.0 as usize
    }
}

impl Add<u32> for Addr {
    type Output = Addr;

    fn add(self, rhs: u32) -> Addr {
        Addr(self.0.checked_add(rhs).expect("code address overflow"))
    }
}

impl Sub<Addr> for Addr {
    type Output = u32;

    /// Distance in instruction slots between two addresses.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    fn sub(self, rhs: Addr) -> u32 {
        self.0
            .checked_sub(rhs.0)
            .expect("address subtraction underflow")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_index_order() {
        assert!(Addr::new(1) < Addr::new(2));
        assert!(Addr::new(2) <= Addr::new(2));
        assert_eq!(Addr::new(5), Addr::new(5));
    }

    #[test]
    fn next_advances_one_slot() {
        assert_eq!(Addr::new(41).next(), Addr::new(42));
    }

    #[test]
    fn backward_classification() {
        assert!(Addr::new(10).is_backward_to(Addr::new(0)));
        assert!(Addr::new(10).is_backward_to(Addr::new(10)));
        assert!(!Addr::new(10).is_backward_to(Addr::new(11)));
    }

    #[test]
    fn conversions_round_trip() {
        let a = Addr::from(123u32);
        assert_eq!(u32::from(a), 123);
        assert_eq!(usize::from(a), 123);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Addr::new(10) + 5, Addr::new(15));
        assert_eq!(Addr::new(10) - Addr::new(4), 6);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Addr::new(1) - Addr::new(2);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Addr::new(255).to_string(), "@0x00ff");
    }
}
