//! The SLA instruction set and its static classification.

use std::fmt;

use crate::{Addr, AluOp, Cond, FAluOp, FReg, FUnOp, Reg};

/// An SLA machine instruction.
///
/// Every instruction occupies one code word (see [`Addr`]). The set is
/// deliberately small and regular; see the [crate docs](crate) for why this
/// suffices to reproduce the paper's experiments.
///
/// Construction is by ordinary enum literals; higher-level program
/// construction (labels, structured loops, calls) lives in `loopspec-asm`.
///
/// ```
/// use loopspec_isa::{Instruction, Reg, AluOp};
/// // r3 <- r1 + r2
/// let i = Instruction::Alu { op: AluOp::Add, rd: Reg::R3, ra: Reg::R1, rb: Reg::R2 };
/// assert_eq!(i.to_string(), "add r3, r1, r2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Stops the machine; the only way a program terminates normally.
    Halt,
    /// `rd <- op(ra, rb)` — register-register integer ALU operation.
    Alu {
        /// Operation to apply.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `rd <- op(ra, imm)` — register-immediate integer ALU operation.
    AluImm {
        /// Operation to apply.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Sign-extended immediate operand.
        imm: i32,
    },
    /// `rd <- imm` — load a (sign-extended) 48-bit immediate constant.
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value; must fit in 48 signed bits to be encodable.
        imm: i64,
    },
    /// `rd <- mem[ra + offset]` — load a 64-bit word.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset added to the base.
        offset: i32,
    },
    /// `mem[base + offset] <- src` — store a 64-bit word.
    Store {
        /// Source register holding the value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset added to the base.
        offset: i32,
    },
    /// `fd <- op(fa, fb)` — binary floating-point operation.
    FAlu {
        /// Operation to apply.
        op: FAluOp,
        /// Destination FP register.
        fd: FReg,
        /// First source FP register.
        fa: FReg,
        /// Second source FP register.
        fb: FReg,
    },
    /// `fd <- op(fa)` — unary floating-point operation.
    FUn {
        /// Operation to apply.
        op: FUnOp,
        /// Destination FP register.
        fd: FReg,
        /// Source FP register.
        fa: FReg,
    },
    /// `fd <- value` — load an `f32` immediate (widened to `f64`).
    FLoadImm {
        /// Destination FP register.
        fd: FReg,
        /// Immediate value.
        value: f32,
    },
    /// `fd <- mem[base + offset]` — load a 64-bit word as `f64` bits.
    FLoad {
        /// Destination FP register.
        fd: FReg,
        /// Base address register (integer file).
        base: Reg,
        /// Word offset added to the base.
        offset: i32,
    },
    /// `mem[base + offset] <- fsrc` — store `f64` bits as a 64-bit word.
    FStore {
        /// Source FP register.
        fsrc: FReg,
        /// Base address register (integer file).
        base: Reg,
        /// Word offset added to the base.
        offset: i32,
    },
    /// `rd <- cond(fa, fb) ? 1 : 0` — floating-point compare into an
    /// integer register (FP control flow goes through integer branches).
    FCmp {
        /// Condition evaluated on the FP operands' total order.
        cond: Cond,
        /// Destination integer register.
        rd: Reg,
        /// First source FP register.
        fa: FReg,
        /// Second source FP register.
        fb: FReg,
    },
    /// `fd <- (f64) ra` — integer-to-float conversion (signed).
    ItoF {
        /// Destination FP register.
        fd: FReg,
        /// Source integer register.
        ra: Reg,
    },
    /// `rd <- (i64) fa` — float-to-integer conversion (truncating; saturates
    /// at the `i64` range, `0` for NaN).
    FtoI {
        /// Destination integer register.
        rd: Reg,
        /// Source FP register.
        fa: FReg,
    },
    /// Conditional branch: `if cond(ra, rb) { pc <- target }`.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
        /// Branch target address.
        target: Addr,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target address.
        target: Addr,
    },
    /// Unconditional indirect jump: `pc <- base` (register holds a code
    /// address). Used for switch tables and computed gotos.
    JumpInd {
        /// Register holding the target code address.
        base: Reg,
    },
    /// Subroutine call: `link <- pc + 1; pc <- target`.
    Call {
        /// Call target address.
        target: Addr,
        /// Link register receiving the return address.
        link: Reg,
    },
    /// Indirect subroutine call: `link <- pc + 1; pc <- base`.
    CallInd {
        /// Register holding the callee's code address.
        base: Reg,
        /// Link register receiving the return address.
        link: Reg,
    },
    /// Subroutine return: `pc <- link`.
    Ret {
        /// Register holding the return address.
        link: Reg,
    },
    /// Dispatch into a registered kernel (see [`crate::kernel`]): the
    /// kernel's body executes to completion and control resumes at the
    /// next instruction.
    ///
    /// The dispatch itself retires no event — the body's instructions
    /// retire individually at synthesized virtual addresses
    /// ([`crate::kernel::virtual_pc`]), so the committed event stream is
    /// bit-identical to inlining the body at those addresses.
    KernelCall {
        /// Registry id of the kernel to run.
        id: u32,
    },
}

/// Static control-flow classification of an instruction.
///
/// This is the *event language* consumed by the dynamic loop detector: the
/// Current Loop Stack update rules of the paper (§2.2) branch on exactly
/// these categories.
///
/// ```
/// use loopspec_isa::{Instruction, ControlKind, Reg, Addr};
/// let call = Instruction::Call { target: Addr::new(100), link: Reg::RA };
/// assert_eq!(call.control_kind(), ControlKind::Call { target: Addr::new(100) });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ControlKind {
    /// Not a control-transfer instruction.
    None,
    /// Conditional branch with a statically known target.
    CondBranch {
        /// Target if taken.
        target: Addr,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target.
        target: Addr,
    },
    /// Unconditional indirect jump (target known only dynamically).
    IndirectJump,
    /// Direct subroutine call. Calls do **not** terminate loop executions
    /// (paper §2.1: subroutine bodies belong to the loop execution but not
    /// to the static loop body).
    Call {
        /// Callee address.
        target: Addr,
    },
    /// Indirect subroutine call.
    IndirectCall,
    /// Subroutine return. Terminates every current loop whose static body
    /// contains the return instruction (paper §2.2).
    Ret,
    /// Machine halt.
    Halt,
}

/// Register-use summary of an instruction: which architectural registers it
/// reads and writes.
///
/// Produced by [`Instruction::reg_use`]; consumed by the live-in detector
/// of `loopspec-dataspec`. Fixed-capacity by construction: no SLA
/// instruction reads more than three or writes more than one register per
/// file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegUse {
    /// Integer registers read (in operand order).
    pub reads: [Option<Reg>; 3],
    /// Integer register written, if any.
    pub write: Option<Reg>,
    /// FP registers read (in operand order).
    pub freads: [Option<FReg>; 2],
    /// FP register written, if any.
    pub fwrite: Option<FReg>,
}

impl RegUse {
    /// Iterates over the integer registers read.
    pub fn reads_iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.reads.iter().flatten().copied()
    }

    /// Iterates over the FP registers read.
    pub fn freads_iter(&self) -> impl Iterator<Item = FReg> + '_ {
        self.freads.iter().flatten().copied()
    }
}

impl Instruction {
    /// Classifies the instruction's control-flow behaviour.
    #[inline]
    pub fn control_kind(&self) -> ControlKind {
        match *self {
            Instruction::Branch { target, .. } => ControlKind::CondBranch { target },
            Instruction::Jump { target } => ControlKind::Jump { target },
            Instruction::JumpInd { .. } => ControlKind::IndirectJump,
            Instruction::Call { target, .. } => ControlKind::Call { target },
            Instruction::CallInd { .. } => ControlKind::IndirectCall,
            Instruction::Ret { .. } => ControlKind::Ret,
            Instruction::Halt => ControlKind::Halt,
            _ => ControlKind::None,
        }
    }

    /// Returns `true` for any control-transfer instruction (including
    /// calls, returns and halt).
    #[inline]
    pub fn is_control(&self) -> bool {
        !matches!(self.control_kind(), ControlKind::None)
    }

    /// Returns `true` if the instruction accesses data memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::FLoad { .. }
                | Instruction::FStore { .. }
        )
    }

    /// Computes the register-use summary (architectural reads and writes).
    ///
    /// Reads of the hardwired-zero register are still reported (the value
    /// is architecturally read, it just happens to be constant); writes to
    /// it are reported too — the *CPU* discards them, but the dataflow
    /// summary is purely syntactic.
    pub fn reg_use(&self) -> RegUse {
        let mut u = RegUse::default();
        match *self {
            Instruction::Nop | Instruction::Halt => {}
            Instruction::Alu { rd, ra, rb, .. } => {
                u.reads = [Some(ra), Some(rb), None];
                u.write = Some(rd);
            }
            Instruction::AluImm { rd, ra, .. } => {
                u.reads = [Some(ra), None, None];
                u.write = Some(rd);
            }
            Instruction::LoadImm { rd, .. } => u.write = Some(rd),
            Instruction::Load { rd, base, .. } => {
                u.reads = [Some(base), None, None];
                u.write = Some(rd);
            }
            Instruction::Store { src, base, .. } => {
                u.reads = [Some(base), Some(src), None];
            }
            Instruction::FAlu { fd, fa, fb, .. } => {
                u.freads = [Some(fa), Some(fb)];
                u.fwrite = Some(fd);
            }
            Instruction::FUn { fd, fa, .. } => {
                u.freads = [Some(fa), None];
                u.fwrite = Some(fd);
            }
            Instruction::FLoadImm { fd, .. } => u.fwrite = Some(fd),
            Instruction::FLoad { fd, base, .. } => {
                u.reads = [Some(base), None, None];
                u.fwrite = Some(fd);
            }
            Instruction::FStore { fsrc, base, .. } => {
                u.reads = [Some(base), None, None];
                u.freads = [Some(fsrc), None];
            }
            Instruction::FCmp { rd, fa, fb, .. } => {
                u.freads = [Some(fa), Some(fb)];
                u.write = Some(rd);
            }
            Instruction::ItoF { fd, ra } => {
                u.reads = [Some(ra), None, None];
                u.fwrite = Some(fd);
            }
            Instruction::FtoI { rd, fa } => {
                u.freads = [Some(fa), None];
                u.write = Some(rd);
            }
            Instruction::Branch { ra, rb, .. } => {
                u.reads = [Some(ra), Some(rb), None];
            }
            Instruction::Jump { .. } => {}
            Instruction::JumpInd { base } => {
                u.reads = [Some(base), None, None];
            }
            Instruction::Call { link, .. } => u.write = Some(link),
            Instruction::CallInd { base, link } => {
                u.reads = [Some(base), None, None];
                u.write = Some(link);
            }
            Instruction::Ret { link } => {
                u.reads = [Some(link), None, None];
            }
            // The dispatch reads the argument registers and clobbers the
            // kernel scratch set, but it emits no event of its own: the
            // body's instructions carry the architectural reads/writes.
            Instruction::KernelCall { .. } => {}
        }
        u
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Nop => f.write_str("nop"),
            Instruction::Halt => f.write_str("halt"),
            Instruction::Alu { op, rd, ra, rb } => write!(f, "{op} {rd}, {ra}, {rb}"),
            Instruction::AluImm { op, rd, ra, imm } => write!(f, "{op}i {rd}, {ra}, {imm}"),
            Instruction::LoadImm { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instruction::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Instruction::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Instruction::FAlu { op, fd, fa, fb } => write!(f, "{op} {fd}, {fa}, {fb}"),
            Instruction::FUn { op, fd, fa } => write!(f, "{op} {fd}, {fa}"),
            Instruction::FLoadImm { fd, value } => write!(f, "fli {fd}, {value}"),
            Instruction::FLoad { fd, base, offset } => write!(f, "fld {fd}, {offset}({base})"),
            Instruction::FStore { fsrc, base, offset } => {
                write!(f, "fst {fsrc}, {offset}({base})")
            }
            Instruction::FCmp { cond, rd, fa, fb } => write!(f, "fcmp.{cond} {rd}, {fa}, {fb}"),
            Instruction::ItoF { fd, ra } => write!(f, "itof {fd}, {ra}"),
            Instruction::FtoI { rd, fa } => write!(f, "ftoi {rd}, {fa}"),
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } => write!(f, "b.{cond} {ra}, {rb}, {target}"),
            Instruction::Jump { target } => write!(f, "j {target}"),
            Instruction::JumpInd { base } => write!(f, "jr {base}"),
            Instruction::Call { target, link } => write!(f, "call {target}, {link}"),
            Instruction::CallInd { base, link } => write!(f, "callr {base}, {link}"),
            Instruction::Ret { link } => write!(f, "ret {link}"),
            Instruction::KernelCall { id } => write!(f, "kcall {id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_kind_classification() {
        let t = Addr::new(5);
        assert_eq!(Instruction::Nop.control_kind(), ControlKind::None);
        assert_eq!(Instruction::Halt.control_kind(), ControlKind::Halt);
        assert_eq!(
            Instruction::Jump { target: t }.control_kind(),
            ControlKind::Jump { target: t }
        );
        assert_eq!(
            Instruction::JumpInd { base: Reg::R1 }.control_kind(),
            ControlKind::IndirectJump
        );
        assert_eq!(
            Instruction::Ret { link: Reg::RA }.control_kind(),
            ControlKind::Ret
        );
        assert_eq!(
            Instruction::CallInd {
                base: Reg::R1,
                link: Reg::RA
            }
            .control_kind(),
            ControlKind::IndirectCall
        );
        assert!(Instruction::Halt.is_control());
        assert!(!Instruction::Nop.is_control());
    }

    #[test]
    fn mem_classification() {
        assert!(Instruction::Load {
            rd: Reg::R1,
            base: Reg::R2,
            offset: 0
        }
        .is_mem());
        assert!(Instruction::FStore {
            fsrc: FReg::F1,
            base: Reg::R2,
            offset: 4
        }
        .is_mem());
        assert!(!Instruction::Nop.is_mem());
    }

    #[test]
    fn reg_use_alu() {
        let u = Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::R3,
            ra: Reg::R1,
            rb: Reg::R2,
        }
        .reg_use();
        assert_eq!(u.reads_iter().collect::<Vec<_>>(), vec![Reg::R1, Reg::R2]);
        assert_eq!(u.write, Some(Reg::R3));
        assert_eq!(u.fwrite, None);
    }

    #[test]
    fn reg_use_store_reads_both() {
        let u = Instruction::Store {
            src: Reg::R7,
            base: Reg::SP,
            offset: -1,
        }
        .reg_use();
        assert_eq!(u.reads_iter().collect::<Vec<_>>(), vec![Reg::SP, Reg::R7]);
        assert_eq!(u.write, None);
    }

    #[test]
    fn reg_use_call_writes_link() {
        let u = Instruction::Call {
            target: Addr::new(9),
            link: Reg::RA,
        }
        .reg_use();
        assert_eq!(u.write, Some(Reg::RA));
        assert_eq!(u.reads_iter().count(), 0);
    }

    #[test]
    fn reg_use_fp() {
        let u = Instruction::FAlu {
            op: FAluOp::Mul,
            fd: FReg::F0,
            fa: FReg::F1,
            fb: FReg::F2,
        }
        .reg_use();
        assert_eq!(
            u.freads_iter().collect::<Vec<_>>(),
            vec![FReg::F1, FReg::F2]
        );
        assert_eq!(u.fwrite, Some(FReg::F0));
    }

    #[test]
    fn display_round_trips_visually() {
        let i = Instruction::Branch {
            cond: Cond::Ne,
            ra: Reg::R4,
            rb: Reg::R0,
            target: Addr::new(16),
        };
        assert_eq!(i.to_string(), "b.ne r4, r0, @0x0010");
    }
}
