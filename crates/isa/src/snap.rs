//! The snapshot byte codec: deterministic, std-only serialization
//! primitives shared by every layer's checkpoint/resume support.
//!
//! The paper's mechanisms are small fixed hardware structures (the CLS,
//! the LET/LIT, the speculation engine's per-execution bookkeeping), so
//! their software twins are snapshotable at any retired-instruction
//! boundary. This module provides the wire primitives those snapshots
//! are written in: a byte [`Enc`]oder and a bounds-checked
//! [`Dec`]oder over fixed-width little-endian fields.
//!
//! Design rules, chosen so snapshots can cross process boundaries and
//! be compared byte-for-byte:
//!
//! * **Deterministic.** Equal state must produce equal bytes. Writers
//!   must therefore iterate unordered containers (hash maps) in a
//!   sorted order; every `save_state` in the workspace does.
//! * **Self-checking.** Every variable-length read is bounds-checked
//!   ([`SnapError::Truncated`]); collection counts are validated
//!   against the remaining input ([`Dec::count`]) so corrupt input can
//!   never trigger an over-allocation; decoders verify layout tags
//!   ([`Dec::tag`]) and configuration echoes
//!   ([`SnapError::Mismatch`]).
//! * **No external dependencies.** The build environment is offline by
//!   policy; the codec is ~200 lines of `std`.
//!
//! ```
//! use loopspec_isa::snap::{Dec, Enc};
//!
//! let mut enc = Enc::new();
//! enc.u32(7);
//! enc.bytes(b"loop");
//! let buf = enc.into_bytes();
//!
//! let mut dec = Dec::new(&buf);
//! assert_eq!(dec.u32()?, 7);
//! assert_eq!(dec.bytes()?, b"loop");
//! dec.finish()?;
//! # Ok::<(), loopspec_isa::snap::SnapError>(())
//! ```

use std::fmt;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the field at byte offset `at` was complete.
    Truncated {
        /// Byte offset at which the read was attempted.
        at: usize,
    },
    /// A field held a value no writer produces (bad tag, bad bool,
    /// impossible count).
    Corrupt {
        /// What was being decoded.
        what: &'static str,
    },
    /// The snapshot is well-formed but was taken from a differently
    /// configured object (e.g. an engine with another TU count).
    Mismatch {
        /// Which configuration echo disagreed.
        what: &'static str,
    },
    /// Decoding finished with input left over.
    Trailing {
        /// Number of undecoded bytes.
        bytes: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { at } => write!(f, "snapshot truncated at byte {at}"),
            SnapError::Corrupt { what } => write!(f, "snapshot corrupt: bad {what}"),
            SnapError::Mismatch { what } => {
                write!(
                    f,
                    "snapshot was taken from a different configuration: {what}"
                )
            }
            SnapError::Trailing { bytes } => {
                write!(f, "snapshot has {bytes} trailing bytes after decoding")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// A snapshot byte encoder: fixed-width little-endian fields appended to
/// a growable buffer. See the [module docs](self) for the format rules.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    #[inline]
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (`0`/`1`).
    #[inline]
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// A bounds-checked snapshot decoder over a byte slice.
///
/// Every read either returns the decoded value or a [`SnapError`]; no
/// read panics and no count can cause an allocation larger than the
/// input itself.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { at: self.at });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `bool` written by [`Enc::bool`].
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt { what: "bool" }),
        }
    }

    /// Reads a length-prefixed byte string written by [`Enc::bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(SnapError::Truncated { at: self.at });
        }
        self.take(n as usize)
    }

    /// Reads a collection count, validating it against the remaining
    /// input (every element occupies at least one byte, so a count
    /// larger than `remaining()` is corrupt — this is what makes
    /// pre-allocating `count` elements safe).
    pub fn count(&mut self) -> Result<usize, SnapError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(SnapError::Corrupt { what: "count" });
        }
        Ok(n as usize)
    }

    /// Reads one byte and requires it to equal `expected` — layout tags
    /// that catch section mix-ups early.
    pub fn tag(&mut self, expected: u8, what: &'static str) -> Result<(), SnapError> {
        if self.u8()? != expected {
            return Err(SnapError::Corrupt { what });
        }
        Ok(())
    }

    /// Requires the whole input to have been consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Trailing {
                bytes: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.bool(true);
        e.bool(false);
        e.bytes(b"chunk");
        let buf = e.into_bytes();

        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), b"chunk");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut e = Enc::new();
        e.u64(7);
        let buf = e.into_bytes();
        let mut d = Dec::new(&buf[..3]);
        assert_eq!(d.u64(), Err(SnapError::Truncated { at: 0 }));
    }

    #[test]
    fn oversized_counts_and_byte_strings_are_corrupt() {
        let mut e = Enc::new();
        e.u64(1 << 40); // a count no writer would emit for 8 bytes of input
        let buf = e.into_bytes();
        assert_eq!(
            Dec::new(&buf).count(),
            Err(SnapError::Corrupt { what: "count" })
        );
        assert!(matches!(
            Dec::new(&buf).bytes(),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_bool_and_bad_tag_are_corrupt() {
        let buf = [7u8];
        assert_eq!(
            Dec::new(&buf).bool(),
            Err(SnapError::Corrupt { what: "bool" })
        );
        assert_eq!(
            Dec::new(&buf).tag(3, "section"),
            Err(SnapError::Corrupt { what: "section" })
        );
        assert!(Dec::new(&buf).tag(7, "section").is_ok());
    }

    #[test]
    fn finish_reports_trailing_bytes() {
        let buf = [0u8; 3];
        let mut d = Dec::new(&buf);
        d.u8().unwrap();
        assert_eq!(d.finish(), Err(SnapError::Trailing { bytes: 2 }));
        assert_eq!(d.remaining(), 2);
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(SnapError::Truncated { at: 9 }.to_string().contains('9'));
        assert!(SnapError::Corrupt { what: "tag" }
            .to_string()
            .contains("tag"));
        assert!(SnapError::Mismatch { what: "tus" }
            .to_string()
            .contains("tus"));
        assert!(SnapError::Trailing { bytes: 2 }.to_string().contains('2'));
    }
}
