//! The snapshot byte codec: deterministic, std-only serialization
//! primitives shared by every layer's checkpoint/resume support.
//!
//! The paper's mechanisms are small fixed hardware structures (the CLS,
//! the LET/LIT, the speculation engine's per-execution bookkeeping), so
//! their software twins are snapshotable at any retired-instruction
//! boundary. This module provides the wire primitives those snapshots
//! are written in: a byte [`Enc`]oder and a bounds-checked
//! [`Dec`]oder over fixed-width little-endian fields, plus the
//! length-prefixed, checksummed [`frame`] container and its incremental
//! [`FrameBuf`] decoder used when encoded state crosses a byte stream
//! (a pipe or socket) instead of a function boundary.
//!
//! Design rules, chosen so snapshots can cross process boundaries and
//! be compared byte-for-byte:
//!
//! * **Deterministic.** Equal state must produce equal bytes. Writers
//!   must therefore iterate unordered containers (hash maps) in a
//!   sorted order; every `save_state` in the workspace does.
//! * **Self-checking.** Every variable-length read is bounds-checked
//!   ([`SnapError::Truncated`]); collection counts are validated
//!   against the remaining input ([`Dec::count`]) so corrupt input can
//!   never trigger an over-allocation; decoders verify layout tags
//!   ([`Dec::tag`]) and configuration echoes
//!   ([`SnapError::Mismatch`]).
//! * **No external dependencies.** The build environment is offline by
//!   policy; the codec is ~200 lines of `std`.
//!
//! ```
//! use loopspec_isa::snap::{Dec, Enc};
//!
//! let mut enc = Enc::new();
//! enc.u32(7);
//! enc.bytes(b"loop");
//! let buf = enc.into_bytes();
//!
//! let mut dec = Dec::new(&buf);
//! assert_eq!(dec.u32()?, 7);
//! assert_eq!(dec.bytes()?, b"loop");
//! dec.finish()?;
//! # Ok::<(), loopspec_isa::snap::SnapError>(())
//! ```

use std::fmt;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the field at byte offset `at` was complete.
    Truncated {
        /// Byte offset at which the read was attempted.
        at: usize,
    },
    /// A field held a value no writer produces (bad tag, bad bool,
    /// impossible count).
    Corrupt {
        /// What was being decoded.
        what: &'static str,
    },
    /// The snapshot is well-formed but was taken from a differently
    /// configured object (e.g. an engine with another TU count).
    Mismatch {
        /// Which configuration echo disagreed.
        what: &'static str,
    },
    /// Decoding finished with input left over.
    Trailing {
        /// Number of undecoded bytes.
        bytes: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { at } => write!(f, "snapshot truncated at byte {at}"),
            SnapError::Corrupt { what } => write!(f, "snapshot corrupt: bad {what}"),
            SnapError::Mismatch { what } => {
                write!(
                    f,
                    "snapshot was taken from a different configuration: {what}"
                )
            }
            SnapError::Trailing { bytes } => {
                write!(f, "snapshot has {bytes} trailing bytes after decoding")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// The FNV-1a 64 offset basis — the seed for incremental
/// [`fnv1a_update`] folds.
pub const FNV1A_INIT: u64 = 0xcbf2_9ce4_8422_2325;

/// One incremental step of [`fnv1a`]: folds `bytes` into the running
/// hash `h`. Seed with [`FNV1A_INIT`]; folding a byte stream in any
/// chunking yields the same digest as one [`fnv1a`] over the whole.
pub fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64 over `bytes` — the workspace's shared integrity hash. It
/// catches truncation and bit rot, not tampering; snapshot containers
/// and wire frames both close with it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV1A_INIT, bytes)
}

/// Bytes a [`frame`] adds in front of the payload (the `u32` length).
pub const FRAME_HEADER: usize = 4;
/// Bytes a [`frame`] adds after the payload (the `u64` FNV-1a sum).
pub const FRAME_TRAILER: usize = 8;

/// Wraps `payload` in the stream frame container:
/// `len: u32 LE | payload | fnv1a(payload): u64 LE`.
///
/// Frames are the unit of transmission when encoded state crosses a
/// byte stream — a pipe to a worker process, a Unix socket — where the
/// receiver sees arbitrary read boundaries instead of whole buffers.
/// [`FrameBuf`] is the matching incremental decoder.
///
/// ```
/// use loopspec_isa::snap::{frame, FrameBuf};
///
/// let wire = frame(b"hello");
/// let mut buf = FrameBuf::new(1024);
/// buf.extend(&wire[..3]); // arbitrary split: no frame yet
/// assert_eq!(buf.next_frame()?, None);
/// buf.extend(&wire[3..]);
/// assert_eq!(buf.next_frame()?.as_deref(), Some(&b"hello"[..]));
/// # Ok::<(), loopspec_isa::snap::SnapError>(())
/// ```
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload fits in u32");
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TRAILER);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Seals `payload` for storage at rest by appending its FNV-1a sum:
/// `payload | fnv1a(payload): u64 LE`.
///
/// This is the cache-entry twin of [`frame`]: entries that sit in a
/// content-addressed store (rather than crossing a stream) need no
/// length prefix — the container they live in delimits them — but they
/// do need the integrity trailer, so a flipped bit surfaces as a clean
/// [`SnapError::Corrupt`] on [`unseal`] instead of a misparse. Sealing
/// is deterministic: equal payloads seal to equal bytes, so sealed
/// entries can be compared and deduplicated like the payloads
/// themselves.
pub fn seal(mut payload: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&payload);
    payload.extend_from_slice(&sum.to_le_bytes());
    payload
}

/// Verifies and strips the trailer of a [`seal`]ed entry, returning the
/// payload.
///
/// # Errors
///
/// [`SnapError::Truncated`] when `bytes` is shorter than the trailer;
/// [`SnapError::Corrupt`] when the checksum does not match the payload
/// (bit rot, a torn write, or deliberate fault injection).
pub fn unseal(bytes: &[u8]) -> Result<&[u8], SnapError> {
    if bytes.len() < FRAME_TRAILER {
        return Err(SnapError::Truncated { at: bytes.len() });
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - FRAME_TRAILER);
    let expect = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if fnv1a(payload) != expect {
        return Err(SnapError::Corrupt {
            what: "sealed entry checksum",
        });
    }
    Ok(payload)
}

/// Incremental decoder for a stream of [`frame`]s.
///
/// Feed it whatever byte slices the transport delivers with
/// [`FrameBuf::extend`]; [`FrameBuf::next_frame`] pops one complete,
/// checksum-verified payload at a time, or `None` while a frame is
/// still partial. A declared length larger than the construction limit
/// is rejected *before* any allocation, so a corrupt or hostile length
/// prefix can never trigger an OOM-sized reservation.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted once it outgrows the live
    /// suffix, so long sessions don't accumulate dead bytes).
    start: usize,
    limit: usize,
}

impl FrameBuf {
    /// A decoder accepting payloads up to `limit` bytes.
    pub fn new(limit: usize) -> Self {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
            limit,
        }
    }

    /// Appends transport bytes (any split the stream happened to make).
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// `true` when no partial frame is pending — the clean state a
    /// stream should end in.
    pub fn is_empty(&self) -> bool {
        self.buffered() == 0
    }

    /// Pops the next complete frame's payload, if one is fully
    /// buffered.
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when the declared length exceeds the
    /// limit or the checksum does not match — the stream is
    /// unrecoverable at that point (framing is lost) and the caller
    /// should drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, SnapError> {
        let live = &self.buf[self.start..];
        if live.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(live[..4].try_into().expect("4 bytes")) as usize;
        if len > self.limit {
            return Err(SnapError::Corrupt {
                what: "frame length",
            });
        }
        let total = FRAME_HEADER + len + FRAME_TRAILER;
        if live.len() < total {
            return Ok(None);
        }
        let payload = &live[FRAME_HEADER..FRAME_HEADER + len];
        let sum = u64::from_le_bytes(live[FRAME_HEADER + len..total].try_into().expect("8 bytes"));
        if fnv1a(payload) != sum {
            return Err(SnapError::Corrupt {
                what: "frame checksum",
            });
        }
        let payload = payload.to_vec();
        self.start += total;
        Ok(Some(payload))
    }
}

/// A snapshot byte encoder: fixed-width little-endian fields appended to
/// a growable buffer. See the [module docs](self) for the format rules.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    #[inline]
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (`0`/`1`).
    #[inline]
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// A bounds-checked snapshot decoder over a byte slice.
///
/// Every read either returns the decoded value or a [`SnapError`]; no
/// read panics and no count can cause an allocation larger than the
/// input itself.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { at: self.at });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `bool` written by [`Enc::bool`].
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt { what: "bool" }),
        }
    }

    /// Reads a length-prefixed byte string written by [`Enc::bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(SnapError::Truncated { at: self.at });
        }
        self.take(n as usize)
    }

    /// Reads a collection count, validating it against the remaining
    /// input (every element occupies at least one byte, so a count
    /// larger than `remaining()` is corrupt — this is what makes
    /// pre-allocating `count` elements safe).
    pub fn count(&mut self) -> Result<usize, SnapError> {
        self.count_elems(1)
    }

    /// Reads a collection count for elements that each occupy at least
    /// `min_elem_bytes` of encoded input, validating `count *
    /// min_elem_bytes` against the remaining input. Use this instead of
    /// [`Dec::count`] when the *in-memory* element is much larger than
    /// one byte: it keeps a corrupt or hostile count from reserving
    /// `count * size_of::<Elem>()` — a multiplied, possibly OOM-sized
    /// allocation — before the first element even decodes.
    pub fn count_elems(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.u64()?;
        if n.checked_mul(min_elem_bytes.max(1) as u64)
            .is_none_or(|bytes| bytes > self.remaining() as u64)
        {
            return Err(SnapError::Corrupt { what: "count" });
        }
        Ok(n as usize)
    }

    /// Reads one byte and requires it to equal `expected` — layout tags
    /// that catch section mix-ups early.
    pub fn tag(&mut self, expected: u8, what: &'static str) -> Result<(), SnapError> {
        if self.u8()? != expected {
            return Err(SnapError::Corrupt { what });
        }
        Ok(())
    }

    /// Requires the whole input to have been consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Trailing {
                bytes: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.bool(true);
        e.bool(false);
        e.bytes(b"chunk");
        let buf = e.into_bytes();

        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), b"chunk");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut e = Enc::new();
        e.u64(7);
        let buf = e.into_bytes();
        let mut d = Dec::new(&buf[..3]);
        assert_eq!(d.u64(), Err(SnapError::Truncated { at: 0 }));
    }

    #[test]
    fn oversized_counts_and_byte_strings_are_corrupt() {
        let mut e = Enc::new();
        e.u64(1 << 40); // a count no writer would emit for 8 bytes of input
        let buf = e.into_bytes();
        assert_eq!(
            Dec::new(&buf).count(),
            Err(SnapError::Corrupt { what: "count" })
        );
        assert!(matches!(
            Dec::new(&buf).bytes(),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn element_sized_counts_bound_the_multiplied_reservation() {
        // 32 bytes of input claiming 20 17-byte elements: plain count()
        // would accept (20 < 32), but the multiplied check must refuse
        // — 20 elements cannot fit in 32 bytes.
        let mut e = Enc::new();
        e.u64(20);
        for _ in 0..24 {
            e.u8(0);
        }
        let buf = e.into_bytes();
        assert_eq!(Dec::new(&buf).count(), Ok(20));
        assert_eq!(
            Dec::new(&buf).count_elems(17),
            Err(SnapError::Corrupt { what: "count" })
        );
        assert_eq!(Dec::new(&buf).count_elems(1), Ok(20));
        // Overflow of count * min_elem_bytes is corrupt, not a wrap.
        let mut e = Enc::new();
        e.u64(u64::MAX / 2);
        let buf = e.into_bytes();
        assert_eq!(
            Dec::new(&buf).count_elems(1024),
            Err(SnapError::Corrupt { what: "count" })
        );
    }

    #[test]
    fn bad_bool_and_bad_tag_are_corrupt() {
        let buf = [7u8];
        assert_eq!(
            Dec::new(&buf).bool(),
            Err(SnapError::Corrupt { what: "bool" })
        );
        assert_eq!(
            Dec::new(&buf).tag(3, "section"),
            Err(SnapError::Corrupt { what: "section" })
        );
        assert!(Dec::new(&buf).tag(7, "section").is_ok());
    }

    #[test]
    fn finish_reports_trailing_bytes() {
        let buf = [0u8; 3];
        let mut d = Dec::new(&buf);
        d.u8().unwrap();
        assert_eq!(d.finish(), Err(SnapError::Trailing { bytes: 2 }));
        assert_eq!(d.remaining(), 2);
    }

    #[test]
    fn frames_round_trip_across_arbitrary_splits() {
        let payloads: [&[u8]; 4] = [b"", b"x", b"loopspec", &[0xff; 300]];
        let mut wire = Vec::new();
        for p in payloads {
            wire.extend_from_slice(&frame(p));
        }
        // Feed every prefix-split of the concatenated stream.
        for split in 0..wire.len() {
            let mut buf = FrameBuf::new(1024);
            buf.extend(&wire[..split]);
            buf.extend(&wire[split..]);
            for p in payloads {
                assert_eq!(buf.next_frame().unwrap().as_deref(), Some(p));
            }
            assert_eq!(buf.next_frame().unwrap(), None);
            assert!(buf.is_empty());
        }
        // Byte-at-a-time delivery.
        let mut buf = FrameBuf::new(1024);
        let mut got = Vec::new();
        for &b in &wire {
            buf.extend(&[b]);
            while let Some(p) = buf.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), payloads.len());
    }

    #[test]
    fn oversized_frame_length_is_rejected_before_allocation() {
        // A hostile length prefix claiming 4 GiB must error immediately,
        // not wait for (or reserve) 4 GiB.
        let mut buf = FrameBuf::new(1 << 20);
        buf.extend(&u32::MAX.to_le_bytes());
        assert_eq!(
            buf.next_frame(),
            Err(SnapError::Corrupt {
                what: "frame length"
            })
        );
    }

    #[test]
    fn frame_corruption_and_truncation_are_detected() {
        let wire = frame(b"payload");
        // Truncation: never an error, just "not yet complete".
        for cut in 0..wire.len() {
            let mut buf = FrameBuf::new(1024);
            buf.extend(&wire[..cut]);
            assert_eq!(buf.next_frame().unwrap(), None, "cut {cut}");
            assert_eq!(buf.buffered(), cut);
        }
        // Any single bit flip in payload or checksum breaks the sum.
        for byte in FRAME_HEADER..wire.len() {
            let mut bad = wire.clone();
            bad[byte] ^= 0x10;
            let mut buf = FrameBuf::new(1024);
            buf.extend(&bad);
            assert_eq!(
                buf.next_frame(),
                Err(SnapError::Corrupt {
                    what: "frame checksum"
                }),
                "byte {byte}"
            );
        }
    }

    #[test]
    fn frame_buf_compacts_consumed_prefix() {
        let mut buf = FrameBuf::new(1024);
        for i in 0..100u8 {
            buf.extend(&frame(&[i; 64]));
            assert_eq!(buf.next_frame().unwrap().unwrap(), vec![i; 64]);
        }
        assert!(buf.is_empty());
        // The internal buffer must not have grown to hold all 100
        // frames: the consumed prefix is dropped as the stream drains.
        assert!(buf.buf.capacity() < 100 * 64);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seal_round_trips_and_is_deterministic() {
        let sealed = seal(b"report grid".to_vec());
        assert_eq!(sealed, seal(b"report grid".to_vec()));
        assert_eq!(unseal(&sealed).unwrap(), b"report grid");
        // The empty payload is a valid entry too.
        assert_eq!(unseal(&seal(Vec::new())).unwrap(), b"");
    }

    #[test]
    fn unseal_detects_every_single_bit_flip() {
        let sealed = seal(vec![0xa5; 32]);
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut poked = sealed.clone();
                poked[byte] ^= 1 << bit;
                assert!(
                    unseal(&poked).is_err(),
                    "flip of byte {byte} bit {bit} must not unseal"
                );
            }
        }
    }

    #[test]
    fn unseal_rejects_truncation() {
        let sealed = seal(vec![7; 16]);
        for cut in 0..FRAME_TRAILER {
            assert!(matches!(
                unseal(&sealed[..cut]),
                Err(SnapError::Truncated { .. })
            ));
        }
        // Cutting into the payload shifts the trailer: corrupt.
        assert!(unseal(&sealed[..sealed.len() - 1]).is_err());
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(SnapError::Truncated { at: 9 }.to_string().contains('9'));
        assert!(SnapError::Corrupt { what: "tag" }
            .to_string()
            .contains("tag"));
        assert!(SnapError::Mismatch { what: "tus" }
            .to_string()
            .contains("tus"));
        assert!(SnapError::Trailing { bytes: 2 }.to_string().contains('2'));
    }
}
