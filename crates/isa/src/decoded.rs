//! Pre-decoded ("threaded code") program image.
//!
//! The legacy interpreter in `loopspec-cpu` re-derives everything it
//! needs per retired instruction: it fetches through an `Option`,
//! classifies control flow with [`Instruction::control_kind`], and
//! walks [`Instruction::reg_use`] to assemble the trace event. All of
//! that is static — it depends only on the code word, never on machine
//! state — so a one-time decode pass can hoist it out of the dispatch
//! loop entirely, in the style of classic threaded-code VMs.
//!
//! [`DecodedImage::build`] lowers a code slice into:
//!
//! * one [`DecodedOp`] per code word, with immediates already
//!   sign-extended to the machine's 64-bit width (`f32` constants
//!   pre-widened to `f64`) so the executor applies them with a bare
//!   `wrapping_add`;
//! * the static per-pc metadata the tracer path needs
//!   ([`ControlKind`], [`RegUse`], and the original [`Instruction`]
//!   for the event's `instr` field);
//! * a **basic-block table**: for every pc, the length of the
//!   straight-line (control-free) run starting there. The executor
//!   uses it to retire whole loop bodies in a tight inner loop with a
//!   single fuel check, and because the table is per-*pc* (a suffix
//!   run length, not a block-entry map) any branch target — even one
//!   landing mid-block — starts a maximal run;
//! * a peephole **fusion table** marking `alu→branch` /
//!   `cmp→branch` pairs (the canonical counted-loop back edge:
//!   `addi i, i, 1; b.lt i, n, top`) that the executor dispatches as
//!   one superinstruction. Fusion is purely a dispatch-count
//!   optimization: the fused pair still retires as two instructions
//!   and emits the exact same two trace events as the unfused path.
//!
//! Branch targets are *not* re-validated here: the assembler
//! (`loopspec-asm`) only produces programs whose direct targets are in
//! range, and the executor bounds-checks the pc at each control
//! transfer — exactly as the legacy interpreter does — so out-of-range
//! targets fault identically on both paths.

use crate::{Addr, AluOp, Cond, ControlKind, FAluOp, FReg, FUnOp, Instruction, Reg, RegUse};

/// A fully decoded SLA instruction: the executable form of one
/// [`Instruction`], with register operands pre-resolved and immediates
/// pre-extended to operation width.
///
/// Mirrors [`Instruction`] variant-for-variant; only the operand
/// representations differ:
///
/// * integer immediates and memory offsets are sign-extended to `u64`
///   (the CPU's wrapping word arithmetic applies them directly);
/// * the `f32` immediate of `FLoadImm` is pre-widened to `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodedOp {
    /// No operation.
    Nop,
    /// Machine halt.
    Halt,
    /// `rd <- op(ra, rb)`.
    Alu {
        /// Operation to apply.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// `rd <- op(ra, imm)` with the immediate pre-extended.
    AluImm {
        /// Operation to apply.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Sign-extended immediate operand.
        imm: u64,
    },
    /// `rd <- imm` with the immediate pre-extended.
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// Sign-extended immediate value.
        imm: u64,
    },
    /// `rd <- mem[ra + offset]` with the offset pre-extended.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Sign-extended word offset.
        offset: u64,
    },
    /// `mem[base + offset] <- src` with the offset pre-extended.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Sign-extended word offset.
        offset: u64,
    },
    /// `fd <- op(fa, fb)`.
    FAlu {
        /// Operation to apply.
        op: FAluOp,
        /// Destination FP register.
        fd: FReg,
        /// First source FP register.
        fa: FReg,
        /// Second source FP register.
        fb: FReg,
    },
    /// `fd <- op(fa)`.
    FUn {
        /// Operation to apply.
        op: FUnOp,
        /// Destination FP register.
        fd: FReg,
        /// Source FP register.
        fa: FReg,
    },
    /// `fd <- value` with the constant pre-widened to `f64`.
    FLoadImm {
        /// Destination FP register.
        fd: FReg,
        /// Pre-widened immediate value.
        value: f64,
    },
    /// `fd <- mem[base + offset]` with the offset pre-extended.
    FLoad {
        /// Destination FP register.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Sign-extended word offset.
        offset: u64,
    },
    /// `mem[base + offset] <- fsrc` with the offset pre-extended.
    FStore {
        /// Source FP register.
        fsrc: FReg,
        /// Base address register.
        base: Reg,
        /// Sign-extended word offset.
        offset: u64,
    },
    /// `rd <- cond(fa, fb) ? 1 : 0`.
    FCmp {
        /// Condition evaluated on the FP operands.
        cond: Cond,
        /// Destination integer register.
        rd: Reg,
        /// First source FP register.
        fa: FReg,
        /// Second source FP register.
        fb: FReg,
    },
    /// `fd <- (f64) ra`.
    ItoF {
        /// Destination FP register.
        fd: FReg,
        /// Source integer register.
        ra: Reg,
    },
    /// `rd <- (i64) fa`.
    FtoI {
        /// Destination integer register.
        rd: Reg,
        /// Source FP register.
        fa: FReg,
    },
    /// Conditional branch.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
        /// Branch target.
        target: Addr,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target.
        target: Addr,
    },
    /// Unconditional indirect jump.
    JumpInd {
        /// Register holding the target address.
        base: Reg,
    },
    /// Direct subroutine call.
    Call {
        /// Call target.
        target: Addr,
        /// Link register.
        link: Reg,
    },
    /// Indirect subroutine call.
    CallInd {
        /// Register holding the callee address.
        base: Reg,
        /// Link register.
        link: Reg,
    },
    /// Subroutine return.
    Ret {
        /// Register holding the return address.
        link: Reg,
    },
    /// Kernel dispatch (see [`crate::kernel`]). Dispatched as a single
    /// step, never as part of a straight-line run or a fused pair.
    KernelCall {
        /// Registry id of the kernel to run.
        id: u32,
    },
}

impl DecodedOp {
    /// Lowers one instruction, pre-extending immediates.
    fn lower(instr: Instruction) -> DecodedOp {
        match instr {
            Instruction::Nop => DecodedOp::Nop,
            Instruction::Halt => DecodedOp::Halt,
            Instruction::Alu { op, rd, ra, rb } => DecodedOp::Alu { op, rd, ra, rb },
            Instruction::AluImm { op, rd, ra, imm } => DecodedOp::AluImm {
                op,
                rd,
                ra,
                imm: imm as i64 as u64,
            },
            Instruction::LoadImm { rd, imm } => DecodedOp::LoadImm {
                rd,
                imm: imm as u64,
            },
            Instruction::Load { rd, base, offset } => DecodedOp::Load {
                rd,
                base,
                offset: offset as i64 as u64,
            },
            Instruction::Store { src, base, offset } => DecodedOp::Store {
                src,
                base,
                offset: offset as i64 as u64,
            },
            Instruction::FAlu { op, fd, fa, fb } => DecodedOp::FAlu { op, fd, fa, fb },
            Instruction::FUn { op, fd, fa } => DecodedOp::FUn { op, fd, fa },
            Instruction::FLoadImm { fd, value } => DecodedOp::FLoadImm {
                fd,
                value: value as f64,
            },
            Instruction::FLoad { fd, base, offset } => DecodedOp::FLoad {
                fd,
                base,
                offset: offset as i64 as u64,
            },
            Instruction::FStore { fsrc, base, offset } => DecodedOp::FStore {
                fsrc,
                base,
                offset: offset as i64 as u64,
            },
            Instruction::FCmp { cond, rd, fa, fb } => DecodedOp::FCmp { cond, rd, fa, fb },
            Instruction::ItoF { fd, ra } => DecodedOp::ItoF { fd, ra },
            Instruction::FtoI { rd, fa } => DecodedOp::FtoI { rd, fa },
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } => DecodedOp::Branch {
                cond,
                ra,
                rb,
                target,
            },
            Instruction::Jump { target } => DecodedOp::Jump { target },
            Instruction::JumpInd { base } => DecodedOp::JumpInd { base },
            Instruction::Call { target, link } => DecodedOp::Call { target, link },
            Instruction::CallInd { base, link } => DecodedOp::CallInd { base, link },
            Instruction::Ret { link } => DecodedOp::Ret { link },
            Instruction::KernelCall { id } => DecodedOp::KernelCall { id },
        }
    }

    /// `true` for register-only value ops that may lead a fused
    /// `op→branch` superinstruction: non-control, non-memory, single
    /// integer write. This is exactly the shape of counted-loop
    /// back-edge producers (`addi`) and compare-and-branch feeders
    /// (`fcmp`, `slt`-style ALU compares).
    fn fusable_value_op(&self) -> bool {
        matches!(
            self,
            DecodedOp::Alu { .. }
                | DecodedOp::AluImm { .. }
                | DecodedOp::LoadImm { .. }
                | DecodedOp::FCmp { .. }
        )
    }
}

/// Flat execution opcode: one discriminant per *executable operation*,
/// with the ALU sub-operation and FP-compare condition folded in.
///
/// [`DecodedOp`] mirrors the architectural [`Instruction`] shape, which
/// leaves the executor with two dependent dispatches per value op: the
/// variant match, then the nested `AluOp`/`Cond` match inside the arm.
/// The flat form collapses both into a single jump table with small,
/// self-contained arms — the classic threaded-code opcode layout. Only
/// non-control ops get real flat codes; control transfers lower to
/// [`FlatCode::Ctl`], which straight-line runs never reach (their
/// run-length is 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlatCode {
    /// `a <- b + c` (wrapping).
    AddRR,
    /// `a <- b - c` (wrapping).
    SubRR,
    /// `a <- b * c` (wrapping).
    MulRR,
    /// `a <- b / c` signed (0 on divide-by-zero).
    DivRR,
    /// `a <- b % c` signed (0 on divide-by-zero).
    RemRR,
    /// `a <- b & c`.
    AndRR,
    /// `a <- b | c`.
    OrRR,
    /// `a <- b ^ c`.
    XorRR,
    /// `a <- b << c` (shift amount mod 64).
    ShlRR,
    /// `a <- b >> c` logical (shift amount mod 64).
    ShrRR,
    /// `a <- b >> c` arithmetic (shift amount mod 64).
    SarRR,
    /// `a <- (b < c) ? 1 : 0` signed.
    SltSRR,
    /// `a <- (b < c) ? 1 : 0` unsigned.
    SltURR,
    /// `a <- b + imm` (wrapping).
    AddRI,
    /// `a <- b - imm` (wrapping).
    SubRI,
    /// `a <- b * imm` (wrapping).
    MulRI,
    /// `a <- b / imm` signed (0 on divide-by-zero).
    DivRI,
    /// `a <- b % imm` signed (0 on divide-by-zero).
    RemRI,
    /// `a <- b & imm`.
    AndRI,
    /// `a <- b | imm`.
    OrRI,
    /// `a <- b ^ imm`.
    XorRI,
    /// `a <- b << imm` (shift amount mod 64).
    ShlRI,
    /// `a <- b >> imm` logical (shift amount mod 64).
    ShrRI,
    /// `a <- b >> imm` arithmetic (shift amount mod 64).
    SarRI,
    /// `a <- (b < imm) ? 1 : 0` signed.
    SltSRI,
    /// `a <- (b < imm) ? 1 : 0` unsigned.
    SltURI,
    /// `a <- imm`.
    Li,
    /// `a <- mem[b + imm]`.
    Ld,
    /// `mem[b + imm] <- a`.
    St,
    /// `fa <- fb + fc`.
    FAdd,
    /// `fa <- fb - fc`.
    FSub,
    /// `fa <- fb * fc`.
    FMul,
    /// `fa <- fb / fc`.
    FDiv,
    /// `fa <- min(fb, fc)` (`fb` if either is NaN).
    FMin,
    /// `fa <- max(fb, fc)` (`fb` if either is NaN).
    FMax,
    /// `fa <- -fb`.
    FNeg,
    /// `fa <- |fb|`.
    FAbs,
    /// `fa <- sqrt(fb)`.
    FSqrt,
    /// `fa <- f64::from_bits(imm)` (pre-widened constant).
    FLi,
    /// `fa <- mem[b + imm]` (bit pattern).
    FLd,
    /// `mem[b + imm] <- fa` (bit pattern).
    FSt,
    /// `a <- (fb == fc) ? 1 : 0`.
    FcEq,
    /// `a <- (fb != fc) ? 1 : 0`.
    FcNe,
    /// `a <- (fb < fc) ? 1 : 0`.
    FcLt,
    /// `a <- (fb <= fc) ? 1 : 0`.
    FcLe,
    /// `a <- (fb > fc) ? 1 : 0`.
    FcGt,
    /// `a <- (fb >= fc) ? 1 : 0`.
    FcGe,
    /// `fa <- (f64) b` (signed int to FP).
    ItoF,
    /// `a <- (i64) fb` (FP to signed int, truncating).
    FtoI,
    /// No operation.
    Nop,
    /// Control transfer or halt: never executed as straight-line code
    /// (its run length is 0); the dispatcher handles it structurally.
    Ctl,
    // ------------------------------------------------------------------
    // Two-op superinstructions: the straight-line fusion pass packs the
    // hottest adjacent op pairs into one dispatch (two retirements,
    // two events, one jump-table hop). They appear only in the
    // [`DecodedImage::flat2`] stream — the per-pc [`flat`] stream keeps
    // the unfused ops so a fuel cut can resume between the halves.
    // Their discriminants sit at the end of the enum on purpose:
    // `code >= LiAdd` is the executor's one-compare pair test (see
    // [`FlatCode::fuses_two`]).
    //
    // Unless noted, `a`/`b` carry the first op's registers, `c`/`d`
    // the second's, and `imm` packs both immediates as sign-extended
    // `i32` halves (low = first).
    // ------------------------------------------------------------------
    /// `a <- imm` then `b <- c + d`. Exception to the packing rule:
    /// `imm` is the full-width load constant (the add has none).
    LiAdd,
    /// `a <- b * imm.lo` then `c <- d & imm.hi`.
    MulAnd,
    /// `a <- mem[b + imm.lo]` then `c <- d + imm.hi`.
    LdAdd,
    /// `a <- mem[b + imm.lo]` then `c <- mem[d + imm.hi]`.
    LdLd,
    /// `a <- b << imm.lo` then `c <- d >> imm.hi` (logical).
    ShlShr,
    /// `a <- b + imm.lo` then `c <- d ^ imm.hi`.
    AddXor,
    /// `mem[b + imm.lo] <- a` then `mem[d + imm.hi] <- c`.
    StSt,
    /// `mem[b + imm.lo] <- a` then `c <- imm.hi`.
    StLi,
    /// `a <- b + imm.lo` then `c <- imm.hi`.
    AddLi,
    /// `a <- imm.lo` then `c <- mem[d + imm.hi]`.
    LiLd,
    /// `a <- b + imm.lo` then `mem[d + imm.hi] <- c`.
    AddSt,
    // Generic shapes for the long tail the specific patterns miss:
    // the ALU sub-op(s) ride in the `sub` byte (low nibble = first
    // half, high nibble = second), indexed in [`AluOp`] order.
    /// `a <- b <op1> imm.lo` then `c <- d <op2> imm.hi`.
    AluAlu,
    /// `a <- b <op1> imm.lo` then `c <- imm.hi`.
    AluLi,
    /// `a <- imm.lo` then `c <- d <op2> imm.hi`.
    LiAlu,
    /// `a <- b <op1> imm.lo` then `c <- mem[d + imm.hi]`.
    AluLd,
    /// `a <- mem[b + imm.lo]` then `c <- imm.hi`.
    LdLi,
    // Same-code repeat superinstructions, for the block moves the pair
    // shapes only halve: register save/restore frames, memcpy-style
    // loops. `sub` holds the element count (3..=255); the elements'
    // registers and immediates are re-read from the unfused [`flat`]
    // stream at runtime, so the single operand word only carries the
    // count. They sit after the pair codes so `is_rep` is one compare.
    /// `sub` consecutive `St` ops in one dispatch.
    StRep,
    /// `sub` consecutive `Ld` ops in one dispatch.
    LdRep,
}

impl FlatCode {
    /// `true` for superinstructions — flat codes that retire *two or
    /// more* architectural instructions per dispatch. Their
    /// discriminants form the tail of the enum, so this is a single
    /// compare on the dispatch path.
    #[inline(always)]
    pub fn fuses_two(self) -> bool {
        self as u8 >= FlatCode::LiAdd as u8
    }

    /// `true` for same-code repeat superinstructions ([`FlatCode::StRep`],
    /// [`FlatCode::LdRep`]), whose element count rides in `sub`.
    #[inline(always)]
    pub fn is_rep(self) -> bool {
        self as u8 >= FlatCode::StRep as u8
    }
}

/// The flat threaded-code form of one op: a [`FlatCode`] plus packed
/// byte operands and one pre-extended immediate.
///
/// Operand convention (see each [`FlatCode`] doc): `a` is the
/// destination (source for stores), `b` and `c` are sources; register
/// fields index `regs`/`fregs` and are always `< 32`, so executors may
/// mask with `& 31` to elide bounds checks. Two-op superinstructions
/// (see [`FlatCode::fuses_two`]) use all four register bytes and pack
/// two `i32` immediates into `imm`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatOp {
    /// Operation selector (single-level dispatch).
    pub code: FlatCode,
    /// Destination register index (source for `St`/`FSt`).
    pub a: u8,
    /// First source register index.
    pub b: u8,
    /// Second source register index.
    pub c: u8,
    /// Fourth register index, used only by two-op superinstructions.
    pub d: u8,
    /// Packed ALU sub-ops for the generic superinstruction shapes
    /// (low nibble = first half, high nibble = second, in [`AluOp`]
    /// order); `0` everywhere else.
    pub sub: u8,
    /// Pre-extended immediate: ALU operand, memory offset, constant
    /// bits, or two packed `i32` halves in a superinstruction.
    pub imm: u64,
}

impl FlatOp {
    /// Lowers a decoded op to its flat execution form.
    fn lower(op: DecodedOp) -> FlatOp {
        fn flat(code: FlatCode, a: usize, b: usize, c: usize, imm: u64) -> FlatOp {
            FlatOp {
                code,
                a: a as u8,
                b: b as u8,
                c: c as u8,
                d: 0,
                sub: 0,
                imm,
            }
        }
        let alu_rr = |op: AluOp| {
            use FlatCode::*;
            match op {
                AluOp::Add => AddRR,
                AluOp::Sub => SubRR,
                AluOp::Mul => MulRR,
                AluOp::Div => DivRR,
                AluOp::Rem => RemRR,
                AluOp::And => AndRR,
                AluOp::Or => OrRR,
                AluOp::Xor => XorRR,
                AluOp::Shl => ShlRR,
                AluOp::Shr => ShrRR,
                AluOp::Sar => SarRR,
                AluOp::SltS => SltSRR,
                AluOp::SltU => SltURR,
            }
        };
        let alu_ri = |op: AluOp| {
            use FlatCode::*;
            match op {
                AluOp::Add => AddRI,
                AluOp::Sub => SubRI,
                AluOp::Mul => MulRI,
                AluOp::Div => DivRI,
                AluOp::Rem => RemRI,
                AluOp::And => AndRI,
                AluOp::Or => OrRI,
                AluOp::Xor => XorRI,
                AluOp::Shl => ShlRI,
                AluOp::Shr => ShrRI,
                AluOp::Sar => SarRI,
                AluOp::SltS => SltSRI,
                AluOp::SltU => SltURI,
            }
        };
        match op {
            DecodedOp::Nop => flat(FlatCode::Nop, 0, 0, 0, 0),
            DecodedOp::Alu { op, rd, ra, rb } => {
                flat(alu_rr(op), rd.index(), ra.index(), rb.index(), 0)
            }
            DecodedOp::AluImm { op, rd, ra, imm } => {
                flat(alu_ri(op), rd.index(), ra.index(), 0, imm)
            }
            DecodedOp::LoadImm { rd, imm } => flat(FlatCode::Li, rd.index(), 0, 0, imm),
            DecodedOp::Load { rd, base, offset } => {
                flat(FlatCode::Ld, rd.index(), base.index(), 0, offset)
            }
            DecodedOp::Store { src, base, offset } => {
                flat(FlatCode::St, src.index(), base.index(), 0, offset)
            }
            DecodedOp::FAlu { op, fd, fa, fb } => {
                let code = match op {
                    FAluOp::Add => FlatCode::FAdd,
                    FAluOp::Sub => FlatCode::FSub,
                    FAluOp::Mul => FlatCode::FMul,
                    FAluOp::Div => FlatCode::FDiv,
                    FAluOp::Min => FlatCode::FMin,
                    FAluOp::Max => FlatCode::FMax,
                };
                flat(code, fd.index(), fa.index(), fb.index(), 0)
            }
            DecodedOp::FUn { op, fd, fa } => {
                let code = match op {
                    FUnOp::Neg => FlatCode::FNeg,
                    FUnOp::Abs => FlatCode::FAbs,
                    FUnOp::Sqrt => FlatCode::FSqrt,
                };
                flat(code, fd.index(), fa.index(), 0, 0)
            }
            DecodedOp::FLoadImm { fd, value } => {
                flat(FlatCode::FLi, fd.index(), 0, 0, value.to_bits())
            }
            DecodedOp::FLoad { fd, base, offset } => {
                flat(FlatCode::FLd, fd.index(), base.index(), 0, offset)
            }
            DecodedOp::FStore { fsrc, base, offset } => {
                flat(FlatCode::FSt, fsrc.index(), base.index(), 0, offset)
            }
            DecodedOp::FCmp { cond, rd, fa, fb } => {
                // Numeric FP comparison: signed/unsigned integer
                // condition pairs collapse (there is one FP ordering),
                // NaN semantics follow IEEE-754 operator results.
                let code = match cond {
                    Cond::Eq => FlatCode::FcEq,
                    Cond::Ne => FlatCode::FcNe,
                    Cond::LtS | Cond::LtU => FlatCode::FcLt,
                    Cond::LeS => FlatCode::FcLe,
                    Cond::GtS => FlatCode::FcGt,
                    Cond::GeS | Cond::GeU => FlatCode::FcGe,
                };
                flat(code, rd.index(), fa.index(), fb.index(), 0)
            }
            DecodedOp::ItoF { fd, ra } => flat(FlatCode::ItoF, fd.index(), ra.index(), 0, 0),
            DecodedOp::FtoI { rd, fa } => flat(FlatCode::FtoI, rd.index(), fa.index(), 0, 0),
            DecodedOp::Halt
            | DecodedOp::Branch { .. }
            | DecodedOp::Jump { .. }
            | DecodedOp::JumpInd { .. }
            | DecodedOp::Call { .. }
            | DecodedOp::CallInd { .. }
            | DecodedOp::Ret { .. }
            | DecodedOp::KernelCall { .. } => flat(FlatCode::Ctl, 0, 0, 0, 0),
        }
    }

    /// Fuses two adjacent straight-line ops into one two-op
    /// superinstruction, when the pair matches one of the profiled-hot
    /// patterns and both immediates fit the packed encoding. The
    /// executor decomposes the result back into exactly `first` then
    /// `second`, so fusion is invisible to tracers.
    fn fuse2(first: FlatOp, second: FlatOp) -> Option<FlatOp> {
        use FlatCode::*;
        // Two sign-extended i32 halves in one imm word (low = first's).
        fn pack2(lo: u64, hi: u64) -> Option<u64> {
            let l = i32::try_from(lo as i64).ok()? as u32;
            let h = i32::try_from(hi as i64).ok()? as u32;
            Some(l as u64 | (h as u64) << 32)
        }
        let duo = |code, a: u8, b: u8, c: u8, d: u8, sub: u8, imm| {
            Some(FlatOp {
                code,
                a,
                b,
                c,
                d,
                sub,
                imm,
            })
        };
        // Register-immediate ALU codes map back to their [`AluOp`]
        // index (the RI block is declared in `AluOp` order).
        let ri = |code: FlatCode| {
            let i = code as u8;
            let base = AddRI as u8;
            (base..base + 13).contains(&i).then(|| i - base)
        };
        let (f, s) = (first, second);
        match (f.code, s.code) {
            // The add carries no immediate, so the load constant keeps
            // its full width and the add's three registers take b/c/d.
            (Li, AddRR) => duo(LiAdd, f.a, s.a, s.b, s.c, 0, f.imm),
            (MulRI, AndRI) => duo(MulAnd, f.a, f.b, s.a, s.b, 0, pack2(f.imm, s.imm)?),
            (Ld, AddRI) => duo(LdAdd, f.a, f.b, s.a, s.b, 0, pack2(f.imm, s.imm)?),
            (Ld, Ld) => duo(LdLd, f.a, f.b, s.a, s.b, 0, pack2(f.imm, s.imm)?),
            (ShlRI, ShrRI) => duo(ShlShr, f.a, f.b, s.a, s.b, 0, pack2(f.imm, s.imm)?),
            (AddRI, XorRI) => duo(AddXor, f.a, f.b, s.a, s.b, 0, pack2(f.imm, s.imm)?),
            (St, St) => duo(StSt, f.a, f.b, s.a, s.b, 0, pack2(f.imm, s.imm)?),
            (St, Li) => duo(StLi, f.a, f.b, s.a, 0, 0, pack2(f.imm, s.imm)?),
            (AddRI, Li) => duo(AddLi, f.a, f.b, s.a, 0, 0, pack2(f.imm, s.imm)?),
            (Li, Ld) => duo(LiLd, f.a, 0, s.a, s.b, 0, pack2(f.imm, s.imm)?),
            (AddRI, St) => duo(AddSt, f.a, f.b, s.a, s.b, 0, pack2(f.imm, s.imm)?),
            (Ld, Li) => duo(LdLi, f.a, f.b, s.a, 0, 0, pack2(f.imm, s.imm)?),
            // Generic tails: any remaining RI×RI / RI×Li / Li×RI /
            // RI×Ld pair, sub-ops packed by nibble.
            (x, y) => match (ri(x), ri(y)) {
                (Some(i), Some(j)) => {
                    duo(AluAlu, f.a, f.b, s.a, s.b, i | j << 4, pack2(f.imm, s.imm)?)
                }
                (Some(i), None) if y == Li => duo(AluLi, f.a, f.b, s.a, 0, i, pack2(f.imm, s.imm)?),
                (Some(i), None) if y == Ld => {
                    duo(AluLd, f.a, f.b, s.a, s.b, i, pack2(f.imm, s.imm)?)
                }
                (None, Some(j)) if x == Li => {
                    duo(LiAlu, f.a, 0, s.a, s.b, j << 4, pack2(f.imm, s.imm)?)
                }
                _ => None,
            },
        }
    }
}

/// The pre-decoded, fusion-annotated form of a program's code: one
/// [`DecodedOp`] per code word plus the static per-pc metadata the
/// dispatch loop and the tracer path consume.
///
/// Built once per program with [`DecodedImage::build`]; executed by
/// `loopspec_cpu::Cpu::run_decoded`. The image holds a copy of the
/// original instructions, so callers can verify it still matches a
/// given program (and trace events can report the architectural
/// [`Instruction`], not the lowered op).
#[derive(Debug, Clone)]
pub struct DecodedImage {
    ops: Vec<DecodedOp>,
    instrs: Vec<Instruction>,
    kinds: Vec<ControlKind>,
    uses: Vec<RegUse>,
    run_len: Vec<u32>,
    pair: Vec<bool>,
    meta: Vec<u32>,
    flat: Vec<FlatOp>,
    flat2: Vec<FlatOp>,
}

impl DecodedImage {
    /// Decodes a code slice and runs the fusion peephole pass.
    pub fn build(code: &[Instruction]) -> DecodedImage {
        let n = code.len();
        let ops: Vec<DecodedOp> = code.iter().map(|&i| DecodedOp::lower(i)).collect();
        let kinds: Vec<ControlKind> = code.iter().map(|i| i.control_kind()).collect();
        let uses: Vec<RegUse> = code.iter().map(|i| i.reg_use()).collect();

        // Peephole: a fusable value op immediately feeding a
        // conditional branch dispatches as one superinstruction.
        let mut pair = vec![false; n];
        for pc in 0..n.saturating_sub(1) {
            pair[pc] =
                ops[pc].fusable_value_op() && matches!(ops[pc + 1], DecodedOp::Branch { .. });
        }

        // Suffix straight-line run lengths: run_len[pc] counts the
        // control-free ops from pc up to (not including) the block
        // terminator. Control transfers, fused-pair heads and kernel
        // dispatches have run length 0, which also makes them terminate
        // the run of every preceding pc. (A `KernelCall` classifies as
        // `ControlKind::None` — it is invisible to the loop detector —
        // but it retires a whole body, so the dispatcher must reach it
        // as a single step, never mid-run.)
        let mut run_len = vec![0u32; n];
        for pc in (0..n).rev() {
            if kinds[pc] == ControlKind::None
                && !pair[pc]
                && !matches!(code[pc], Instruction::KernelCall { .. })
            {
                run_len[pc] = 1 + if pc + 1 < n { run_len[pc + 1] } else { 0 };
            }
        }

        // Packed dispatch word: `run_len << 1 | pair`. The interpreter
        // classifies every dispatch (long run / fused pair / single
        // step) from this one load.
        let meta = (0..n)
            .map(|pc| run_len[pc] << 1 | pair[pc] as u32)
            .collect();

        let flat: Vec<FlatOp> = ops.iter().map(|&op| FlatOp::lower(op)).collect();

        // Straight-line fusion: where adjacent ops of the same run
        // match a hot pattern, flat2[pc] holds their superinstruction
        // (elsewhere it mirrors flat[pc]). A same-code `St`/`Ld` block
        // of three or more — a register save/restore frame, a block
        // move — becomes a repeat op (count in `sub`, elements re-read
        // from `flat`); otherwise two-op patterns fuse. The executor
        // walks flat2 greedily; flat keeps the unfused ops so any pc —
        // e.g. a fuel cut between the halves — is still a valid entry
        // point.
        let mut flat2 = flat.clone();
        for pc in 0..n {
            let within_run = run_len[pc] as usize;
            if within_run < 2 {
                continue;
            }
            let rep_code = match flat[pc].code {
                FlatCode::St => Some(FlatCode::StRep),
                FlatCode::Ld => Some(FlatCode::LdRep),
                _ => None,
            };
            if let Some(rep) = rep_code {
                let same = (1..within_run.min(255))
                    .take_while(|&j| flat[pc + j].code == flat[pc].code)
                    .count()
                    + 1;
                if same >= 3 {
                    flat2[pc] = FlatOp {
                        code: rep,
                        a: 0,
                        b: 0,
                        c: 0,
                        d: 0,
                        sub: same as u8,
                        imm: 0,
                    };
                    continue;
                }
            }
            if let Some(fused) = FlatOp::fuse2(flat[pc], flat[pc + 1]) {
                flat2[pc] = fused;
            }
        }

        DecodedImage {
            ops,
            instrs: code.to_vec(),
            kinds,
            uses,
            run_len,
            pair,
            meta,
            flat,
            flat2,
        }
    }

    /// Number of code words in the image.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the image holds no code.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The decoded op at `pc` (callers guarantee `pc < len`).
    #[inline(always)]
    pub fn op(&self, pc: usize) -> DecodedOp {
        self.ops[pc]
    }

    /// The original instruction at `pc`, for trace events.
    #[inline(always)]
    pub fn instr(&self, pc: usize) -> Instruction {
        self.instrs[pc]
    }

    /// The pre-computed control classification at `pc`.
    #[inline(always)]
    pub fn kind(&self, pc: usize) -> ControlKind {
        self.kinds[pc]
    }

    /// The pre-computed register-use summary at `pc`.
    #[inline(always)]
    pub fn reg_use(&self, pc: usize) -> &RegUse {
        &self.uses[pc]
    }

    /// Length of the straight-line (control-free, fusion-free) run
    /// starting at `pc`; `0` at control transfers and fused-pair
    /// heads.
    #[inline(always)]
    pub fn run_len(&self, pc: usize) -> u32 {
        self.run_len[pc]
    }

    /// `true` when `pc` heads a fused `op→branch` superinstruction.
    #[inline(always)]
    pub fn is_pair(&self, pc: usize) -> bool {
        self.pair[pc]
    }

    /// Packed dispatch word at `pc`: `run_len << 1 | fused_pair`. Zero
    /// means "single-step this op" (control transfers, halt); the
    /// interpreter's dispatcher classifies each pc from this one load
    /// instead of touching the `run_len` and `pair` tables separately.
    #[inline(always)]
    pub fn meta(&self, pc: usize) -> u32 {
        self.meta[pc]
    }

    /// All decoded ops, indexed by pc. The executor slices this once
    /// per straight-line run so the per-op loop compiles to a pointer
    /// walk with a single up-front bounds check.
    #[inline(always)]
    pub fn ops(&self) -> &[DecodedOp] {
        &self.ops
    }

    /// All per-pc register-use summaries, indexed by pc (slice
    /// counterpart of [`DecodedImage::reg_use`]).
    #[inline(always)]
    pub fn uses(&self) -> &[RegUse] {
        &self.uses
    }

    /// All flat execution ops, indexed by pc — the single-dispatch form
    /// the straight-line executor walks (control pcs hold
    /// [`FlatCode::Ctl`] fillers and are never executed from here).
    #[inline(always)]
    pub fn flat(&self) -> &[FlatOp] {
        &self.flat
    }

    /// The fusion-annotated flat stream, indexed by pc: at pcs heading
    /// a fused straight-line pair this holds the two-op
    /// superinstruction, elsewhere it mirrors [`DecodedImage::flat`].
    /// Executors walk this stream greedily inside runs and fall back
    /// to `flat` when the fuel window cuts a pair in half.
    #[inline(always)]
    pub fn flat2(&self) -> &[FlatOp] {
        &self.flat2
    }

    /// The instruction copy the image was built from, for verifying an
    /// image still matches a program.
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Number of fused `op→branch` superinstructions found by the
    /// peephole pass (a decode-quality statistic).
    pub fn fused_pairs(&self) -> usize {
        self.pair.iter().filter(|&&p| p).count()
    }

    /// Number of two-op straight-line superinstructions in the
    /// [`flat2`](DecodedImage::flat2) stream (a decode-quality
    /// statistic; each replaces two dispatches with one when executed
    /// from its head).
    pub fn fused_straight(&self) -> usize {
        self.flat2.iter().filter(|f| f.code.fuses_two()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addi(rd: Reg, ra: Reg, imm: i32) -> Instruction {
        Instruction::AluImm {
            op: AluOp::Add,
            rd,
            ra,
            imm,
        }
    }

    /// A canonical counted loop:
    /// ```text
    /// 0: li   r1, 0
    /// 1: addi r2, r2, 7    <- loop body (run of 2)
    /// 2: addi r2, r2, 9
    /// 3: addi r1, r1, 1    <- fused pair head
    /// 4: b.lt r1, r3, @1
    /// 5: halt
    /// ```
    fn counted_loop() -> Vec<Instruction> {
        vec![
            Instruction::LoadImm {
                rd: Reg::R1,
                imm: 0,
            },
            addi(Reg::R2, Reg::R2, 7),
            addi(Reg::R2, Reg::R2, 9),
            addi(Reg::R1, Reg::R1, 1),
            Instruction::Branch {
                cond: Cond::LtS,
                ra: Reg::R1,
                rb: Reg::R3,
                target: Addr::new(1),
            },
            Instruction::Halt,
        ]
    }

    #[test]
    fn immediates_are_pre_extended() {
        let img = DecodedImage::build(&[
            addi(Reg::R1, Reg::R1, -1),
            Instruction::Load {
                rd: Reg::R1,
                base: Reg::R2,
                offset: -4,
            },
        ]);
        assert_eq!(
            img.op(0),
            DecodedOp::AluImm {
                op: AluOp::Add,
                rd: Reg::R1,
                ra: Reg::R1,
                imm: u64::MAX,
            }
        );
        assert_eq!(
            img.op(1),
            DecodedOp::Load {
                rd: Reg::R1,
                base: Reg::R2,
                offset: (-4i64) as u64,
            }
        );
    }

    #[test]
    fn back_edge_pair_is_fused_and_runs_stop_before_it() {
        let img = DecodedImage::build(&counted_loop());
        assert!(img.is_pair(3), "addi feeding a branch fuses");
        assert!(!img.is_pair(4));
        assert_eq!(img.fused_pairs(), 1);
        // The body run from the branch target covers pcs 1..=2 and
        // stops at the fused pair.
        assert_eq!(img.run_len(1), 2);
        assert_eq!(img.run_len(2), 1);
        assert_eq!(img.run_len(3), 0, "pair head is not part of a run");
        assert_eq!(img.run_len(4), 0, "control op");
        assert_eq!(img.run_len(5), 0, "halt");
    }

    #[test]
    fn suffix_run_lengths_cover_every_entry_point() {
        let code = vec![
            addi(Reg::R1, Reg::R1, 1),
            addi(Reg::R2, Reg::R2, 1),
            addi(Reg::R3, Reg::R3, 1),
            Instruction::Halt,
        ];
        let img = DecodedImage::build(&code);
        // No branch follows, so nothing fuses; each pc sees the
        // maximal remaining run.
        assert_eq!(img.run_len(0), 3);
        assert_eq!(img.run_len(1), 2);
        assert_eq!(img.run_len(2), 1);
        assert_eq!(img.run_len(3), 0);
    }

    #[test]
    fn memory_ops_never_lead_a_fused_pair() {
        let code = vec![
            Instruction::Load {
                rd: Reg::R1,
                base: Reg::R2,
                offset: 0,
            },
            Instruction::Branch {
                cond: Cond::Ne,
                ra: Reg::R1,
                rb: Reg::R0,
                target: Addr::new(0),
            },
            Instruction::Halt,
        ];
        let img = DecodedImage::build(&code);
        assert!(!img.is_pair(0), "loads keep their own mem-limit check");
        assert_eq!(img.run_len(0), 1);
    }

    #[test]
    fn kernel_call_terminates_runs_and_never_fuses() {
        let code = vec![
            addi(Reg::R1, Reg::R1, 1),
            addi(Reg::R2, Reg::R2, 1),
            Instruction::KernelCall { id: 1 },
            addi(Reg::R3, Reg::R3, 1),
            Instruction::Halt,
        ];
        let img = DecodedImage::build(&code);
        assert_eq!(img.op(2), DecodedOp::KernelCall { id: 1 });
        assert_eq!(img.kind(2), ControlKind::None, "invisible to the CLS");
        assert_eq!(img.run_len(0), 2, "run stops before the dispatch");
        assert_eq!(img.run_len(2), 0, "dispatch is a single step");
        assert_eq!(img.run_len(3), 1);
        assert!(!img.is_pair(2));
        assert_eq!(img.meta(2), 0);
        assert_eq!(img.flat()[2].code, FlatCode::Ctl);
    }

    #[test]
    fn lowering_preserves_the_instruction_copy() {
        let code = counted_loop();
        let img = DecodedImage::build(&code);
        assert_eq!(img.instrs(), &code[..]);
        assert_eq!(img.len(), code.len());
        assert!(!img.is_empty());
        for (pc, instr) in code.iter().enumerate() {
            assert_eq!(img.kind(pc), instr.control_kind());
            assert_eq!(*img.reg_use(pc), instr.reg_use());
            assert_eq!(img.instr(pc), *instr);
        }
    }
}
