//! Binary encoding of SLA instructions.
//!
//! Every instruction encodes into one little-endian 64-bit word:
//!
//! ```text
//!  63       56 55    51 50    46 45    41 40     33 32            0
//! +-----------+--------+--------+--------+---------+---------------+
//! |   opcode  |   rd   |   ra   |   rb   |  subop  |   imm/target  |
//! +-----------+--------+--------+--------+---------+---------------+
//! ```
//!
//! `LoadImm` reuses bits `[0, 48)` for a sign-extended 48-bit immediate.
//! The encoding exists so the CPU can model a realistic fetch/decode
//! pipeline and so programs can be stored and hashed as flat `u64` slices.

use std::fmt;

use crate::{Addr, AluOp, Cond, FAluOp, FReg, FUnOp, Instruction, Reg};

/// Error returned by [`Instruction::decode`] for malformed words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u64,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#018x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

mod opcode {
    pub const NOP: u8 = 0;
    pub const HALT: u8 = 1;
    pub const ALU: u8 = 2;
    pub const ALU_IMM: u8 = 3;
    pub const LOAD_IMM: u8 = 4;
    pub const LOAD: u8 = 5;
    pub const STORE: u8 = 6;
    pub const FALU: u8 = 7;
    pub const FUN: u8 = 8;
    pub const FLOAD_IMM: u8 = 9;
    pub const FLOAD: u8 = 10;
    pub const FSTORE: u8 = 11;
    pub const FCMP: u8 = 12;
    pub const ITOF: u8 = 13;
    pub const FTOI: u8 = 14;
    pub const BRANCH: u8 = 15;
    pub const JUMP: u8 = 16;
    pub const JUMP_IND: u8 = 17;
    pub const CALL: u8 = 18;
    pub const CALL_IND: u8 = 19;
    pub const RET: u8 = 20;
    pub const KERNEL_CALL: u8 = 21;
}

const RD_SHIFT: u32 = 51;
const RA_SHIFT: u32 = 46;
const RB_SHIFT: u32 = 41;
const SUBOP_SHIFT: u32 = 33;
const REG_MASK: u64 = 0x1f;
const SUBOP_MASK: u64 = 0xff;
const IMM32_MASK: u64 = 0xffff_ffff;
const IMM48_MASK: u64 = 0xffff_ffff_ffff;

/// Maximum magnitude of a [`Instruction::LoadImm`] immediate: the value
/// must satisfy `LOAD_IMM_MIN <= imm <= LOAD_IMM_MAX` (48 signed bits).
pub const LOAD_IMM_MAX: i64 = (1 << 47) - 1;
/// Minimum [`Instruction::LoadImm`] immediate. See [`LOAD_IMM_MAX`].
pub const LOAD_IMM_MIN: i64 = -(1 << 47);

fn pack(opcode: u8, rd: u64, ra: u64, rb: u64, subop: u64, imm: u64) -> u64 {
    ((opcode as u64) << 56)
        | ((rd & REG_MASK) << RD_SHIFT)
        | ((ra & REG_MASK) << RA_SHIFT)
        | ((rb & REG_MASK) << RB_SHIFT)
        | ((subop & SUBOP_MASK) << SUBOP_SHIFT)
        | (imm & IMM32_MASK)
}

fn field_rd(word: u64) -> usize {
    ((word >> RD_SHIFT) & REG_MASK) as usize
}
fn field_ra(word: u64) -> usize {
    ((word >> RA_SHIFT) & REG_MASK) as usize
}
fn field_rb(word: u64) -> usize {
    ((word >> RB_SHIFT) & REG_MASK) as usize
}
fn field_subop(word: u64) -> usize {
    ((word >> SUBOP_SHIFT) & SUBOP_MASK) as usize
}
fn field_imm32(word: u64) -> i32 {
    (word & IMM32_MASK) as u32 as i32
}
fn field_addr(word: u64) -> Addr {
    Addr::new((word & IMM32_MASK) as u32)
}

fn reg(idx: usize, word: u64) -> Result<Reg, DecodeError> {
    Reg::from_index(idx).ok_or(DecodeError {
        word,
        reason: "integer register index out of range",
    })
}

fn freg(idx: usize, word: u64) -> Result<FReg, DecodeError> {
    FReg::from_index(idx).ok_or(DecodeError {
        word,
        reason: "fp register index out of range",
    })
}

impl Instruction {
    /// Encodes the instruction into its 64-bit machine word.
    ///
    /// # Panics
    ///
    /// Panics if a [`Instruction::LoadImm`] immediate does not fit in 48
    /// signed bits ([`LOAD_IMM_MIN`]`..=`[`LOAD_IMM_MAX`]); the assembler
    /// validates this before emitting code.
    pub fn encode(&self) -> u64 {
        use opcode::*;
        match *self {
            Instruction::Nop => pack(NOP, 0, 0, 0, 0, 0),
            Instruction::Halt => pack(HALT, 0, 0, 0, 0, 0),
            Instruction::Alu { op, rd, ra, rb } => pack(
                ALU,
                rd.index() as u64,
                ra.index() as u64,
                rb.index() as u64,
                op as u64,
                0,
            ),
            Instruction::AluImm { op, rd, ra, imm } => pack(
                ALU_IMM,
                rd.index() as u64,
                ra.index() as u64,
                0,
                op as u64,
                imm as u32 as u64,
            ),
            Instruction::LoadImm { rd, imm } => {
                assert!(
                    (LOAD_IMM_MIN..=LOAD_IMM_MAX).contains(&imm),
                    "LoadImm immediate {imm} exceeds 48 signed bits"
                );
                ((LOAD_IMM as u64) << 56)
                    | ((rd.index() as u64) << RD_SHIFT)
                    | ((imm as u64) & IMM48_MASK)
            }
            Instruction::Load { rd, base, offset } => pack(
                LOAD,
                rd.index() as u64,
                base.index() as u64,
                0,
                0,
                offset as u32 as u64,
            ),
            Instruction::Store { src, base, offset } => pack(
                STORE,
                0,
                base.index() as u64,
                src.index() as u64,
                0,
                offset as u32 as u64,
            ),
            Instruction::FAlu { op, fd, fa, fb } => pack(
                FALU,
                fd.index() as u64,
                fa.index() as u64,
                fb.index() as u64,
                op as u64,
                0,
            ),
            Instruction::FUn { op, fd, fa } => {
                pack(FUN, fd.index() as u64, fa.index() as u64, 0, op as u64, 0)
            }
            Instruction::FLoadImm { fd, value } => pack(
                FLOAD_IMM,
                fd.index() as u64,
                0,
                0,
                0,
                value.to_bits() as u64,
            ),
            Instruction::FLoad { fd, base, offset } => pack(
                FLOAD,
                fd.index() as u64,
                base.index() as u64,
                0,
                0,
                offset as u32 as u64,
            ),
            Instruction::FStore { fsrc, base, offset } => pack(
                FSTORE,
                0,
                base.index() as u64,
                fsrc.index() as u64,
                0,
                offset as u32 as u64,
            ),
            Instruction::FCmp { cond, rd, fa, fb } => pack(
                FCMP,
                rd.index() as u64,
                fa.index() as u64,
                fb.index() as u64,
                cond as u64,
                0,
            ),
            Instruction::ItoF { fd, ra } => {
                pack(ITOF, fd.index() as u64, ra.index() as u64, 0, 0, 0)
            }
            Instruction::FtoI { rd, fa } => {
                pack(FTOI, rd.index() as u64, fa.index() as u64, 0, 0, 0)
            }
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } => pack(
                BRANCH,
                0,
                ra.index() as u64,
                rb.index() as u64,
                cond as u64,
                target.index() as u64,
            ),
            Instruction::Jump { target } => pack(JUMP, 0, 0, 0, 0, target.index() as u64),
            Instruction::JumpInd { base } => pack(JUMP_IND, 0, base.index() as u64, 0, 0, 0),
            Instruction::Call { target, link } => {
                pack(CALL, link.index() as u64, 0, 0, 0, target.index() as u64)
            }
            Instruction::CallInd { base, link } => {
                pack(CALL_IND, link.index() as u64, base.index() as u64, 0, 0, 0)
            }
            Instruction::Ret { link } => pack(RET, 0, link.index() as u64, 0, 0, 0),
            Instruction::KernelCall { id } => pack(KERNEL_CALL, 0, 0, 0, 0, id as u64),
        }
    }

    /// Decodes a 64-bit machine word back into an instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the opcode or a sub-operation field
    /// holds a value outside the defined encoding space.
    pub fn decode(word: u64) -> Result<Instruction, DecodeError> {
        use opcode::*;
        let op = (word >> 56) as u8;
        let bad = |reason| DecodeError { word, reason };
        Ok(match op {
            NOP => Instruction::Nop,
            HALT => Instruction::Halt,
            ALU => Instruction::Alu {
                op: *AluOp::ALL
                    .get(field_subop(word))
                    .ok_or(bad("unknown ALU subop"))?,
                rd: reg(field_rd(word), word)?,
                ra: reg(field_ra(word), word)?,
                rb: reg(field_rb(word), word)?,
            },
            ALU_IMM => Instruction::AluImm {
                op: *AluOp::ALL
                    .get(field_subop(word))
                    .ok_or(bad("unknown ALU subop"))?,
                rd: reg(field_rd(word), word)?,
                ra: reg(field_ra(word), word)?,
                imm: field_imm32(word),
            },
            LOAD_IMM => {
                // Sign-extend the 48-bit immediate.
                let raw = word & IMM48_MASK;
                let imm = ((raw << 16) as i64) >> 16;
                Instruction::LoadImm {
                    rd: reg(field_rd(word), word)?,
                    imm,
                }
            }
            LOAD => Instruction::Load {
                rd: reg(field_rd(word), word)?,
                base: reg(field_ra(word), word)?,
                offset: field_imm32(word),
            },
            STORE => Instruction::Store {
                src: reg(field_rb(word), word)?,
                base: reg(field_ra(word), word)?,
                offset: field_imm32(word),
            },
            FALU => Instruction::FAlu {
                op: *FAluOp::ALL
                    .get(field_subop(word))
                    .ok_or(bad("unknown FALU subop"))?,
                fd: freg(field_rd(word), word)?,
                fa: freg(field_ra(word), word)?,
                fb: freg(field_rb(word), word)?,
            },
            FUN => Instruction::FUn {
                op: *FUnOp::ALL
                    .get(field_subop(word))
                    .ok_or(bad("unknown FUN subop"))?,
                fd: freg(field_rd(word), word)?,
                fa: freg(field_ra(word), word)?,
            },
            FLOAD_IMM => Instruction::FLoadImm {
                fd: freg(field_rd(word), word)?,
                value: f32::from_bits((word & IMM32_MASK) as u32),
            },
            FLOAD => Instruction::FLoad {
                fd: freg(field_rd(word), word)?,
                base: reg(field_ra(word), word)?,
                offset: field_imm32(word),
            },
            FSTORE => Instruction::FStore {
                fsrc: freg(field_rb(word), word)?,
                base: reg(field_ra(word), word)?,
                offset: field_imm32(word),
            },
            FCMP => Instruction::FCmp {
                cond: *Cond::ALL
                    .get(field_subop(word))
                    .ok_or(bad("unknown condition"))?,
                rd: reg(field_rd(word), word)?,
                fa: freg(field_ra(word), word)?,
                fb: freg(field_rb(word), word)?,
            },
            ITOF => Instruction::ItoF {
                fd: freg(field_rd(word), word)?,
                ra: reg(field_ra(word), word)?,
            },
            FTOI => Instruction::FtoI {
                rd: reg(field_rd(word), word)?,
                fa: freg(field_ra(word), word)?,
            },
            BRANCH => Instruction::Branch {
                cond: *Cond::ALL
                    .get(field_subop(word))
                    .ok_or(bad("unknown condition"))?,
                ra: reg(field_ra(word), word)?,
                rb: reg(field_rb(word), word)?,
                target: field_addr(word),
            },
            JUMP => Instruction::Jump {
                target: field_addr(word),
            },
            JUMP_IND => Instruction::JumpInd {
                base: reg(field_ra(word), word)?,
            },
            CALL => Instruction::Call {
                target: field_addr(word),
                link: reg(field_rd(word), word)?,
            },
            CALL_IND => Instruction::CallInd {
                base: reg(field_ra(word), word)?,
                link: reg(field_rd(word), word)?,
            },
            RET => Instruction::Ret {
                link: reg(field_ra(word), word)?,
            },
            KERNEL_CALL => Instruction::KernelCall {
                id: (word & IMM32_MASK) as u32,
            },
            _ => return Err(bad("unknown opcode")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Instruction) {
        let word = i.encode();
        let back = Instruction::decode(word).unwrap_or_else(|e| panic!("{e} (from {i})"));
        assert_eq!(back, i, "round trip of {i}");
    }

    #[test]
    fn all_shapes_round_trip() {
        round_trip(Instruction::Nop);
        round_trip(Instruction::Halt);
        round_trip(Instruction::Alu {
            op: AluOp::Xor,
            rd: Reg::R31,
            ra: Reg::R15,
            rb: Reg::R1,
        });
        round_trip(Instruction::AluImm {
            op: AluOp::SltU,
            rd: Reg::R2,
            ra: Reg::R3,
            imm: -12345,
        });
        round_trip(Instruction::LoadImm {
            rd: Reg::R9,
            imm: -(1 << 40),
        });
        round_trip(Instruction::LoadImm {
            rd: Reg::R9,
            imm: LOAD_IMM_MAX,
        });
        round_trip(Instruction::LoadImm {
            rd: Reg::R9,
            imm: LOAD_IMM_MIN,
        });
        round_trip(Instruction::Load {
            rd: Reg::R4,
            base: Reg::SP,
            offset: -8,
        });
        round_trip(Instruction::Store {
            src: Reg::R5,
            base: Reg::R6,
            offset: 1024,
        });
        round_trip(Instruction::FAlu {
            op: FAluOp::Max,
            fd: FReg::F31,
            fa: FReg::F0,
            fb: FReg::F16,
        });
        round_trip(Instruction::FUn {
            op: FUnOp::Sqrt,
            fd: FReg::F2,
            fa: FReg::F3,
        });
        round_trip(Instruction::FLoadImm {
            fd: FReg::F7,
            value: -3.25,
        });
        round_trip(Instruction::FLoad {
            fd: FReg::F8,
            base: Reg::R10,
            offset: 7,
        });
        round_trip(Instruction::FStore {
            fsrc: FReg::F9,
            base: Reg::R11,
            offset: -7,
        });
        round_trip(Instruction::FCmp {
            cond: Cond::GeU,
            rd: Reg::R12,
            fa: FReg::F10,
            fb: FReg::F11,
        });
        round_trip(Instruction::ItoF {
            fd: FReg::F12,
            ra: Reg::R13,
        });
        round_trip(Instruction::FtoI {
            rd: Reg::R14,
            fa: FReg::F13,
        });
        round_trip(Instruction::Branch {
            cond: Cond::LeS,
            ra: Reg::R16,
            rb: Reg::R17,
            target: Addr::new(0xdead),
        });
        round_trip(Instruction::Jump {
            target: Addr::new(u32::MAX),
        });
        round_trip(Instruction::JumpInd { base: Reg::R18 });
        round_trip(Instruction::Call {
            target: Addr::new(42),
            link: Reg::RA,
        });
        round_trip(Instruction::CallInd {
            base: Reg::R19,
            link: Reg::R20,
        });
        round_trip(Instruction::Ret { link: Reg::RA });
        round_trip(Instruction::KernelCall { id: 3 });
        round_trip(Instruction::KernelCall { id: u32::MAX });
    }

    #[test]
    fn unknown_opcode_errors() {
        let err = Instruction::decode(0xff00_0000_0000_0000).unwrap_err();
        assert_eq!(err.reason, "unknown opcode");
        assert!(err.to_string().contains("unknown opcode"));
    }

    #[test]
    fn unknown_subop_errors() {
        // ALU with subop 200.
        let word = (2u64 << 56) | (200u64 << 33);
        assert!(Instruction::decode(word).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds 48 signed bits")]
    fn oversized_load_imm_panics() {
        Instruction::LoadImm {
            rd: Reg::R1,
            imm: LOAD_IMM_MAX + 1,
        }
        .encode();
    }

    #[test]
    fn negative_imm48_sign_extends() {
        let i = Instruction::LoadImm {
            rd: Reg::R1,
            imm: -1,
        };
        assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
    }
}
