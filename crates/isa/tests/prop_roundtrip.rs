//! Property-style tests over seeded random instructions: every
//! constructible instruction round-trips through the binary encoding, and
//! operation semantics satisfy algebraic laws.
//!
//! The original suite used `proptest`; the build environment is offline,
//! so the same generators are driven by a small deterministic xorshift
//! RNG instead (fixed seeds, hundreds of cases per law).

use loopspec_isa::{Addr, AluOp, Cond, FAluOp, FReg, FUnOp, Instruction, Reg};
use loopspec_testutil::Rng;

/// ISA-typed draws on top of the shared generator.
trait IsaRng {
    fn reg(&mut self) -> Reg;
    fn freg(&mut self) -> FReg;
    fn alu_op(&mut self) -> AluOp;
    fn cond(&mut self) -> Cond;
    fn addr(&mut self) -> Addr;
    fn imm48(&mut self) -> i64;
}

impl IsaRng for Rng {
    fn reg(&mut self) -> Reg {
        Reg::from_index(self.below(Reg::COUNT as u64) as usize).unwrap()
    }

    fn freg(&mut self) -> FReg {
        FReg::from_index(self.below(FReg::COUNT as u64) as usize).unwrap()
    }

    fn alu_op(&mut self) -> AluOp {
        AluOp::ALL[self.below(AluOp::ALL.len() as u64) as usize]
    }

    fn cond(&mut self) -> Cond {
        Cond::ALL[self.below(Cond::ALL.len() as u64) as usize]
    }

    fn addr(&mut self) -> Addr {
        Addr::new(self.next() as u32)
    }

    fn imm48(&mut self) -> i64 {
        (self.next() as i64) >> 16
    }
}

fn arb_instruction(r: &mut Rng) -> Instruction {
    match r.below(21) {
        0 => Instruction::Nop,
        1 => Instruction::Halt,
        2 => Instruction::Alu {
            op: r.alu_op(),
            rd: r.reg(),
            ra: r.reg(),
            rb: r.reg(),
        },
        3 => Instruction::AluImm {
            op: r.alu_op(),
            rd: r.reg(),
            ra: r.reg(),
            imm: r.i32(),
        },
        4 => Instruction::LoadImm {
            rd: r.reg(),
            imm: r.imm48(),
        },
        5 => Instruction::Load {
            rd: r.reg(),
            base: r.reg(),
            offset: r.i32(),
        },
        6 => Instruction::Store {
            src: r.reg(),
            base: r.reg(),
            offset: r.i32(),
        },
        7 => Instruction::FAlu {
            op: FAluOp::ALL[r.below(FAluOp::ALL.len() as u64) as usize],
            fd: r.freg(),
            fa: r.freg(),
            fb: r.freg(),
        },
        8 => Instruction::FUn {
            op: FUnOp::ALL[r.below(FUnOp::ALL.len() as u64) as usize],
            fd: r.freg(),
            fa: r.freg(),
        },
        9 => Instruction::FLoadImm {
            fd: r.freg(),
            value: f32::from_bits(r.next() as u32),
        },
        10 => Instruction::FLoad {
            fd: r.freg(),
            base: r.reg(),
            offset: r.i32(),
        },
        11 => Instruction::FStore {
            fsrc: r.freg(),
            base: r.reg(),
            offset: r.i32(),
        },
        12 => Instruction::FCmp {
            cond: r.cond(),
            rd: r.reg(),
            fa: r.freg(),
            fb: r.freg(),
        },
        13 => Instruction::ItoF {
            fd: r.freg(),
            ra: r.reg(),
        },
        14 => Instruction::FtoI {
            rd: r.reg(),
            fa: r.freg(),
        },
        15 => Instruction::Branch {
            cond: r.cond(),
            ra: r.reg(),
            rb: r.reg(),
            target: r.addr(),
        },
        16 => Instruction::Jump { target: r.addr() },
        17 => Instruction::JumpInd { base: r.reg() },
        18 => Instruction::Call {
            target: r.addr(),
            link: r.reg(),
        },
        19 => Instruction::CallInd {
            base: r.reg(),
            link: r.reg(),
        },
        _ => Instruction::Ret { link: r.reg() },
    }
}

fn bits_eq(a: &Instruction, b: &Instruction) -> bool {
    // `Instruction` contains an `f32`, so PartialEq is not reflexive for
    // NaN payloads; compare through re-encoding instead.
    a.encode() == b.encode()
}

#[test]
fn encode_decode_round_trip() {
    let mut r = Rng::new(0xfeed);
    for _ in 0..2000 {
        let instr = arb_instruction(&mut r);
        let word = instr.encode();
        let decoded = Instruction::decode(word).expect("decode of encoded instruction");
        assert!(bits_eq(&decoded, &instr), "{instr} != {decoded}");
        // And encoding is deterministic / stable under a second round trip.
        assert_eq!(decoded.encode(), word);
    }
}

#[test]
fn cond_negate_complements() {
    let mut r = Rng::new(1);
    for _ in 0..2000 {
        let c = r.cond();
        let (a, b) = (r.next(), r.next());
        assert_eq!(c.negate().eval(a, b), !c.eval(a, b));
    }
}

#[test]
fn slt_matches_branch_cond() {
    let mut r = Rng::new(2);
    for _ in 0..2000 {
        let (a, b) = (r.next(), r.next());
        assert_eq!(AluOp::SltS.eval(a, b) == 1, Cond::LtS.eval(a, b));
        assert_eq!(AluOp::SltU.eval(a, b) == 1, Cond::LtU.eval(a, b));
    }
}

#[test]
fn add_sub_inverse() {
    let mut r = Rng::new(3);
    for _ in 0..2000 {
        let (a, b) = (r.next(), r.next());
        assert_eq!(AluOp::Sub.eval(AluOp::Add.eval(a, b), b), a);
    }
}

#[test]
fn display_never_empty() {
    let mut r = Rng::new(4);
    for _ in 0..500 {
        assert!(!arb_instruction(&mut r).to_string().is_empty());
    }
}

#[test]
fn reg_use_bounded() {
    let mut r = Rng::new(5);
    for _ in 0..500 {
        let u = arb_instruction(&mut r).reg_use();
        assert!(u.reads_iter().count() <= 3);
        assert!(u.freads_iter().count() <= 2);
    }
}
