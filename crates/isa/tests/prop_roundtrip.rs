//! Property tests: every constructible instruction round-trips through the
//! binary encoding, and operation semantics satisfy algebraic laws.

use loopspec_isa::{Addr, AluOp, Cond, FAluOp, FReg, FUnOp, Instruction, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0..Reg::COUNT).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0..FReg::COUNT).prop_map(|i| FReg::from_index(i).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u32>().prop_map(Addr::new)
}

prop_compose! {
    fn arb_imm48()(v in (-(1i64 << 47))..((1i64 << 47) - 1)) -> i64 { v }
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Halt),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, ra, rb)| Instruction::Alu { op, rd, ra, rb }),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(op, rd, ra, imm)| Instruction::AluImm { op, rd, ra, imm }),
        (arb_reg(), arb_imm48()).prop_map(|(rd, imm)| Instruction::LoadImm { rd, imm }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, base, offset)| Instruction::Load {
            rd,
            base,
            offset
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(src, base, offset)| Instruction::Store {
            src,
            base,
            offset
        }),
        (0..FAluOp::ALL.len(), arb_freg(), arb_freg(), arb_freg()).prop_map(|(op, fd, fa, fb)| {
            Instruction::FAlu {
                op: FAluOp::ALL[op],
                fd,
                fa,
                fb,
            }
        }),
        (0..FUnOp::ALL.len(), arb_freg(), arb_freg()).prop_map(|(op, fd, fa)| Instruction::FUn {
            op: FUnOp::ALL[op],
            fd,
            fa
        }),
        (arb_freg(), any::<u32>()).prop_map(|(fd, bits)| Instruction::FLoadImm {
            fd,
            value: f32::from_bits(bits)
        }),
        (arb_freg(), arb_reg(), any::<i32>()).prop_map(|(fd, base, offset)| Instruction::FLoad {
            fd,
            base,
            offset
        }),
        (arb_freg(), arb_reg(), any::<i32>())
            .prop_map(|(fsrc, base, offset)| Instruction::FStore { fsrc, base, offset }),
        (arb_cond(), arb_reg(), arb_freg(), arb_freg())
            .prop_map(|(cond, rd, fa, fb)| Instruction::FCmp { cond, rd, fa, fb }),
        (arb_freg(), arb_reg()).prop_map(|(fd, ra)| Instruction::ItoF { fd, ra }),
        (arb_reg(), arb_freg()).prop_map(|(rd, fa)| Instruction::FtoI { rd, fa }),
        (arb_cond(), arb_reg(), arb_reg(), arb_addr()).prop_map(|(cond, ra, rb, target)| {
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            }
        }),
        arb_addr().prop_map(|target| Instruction::Jump { target }),
        arb_reg().prop_map(|base| Instruction::JumpInd { base }),
        (arb_addr(), arb_reg()).prop_map(|(target, link)| Instruction::Call { target, link }),
        (arb_reg(), arb_reg()).prop_map(|(base, link)| Instruction::CallInd { base, link }),
        arb_reg().prop_map(|link| Instruction::Ret { link }),
    ]
}

fn bits_eq(a: &Instruction, b: &Instruction) -> bool {
    // `Instruction` contains an `f32`, so PartialEq is not reflexive for
    // NaN payloads; compare through re-encoding instead.
    a.encode() == b.encode()
}

proptest! {
    #[test]
    fn encode_decode_round_trip(instr in arb_instruction()) {
        let word = instr.encode();
        let decoded = Instruction::decode(word).expect("decode of encoded instruction");
        prop_assert!(bits_eq(&decoded, &instr), "{instr} != {decoded}");
        // And encoding is deterministic / stable under a second round trip.
        prop_assert_eq!(decoded.encode(), word);
    }

    #[test]
    fn cond_negate_complements(c in arb_cond(), a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(c.negate().eval(a, b), !c.eval(a, b));
    }

    #[test]
    fn slt_matches_branch_cond(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::SltS.eval(a, b) == 1, Cond::LtS.eval(a, b));
        prop_assert_eq!(AluOp::SltU.eval(a, b) == 1, Cond::LtU.eval(a, b));
    }

    #[test]
    fn add_sub_inverse(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Sub.eval(AluOp::Add.eval(a, b), b), a);
    }

    #[test]
    fn display_never_empty(instr in arb_instruction()) {
        prop_assert!(!instr.to_string().is_empty());
    }

    #[test]
    fn reg_use_bounded(instr in arb_instruction()) {
        let u = instr.reg_use();
        prop_assert!(u.reads_iter().count() <= 3);
        prop_assert!(u.freads_iter().count() <= 2);
    }
}
