//! Detection scenarios on real assembled programs: every control
//! structure the paper's §2.1 enumerates (while, do-while, break, goto,
//! return, subroutines, recursion) plus CLS capacity stress.

use loopspec_asm::ProgramBuilder;
use loopspec_core::{Cls, EventCollector, LoopEvent, LoopStats};
use loopspec_cpu::{Cpu, RunLimits};
use loopspec_isa::{Cond, Reg};

fn collect(build: impl FnOnce(&mut ProgramBuilder)) -> (Vec<LoopEvent>, u64) {
    collect_with_cls(build, Cls::default())
}

fn collect_with_cls(build: impl FnOnce(&mut ProgramBuilder), cls: Cls) -> (Vec<LoopEvent>, u64) {
    let mut b = ProgramBuilder::new();
    build(&mut b);
    let p = b.finish().expect("assembles");
    let mut c = EventCollector::new(cls);
    let summary = Cpu::new()
        .run(&p, &mut c, RunLimits::default())
        .expect("runs");
    assert!(summary.halted());
    c.into_parts()
}

fn execution_iteration_counts(events: &[LoopEvent]) -> Vec<u32> {
    events
        .iter()
        .filter_map(|e| match e {
            LoopEvent::ExecutionEnd { iterations, .. } => Some(*iterations),
            _ => None,
        })
        .collect()
}

#[test]
fn do_while_counts_exact_iterations() {
    let (ev, _) = collect(|b| {
        let x = b.alloc_reg();
        b.li(x, 0);
        b.do_while(
            |b| b.addi(x, x, 1),
            |b| {
                b.with_reg(|b, lim| {
                    b.li(lim, 8);
                    // keep `lim` alive across the closure boundary
                });
                (Cond::LtS, x, {
                    // compare against a constant register materialised
                    // outside: reuse the zero trick via SltS on x < 8
                    // is simpler through an extra register kept in the
                    // builder; do the canonical compare-with-temp:
                    Reg::R0
                })
            },
        );
    });
    // x < 0 is false immediately after the first pass: a one-shot.
    assert!(ev.iter().any(|e| matches!(e, LoopEvent::OneShot { .. })));
}

#[test]
fn do_while_with_real_bound_runs_n_iterations() {
    let (ev, _) = collect(|b| {
        let x = b.alloc_reg();
        let lim = b.alloc_reg();
        b.li(x, 0);
        b.li(lim, 8);
        b.do_while(|b| b.addi(x, x, 1), |_| (Cond::LtS, x, lim));
    });
    assert_eq!(execution_iteration_counts(&ev), vec![8]);
}

#[test]
fn goto_out_of_two_loops_ends_both() {
    // A jump from the inner loop body straight past both loops: both
    // executions must end at that jump (rule 5).
    let (ev, _) = collect(|b| {
        b.counted_loop(10, |b, _| {
            b.counted_loop(10, |b, j| {
                b.work(2);
                b.with_reg(|b, three| {
                    b.li(three, 3);
                    b.if_then(Cond::Eq, j, three, |b| {
                        // break_loop only exits one level; emit a raw
                        // jump to a label far outside both loops through
                        // function return instead: use two break levels
                        // via nested break—simplest is break inner then
                        // break outer.
                        b.break_loop();
                    });
                });
            });
            b.break_loop();
        });
    });
    let ends = execution_iteration_counts(&ev);
    // Inner ends by the taken exit branch during iteration 4; outer ends
    // during iteration 1... which is a one-shot-less execution: the
    // outer loop never reaches a second iteration, so only the inner
    // execution is detected.
    assert_eq!(ends, vec![4]);
}

#[test]
fn continue_heavy_loop_still_one_execution() {
    let (ev, _) = collect(|b| {
        b.counted_loop(12, |b, i| {
            b.with_reg(|b, two| {
                b.li(two, 2);
                b.continue_if(Cond::LtS, i, two);
            });
            b.work(3);
        });
    });
    assert_eq!(execution_iteration_counts(&ev), vec![12]);
}

#[test]
fn loop_spanning_call_keeps_execution_open() {
    // Calls inside the body must not end the execution, and the callee's
    // instructions belong to the caller's execution (depth-wise).
    let (ev, n) = collect(|b| {
        b.define_func("leaf", |b| b.work(20));
        b.counted_loop(6, |b, _| {
            b.call_func("leaf");
        });
    });
    assert_eq!(execution_iteration_counts(&ev), vec![6]);
    let mut stats = LoopStats::new();
    stats.observe_all(&ev);
    let r = stats.report(n);
    // Instructions per iteration include the callee's ~45 instructions
    // (prologue + work + epilogue), not just the 3-4 loop instructions.
    assert!(r.instr_per_iter > 30.0, "{r:?}");
}

#[test]
fn return_from_inside_loop_ends_it() {
    // A function whose loop is exited by an early return: `ret_fn` jumps
    // to the epilogue (outside the body), ending the execution; the
    // *next* call starts a fresh execution.
    let (ev, _) = collect(|b| {
        b.define_func("bail", |b| {
            b.counted_loop(100, |b, i| {
                b.with_reg(|b, five| {
                    b.li(five, 5);
                    b.if_then(Cond::Eq, i, five, |b| b.ret_fn());
                });
                b.work(1);
            });
        });
        b.call_func("bail");
        b.call_func("bail");
    });
    let ends = execution_iteration_counts(&ev);
    assert_eq!(ends, vec![6, 6], "exited during iteration 6, twice");
}

#[test]
fn paper_recursion_example_alternating_loops() {
    // The s() example of §2.2: recursion alternates two static loops;
    // when T1 comes around again it is found in the CLS, T2 above it is
    // popped, and the event stream stays well-formed.
    let (ev, _) = collect(|b| {
        b.define_func("s", |b| {
            let d = b.alloc_reg();
            b.mov(d, ProgramBuilder::ARG_REGS[0]);
            b.with_reg(|b, parity| {
                b.op_imm(loopspec_isa::AluOp::Rem, parity, d, 2);
                b.if_else(
                    Cond::Eq,
                    parity,
                    Reg::R0,
                    |b| {
                        b.counted_loop(2, |b, _| {
                            b.if_then(Cond::GtS, d, Reg::R0, |b| {
                                b.addi(ProgramBuilder::ARG_REGS[0], d, -1);
                                b.call_func("s");
                            });
                        });
                    },
                    |b| {
                        b.counted_loop(2, |b, _| {
                            b.if_then(Cond::GtS, d, Reg::R0, |b| {
                                b.addi(ProgramBuilder::ARG_REGS[0], d, -1);
                                b.call_func("s");
                            });
                        });
                    },
                );
            });
            b.free_reg(d);
        });
        b.set_arg(0, 6);
        b.call_func("s");
    });
    // Both loops appear, and every ExecutionEnd matches an open start
    // (the pipeline test's checker logic, inlined minimally).
    let mut open = std::collections::HashSet::new();
    for e in &ev {
        match e {
            LoopEvent::ExecutionStart { loop_id, .. } => {
                assert!(open.insert(*loop_id));
            }
            LoopEvent::ExecutionEnd { loop_id, .. } | LoopEvent::Evicted { loop_id, .. } => {
                assert!(open.remove(loop_id), "close of unopened loop");
            }
            _ => {}
        }
    }
    assert!(open.is_empty());
}

#[test]
fn tiny_cls_evicts_outermost_but_keeps_working() {
    let deep = |b: &mut ProgramBuilder| {
        b.counted_loop(2, |b, _| {
            b.counted_loop(2, |b, _| {
                b.counted_loop(2, |b, _| {
                    b.counted_loop(2, |b, _| b.work(2));
                });
            });
        });
    };
    let (ev_big, _) = collect(deep);
    let (ev_small, _) = collect_with_cls(deep, Cls::new(2));
    assert!(
        !ev_big
            .iter()
            .any(|e| matches!(e, LoopEvent::Evicted { .. })),
        "16 entries never evict on a 4-deep nest"
    );
    let evictions = ev_small
        .iter()
        .filter(|e| matches!(e, LoopEvent::Evicted { .. }))
        .count();
    assert!(evictions > 0, "2 entries must evict on a 4-deep nest");
    // The stream remains consumable: every loop id that starts also
    // finishes or is evicted.
    let starts = ev_small
        .iter()
        .filter(|e| matches!(e, LoopEvent::ExecutionStart { .. }))
        .count();
    let closes = ev_small
        .iter()
        .filter(|e| {
            matches!(
                e,
                LoopEvent::ExecutionEnd { .. } | LoopEvent::Evicted { .. }
            )
        })
        .count();
    assert_eq!(starts, closes);
}

#[test]
fn switch_heavy_code_produces_no_spurious_loops() {
    // Forward-only dispatch (no backward transfers outside the driver
    // loop) must detect exactly one loop: the driver.
    let (ev, _) = collect(|b| {
        let sel = b.alloc_reg();
        b.counted_loop(30, |b, i| {
            b.op_imm(loopspec_isa::AluOp::Rem, sel, i, 4);
            b.switch_table(sel, 4, |b, k| b.work(k as u32 + 1));
        });
    });
    let distinct: std::collections::HashSet<_> = ev.iter().map(|e| e.loop_id()).collect();
    assert_eq!(distinct.len(), 1, "only the driver loop exists");
}

#[test]
fn one_shot_then_multi_iteration_execution_of_same_loop() {
    // First execution runs 1 iteration (one-shot), second runs 5; the
    // same static loop produces both event shapes.
    let (ev, _) = collect(|b| {
        b.define_func("kernel", |b| {
            let n = b.mov_arg0();
            b.counted_loop(n, |b, _| b.work(1));
            b.free_reg(n);
        });
        b.set_arg(0, 1i64);
        b.call_func("kernel");
        b.set_arg(0, 5i64);
        b.call_func("kernel");
    });
    let one_shots = ev
        .iter()
        .filter(|e| matches!(e, LoopEvent::OneShot { .. }))
        .count();
    assert_eq!(one_shots, 1);
    assert_eq!(execution_iteration_counts(&ev), vec![5]);
}

/// Tiny helper used by the test above: move arg0 into a fresh register.
trait Arg0Ext {
    fn mov_arg0(&mut self) -> Reg;
}

impl Arg0Ext for ProgramBuilder {
    fn mov_arg0(&mut self) -> Reg {
        let r = self.alloc_reg();
        self.mov(r, ProgramBuilder::ARG_REGS[0]);
        r
    }
}
