//! # loopspec-core — dynamic loop detection (Tubella & González, HPCA 1998)
//!
//! This crate implements the paper's primary hardware mechanism:
//!
//! * the **Current Loop Stack** ([`Cls`]) — detects loop *executions* and
//!   loop *iterations* in the committed instruction stream with no
//!   compiler or ISA support (paper §2.2);
//! * the **loop-information tables** ([`LoopTable`], with the LET/LIT
//!   hit-ratio experiment in [`TableHitSim`]) — associative LRU tables
//!   gathering per-execution and per-iteration history (paper §2.3);
//! * the **loop statistics collector** ([`LoopStats`]) — reproduces the
//!   Table 1 characterisation (#loops, iterations/execution,
//!   instructions/iteration, nesting levels).
//!
//! A loop is identified by its target address `T` (the [`LoopId`]); its
//! body is the static range `[T, B]` where `B` is the highest address of a
//! backward transfer to `T` observed so far. The CLS tracks all loops
//! currently executing, innermost on top, and emits a stream of
//! [`LoopEvent`]s consumed by everything downstream (thread speculation in
//! `loopspec-mt`, value profiling in `loopspec-dataspec`).
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_cpu::{Cpu, RunLimits};
//! use loopspec_core::{EventCollector, LoopEvent};
//!
//! let mut b = ProgramBuilder::new();
//! b.counted_loop(10, |b, _| b.work(4));
//! let program = b.finish()?;
//!
//! let mut collector = EventCollector::default();
//! Cpu::new().run(&program, &mut collector, RunLimits::default())?;
//! let events = collector.into_events();
//!
//! // One execution of one loop, detected from its second iteration on.
//! assert!(matches!(events.first(), Some(LoopEvent::ExecutionStart { .. })));
//! assert!(matches!(
//!     events.last(),
//!     Some(LoopEvent::ExecutionEnd { iterations: 10, .. })
//! ));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cls;
mod detector;
mod event;
mod hitratio;
pub mod sink;
pub mod snap;
mod stats;
mod tables;

pub use cls::Cls;
pub use detector::{EventCollector, LoopDetector};
pub use event::{LoopEvent, LoopId};
pub use hitratio::{HitRatio, Replacement, TableHitSim, TableKind};
pub use sink::{CountingSink, LoopEventSink};
pub use snap::SnapshotState;
pub use stats::{LoopStats, LoopStatsReport};
pub use tables::LoopTable;

/// Default Current Loop Stack capacity used throughout the experiments.
///
/// The paper uses 16 entries, "enough to store the maximum number of
/// current loops" given that the maximum observed nesting level in SPEC95
/// is 11 (Table 1).
pub const DEFAULT_CLS_CAPACITY: usize = 16;

/// Default number of events per chunk on the buffered emission path
/// (see [`Cls::on_control_buffered`] and the [`sink`] batching
/// contract).
///
/// Large enough to amortize one virtual dispatch per sink over many
/// events, small enough that a chunk stays cache-resident (256 events ×
/// 24 bytes ≈ 6 KiB) and that the streaming engine's bounded lookahead
/// buffer stays O(chunk + run-ahead window).
pub const DEFAULT_EVENT_CHUNK: usize = 256;
