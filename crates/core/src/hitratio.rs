//! LET/LIT hit-ratio measurement (paper §2.3.1, Figure 4).
//!
//! "The contents of the LIT/LET are useful after two iterations/executions
//! … The LET hit ratio measures, when a new execution of a loop is
//! started, whether two complete executions of the same loop have been
//! detected since it was stored in the table. The LIT hit ratio measures,
//! when a loop iteration starts, whether two complete iterations have been
//! detected since it was stored."

use crate::{LoopEvent, LoopTable};

/// Which table a [`TableHitSim`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// Loop Execution Table: recency and completions at *execution*
    /// granularity.
    Let,
    /// Loop Iteration Table: recency and completions at *iteration*
    /// granularity.
    Lit,
}

/// A hit/check ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HitRatio {
    /// Accesses that found a warmed-up entry.
    pub hits: u64,
    /// Total accesses.
    pub checks: u64,
}

impl HitRatio {
    /// The ratio as a fraction in `[0, 1]`; `0` when nothing was checked.
    pub fn ratio(&self) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.hits as f64 / self.checks as f64
        }
    }

    /// The ratio as a percentage.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }
}

/// Replacement policy for the LET/LIT (paper §2.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Plain least-recently-used replacement (the paper's default).
    #[default]
    Lru,
    /// "An alternative replacement algorithm that inhibits the insertion
    /// of a loop … when it implies to eliminate a loop that is nested
    /// into it." Requires remembering which loops have nested into which
    /// (the paper notes the improvement over LRU is negligible — this
    /// exists to reproduce that ablation).
    NestInhibit,
}

/// Per-entry warm-up state: completions observed since insertion.
#[derive(Debug, Clone, Copy, Default)]
struct Warmth {
    completed: u64,
}

/// Replays a [`LoopEvent`] stream against an LET or LIT of a given size
/// and measures its hit ratio (Figure 4 of the paper).
///
/// The two tables differ only in which events count:
///
/// * **LET** — checked and LRU-touched at execution starts; an entry
///   "warms up" each time an execution of its loop completes. A check hits
///   when ≥ 2 executions completed since the entry was inserted.
/// * **LIT** — inserted at execution starts but LRU-touched at iteration
///   starts; warms up on iteration completions (an iteration completes
///   when the next one starts, or when the execution ends). A check hits
///   when ≥ 2 iterations completed since insertion. First iterations are
///   never checked (they are not detected in time).
///
/// ```
/// use loopspec_core::{TableHitSim, TableKind};
/// let mut sim = TableHitSim::new(TableKind::Lit, 4);
/// // ... sim.observe(&event) over a collected stream ...
/// let r = sim.ratio();
/// assert_eq!(r.checks, 0);
/// ```
#[derive(Debug, Clone)]
pub struct TableHitSim {
    kind: TableKind,
    table: LoopTable<Warmth>,
    ratio: HitRatio,
    replacement: Replacement,
    /// Loops currently executing, in nesting order (outermost first).
    open: Vec<crate::LoopId>,
    /// `nested_into[x]` = loops that `x` has ever been nested into.
    nested_into: std::collections::HashMap<crate::LoopId, std::collections::HashSet<crate::LoopId>>,
    /// Insertions refused by [`Replacement::NestInhibit`].
    inhibited: u64,
}

impl TableHitSim {
    /// Creates a simulator for `kind` with `capacity` entries and LRU
    /// replacement.
    pub fn new(kind: TableKind, capacity: usize) -> Self {
        Self::with_replacement(kind, capacity, Replacement::Lru)
    }

    /// Creates a simulator with an explicit replacement policy.
    pub fn with_replacement(kind: TableKind, capacity: usize, replacement: Replacement) -> Self {
        TableHitSim {
            kind,
            table: LoopTable::new(capacity),
            ratio: HitRatio::default(),
            replacement,
            open: Vec::new(),
            nested_into: std::collections::HashMap::new(),
            inhibited: 0,
        }
    }

    /// Creates a simulator with unbounded capacity (upper bound of
    /// achievable hit ratio).
    pub fn unbounded(kind: TableKind) -> Self {
        TableHitSim {
            kind,
            table: LoopTable::unbounded(),
            ratio: HitRatio::default(),
            replacement: Replacement::Lru,
            open: Vec::new(),
            nested_into: std::collections::HashMap::new(),
            inhibited: 0,
        }
    }

    /// Insertions refused by the nest-inhibit policy.
    pub fn inhibited(&self) -> u64 {
        self.inhibited
    }

    /// The measured ratio so far.
    pub fn ratio(&self) -> HitRatio {
        self.ratio
    }

    /// Which table this simulates.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Feeds one loop event.
    pub fn observe(&mut self, event: &LoopEvent) {
        self.track_nesting(event);
        match (self.kind, event) {
            (TableKind::Let, LoopEvent::ExecutionStart { loop_id, .. }) => {
                self.check(*loop_id);
                self.ensure(*loop_id);
                self.table.touch(*loop_id);
            }
            (
                TableKind::Let,
                LoopEvent::ExecutionEnd { loop_id, .. } | LoopEvent::Evicted { loop_id, .. },
            ) => {
                self.complete(*loop_id);
            }
            (TableKind::Let, LoopEvent::OneShot { loop_id, .. }) => {
                // A one-iteration execution: started (check + insert +
                // touch) and immediately completed.
                self.check(*loop_id);
                self.ensure(*loop_id);
                self.table.touch(*loop_id);
                self.complete(*loop_id);
            }
            (TableKind::Lit, LoopEvent::ExecutionStart { loop_id, .. }) => {
                self.ensure(*loop_id);
            }
            (TableKind::Lit, LoopEvent::IterationStart { loop_id, iter, .. }) => {
                // Starting iteration k (k >= 2) completes iteration k-1 —
                // except k == 2, whose predecessor completed simultaneously
                // with the entry's insertion and is not counted.
                if *iter > 2 {
                    self.complete(*loop_id);
                }
                self.check(*loop_id);
                self.table.touch(*loop_id);
            }
            (
                TableKind::Lit,
                LoopEvent::ExecutionEnd { loop_id, .. } | LoopEvent::Evicted { loop_id, .. },
            ) => {
                // The execution's last iteration completes.
                self.complete(*loop_id);
            }
            (TableKind::Lit, LoopEvent::OneShot { .. }) => {
                // Its single (first) iteration is never checked against
                // the LIT and completes undetected.
            }
            (TableKind::Let, LoopEvent::IterationStart { .. }) => {
                // Iteration granularity does not concern the LET.
            }
        }
    }

    /// Feeds a whole event stream.
    pub fn observe_all<'a>(&mut self, events: impl IntoIterator<Item = &'a LoopEvent>) {
        for e in events {
            self.observe(e);
        }
    }

    fn track_nesting(&mut self, event: &LoopEvent) {
        match *event {
            LoopEvent::ExecutionStart { loop_id, .. } => {
                if self.replacement == Replacement::NestInhibit {
                    let entry = self.nested_into.entry(loop_id).or_default();
                    entry.extend(self.open.iter().copied());
                }
                self.open.push(loop_id);
            }
            LoopEvent::ExecutionEnd { loop_id, .. } | LoopEvent::Evicted { loop_id, .. } => {
                if let Some(i) = self.open.iter().rposition(|&l| l == loop_id) {
                    self.open.remove(i);
                }
            }
            LoopEvent::OneShot { loop_id, .. } => {
                if self.replacement == Replacement::NestInhibit {
                    let entry = self.nested_into.entry(loop_id).or_default();
                    entry.extend(self.open.iter().copied());
                }
            }
            LoopEvent::IterationStart { .. } => {}
        }
    }

    fn check(&mut self, id: crate::LoopId) {
        self.ratio.checks += 1;
        if let Some(w) = self.table.get(id) {
            if w.completed >= 2 {
                self.ratio.hits += 1;
            }
        }
    }

    fn ensure(&mut self, id: crate::LoopId) {
        if self.table.get(id).is_some() {
            return;
        }
        if self.replacement == Replacement::NestInhibit && self.table.len() == self.table.capacity()
        {
            if let Some(victim) = self.table.peek_lru() {
                let victim_nested_in_id = self
                    .nested_into
                    .get(&victim)
                    .is_some_and(|s| s.contains(&id));
                if victim_nested_in_id {
                    self.inhibited += 1;
                    return;
                }
            }
        }
        self.table.insert(id, Warmth::default());
    }

    fn complete(&mut self, id: crate::LoopId) {
        if let Some(w) = self.table.get_mut(id) {
            w.completed += 1;
        }
    }
}

/// Streaming interface: hit ratios accumulate per event, so table
/// simulations plug directly into a single-pass `Session`.
impl crate::LoopEventSink for TableHitSim {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        self.observe(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopId;
    use loopspec_isa::Addr;

    fn id(n: u32) -> LoopId {
        LoopId(Addr::new(n))
    }

    fn exec(loop_n: u32, iters: u32, sim: &mut TableHitSim) {
        sim.observe(&LoopEvent::ExecutionStart {
            loop_id: id(loop_n),
            pos: 0,
            depth: 1,
        });
        for k in 2..=iters {
            sim.observe(&LoopEvent::IterationStart {
                loop_id: id(loop_n),
                iter: k,
                pos: 0,
            });
        }
        sim.observe(&LoopEvent::ExecutionEnd {
            loop_id: id(loop_n),
            iterations: iters,
            pos: 0,
        });
    }

    #[test]
    fn let_hits_from_third_execution() {
        let mut sim = TableHitSim::new(TableKind::Let, 16);
        for _ in 0..5 {
            exec(1, 3, &mut sim);
        }
        let r = sim.ratio();
        assert_eq!(r.checks, 5);
        // Exec 1: inserted (miss); exec 2: one completion (miss); execs
        // 3..5: >= 2 completions (hits).
        assert_eq!(r.hits, 3);
    }

    #[test]
    fn lit_hits_from_fourth_iteration() {
        let mut sim = TableHitSim::new(TableKind::Lit, 16);
        exec(1, 10, &mut sim);
        let r = sim.ratio();
        // Checks at iterations 2..=10 → 9 checks; hits at 4..=10 → 7.
        assert_eq!(r.checks, 9);
        assert_eq!(r.hits, 7);
    }

    #[test]
    fn lit_warmth_carries_across_executions() {
        let mut sim = TableHitSim::new(TableKind::Lit, 16);
        exec(1, 10, &mut sim);
        let before = sim.ratio();
        exec(1, 10, &mut sim);
        let after = sim.ratio();
        // Second execution: all 9 checks hit (entry warm from the first).
        assert_eq!(after.hits - before.hits, 9);
    }

    #[test]
    fn small_let_thrashes_on_many_loops() {
        let mut small = TableHitSim::new(TableKind::Let, 2);
        let mut big = TableHitSim::new(TableKind::Let, 16);
        // Round-robin over 8 distinct loops, 4 rounds.
        for _ in 0..4 {
            for l in 0..8 {
                exec(l, 3, &mut small);
                exec(l, 3, &mut big);
            }
        }
        assert!(small.ratio().ratio() < big.ratio().ratio());
        assert_eq!(small.ratio().hits, 0, "2-entry LET never warms up here");
    }

    #[test]
    fn one_shots_participate_in_let() {
        let mut sim = TableHitSim::new(TableKind::Let, 4);
        for _ in 0..4 {
            sim.observe(&LoopEvent::OneShot {
                loop_id: id(1),
                pos: 0,
                depth: 1,
            });
        }
        let r = sim.ratio();
        assert_eq!(r.checks, 4);
        assert_eq!(r.hits, 2, "warm after two completed one-shots");
    }

    #[test]
    fn nest_inhibit_protects_inner_loops() {
        // A 1-entry LET alternating between an outer loop and the loop
        // nested into it: LRU keeps evicting; nest-inhibit refuses to
        // evict the inner loop on behalf of its outer.
        let outer = id(1);
        let inner = id(2);
        let run = |replacement: Replacement| {
            let mut sim = TableHitSim::with_replacement(TableKind::Let, 1, replacement);
            for _ in 0..6 {
                // outer starts, inner runs inside it (twice), both end.
                sim.observe(&LoopEvent::ExecutionStart {
                    loop_id: outer,
                    pos: 0,
                    depth: 1,
                });
                for _ in 0..2 {
                    sim.observe(&LoopEvent::ExecutionStart {
                        loop_id: inner,
                        pos: 0,
                        depth: 2,
                    });
                    sim.observe(&LoopEvent::ExecutionEnd {
                        loop_id: inner,
                        iterations: 3,
                        pos: 0,
                    });
                }
                sim.observe(&LoopEvent::ExecutionEnd {
                    loop_id: outer,
                    iterations: 2,
                    pos: 0,
                });
            }
            sim
        };
        let lru = run(Replacement::Lru);
        let nest = run(Replacement::NestInhibit);
        assert_eq!(lru.inhibited(), 0);
        assert!(nest.inhibited() > 0, "outer insertions must be refused");
        assert!(
            nest.ratio().hits > lru.ratio().hits,
            "inner loop stays warm under nest-inhibit: {:?} vs {:?}",
            nest.ratio(),
            lru.ratio()
        );
    }

    #[test]
    fn nest_inhibit_equals_lru_when_capacity_suffices() {
        let run = |replacement: Replacement| {
            let mut sim = TableHitSim::with_replacement(TableKind::Lit, 16, replacement);
            for l in 0..4 {
                exec(l, 6, &mut sim);
                exec(l, 6, &mut sim);
            }
            sim.ratio()
        };
        assert_eq!(run(Replacement::Lru), run(Replacement::NestInhibit));
    }

    #[test]
    fn ratio_helpers() {
        let r = HitRatio { hits: 3, checks: 4 };
        assert!((r.ratio() - 0.75).abs() < 1e-12);
        assert!((r.percent() - 75.0).abs() < 1e-9);
        assert_eq!(HitRatio::default().ratio(), 0.0);
    }
}
