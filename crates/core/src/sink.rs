//! The streaming consumer interface for loop events.
//!
//! The CLS observes the committed instruction stream once and pushes
//! [`LoopEvent`]s into a [`LoopEventSink`] as it goes — exactly the shape
//! of the paper's hardware, where the LET/LIT and the speculation engine
//! watch the detector live rather than replaying a recorded trace.
//! Everything downstream of detection implements this trait:
//!
//! * [`EventCollector`](crate::EventCollector) and `Vec<LoopEvent>` —
//!   materialize the stream (the legacy collect-then-replay path);
//! * [`LoopStats`](crate::LoopStats) and
//!   [`TableHitSim`](crate::TableHitSim) — incremental statistics;
//! * `loopspec_mt::StreamEngine` — the single-pass speculation engine;
//! * `loopspec_dataspec::LiveInProfiler` — live-in value profiling;
//! * fan-out combinators (tuples, `&mut S`) so one detector can feed many
//!   analyses in the same pass.

use crate::LoopEvent;

/// A consumer of the detector's loop-event stream.
///
/// Events arrive in commit order with non-decreasing stream positions.
/// [`LoopEventSink::on_stream_end`] is called once, after the last event,
/// with the final instruction count; sinks that need to close open state
/// (e.g. the streaming engine) finalize there.
pub trait LoopEventSink {
    /// Called for every loop event, in commit order.
    fn on_loop_event(&mut self, ev: &LoopEvent);

    /// Called once when the instruction stream ends. `instructions` is
    /// the total number of committed instructions.
    fn on_stream_end(&mut self, instructions: u64) {
        let _ = instructions;
    }
}

impl LoopEventSink for Vec<LoopEvent> {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        self.push(*ev);
    }
}

impl<S: LoopEventSink + ?Sized> LoopEventSink for &mut S {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        (**self).on_loop_event(ev);
    }

    #[inline]
    fn on_stream_end(&mut self, instructions: u64) {
        (**self).on_stream_end(instructions);
    }
}

impl<A: LoopEventSink, B: LoopEventSink> LoopEventSink for (A, B) {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        self.0.on_loop_event(ev);
        self.1.on_loop_event(ev);
    }

    #[inline]
    fn on_stream_end(&mut self, instructions: u64) {
        self.0.on_stream_end(instructions);
        self.1.on_stream_end(instructions);
    }
}

impl<A: LoopEventSink, B: LoopEventSink, C: LoopEventSink> LoopEventSink for (A, B, C) {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        self.0.on_loop_event(ev);
        self.1.on_loop_event(ev);
        self.2.on_loop_event(ev);
    }

    #[inline]
    fn on_stream_end(&mut self, instructions: u64) {
        self.0.on_stream_end(instructions);
        self.1.on_stream_end(instructions);
        self.2.on_stream_end(instructions);
    }
}

/// A sink that only counts events — useful for throughput measurements
/// and as the cheapest possible pipeline endpoint.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Events observed.
    pub events: u64,
    /// Instruction count reported at stream end (0 until then).
    pub instructions: u64,
}

impl LoopEventSink for CountingSink {
    #[inline]
    fn on_loop_event(&mut self, _ev: &LoopEvent) {
        self.events += 1;
    }

    fn on_stream_end(&mut self, instructions: u64) {
        self.instructions = instructions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopId;
    use loopspec_isa::Addr;

    fn ev(pos: u64) -> LoopEvent {
        LoopEvent::OneShot {
            loop_id: LoopId(Addr::new(1)),
            pos,
            depth: 1,
        }
    }

    #[test]
    fn vec_sink_collects() {
        let mut v: Vec<LoopEvent> = Vec::new();
        v.on_loop_event(&ev(1));
        v.on_loop_event(&ev(2));
        assert_eq!(v.len(), 2);
        v.on_stream_end(10); // no-op for Vec
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn tuple_sinks_fan_out() {
        let mut pair = (Vec::new(), CountingSink::default());
        pair.on_loop_event(&ev(1));
        pair.on_stream_end(7);
        assert_eq!(pair.0.len(), 1);
        assert_eq!(pair.1.events, 1);
        assert_eq!(pair.1.instructions, 7);
    }

    #[test]
    fn mut_ref_delegates() {
        let mut c = CountingSink::default();
        {
            let mut r = &mut c;
            LoopEventSink::on_loop_event(&mut r, &ev(3));
            LoopEventSink::on_stream_end(&mut r, 9);
        }
        assert_eq!(c.events, 1);
        assert_eq!(c.instructions, 9);
    }
}
