//! The streaming consumer interface for loop events.
//!
//! The CLS observes the committed instruction stream once and pushes
//! [`LoopEvent`]s into a [`LoopEventSink`] as it goes — exactly the shape
//! of the paper's hardware, where the LET/LIT and the speculation engine
//! watch the detector live rather than replaying a recorded trace.
//! Everything downstream of detection implements this trait:
//!
//! * [`EventCollector`](crate::EventCollector) and `Vec<LoopEvent>` —
//!   materialize the stream (the legacy collect-then-replay path);
//! * [`LoopStats`](crate::LoopStats) and
//!   [`TableHitSim`](crate::TableHitSim) — incremental statistics;
//! * `loopspec_mt::StreamEngine` — the single-pass speculation engine;
//! * `loopspec_dataspec::LiveInProfiler` — live-in value profiling;
//! * fan-out combinators (tuples up to arity 8, `&mut S`) so one
//!   detector can feed many analyses in the same pass.
//!
//! ## The batching contract
//!
//! Producers may deliver events either one at a time
//! ([`LoopEventSink::on_loop_event`]) or in chunks
//! ([`LoopEventSink::on_loop_events`]). The two forms are
//! interchangeable views of the *same* stream, and every implementation
//! must treat them so:
//!
//! * **Ordering.** Concatenating the chunks (and single events) in
//!   delivery order yields the commit-ordered event stream, with
//!   non-decreasing stream positions. Chunk boundaries are arbitrary —
//!   they carry no semantic meaning, and a sink must produce identical
//!   results for any chunking of the same stream (the
//!   `chunked_equivalence` property test pins this down).
//! * **Default.** The default [`on_loop_events`] loops over
//!   [`on_loop_event`], so implementing the per-event method alone is
//!   always correct. Sinks override the batch method only to amortize
//!   per-delivery work (one virtual call, one drain pass per chunk).
//! * **Flush on stream end.** [`on_stream_end`] is called once, after
//!   the last event. A producer that buffers events into chunks (the
//!   CLS's internal chunk, `loopspec_pipeline::Session`) must flush its
//!   partial final chunk *before* ending the stream, so a sink never
//!   observes events after `on_stream_end`. A final chunk may therefore
//!   be any length in `1..=chunk_capacity`, including one that
//!   straddles what would otherwise be a chunk boundary.
//!
//! [`on_loop_events`]: LoopEventSink::on_loop_events
//! [`on_loop_event`]: LoopEventSink::on_loop_event
//! [`on_stream_end`]: LoopEventSink::on_stream_end

use crate::LoopEvent;

/// A consumer of the detector's loop-event stream.
///
/// Events arrive in commit order with non-decreasing stream positions,
/// either singly or in chunks (see the [module docs](self) for the
/// batching contract). [`LoopEventSink::on_stream_end`] is called once,
/// after the last event, with the final instruction count; sinks that
/// need to close open state (e.g. the streaming engine) finalize there.
pub trait LoopEventSink {
    /// Called for every loop event, in commit order.
    fn on_loop_event(&mut self, ev: &LoopEvent);

    /// Called with a chunk of consecutive loop events, in commit order.
    ///
    /// Semantically identical to calling
    /// [`on_loop_event`](LoopEventSink::on_loop_event) for each element;
    /// the default implementation does exactly that. Batch-aware sinks
    /// override it to pay their per-delivery bookkeeping once per chunk
    /// instead of once per event.
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        for ev in events {
            self.on_loop_event(ev);
        }
    }

    /// Called once when the instruction stream ends. `instructions` is
    /// the total number of committed instructions.
    fn on_stream_end(&mut self, instructions: u64) {
        let _ = instructions;
    }
}

impl LoopEventSink for Vec<LoopEvent> {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        self.push(*ev);
    }

    #[inline]
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        self.extend_from_slice(events);
    }
}

impl<S: LoopEventSink + ?Sized> LoopEventSink for &mut S {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        (**self).on_loop_event(ev);
    }

    #[inline]
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        (**self).on_loop_events(events);
    }

    #[inline]
    fn on_stream_end(&mut self, instructions: u64) {
        (**self).on_stream_end(instructions);
    }
}

impl<S: LoopEventSink + ?Sized> LoopEventSink for Box<S> {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        (**self).on_loop_event(ev);
    }

    #[inline]
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        (**self).on_loop_events(events);
    }

    #[inline]
    fn on_stream_end(&mut self, instructions: u64) {
        (**self).on_stream_end(instructions);
    }
}

/// Fans the stream out to every element of a tuple, in field order.
/// One macro generates arities 2 through 8 — wide enough for the
/// experiment grid without nesting pairs.
macro_rules! impl_sink_for_tuple {
    ($($T:ident => $idx:tt),+) => {
        impl<$($T: LoopEventSink),+> LoopEventSink for ($($T,)+) {
            #[inline]
            fn on_loop_event(&mut self, ev: &LoopEvent) {
                $(self.$idx.on_loop_event(ev);)+
            }

            #[inline]
            fn on_loop_events(&mut self, events: &[LoopEvent]) {
                $(self.$idx.on_loop_events(events);)+
            }

            #[inline]
            fn on_stream_end(&mut self, instructions: u64) {
                $(self.$idx.on_stream_end(instructions);)+
            }
        }
    };
}

impl_sink_for_tuple!(A => 0, B => 1);
impl_sink_for_tuple!(A => 0, B => 1, C => 2);
impl_sink_for_tuple!(A => 0, B => 1, C => 2, D => 3);
impl_sink_for_tuple!(A => 0, B => 1, C => 2, D => 3, E => 4);
impl_sink_for_tuple!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
impl_sink_for_tuple!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
impl_sink_for_tuple!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);

/// A sink that only counts events — useful for throughput measurements
/// and as the cheapest possible pipeline endpoint.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Events observed.
    pub events: u64,
    /// Instruction count reported at stream end (0 until then).
    pub instructions: u64,
}

impl LoopEventSink for CountingSink {
    #[inline]
    fn on_loop_event(&mut self, _ev: &LoopEvent) {
        self.events += 1;
    }

    #[inline]
    fn on_loop_events(&mut self, events: &[LoopEvent]) {
        self.events += events.len() as u64;
    }

    fn on_stream_end(&mut self, instructions: u64) {
        self.instructions = instructions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopId;
    use loopspec_isa::Addr;

    fn ev(pos: u64) -> LoopEvent {
        LoopEvent::OneShot {
            loop_id: LoopId(Addr::new(1)),
            pos,
            depth: 1,
        }
    }

    #[test]
    fn vec_sink_collects() {
        let mut v: Vec<LoopEvent> = Vec::new();
        v.on_loop_event(&ev(1));
        v.on_loop_event(&ev(2));
        assert_eq!(v.len(), 2);
        v.on_stream_end(10); // no-op for Vec
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn vec_sink_batches() {
        let mut v: Vec<LoopEvent> = Vec::new();
        v.on_loop_events(&[ev(1), ev(2), ev(3)]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn default_batch_loops_over_single() {
        // A sink that only implements the per-event method still sees the
        // whole chunk through the default on_loop_events.
        struct Last(Option<u64>, usize);
        impl LoopEventSink for Last {
            fn on_loop_event(&mut self, ev: &LoopEvent) {
                self.0 = Some(ev.pos());
                self.1 += 1;
            }
        }
        let mut s = Last(None, 0);
        s.on_loop_events(&[ev(4), ev(9)]);
        assert_eq!(s.0, Some(9));
        assert_eq!(s.1, 2);
    }

    #[test]
    fn tuple_sinks_fan_out() {
        let mut pair = (Vec::new(), CountingSink::default());
        pair.on_loop_event(&ev(1));
        pair.on_stream_end(7);
        assert_eq!(pair.0.len(), 1);
        assert_eq!(pair.1.events, 1);
        assert_eq!(pair.1.instructions, 7);
    }

    #[test]
    fn wide_tuples_fan_out_batches() {
        // Arity 8, mixed element types, batch delivery.
        let mut sinks = (
            Vec::new(),
            CountingSink::default(),
            CountingSink::default(),
            Vec::new(),
            CountingSink::default(),
            CountingSink::default(),
            CountingSink::default(),
            CountingSink::default(),
        );
        sinks.on_loop_events(&[ev(1), ev(2)]);
        sinks.on_stream_end(5);
        assert_eq!(sinks.0.len(), 2);
        assert_eq!(sinks.3.len(), 2);
        for c in [sinks.1, sinks.2, sinks.4, sinks.5, sinks.6, sinks.7] {
            assert_eq!(c.events, 2);
            assert_eq!(c.instructions, 5);
        }
    }

    #[test]
    fn counting_sink_batch_counts() {
        let mut c = CountingSink::default();
        c.on_loop_events(&[ev(1), ev(2), ev(3)]);
        c.on_loop_event(&ev(4));
        assert_eq!(c.events, 4);
    }

    #[test]
    fn mut_ref_delegates() {
        let mut c = CountingSink::default();
        {
            let mut r = &mut c;
            LoopEventSink::on_loop_event(&mut r, &ev(3));
            LoopEventSink::on_loop_events(&mut r, &[ev(4), ev(5)]);
            LoopEventSink::on_stream_end(&mut r, 9);
        }
        assert_eq!(c.events, 3);
        assert_eq!(c.instructions, 9);
    }
}
