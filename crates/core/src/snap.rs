//! Checkpointable state: the [`SnapshotState`] trait and the
//! [`LoopEvent`] wire codec.
//!
//! The CLS and everything downstream of it are small state machines
//! driven one retired instruction at a time, so their exact state at any
//! retirement boundary fits in a handful of bytes. Types that can be
//! captured and restored implement [`SnapshotState`]; the streaming
//! `Session` (in `loopspec-pipeline`) composes those sections — CPU
//! cursor, detector, registered sinks — into one process-portable
//! snapshot.
//!
//! ## Invariants every implementation upholds
//!
//! * **Determinism** — equal state produces equal bytes (unordered
//!   containers are written in sorted order), so snapshot bytes can be
//!   compared, hashed and deduplicated.
//! * **Mutable state only** — configuration that the owner re-creates
//!   (policy kind, TU count, table capacity) is *echoed* and verified
//!   on load ([`SnapError::Mismatch`]) rather than blindly restored, so
//!   a snapshot can never silently turn one experiment into another.
//! * **Exactness** — `save_state` then `load_state` into a freshly
//!   configured twin reproduces *bit-identical* downstream results; the
//!   `checkpoint_resume` and `sharded_equivalence` suites at the repo
//!   root enforce this end to end.

pub use loopspec_isa::snap::{
    fnv1a, fnv1a_update, frame, seal, unseal, Dec, Enc, FrameBuf, SnapError, FNV1A_INIT,
    FRAME_HEADER, FRAME_TRAILER,
};

use crate::{LoopEvent, LoopId};
use loopspec_isa::Addr;

/// A type whose mutable state can be serialized into a snapshot section
/// and restored into a same-configured instance.
///
/// See the [module docs](self) for the invariants. `load_state` reads
/// exactly the bytes `save_state` wrote, so sections compose by simple
/// concatenation.
pub trait SnapshotState {
    /// Appends this object's state to `out`.
    fn save_state(&self, out: &mut Enc);

    /// Restores state written by [`save_state`](SnapshotState::save_state).
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncated/corrupt input or when the snapshot was
    /// taken from a differently configured object. State is unspecified
    /// (but memory-safe) after an error.
    fn load_state(&mut self, src: &mut Dec<'_>) -> Result<(), SnapError>;
}

impl<S: SnapshotState + ?Sized> SnapshotState for Box<S> {
    fn save_state(&self, out: &mut Enc) {
        (**self).save_state(out);
    }

    fn load_state(&mut self, src: &mut Dec<'_>) -> Result<(), SnapError> {
        (**self).load_state(src)
    }
}

const EV_EXEC_START: u8 = 0;
const EV_ITER_START: u8 = 1;
const EV_EXEC_END: u8 = 2;
const EV_EVICTED: u8 = 3;
const EV_ONE_SHOT: u8 = 4;

/// Appends one [`LoopEvent`] to `out` (tag byte + fields).
pub fn write_event(out: &mut Enc, ev: &LoopEvent) {
    match *ev {
        LoopEvent::ExecutionStart {
            loop_id,
            pos,
            depth,
        } => {
            out.u8(EV_EXEC_START);
            out.u32(loop_id.0.index());
            out.u64(pos);
            out.u32(depth);
        }
        LoopEvent::IterationStart { loop_id, iter, pos } => {
            out.u8(EV_ITER_START);
            out.u32(loop_id.0.index());
            out.u64(pos);
            out.u32(iter);
        }
        LoopEvent::ExecutionEnd {
            loop_id,
            iterations,
            pos,
        } => {
            out.u8(EV_EXEC_END);
            out.u32(loop_id.0.index());
            out.u64(pos);
            out.u32(iterations);
        }
        LoopEvent::Evicted {
            loop_id,
            iterations,
            pos,
        } => {
            out.u8(EV_EVICTED);
            out.u32(loop_id.0.index());
            out.u64(pos);
            out.u32(iterations);
        }
        LoopEvent::OneShot {
            loop_id,
            pos,
            depth,
        } => {
            out.u8(EV_ONE_SHOT);
            out.u32(loop_id.0.index());
            out.u64(pos);
            out.u32(depth);
        }
    }
}

/// Reads one [`LoopEvent`] written by [`write_event`].
///
/// # Errors
///
/// [`SnapError`] on truncated input or an unknown tag.
pub fn read_event(src: &mut Dec<'_>) -> Result<LoopEvent, SnapError> {
    let tag = src.u8()?;
    let loop_id = LoopId(Addr::new(src.u32()?));
    let pos = src.u64()?;
    let arg = src.u32()?;
    Ok(match tag {
        EV_EXEC_START => LoopEvent::ExecutionStart {
            loop_id,
            pos,
            depth: arg,
        },
        EV_ITER_START => LoopEvent::IterationStart {
            loop_id,
            iter: arg,
            pos,
        },
        EV_EXEC_END => LoopEvent::ExecutionEnd {
            loop_id,
            iterations: arg,
            pos,
        },
        EV_EVICTED => LoopEvent::Evicted {
            loop_id,
            iterations: arg,
            pos,
        },
        EV_ONE_SHOT => LoopEvent::OneShot {
            loop_id,
            pos,
            depth: arg,
        },
        _ => {
            return Err(SnapError::Corrupt {
                what: "loop event tag",
            })
        }
    })
}

/// Appends a length-prefixed event sequence.
pub fn write_events(out: &mut Enc, events: &[LoopEvent]) {
    out.u64(events.len() as u64);
    for ev in events {
        write_event(out, ev);
    }
}

/// Reads an event sequence written by [`write_events`].
///
/// # Errors
///
/// [`SnapError`] on truncated/corrupt input.
pub fn read_events(src: &mut Dec<'_>) -> Result<Vec<LoopEvent>, SnapError> {
    // Every event encodes to exactly 17 bytes (tag + id + pos + arg);
    // sizing the count check to that keeps a corrupt count from
    // reserving 17x the input in `LoopEvent`s.
    let n = src.count_elems(17)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(read_event(src)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> LoopId {
        LoopId(Addr::new(n))
    }

    #[test]
    fn every_event_variant_round_trips() {
        let events = vec![
            LoopEvent::ExecutionStart {
                loop_id: id(1),
                pos: 10,
                depth: 2,
            },
            LoopEvent::IterationStart {
                loop_id: id(1),
                iter: 3,
                pos: 20,
            },
            LoopEvent::ExecutionEnd {
                loop_id: id(1),
                iterations: 7,
                pos: 30,
            },
            LoopEvent::Evicted {
                loop_id: id(9),
                iterations: 2,
                pos: 40,
            },
            LoopEvent::OneShot {
                loop_id: id(5),
                pos: 50,
                depth: 1,
            },
        ];
        let mut enc = Enc::new();
        write_events(&mut enc, &events);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(read_events(&mut dec).unwrap(), events);
        dec.finish().unwrap();
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        let mut enc = Enc::new();
        enc.u8(99);
        enc.u32(0);
        enc.u64(0);
        enc.u32(0);
        let bytes = enc.into_bytes();
        assert_eq!(
            read_event(&mut Dec::new(&bytes)),
            Err(SnapError::Corrupt {
                what: "loop event tag"
            })
        );
    }
}
