//! Loop events — the output language of the detector.

use std::fmt;

use loopspec_isa::Addr;

/// Identifier of a (static) loop: its target address `T`.
///
/// "There is a loop in a program, which is identified by address T, when
/// there is at least one backward branch or jump to address T" (paper
/// §2.1). Multiple backward transfers to the same `T` are closing branches
/// of the *same* loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoopId(pub Addr);

impl LoopId {
    /// The loop's target address `T`.
    #[inline]
    pub fn target(self) -> Addr {
        self.0
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

impl From<Addr> for LoopId {
    fn from(a: Addr) -> Self {
        LoopId(a)
    }
}

/// A dynamic loop event emitted by the [`Cls`](crate::Cls).
///
/// `pos` is the dynamic-stream position at which the event takes effect:
/// the number of instructions committed up to *and including* the
/// control-transfer instruction that produced it (i.e. the stream index of
/// the first instruction of the new iteration, or of the first instruction
/// after a finished execution).
///
/// Detection is retrospective for first iterations: a loop execution is
/// only discovered when its first backward transfer commits, so
/// [`LoopEvent::ExecutionStart`] coincides with the start of iteration 2
/// and is immediately followed by `IterationStart { iter: 2 }` (paper
/// §2.2: "a loop is not considered until the second iteration begins").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LoopEvent {
    /// A (multi-iteration) loop execution has been detected.
    ExecutionStart {
        /// The loop.
        loop_id: LoopId,
        /// Stream position (start of iteration 2).
        pos: u64,
        /// Nesting depth: CLS occupancy including this loop (≥ 1).
        depth: u32,
    },
    /// An iteration begins (`iter >= 2`; iteration 1 is never detected
    /// in time).
    IterationStart {
        /// The loop.
        loop_id: LoopId,
        /// 1-based iteration index within the execution (first emitted
        /// value is 2).
        iter: u32,
        /// Stream position of the iteration's first instruction.
        pos: u64,
    },
    /// A loop execution finished (closing branch fell through, a transfer
    /// left the body, or a `ret` unwound past it).
    ExecutionEnd {
        /// The loop.
        loop_id: LoopId,
        /// Total iterations of the execution, including the undetected
        /// first one.
        iterations: u32,
        /// Stream position of the first instruction after the execution.
        pos: u64,
    },
    /// A loop execution was evicted from a full CLS (the deepest —
    /// outermost — entry is sacrificed; paper §2.2). Its eventual end will
    /// not be observed.
    Evicted {
        /// The loop.
        loop_id: LoopId,
        /// Iterations observed up to eviction.
        iterations: u32,
        /// Stream position of the eviction.
        pos: u64,
    },
    /// A single-iteration loop execution: a backward conditional branch to
    /// an unknown `T` that was *not taken*. The execution started and
    /// ended within one iteration and never entered the CLS.
    OneShot {
        /// The loop.
        loop_id: LoopId,
        /// Stream position just after the not-taken closing branch.
        pos: u64,
        /// Nesting depth it would have had (CLS occupancy + 1).
        depth: u32,
    },
}

impl LoopEvent {
    /// The loop this event concerns.
    pub fn loop_id(&self) -> LoopId {
        match *self {
            LoopEvent::ExecutionStart { loop_id, .. }
            | LoopEvent::IterationStart { loop_id, .. }
            | LoopEvent::ExecutionEnd { loop_id, .. }
            | LoopEvent::Evicted { loop_id, .. }
            | LoopEvent::OneShot { loop_id, .. } => loop_id,
        }
    }

    /// The dynamic-stream position at which the event takes effect.
    pub fn pos(&self) -> u64 {
        match *self {
            LoopEvent::ExecutionStart { pos, .. }
            | LoopEvent::IterationStart { pos, .. }
            | LoopEvent::ExecutionEnd { pos, .. }
            | LoopEvent::Evicted { pos, .. }
            | LoopEvent::OneShot { pos, .. } => pos,
        }
    }
}

impl fmt::Display for LoopEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LoopEvent::ExecutionStart {
                loop_id,
                pos,
                depth,
            } => {
                write!(f, "[{pos}] exec-start {loop_id} (depth {depth})")
            }
            LoopEvent::IterationStart { loop_id, iter, pos } => {
                write!(f, "[{pos}] iter-start {loop_id} #{iter}")
            }
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                pos,
            } => write!(f, "[{pos}] exec-end {loop_id} ({iterations} iters)"),
            LoopEvent::Evicted {
                loop_id,
                iterations,
                pos,
            } => write!(f, "[{pos}] evicted {loop_id} ({iterations} iters)"),
            LoopEvent::OneShot {
                loop_id,
                pos,
                depth,
            } => {
                write!(f, "[{pos}] one-shot {loop_id} (depth {depth})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let id = LoopId(Addr::new(7));
        let e = LoopEvent::IterationStart {
            loop_id: id,
            iter: 3,
            pos: 100,
        };
        assert_eq!(e.loop_id(), id);
        assert_eq!(e.pos(), 100);
        assert_eq!(id.target(), Addr::new(7));
    }

    #[test]
    fn display_is_informative() {
        let id = LoopId(Addr::new(16));
        let e = LoopEvent::ExecutionEnd {
            loop_id: id,
            iterations: 4,
            pos: 9,
        };
        let s = e.to_string();
        assert!(s.contains("exec-end"));
        assert!(s.contains("4 iters"));
    }

    #[test]
    fn loop_id_from_addr() {
        let id: LoopId = Addr::new(3).into();
        assert_eq!(id, LoopId(Addr::new(3)));
        assert_eq!(id.to_string(), "loop@0x0003");
    }
}
