//! The Current Loop Stack (paper §2.2).

use loopspec_cpu::ControlOutcome;
use loopspec_isa::{Addr, ControlKind};

use crate::{LoopEvent, LoopEventSink, LoopId};

/// One CLS entry: a loop currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClsEntry {
    /// Loop target address `T` (the identifier).
    t: Addr,
    /// Highest address of a backward transfer to `T` seen so far.
    b: Addr,
    /// Index of the iteration currently executing (≥ 2 once in the CLS:
    /// the entry is created when iteration 2 starts). Doubles as "total
    /// iterations so far" when the execution ends.
    iter: u32,
}

impl ClsEntry {
    #[inline]
    fn body_contains(&self, addr: Addr) -> bool {
        self.t <= addr && addr <= self.b
    }
}

/// The **Current Loop Stack**: all loops currently executing, innermost on
/// top, with the update rules of paper §2.2.
///
/// Feed it every committed control-transfer instruction via
/// [`Cls::on_control`]; it appends [`LoopEvent`]s to the vector you pass.
/// Use [`LoopDetector`](crate::LoopDetector) for the packaged
/// per-instruction interface.
///
/// The five update rules (§2.2, implemented verbatim):
///
/// 1. backward transfer to unknown `T`, taken → push `(T, pc)`: a new
///    execution (detected at its 2nd iteration);
/// 2. backward branch to unknown `T`, not taken → a one-iteration
///    execution ([`LoopEvent::OneShot`]);
/// 3. backward transfer to `T` at entry `i`, taken → pop everything above
///    `i` (inner executions end), new iteration of `T`, `B := max(B, pc)`;
/// 4. backward branch to `T` at entry `i`, not taken, `B ≤ pc` → the
///    iteration *and execution* of `T` end: pop `[top..=i]`;
/// 5. any taken branch/jump at `pc` inside a body `[T,B]` targeting
///    outside it → that execution ends; a `ret` at `pc` ends every
///    execution whose body contains `pc`. Calls never touch the CLS.
///
/// On overflow the deepest (outermost) entry is discarded
/// ([`LoopEvent::Evicted`]).
///
/// ## Buffered (chunked) emission
///
/// [`Cls::on_control`] hands every event to the sink immediately. The
/// `*_buffered` variants instead append events to an internal chunk of
/// up to [`chunk_capacity`](Cls::chunk_capacity) events (default
/// [`DEFAULT_EVENT_CHUNK`](crate::DEFAULT_EVENT_CHUNK)) and report when
/// the chunk is full, so a driver can fan a whole chunk out to many
/// sinks with one [`LoopEventSink::on_loop_events`] call each instead of
/// one virtual call per event per sink — the hot path of the streaming
/// `Session`. See the [batching contract](crate::sink) for the
/// semantics chunked delivery must (and does) preserve.
#[derive(Debug, Clone)]
pub struct Cls {
    entries: Vec<ClsEntry>,
    capacity: usize,
    /// Events awaiting chunked delivery (the `*_buffered` emission path).
    chunk: Vec<LoopEvent>,
    chunk_capacity: usize,
}

impl Cls {
    /// Creates a CLS with the given capacity and the default event-chunk
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CLS capacity must be positive");
        Cls {
            entries: Vec::with_capacity(capacity),
            capacity,
            chunk: Vec::new(),
            chunk_capacity: crate::DEFAULT_EVENT_CHUNK,
        }
    }

    /// Sets the buffered-emission chunk size (builder style). Chunk size
    /// 1 degenerates to per-event delivery; larger chunks amortize
    /// fan-out cost. Results are identical for any size (the
    /// `chunked_equivalence` property test).
    ///
    /// # Panics
    ///
    /// Panics if `events == 0`.
    pub fn with_chunk_capacity(mut self, events: usize) -> Self {
        assert!(events > 0, "chunk capacity must be positive");
        self.chunk_capacity = events;
        self
    }

    /// Events per chunk on the buffered emission path.
    #[inline]
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// The events buffered so far on the chunked emission path (in
    /// commit order; drained by the driver via
    /// [`clear_buffered`](Cls::clear_buffered)).
    #[inline]
    pub fn buffered(&self) -> &[LoopEvent] {
        &self.chunk
    }

    /// Discards the buffered chunk (after the driver has delivered it).
    #[inline]
    pub fn clear_buffered(&mut self) {
        self.chunk.clear();
    }

    /// [`Cls::on_control`], but appending events to the internal chunk.
    /// Returns `true` when the chunk has reached capacity and should be
    /// delivered (the chunk may exceed capacity by the handful of events
    /// one instruction produces; it is never split mid-instruction).
    pub fn on_control_buffered(&mut self, pc: Addr, outcome: &ControlOutcome, pos: u64) -> bool {
        let mut chunk = std::mem::take(&mut self.chunk);
        self.on_control(pc, outcome, pos, &mut chunk);
        self.chunk = chunk;
        self.chunk.len() >= self.chunk_capacity
    }

    /// [`Cls::flush`], but appending events to the internal chunk.
    /// Returns `true` when the chunk has reached capacity.
    pub fn flush_buffered(&mut self, pos: u64) -> bool {
        let mut chunk = std::mem::take(&mut self.chunk);
        self.flush(pos, &mut chunk);
        self.chunk = chunk;
        self.chunk.len() >= self.chunk_capacity
    }

    /// Current number of loops on the stack (the nesting depth).
    #[inline]
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Maximum number of simultaneously tracked loops.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if the loop identified by `t` is currently on the
    /// stack.
    pub fn contains(&self, id: LoopId) -> bool {
        self.entries.iter().any(|e| e.t == id.0)
    }

    /// The innermost loop currently executing, if any.
    pub fn innermost(&self) -> Option<LoopId> {
        self.entries.last().map(|e| LoopId(e.t))
    }

    /// Processes one committed control-transfer instruction.
    ///
    /// `pc` is the instruction's address, `outcome` its dynamic result and
    /// `pos` the stream position *after* it commits (see
    /// [`LoopEvent`](crate::LoopEvent) for the position convention).
    /// Events are appended to `out` in commit order: inner executions end
    /// before outer events at the same instruction.
    pub fn on_control<S: LoopEventSink + ?Sized>(
        &mut self,
        pc: Addr,
        outcome: &ControlOutcome,
        pos: u64,
        out: &mut S,
    ) {
        match outcome.kind {
            ControlKind::None | ControlKind::Halt => {}
            // Calls do not affect the CLS: subroutine activations belong
            // to the surrounding loop execution.
            ControlKind::Call { .. } | ControlKind::IndirectCall => {}
            ControlKind::Ret => self.on_return(pc, pos, out),
            ControlKind::CondBranch { target } if !outcome.taken => {
                self.on_not_taken_branch(pc, target, pos, out);
            }
            ControlKind::CondBranch { .. }
            | ControlKind::Jump { .. }
            | ControlKind::IndirectJump => {
                // Taken transfer; use the *dynamic* target so indirect
                // jumps are handled uniformly.
                self.on_taken_transfer(pc, outcome.target, pos, out);
            }
        }
    }

    /// Closes every open execution (used at program end; the paper notes
    /// the CLS "is always empty at the end" for SPEC95, and suggests
    /// periodic flushing for the pathological cases).
    pub fn flush<S: LoopEventSink + ?Sized>(&mut self, pos: u64, out: &mut S) {
        while let Some(e) = self.entries.pop() {
            out.on_loop_event(&LoopEvent::ExecutionEnd {
                loop_id: LoopId(e.t),
                iterations: e.iter,
                pos,
            });
        }
    }

    // ------------------------------------------------------------------

    fn find(&self, t: Addr) -> Option<usize> {
        self.entries.iter().rposition(|e| e.t == t)
    }

    /// Pops entries with index > `i`, ending their executions
    /// (innermost first).
    fn pop_above<S: LoopEventSink + ?Sized>(&mut self, i: usize, pos: u64, out: &mut S) {
        while self.entries.len() > i + 1 {
            let e = self.entries.pop().expect("len > i+1 >= 1");
            out.on_loop_event(&LoopEvent::ExecutionEnd {
                loop_id: LoopId(e.t),
                iterations: e.iter,
                pos,
            });
        }
    }

    fn on_return<S: LoopEventSink + ?Sized>(&mut self, pc: Addr, pos: u64, out: &mut S) {
        // A `ret` ends every execution whose static body contains it:
        // those loops were entered inside the returning activation and
        // their closing branches can no longer execute.
        self.remove_where(|e| e.body_contains(pc), pos, out);
    }

    fn on_not_taken_branch<S: LoopEventSink + ?Sized>(
        &mut self,
        pc: Addr,
        target: Addr,
        pos: u64,
        out: &mut S,
    ) {
        if !pc.is_backward_to(target) {
            return; // forward not-taken branch: no loop significance
        }
        match self.find(target) {
            None => {
                // Rule 2: a loop with exactly one iteration executed.
                out.on_loop_event(&LoopEvent::OneShot {
                    loop_id: LoopId(target),
                    pos,
                    depth: self.depth() as u32 + 1,
                });
            }
            Some(i) => {
                if self.entries[i].b <= pc {
                    // Rule 4: the closing branch fell through — iteration
                    // and execution of T finish; inner loops end too.
                    self.pop_above(i, pos, out);
                    let e = self.entries.pop().expect("entry i exists");
                    out.on_loop_event(&LoopEvent::ExecutionEnd {
                        loop_id: LoopId(e.t),
                        iterations: e.iter,
                        pos,
                    });
                }
                // else: an internal backward branch before B fell
                // through — the loop merely continues.
            }
        }
    }

    fn on_taken_transfer<S: LoopEventSink + ?Sized>(
        &mut self,
        pc: Addr,
        target: Addr,
        pos: u64,
        out: &mut S,
    ) {
        if pc.is_backward_to(target) {
            if let Some(i) = self.find(target) {
                // Rule 3: new iteration of the loop at entry i.
                self.pop_above(i, pos, out);
                let e = &mut self.entries[i];
                if pc > e.b {
                    e.b = pc;
                }
                e.iter += 1;
                let ev = LoopEvent::IterationStart {
                    loop_id: LoopId(e.t),
                    iter: e.iter,
                    pos,
                };
                out.on_loop_event(&ev);
                return;
            }
            // Rule 1 (with the rule-5 exit check first): a backward
            // transfer out of enclosing bodies ends them, then a new
            // execution is pushed.
            self.remove_where(
                |e| e.body_contains(pc) && !e.body_contains(target),
                pos,
                out,
            );
            self.push_new(target, pc, pos, out);
        } else {
            // Rule 5: a forward taken transfer leaving a body ends that
            // execution.
            self.remove_where(
                |e| e.body_contains(pc) && !e.body_contains(target),
                pos,
                out,
            );
        }
    }

    fn push_new<S: LoopEventSink + ?Sized>(&mut self, t: Addr, b: Addr, pos: u64, out: &mut S) {
        if self.entries.len() == self.capacity {
            // Overflow: sacrifice the deepest (outermost) entry.
            let e = self.entries.remove(0);
            out.on_loop_event(&LoopEvent::Evicted {
                loop_id: LoopId(e.t),
                iterations: e.iter,
                pos,
            });
        }
        self.entries.push(ClsEntry { t, b, iter: 2 });
        out.on_loop_event(&LoopEvent::ExecutionStart {
            loop_id: LoopId(t),
            pos,
            depth: self.entries.len() as u32,
        });
        out.on_loop_event(&LoopEvent::IterationStart {
            loop_id: LoopId(t),
            iter: 2,
            pos,
        });
    }

    /// Removes all entries matching `pred`, emitting `ExecutionEnd`s
    /// innermost-first.
    fn remove_where<S: LoopEventSink + ?Sized>(
        &mut self,
        pred: impl Fn(&ClsEntry) -> bool,
        pos: u64,
        out: &mut S,
    ) {
        // Collect from the top down so events come innermost-first.
        let mut idx = self.entries.len();
        while idx > 0 {
            idx -= 1;
            if pred(&self.entries[idx]) {
                let e = self.entries.remove(idx);
                out.on_loop_event(&LoopEvent::ExecutionEnd {
                    loop_id: LoopId(e.t),
                    iterations: e.iter,
                    pos,
                });
            }
        }
    }
}

impl Default for Cls {
    /// A CLS with the paper's 16 entries.
    fn default() -> Self {
        Cls::new(crate::DEFAULT_CLS_CAPACITY)
    }
}

/// The CLS is a fixed hardware structure — a handful of `(T, B, iter)`
/// entries plus the not-yet-delivered event chunk — so its exact state
/// at any retirement boundary serializes in a few dozen bytes. The
/// capacity and chunk capacity are configuration and are echoed into the
/// snapshot: loading verifies they match the receiving CLS (a snapshot
/// of a 16-entry CLS must not restore into a 1-entry ablation).
impl crate::SnapshotState for Cls {
    fn save_state(&self, out: &mut crate::snap::Enc) {
        out.u64(self.capacity as u64);
        out.u64(self.chunk_capacity as u64);
        out.u64(self.entries.len() as u64);
        for e in &self.entries {
            out.u32(e.t.index());
            out.u32(e.b.index());
            out.u32(e.iter);
        }
        crate::snap::write_events(out, &self.chunk);
    }

    fn load_state(&mut self, src: &mut crate::snap::Dec<'_>) -> Result<(), crate::snap::SnapError> {
        if src.u64()? != self.capacity as u64 {
            return Err(crate::snap::SnapError::Mismatch {
                what: "CLS capacity",
            });
        }
        if src.u64()? != self.chunk_capacity as u64 {
            return Err(crate::snap::SnapError::Mismatch {
                what: "CLS chunk capacity",
            });
        }
        let n = src.count()?;
        if n > self.capacity {
            return Err(crate::snap::SnapError::Corrupt { what: "CLS depth" });
        }
        self.entries.clear();
        for _ in 0..n {
            let t = Addr::new(src.u32()?);
            let b = Addr::new(src.u32()?);
            let iter = src.u32()?;
            self.entries.push(ClsEntry { t, b, iter });
        }
        self.chunk = crate::snap::read_events(src)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::ControlKind as CK;

    fn taken_branch(target: u32) -> ControlOutcome {
        ControlOutcome {
            kind: CK::CondBranch {
                target: Addr::new(target),
            },
            taken: true,
            target: Addr::new(target),
        }
    }

    fn not_taken_branch(target: u32, pc: u32) -> ControlOutcome {
        ControlOutcome {
            kind: CK::CondBranch {
                target: Addr::new(target),
            },
            taken: false,
            target: Addr::new(pc + 1),
        }
    }

    fn jump(target: u32) -> ControlOutcome {
        ControlOutcome {
            kind: CK::Jump {
                target: Addr::new(target),
            },
            taken: true,
            target: Addr::new(target),
        }
    }

    fn ret(target: u32) -> ControlOutcome {
        ControlOutcome {
            kind: CK::Ret,
            taken: true,
            target: Addr::new(target),
        }
    }

    #[test]
    fn simple_loop_lifecycle() {
        // Loop body [10, 20]; 3 iterations: taken, taken, not-taken.
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &taken_branch(10), 100, &mut out);
        assert_eq!(cls.depth(), 1);
        assert!(matches!(out[0], LoopEvent::ExecutionStart { depth: 1, .. }));
        assert!(matches!(out[1], LoopEvent::IterationStart { iter: 2, .. }));

        out.clear();
        cls.on_control(Addr::new(20), &taken_branch(10), 200, &mut out);
        assert!(matches!(out[0], LoopEvent::IterationStart { iter: 3, .. }));

        out.clear();
        cls.on_control(Addr::new(20), &not_taken_branch(10, 20), 300, &mut out);
        assert_eq!(cls.depth(), 0);
        assert!(matches!(
            out[0],
            LoopEvent::ExecutionEnd {
                iterations: 3,
                pos: 300,
                ..
            }
        ));
    }

    #[test]
    fn one_shot_loop() {
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &not_taken_branch(10, 20), 50, &mut out);
        assert_eq!(cls.depth(), 0);
        assert!(matches!(out[0], LoopEvent::OneShot { depth: 1, .. }));
    }

    #[test]
    fn nested_loops_pop_inner_on_outer_iteration() {
        // Outer [10, 30], inner [15, 25].
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(30), &taken_branch(10), 1, &mut out); // outer detected
        cls.on_control(Addr::new(25), &taken_branch(15), 2, &mut out); // inner detected
        assert_eq!(cls.depth(), 2);
        assert_eq!(cls.innermost(), Some(LoopId(Addr::new(15))));

        // Outer closing branch taken while inner still on the stack:
        // inner execution must end first, then the outer iteration starts.
        out.clear();
        cls.on_control(Addr::new(30), &taken_branch(10), 3, &mut out);
        assert_eq!(cls.depth(), 1);
        assert!(
            matches!(out[0], LoopEvent::ExecutionEnd { loop_id, iterations: 2, .. }
                if loop_id == LoopId(Addr::new(15)))
        );
        assert!(
            matches!(out[1], LoopEvent::IterationStart { loop_id, iter: 3, .. }
                if loop_id == LoopId(Addr::new(10)))
        );
    }

    #[test]
    fn inner_not_taken_closing_pops_only_inner() {
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(30), &taken_branch(10), 1, &mut out);
        cls.on_control(Addr::new(25), &taken_branch(15), 2, &mut out);
        out.clear();
        cls.on_control(Addr::new(25), &not_taken_branch(15, 25), 3, &mut out);
        assert_eq!(cls.depth(), 1);
        assert_eq!(cls.innermost(), Some(LoopId(Addr::new(10))));
    }

    #[test]
    fn taken_exit_branch_ends_execution() {
        // Loop [10, 20]; a `break`-style forward branch from 15 to 40.
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &taken_branch(10), 1, &mut out);
        out.clear();
        cls.on_control(Addr::new(15), &taken_branch(40), 2, &mut out);
        assert_eq!(cls.depth(), 0);
        assert!(matches!(
            out[0],
            LoopEvent::ExecutionEnd { iterations: 2, .. }
        ));
    }

    #[test]
    fn taken_branch_within_body_does_not_exit() {
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &taken_branch(10), 1, &mut out);
        out.clear();
        // if/else inside the body: forward taken branch 12 -> 18.
        cls.on_control(Addr::new(12), &taken_branch(18), 2, &mut out);
        assert_eq!(cls.depth(), 1);
        assert!(out.is_empty());
    }

    #[test]
    fn internal_backward_not_taken_branch_is_ignored() {
        // Loop [10, 20] with an extra backward branch at 15 to 10 —
        // since B(=20) > 15, a fall-through at 15 does not end the loop.
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &taken_branch(10), 1, &mut out);
        out.clear();
        cls.on_control(Addr::new(15), &not_taken_branch(10, 15), 2, &mut out);
        assert_eq!(cls.depth(), 1);
        assert!(out.is_empty());
    }

    #[test]
    fn b_field_grows_to_highest_backward_branch() {
        // Two closing branches: at 20 and at 25 (e.g. loop with `continue`).
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &taken_branch(10), 1, &mut out);
        cls.on_control(Addr::new(25), &taken_branch(10), 2, &mut out);
        out.clear();
        // Now a not-taken at 20 must NOT end the loop (B=25 > 20)...
        cls.on_control(Addr::new(20), &not_taken_branch(10, 20), 3, &mut out);
        assert_eq!(cls.depth(), 1);
        // ...but a not-taken at 25 does.
        cls.on_control(Addr::new(25), &not_taken_branch(10, 25), 4, &mut out);
        assert_eq!(cls.depth(), 0);
    }

    #[test]
    fn return_pops_loops_containing_it() {
        // Loop [10, 20] inside a subroutine; `ret` at 15.
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &taken_branch(10), 1, &mut out);
        // An unrelated caller loop [100, 200] is NOT popped (its body does
        // not contain the ret at 15) — push it first to check.
        cls.on_control(Addr::new(200), &taken_branch(100), 2, &mut out);
        out.clear();
        // Note: [100,200] was pushed after [10,20]; the ret at 15 is only
        // inside [10,20].
        cls.on_control(Addr::new(15), &ret(21), 3, &mut out);
        assert_eq!(cls.depth(), 1);
        assert!(cls.contains(LoopId(Addr::new(100))));
        assert!(!cls.contains(LoopId(Addr::new(10))));
    }

    #[test]
    fn backward_jump_detects_loop_too() {
        // while-style loop closed by an unconditional backward jump.
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &jump(10), 1, &mut out);
        assert_eq!(cls.depth(), 1);
        assert!(matches!(out[0], LoopEvent::ExecutionStart { .. }));
    }

    #[test]
    fn overflow_evicts_outermost() {
        let mut cls = Cls::new(2);
        let mut out = Vec::new();
        cls.on_control(Addr::new(100), &taken_branch(90), 1, &mut out); // L90
        cls.on_control(Addr::new(80), &taken_branch(70), 2, &mut out); // L70
        out.clear();
        cls.on_control(Addr::new(60), &taken_branch(50), 3, &mut out); // L50 evicts L90
        assert_eq!(cls.depth(), 2);
        assert!(matches!(out[0], LoopEvent::Evicted { loop_id, .. }
            if loop_id == LoopId(Addr::new(90))));
        assert!(cls.contains(LoopId(Addr::new(70))));
        assert!(cls.contains(LoopId(Addr::new(50))));
        assert!(!cls.contains(LoopId(Addr::new(90))));
    }

    #[test]
    fn flush_closes_everything() {
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(30), &taken_branch(10), 1, &mut out);
        cls.on_control(Addr::new(25), &taken_branch(15), 2, &mut out);
        out.clear();
        cls.flush(99, &mut out);
        assert_eq!(cls.depth(), 0);
        assert_eq!(out.len(), 2);
        // Innermost first.
        assert_eq!(out[0].loop_id(), LoopId(Addr::new(15)));
        assert_eq!(out[1].loop_id(), LoopId(Addr::new(10)));
    }

    #[test]
    fn recursion_alternation_pops_sibling_instance() {
        // The paper's recursive-subroutine example: loops T1 and T2 in
        // different branches of a recursive function. When T1 is found in
        // the CLS while T2 sits above it, a new T1 iteration pops T2.
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(20), &taken_branch(10), 1, &mut out); // T1=[10,20]
        cls.on_control(Addr::new(40), &taken_branch(30), 2, &mut out); // T2=[30,40]
        out.clear();
        cls.on_control(Addr::new(20), &taken_branch(10), 3, &mut out); // T1 again
        assert!(matches!(out[0], LoopEvent::ExecutionEnd { loop_id, .. }
            if loop_id == LoopId(Addr::new(30))));
        assert!(
            matches!(out[1], LoopEvent::IterationStart { loop_id, iter: 3, .. }
            if loop_id == LoopId(Addr::new(10)))
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Cls::new(0);
    }

    #[test]
    #[should_panic(expected = "chunk capacity must be positive")]
    fn zero_chunk_capacity_rejected() {
        let _ = Cls::default().with_chunk_capacity(0);
    }

    #[test]
    fn buffered_emission_matches_direct() {
        // The same control sequence through the direct and the buffered
        // path must yield the same events, in the same order.
        let drive = |cls: &mut Cls, direct: Option<&mut Vec<LoopEvent>>| {
            let seq: [(u32, ControlOutcome, u64); 4] = [
                (30, taken_branch(10), 1),
                (25, taken_branch(15), 2),
                (25, not_taken_branch(15, 25), 3),
                (30, not_taken_branch(10, 30), 4),
            ];
            match direct {
                Some(out) => {
                    for (pc, o, pos) in &seq {
                        cls.on_control(Addr::new(*pc), o, *pos, out);
                    }
                }
                None => {
                    for (pc, o, pos) in &seq {
                        cls.on_control_buffered(Addr::new(*pc), o, *pos);
                    }
                }
            }
        };
        let mut direct_cls = Cls::default();
        let mut direct_out = Vec::new();
        drive(&mut direct_cls, Some(&mut direct_out));

        let mut buffered_cls = Cls::default();
        drive(&mut buffered_cls, None);
        assert_eq!(buffered_cls.buffered(), &direct_out[..]);
        buffered_cls.clear_buffered();
        assert!(buffered_cls.buffered().is_empty());
    }

    #[test]
    fn buffered_reports_full_at_chunk_capacity() {
        let mut cls = Cls::default().with_chunk_capacity(2);
        assert_eq!(cls.chunk_capacity(), 2);
        // First detection emits ExecutionStart + IterationStart: the
        // 2-event chunk fills in one call and is never split
        // mid-instruction.
        let full = cls.on_control_buffered(Addr::new(20), &taken_branch(10), 1);
        assert!(full);
        assert_eq!(cls.buffered().len(), 2);
        cls.clear_buffered();
        // A mere iteration adds one event: not full yet.
        let full = cls.on_control_buffered(Addr::new(20), &taken_branch(10), 2);
        assert!(!full);
        assert_eq!(cls.buffered().len(), 1);
    }

    #[test]
    fn flush_buffered_appends_to_chunk() {
        let mut cls = Cls::default();
        cls.on_control_buffered(Addr::new(30), &taken_branch(10), 1);
        cls.on_control_buffered(Addr::new(25), &taken_branch(15), 2);
        let before = cls.buffered().len();
        cls.flush_buffered(99);
        assert_eq!(cls.depth(), 0);
        assert_eq!(cls.buffered().len(), before + 2);
        // Innermost first, as with the direct flush.
        assert_eq!(cls.buffered()[before].loop_id(), LoopId(Addr::new(15)));
        assert_eq!(cls.buffered()[before + 1].loop_id(), LoopId(Addr::new(10)));
    }

    #[test]
    fn overlapped_loops_coexist() {
        // Overlapped: T1=10, B1=30; T2=20, B2=40 (T2>T1, B2>B1).
        let mut cls = Cls::default();
        let mut out = Vec::new();
        cls.on_control(Addr::new(30), &taken_branch(10), 1, &mut out);
        cls.on_control(Addr::new(40), &taken_branch(20), 2, &mut out);
        assert_eq!(cls.depth(), 2);
        out.clear();
        // Closing branch of T1 at 30: inside T2's body [20,40] and its
        // target 10 is outside T2 — T2's execution ends (rule 5 does not
        // fire here because T1 is *found*; the paper pops [top, i+1]).
        cls.on_control(Addr::new(30), &taken_branch(10), 3, &mut out);
        assert_eq!(cls.depth(), 1);
        assert!(cls.contains(LoopId(Addr::new(10))));
    }
}
