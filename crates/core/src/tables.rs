//! Associative LRU loop tables — the storage substrate of the LET and LIT
//! (paper §2.3).

use crate::LoopId;

#[derive(Debug, Clone)]
struct Slot<E> {
    loop_id: LoopId,
    lru: u64,
    data: E,
}

/// A small associative table keyed by [`LoopId`] with LRU replacement.
///
/// This models the hardware structure shared by the LET (Loop Execution
/// Table) and LIT (Loop Iteration Table): fully associative, a handful of
/// entries, "every entry identified by the loop target address T" with an
/// LRU field `R`. What *kind* of recency counts (last execution start for
/// the LET, last iteration start for the LIT) is decided by the caller via
/// when it calls [`LoopTable::touch`].
///
/// An unbounded table (for the §4 "enough capacity" experiments) is
/// obtained with [`LoopTable::unbounded`].
///
/// ```
/// use loopspec_core::{LoopTable, LoopId};
/// use loopspec_isa::Addr;
///
/// let mut t: LoopTable<u32> = LoopTable::new(2);
/// let (a, b, c) = (LoopId(Addr::new(1)), LoopId(Addr::new(2)), LoopId(Addr::new(3)));
/// t.insert(a, 10);
/// t.insert(b, 20);
/// t.touch(a);            // `b` becomes least recent
/// t.insert(c, 30);       // evicts `b`
/// assert!(t.get(a).is_some());
/// assert!(t.get(b).is_none());
/// assert!(t.get(c).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct LoopTable<E> {
    slots: Vec<Slot<E>>,
    capacity: usize,
    tick: u64,
    evictions: u64,
}

impl<E> LoopTable<E> {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "table capacity must be positive");
        LoopTable {
            slots: Vec::with_capacity(capacity.min(1024)),
            capacity,
            tick: 0,
            evictions: 0,
        }
    }

    /// Creates a table that never evicts (models "enough capacity to
    /// store all the loops in the program", paper §4).
    pub fn unbounded() -> Self {
        LoopTable {
            slots: Vec::new(),
            capacity: usize::MAX,
            tick: 0,
            evictions: 0,
        }
    }

    /// The table's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no entries are valid.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn position(&self, id: LoopId) -> Option<usize> {
        self.slots.iter().position(|s| s.loop_id == id)
    }

    /// Associative lookup without touching recency.
    pub fn get(&self, id: LoopId) -> Option<&E> {
        self.position(id).map(|i| &self.slots[i].data)
    }

    /// Mutable associative lookup without touching recency.
    pub fn get_mut(&mut self, id: LoopId) -> Option<&mut E> {
        self.position(id).map(move |i| &mut self.slots[i].data)
    }

    /// Marks `id` as most recently used (the `R` field update). No-op if
    /// absent.
    pub fn touch(&mut self, id: LoopId) {
        if let Some(i) = self.position(id) {
            self.tick += 1;
            self.slots[i].lru = self.tick;
        }
    }

    /// The entry that LRU replacement would evict next, if the table is
    /// non-empty.
    pub fn peek_lru(&self) -> Option<LoopId> {
        self.slots.iter().min_by_key(|s| s.lru).map(|s| s.loop_id)
    }

    /// Inserts an entry for `id` (marking it most recent), evicting the
    /// least recently used entry if the table is full. Returns the evicted
    /// entry, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present — the LET/LIT insert only on
    /// execution starts of loops not in the table; use
    /// [`LoopTable::get_mut`] to update existing entries.
    pub fn insert(&mut self, id: LoopId, data: E) -> Option<(LoopId, E)> {
        assert!(
            self.position(id).is_none(),
            "loop {id} already present; use get_mut"
        );
        self.tick += 1;
        let mut evicted = None;
        if self.slots.len() >= self.capacity {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .map(|(i, _)| i)
                .expect("full table is non-empty");
            let s = self.slots.swap_remove(victim);
            self.evictions += 1;
            evicted = Some((s.loop_id, s.data));
        }
        self.slots.push(Slot {
            loop_id: id,
            lru: self.tick,
            data,
        });
        evicted
    }

    /// Iterates over `(loop, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &E)> + '_ {
        self.slots.iter().map(|s| (s.loop_id, &s.data))
    }

    /// Serializes the table — slots in storage order (which is part of
    /// the state: `swap_remove` eviction makes it observable), LRU
    /// ticks, and eviction count — writing each entry's payload with
    /// `write_entry`. The capacity is echoed for verification at load
    /// time.
    ///
    /// The table is generic over its entry type, so callers supply the
    /// payload codec; see [`LoopTable::load_state_with`] for the
    /// inverse.
    pub fn save_state_with(
        &self,
        out: &mut crate::snap::Enc,
        mut write_entry: impl FnMut(&E, &mut crate::snap::Enc),
    ) {
        out.u64(self.capacity as u64);
        out.u64(self.tick);
        out.u64(self.evictions);
        out.u64(self.slots.len() as u64);
        for s in &self.slots {
            out.u32(s.loop_id.0.index());
            out.u64(s.lru);
            write_entry(&s.data, out);
        }
    }

    /// Restores state written by [`LoopTable::save_state_with`], reading
    /// each entry's payload with `read_entry`.
    ///
    /// # Errors
    ///
    /// [`SnapError`](crate::snap::SnapError) on truncated/corrupt input
    /// or when the snapshot's capacity does not match this table's.
    pub fn load_state_with(
        &mut self,
        src: &mut crate::snap::Dec<'_>,
        mut read_entry: impl FnMut(&mut crate::snap::Dec<'_>) -> Result<E, crate::snap::SnapError>,
    ) -> Result<(), crate::snap::SnapError> {
        if src.u64()? != self.capacity as u64 {
            return Err(crate::snap::SnapError::Mismatch {
                what: "loop table capacity",
            });
        }
        self.tick = src.u64()?;
        self.evictions = src.u64()?;
        let n = src.count()?;
        if n > self.capacity {
            return Err(crate::snap::SnapError::Corrupt {
                what: "loop table occupancy",
            });
        }
        self.slots.clear();
        for _ in 0..n {
            let loop_id = LoopId(loopspec_isa::Addr::new(src.u32()?));
            let lru = src.u64()?;
            let data = read_entry(src)?;
            self.slots.push(Slot { loop_id, lru, data });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::Addr;

    fn id(n: u32) -> LoopId {
        LoopId(Addr::new(n))
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t: LoopTable<i32> = LoopTable::new(3);
        t.insert(id(1), 1);
        t.insert(id(2), 2);
        t.insert(id(3), 3);
        t.touch(id(1)); // order now: 2 (oldest), 3, 1
        let evicted = t.insert(id(4), 4).unwrap();
        assert_eq!(evicted.0, id(2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn get_and_get_mut() {
        let mut t: LoopTable<i32> = LoopTable::new(2);
        t.insert(id(5), 50);
        assert_eq!(t.get(id(5)), Some(&50));
        *t.get_mut(id(5)).unwrap() += 1;
        assert_eq!(t.get(id(5)), Some(&51));
        assert_eq!(t.get(id(9)), None);
        assert_eq!(t.get_mut(id(9)), None);
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut t: LoopTable<u32> = LoopTable::unbounded();
        for n in 0..10_000 {
            assert!(t.insert(id(n), n).is_none());
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn touch_on_absent_is_noop() {
        let mut t: LoopTable<u32> = LoopTable::new(1);
        t.touch(id(1));
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_insert_panics() {
        let mut t: LoopTable<u32> = LoopTable::new(4);
        t.insert(id(1), 1);
        t.insert(id(1), 2);
    }

    #[test]
    fn insertion_counts_as_recency() {
        let mut t: LoopTable<u32> = LoopTable::new(2);
        t.insert(id(1), 1);
        t.insert(id(2), 2);
        // id(1) is LRU.
        let ev = t.insert(id(3), 3).unwrap();
        assert_eq!(ev.0, id(1));
    }

    #[test]
    fn iter_yields_all() {
        let mut t: LoopTable<u32> = LoopTable::new(4);
        t.insert(id(1), 10);
        t.insert(id(2), 20);
        let mut got: Vec<_> = t.iter().map(|(l, v)| (l, *v)).collect();
        got.sort();
        assert_eq!(got, vec![(id(1), 10), (id(2), 20)]);
    }
}
