//! Loop statistics — the Table 1 characterisation.

use std::collections::{BTreeSet, HashMap};

use crate::{LoopEvent, LoopEventSink, LoopId};

/// Aggregated loop statistics of one program run, mirroring the columns of
/// the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopStatsReport {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Static loops: distinct loop identifiers observed.
    pub static_loops: usize,
    /// Total loop executions (multi-iteration + one-shot).
    pub executions: u64,
    /// Total loop iterations across all executions (first iterations
    /// included).
    pub iterations: u64,
    /// Average iterations per execution (`#iter/exec`).
    pub iter_per_exec: f64,
    /// Average instructions per iteration (`#instr/iter`), measured over
    /// the detected span of multi-iteration executions (iterations 2..m;
    /// the undetected first iteration is excluded from both numerator and
    /// denominator — see `DESIGN.md`).
    pub instr_per_iter: f64,
    /// Average nesting level at execution start (`avg. nl`).
    pub avg_nesting: f64,
    /// Maximum nesting level observed (`max. nl`).
    pub max_nesting: u32,
}

/// Streaming collector for [`LoopStatsReport`].
///
/// Feed it the [`LoopEvent`] stream (and the final instruction count) of a
/// run:
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::{Cpu, RunLimits};
/// use loopspec_core::{EventCollector, LoopStats};
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(8, |b, _| {
///     b.counted_loop(5, |b, _| b.work(10));
/// });
/// let program = b.finish()?;
/// let mut c = EventCollector::default();
/// Cpu::new().run(&program, &mut c, RunLimits::default())?;
/// let (events, instructions) = c.into_parts();
///
/// let mut stats = LoopStats::new();
/// stats.observe_all(&events);
/// let report = stats.report(instructions);
/// assert_eq!(report.static_loops, 2);
/// assert_eq!(report.max_nesting, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoopStats {
    loops: BTreeSet<LoopId>,
    executions: u64,
    iterations: u64,
    nesting_sum: u64,
    nesting_samples: u64,
    max_nesting: u32,
    open: HashMap<LoopId, u64>,
    span_instrs: u64,
    span_iters: u64,
}

impl LoopStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one loop event.
    pub fn observe(&mut self, event: &LoopEvent) {
        match *event {
            LoopEvent::ExecutionStart {
                loop_id,
                pos,
                depth,
            } => {
                self.loops.insert(loop_id);
                self.note_depth(depth);
                self.open.insert(loop_id, pos);
            }
            LoopEvent::IterationStart { .. } => {}
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                pos,
            }
            | LoopEvent::Evicted {
                loop_id,
                iterations,
                pos,
            } => {
                self.executions += 1;
                self.iterations += iterations as u64;
                if let Some(start) = self.open.remove(&loop_id) {
                    // The detected span covers iterations 2..=m, i.e.
                    // m - 1 iterations.
                    self.span_instrs += pos.saturating_sub(start);
                    self.span_iters += iterations.saturating_sub(1) as u64;
                }
            }
            LoopEvent::OneShot { loop_id, depth, .. } => {
                self.loops.insert(loop_id);
                self.note_depth(depth);
                self.executions += 1;
                self.iterations += 1;
            }
        }
    }

    /// Feeds a whole event stream.
    pub fn observe_all<'a>(&mut self, events: impl IntoIterator<Item = &'a LoopEvent>) {
        for e in events {
            self.observe(e);
        }
    }

    fn note_depth(&mut self, depth: u32) {
        self.nesting_sum += depth as u64;
        self.nesting_samples += 1;
        self.max_nesting = self.max_nesting.max(depth);
    }

    /// Produces the report, given the run's total instruction count.
    pub fn report(&self, instructions: u64) -> LoopStatsReport {
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        LoopStatsReport {
            instructions,
            static_loops: self.loops.len(),
            executions: self.executions,
            iterations: self.iterations,
            iter_per_exec: ratio(self.iterations, self.executions),
            instr_per_iter: ratio(self.span_instrs, self.span_iters),
            avg_nesting: ratio(self.nesting_sum, self.nesting_samples),
            max_nesting: self.max_nesting,
        }
    }
}

/// Streaming interface: statistics accumulate per event, so the collector
/// plugs directly into a single-pass `Session`.
impl LoopEventSink for LoopStats {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        self.observe(ev);
    }
}

/// All counters plus the open-execution map (written sorted by loop id
/// for byte determinism), so a restored collector continues mid-stream
/// with exact spans.
impl crate::SnapshotState for LoopStats {
    fn save_state(&self, out: &mut crate::snap::Enc) {
        out.u64(self.loops.len() as u64);
        for id in &self.loops {
            out.u32(id.0.index());
        }
        out.u64(self.executions);
        out.u64(self.iterations);
        out.u64(self.nesting_sum);
        out.u64(self.nesting_samples);
        out.u32(self.max_nesting);
        let mut open: Vec<(LoopId, u64)> = self.open.iter().map(|(&l, &p)| (l, p)).collect();
        open.sort_unstable();
        out.u64(open.len() as u64);
        for (l, p) in open {
            out.u32(l.0.index());
            out.u64(p);
        }
        out.u64(self.span_instrs);
        out.u64(self.span_iters);
    }

    fn load_state(&mut self, src: &mut crate::snap::Dec<'_>) -> Result<(), crate::snap::SnapError> {
        let n = src.count()?;
        self.loops.clear();
        for _ in 0..n {
            self.loops
                .insert(LoopId(loopspec_isa::Addr::new(src.u32()?)));
        }
        self.executions = src.u64()?;
        self.iterations = src.u64()?;
        self.nesting_sum = src.u64()?;
        self.nesting_samples = src.u64()?;
        self.max_nesting = src.u32()?;
        let n = src.count()?;
        self.open.clear();
        for _ in 0..n {
            let l = LoopId(loopspec_isa::Addr::new(src.u32()?));
            let p = src.u64()?;
            self.open.insert(l, p);
        }
        self.span_instrs = src.u64()?;
        self.span_iters = src.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::Addr;

    fn id(n: u32) -> LoopId {
        LoopId(Addr::new(n))
    }

    #[test]
    fn counts_simple_execution() {
        let mut s = LoopStats::new();
        s.observe(&LoopEvent::ExecutionStart {
            loop_id: id(1),
            pos: 100,
            depth: 1,
        });
        for k in 2..=5u32 {
            s.observe(&LoopEvent::IterationStart {
                loop_id: id(1),
                iter: k,
                pos: 100 + (k as u64 - 2) * 10,
            });
        }
        s.observe(&LoopEvent::ExecutionEnd {
            loop_id: id(1),
            iterations: 5,
            pos: 140,
        });
        let r = s.report(1000);
        assert_eq!(r.static_loops, 1);
        assert_eq!(r.executions, 1);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.iter_per_exec, 5.0);
        // Span 40 instructions over 4 detected iterations.
        assert_eq!(r.instr_per_iter, 10.0);
        assert_eq!(r.avg_nesting, 1.0);
        assert_eq!(r.max_nesting, 1);
    }

    #[test]
    fn one_shots_count_as_single_iteration_executions() {
        let mut s = LoopStats::new();
        for _ in 0..3 {
            s.observe(&LoopEvent::OneShot {
                loop_id: id(2),
                pos: 0,
                depth: 2,
            });
        }
        let r = s.report(10);
        assert_eq!(r.executions, 3);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.iter_per_exec, 1.0);
        assert_eq!(r.static_loops, 1);
        assert_eq!(r.max_nesting, 2);
    }

    #[test]
    fn nesting_statistics_mix() {
        let mut s = LoopStats::new();
        s.observe(&LoopEvent::ExecutionStart {
            loop_id: id(1),
            pos: 0,
            depth: 1,
        });
        s.observe(&LoopEvent::ExecutionStart {
            loop_id: id(2),
            pos: 1,
            depth: 2,
        });
        s.observe(&LoopEvent::ExecutionEnd {
            loop_id: id(2),
            iterations: 2,
            pos: 5,
        });
        s.observe(&LoopEvent::ExecutionEnd {
            loop_id: id(1),
            iterations: 2,
            pos: 9,
        });
        let r = s.report(10);
        assert_eq!(r.avg_nesting, 1.5);
        assert_eq!(r.max_nesting, 2);
        assert_eq!(r.executions, 2);
    }

    #[test]
    fn evictions_close_spans() {
        let mut s = LoopStats::new();
        s.observe(&LoopEvent::ExecutionStart {
            loop_id: id(1),
            pos: 0,
            depth: 1,
        });
        s.observe(&LoopEvent::Evicted {
            loop_id: id(1),
            iterations: 3,
            pos: 20,
        });
        let r = s.report(30);
        assert_eq!(r.executions, 1);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.instr_per_iter, 10.0);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = LoopStats::new().report(5);
        assert_eq!(r.instructions, 5);
        assert_eq!(r.static_loops, 0);
        assert_eq!(r.iter_per_exec, 0.0);
        assert_eq!(r.instr_per_iter, 0.0);
    }
}
