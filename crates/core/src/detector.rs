//! Packaged per-instruction loop detection.

use loopspec_cpu::{Demand, InstrEvent, Tracer};
use loopspec_isa::ControlKind;

use crate::{Cls, LoopEvent, LoopEventSink};

/// Per-instruction loop detector: wraps a [`Cls`] and turns retired
/// instructions into [`LoopEvent`]s.
///
/// Use [`LoopDetector::process`] when driving it by hand (it returns the
/// events produced by that instruction), or wrap it in an
/// [`EventCollector`] to use it as a [`Tracer`] that accumulates the whole
/// event stream.
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_cpu::{Cpu, RunLimits, Tracer};
/// use loopspec_core::{LoopDetector, LoopEvent};
///
/// struct IterationCounter {
///     det: LoopDetector,
///     iterations: u64,
/// }
/// impl Tracer for IterationCounter {
///     fn on_retire(&mut self, ev: &loopspec_cpu::InstrEvent) {
///         for e in self.det.process(ev) {
///             if matches!(e, LoopEvent::IterationStart { .. }) {
///                 self.iterations += 1;
///             }
///         }
///     }
/// }
///
/// let mut b = ProgramBuilder::new();
/// b.counted_loop(5, |b, _| b.work(1));
/// let program = b.finish()?;
/// let mut t = IterationCounter { det: LoopDetector::default(), iterations: 0 };
/// Cpu::new().run(&program, &mut t, RunLimits::default())?;
/// assert_eq!(t.iterations, 4); // iterations 2..=5 (the 1st is undetectable)
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LoopDetector {
    cls: Cls,
    scratch: Vec<LoopEvent>,
}

impl Default for LoopDetector {
    /// A detector with the paper's 16-entry CLS.
    fn default() -> Self {
        LoopDetector::new(Cls::default())
    }
}

impl LoopDetector {
    /// Creates a detector around an existing CLS (e.g. with a custom
    /// capacity for the ablation experiments).
    pub fn new(cls: Cls) -> Self {
        LoopDetector {
            cls,
            scratch: Vec::with_capacity(8),
        }
    }

    /// Processes one retired instruction and returns the loop events it
    /// produced (empty for non-control instructions). The returned slice
    /// is valid until the next call.
    ///
    /// A [`ControlKind::Halt`] flushes the CLS, closing any still-open
    /// executions.
    pub fn process(&mut self, ev: &InstrEvent) -> &[LoopEvent] {
        self.scratch.clear();
        match ev.control.kind {
            ControlKind::None => {}
            ControlKind::Halt => self.cls.flush(ev.next_pos(), &mut self.scratch),
            _ => self
                .cls
                .on_control(ev.pc, &ev.control, ev.next_pos(), &mut self.scratch),
        }
        &self.scratch
    }

    /// Read access to the underlying CLS (depth inspection etc.).
    pub fn cls(&self) -> &Cls {
        &self.cls
    }

    /// Processes one retired instruction on the **buffered** emission
    /// path: events accumulate in the CLS's internal chunk instead of
    /// being returned. Returns `true` when the chunk has reached
    /// capacity and should be delivered (read it with
    /// [`buffered`](LoopDetector::buffered), then
    /// [`clear_buffered`](LoopDetector::clear_buffered)).
    ///
    /// A [`ControlKind::Halt`] flushes the CLS into the chunk.
    pub fn process_buffered(&mut self, ev: &InstrEvent) -> bool {
        match ev.control.kind {
            ControlKind::None => self.cls.buffered().len() >= self.cls.chunk_capacity(),
            ControlKind::Halt => self.cls.flush_buffered(ev.next_pos()),
            _ => self
                .cls
                .on_control_buffered(ev.pc, &ev.control, ev.next_pos()),
        }
    }

    /// The events buffered so far on the chunked emission path.
    #[inline]
    pub fn buffered(&self) -> &[LoopEvent] {
        self.cls.buffered()
    }

    /// Discards the buffered chunk (after delivery).
    #[inline]
    pub fn clear_buffered(&mut self) {
        self.cls.clear_buffered();
    }

    /// Closes still-open executions at stream position `pos` into the
    /// internal chunk (for streams that end without a `halt`); returns
    /// `true` when the chunk has reached capacity.
    pub fn flush_buffered(&mut self, pos: u64) -> bool {
        self.cls.flush_buffered(pos)
    }

    /// Flushes open executions at stream position `pos` (for traces that
    /// end without a `halt`).
    pub fn flush(&mut self, pos: u64) -> &[LoopEvent] {
        self.scratch.clear();
        self.cls.flush(pos, &mut self.scratch);
        &self.scratch
    }
}

/// Delegates to the wrapped [`Cls`] (the scratch buffer is transient
/// per-instruction state and never part of a retirement-boundary
/// snapshot).
impl crate::SnapshotState for LoopDetector {
    fn save_state(&self, out: &mut crate::snap::Enc) {
        self.cls.save_state(out);
    }

    fn load_state(&mut self, src: &mut crate::snap::Dec<'_>) -> Result<(), crate::snap::SnapError> {
        self.scratch.clear();
        self.cls.load_state(src)
    }
}

/// A [`Tracer`] that runs a [`LoopDetector`] over the instruction stream
/// and collects every [`LoopEvent`] plus the total instruction count.
///
/// This is the one-pass front-end of all experiments: run the CPU once,
/// then replay the (much smaller) event stream into any number of
/// analyses — table-size sweeps, statistics, the thread-speculation
/// annotator.
#[derive(Debug, Default, Clone)]
pub struct EventCollector {
    detector: LoopDetector,
    events: Vec<LoopEvent>,
    instructions: u64,
}

impl EventCollector {
    /// Creates a collector with a custom CLS.
    pub fn new(cls: Cls) -> Self {
        EventCollector {
            detector: LoopDetector::new(cls),
            events: Vec::new(),
            instructions: 0,
        }
    }

    /// Total instructions observed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The events collected so far.
    pub fn events(&self) -> &[LoopEvent] {
        &self.events
    }

    /// Consumes the collector, returning the event stream.
    pub fn into_events(self) -> Vec<LoopEvent> {
        self.events
    }

    /// Consumes the collector, returning `(events, instruction_count)`.
    pub fn into_parts(self) -> (Vec<LoopEvent>, u64) {
        (self.events, self.instructions)
    }
}

impl Tracer for EventCollector {
    fn on_retire(&mut self, ev: &InstrEvent) {
        self.instructions += 1;
        if !matches!(ev.control.kind, ControlKind::None) {
            let events = self.detector.process(ev);
            self.events.extend_from_slice(events);
        }
    }

    fn demand(&self) -> Demand {
        // Loop detection consumes only pc, seq and the control
        // outcome, all of which are always populated.
        Demand::NONE
    }
}

/// As a [`LoopEventSink`] the collector records events pushed by an
/// *external* detector (e.g. a streaming `Session` that runs one shared
/// CLS for many sinks); its internal detector is bypassed and the
/// instruction count is taken from the end-of-stream callback.
impl LoopEventSink for EventCollector {
    #[inline]
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        self.events.push(*ev);
    }

    fn on_stream_end(&mut self, instructions: u64) {
        self.instructions = instructions;
    }
}

/// Snapshots the collected events, the instruction count, **and** the
/// internal detector. In a streaming `Session` (where the collector is
/// a sink and the session's shared detector owns detection) the
/// internal detector is idle and its section is a few fixed bytes; on
/// the [`Tracer`] path the collector owns detection, and carrying the
/// CLS state is what makes a `save_state` →
/// [`Cpu::resume`](loopspec_cpu::Cpu::resume) → `load_state` round
/// trip continue the event stream exactly.
impl crate::SnapshotState for EventCollector {
    fn save_state(&self, out: &mut crate::snap::Enc) {
        out.u64(self.instructions);
        crate::snap::write_events(out, &self.events);
        self.detector.save_state(out);
    }

    fn load_state(&mut self, src: &mut crate::snap::Dec<'_>) -> Result<(), crate::snap::SnapError> {
        self.instructions = src.u64()?;
        self.events = crate::snap::read_events(src)?;
        self.detector.load_state(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_asm::ProgramBuilder;
    use loopspec_cpu::{Cpu, RunLimits};

    fn collect(p: &loopspec_asm::Program) -> (Vec<LoopEvent>, u64) {
        let mut c = EventCollector::default();
        Cpu::new()
            .run(p, &mut c, RunLimits::default())
            .expect("run ok");
        c.into_parts()
    }

    #[test]
    fn counted_loop_event_sequence() {
        let mut b = ProgramBuilder::new();
        b.counted_loop(4, |b, _| b.work(2));
        let p = b.finish().unwrap();
        let (events, _) = collect(&p);
        let kinds: Vec<&'static str> = events
            .iter()
            .map(|e| match e {
                LoopEvent::ExecutionStart { .. } => "ES",
                LoopEvent::IterationStart { .. } => "IS",
                LoopEvent::ExecutionEnd { .. } => "EE",
                LoopEvent::Evicted { .. } => "EV",
                LoopEvent::OneShot { .. } => "1S",
            })
            .collect();
        // 4 iterations: detected at iter 2,3,4 then end.
        assert_eq!(kinds, vec!["ES", "IS", "IS", "IS", "EE"]);
        if let LoopEvent::ExecutionEnd { iterations, .. } = events.last().unwrap() {
            assert_eq!(*iterations, 4);
        }
    }

    #[test]
    fn single_iteration_is_one_shot() {
        let mut b = ProgramBuilder::new();
        b.counted_loop(1, |b, _| b.work(2));
        let p = b.finish().unwrap();
        let (events, _) = collect(&p);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], LoopEvent::OneShot { .. }));
    }

    #[test]
    fn nested_loop_executions_counted_per_outer_iteration() {
        let mut b = ProgramBuilder::new();
        b.counted_loop(3, |b, _| {
            b.counted_loop(4, |b, _| b.work(1));
        });
        let p = b.finish().unwrap();
        let (events, _) = collect(&p);
        let inner_id = events
            .iter()
            .find_map(|e| match e {
                LoopEvent::ExecutionStart {
                    loop_id, depth: 2, ..
                } => Some(*loop_id),
                _ => None,
            })
            .expect("inner loop detected at depth 2");
        let inner_execs = events
            .iter()
            .filter(
                |e| matches!(e, LoopEvent::ExecutionEnd { loop_id, .. } if *loop_id == inner_id),
            )
            .count();
        assert_eq!(inner_execs, 3, "one inner execution per outer iteration");
        let outer_ends: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                LoopEvent::ExecutionEnd {
                    loop_id,
                    iterations,
                    ..
                } if *loop_id != inner_id => Some(*iterations),
                _ => None,
            })
            .collect();
        assert_eq!(outer_ends, vec![3]);
    }

    #[test]
    fn while_loop_counts_trailing_partial_iteration() {
        // A while loop with 5 body trips has 6 iterations per the paper's
        // definition (the last iteration is the final condition check).
        let mut b = ProgramBuilder::new();
        let x = b.alloc_reg();
        let n = b.alloc_reg();
        b.li(x, 0);
        b.li(n, 5);
        b.while_loop(
            |_| (loopspec_isa::Cond::LtS, x, n),
            |b| {
                b.addi(x, x, 1);
                b.work(1);
            },
        );
        let p = b.finish().unwrap();
        let (events, _) = collect(&p);
        let iters: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                LoopEvent::ExecutionEnd { iterations, .. } => Some(*iterations),
                _ => None,
            })
            .collect();
        assert_eq!(iters, vec![6]);
    }

    #[test]
    fn break_ends_execution_early() {
        use loopspec_isa::Cond;
        let mut b = ProgramBuilder::new();
        b.counted_loop(100, |b, i| {
            b.work(2);
            b.with_reg(|b, lim| {
                b.li(lim, 6);
                b.break_if(Cond::GeS, i, lim);
            });
        });
        let p = b.finish().unwrap();
        let (events, _) = collect(&p);
        let iters: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                LoopEvent::ExecutionEnd { iterations, .. } => Some(*iterations),
                _ => None,
            })
            .collect();
        // Breaks at i == 6, i.e. during iteration 7.
        assert_eq!(iters, vec![7]);
    }

    #[test]
    fn loop_in_function_called_from_loop_nests() {
        let mut b = ProgramBuilder::new();
        b.define_func("inner", |b| {
            b.counted_loop(3, |b, _| b.work(1));
        });
        b.counted_loop(2, |b, _| {
            b.call_func("inner");
        });
        let p = b.finish().unwrap();
        let (events, _) = collect(&p);
        // The function's loop runs at depth 2: its execution is nested in
        // the caller's (subroutine bodies belong to the loop execution).
        let depths: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                LoopEvent::ExecutionStart { depth, .. } => Some(*depth),
                _ => None,
            })
            .collect();
        assert!(depths.contains(&2), "function loop nested: {depths:?}");
    }

    #[test]
    fn collector_counts_instructions() {
        let mut b = ProgramBuilder::new();
        b.work(10);
        let p = b.finish().unwrap();
        let (_, n) = collect(&p);
        // 2 startup + 10 work + halt
        assert_eq!(n, 13);
    }

    #[test]
    fn tracer_path_collector_round_trips_mid_loop() {
        // The collector as a *Tracer* owns detection: a snapshot taken
        // mid-loop must carry the internal CLS so a restored collector
        // continues the event stream exactly.
        use crate::SnapshotState;
        let mut b = ProgramBuilder::new();
        b.counted_loop(12, |b, _| {
            b.counted_loop(5, |b, _| b.work(3));
        });
        let p = b.finish().unwrap();

        let mut reference = EventCollector::default();
        let mut cpu = Cpu::new();
        cpu.run(&p, &mut reference, RunLimits::default()).unwrap();

        // Interrupted run: cut mid-loop, round-trip through bytes.
        let mut first = EventCollector::default();
        let mut cpu = Cpu::new();
        cpu.run(&p, &mut first, RunLimits::with_fuel(50)).unwrap();
        let mut enc = crate::snap::Enc::new();
        first.save_state(&mut enc);
        let bytes = enc.into_bytes();

        // A dirty target collector must be fully overwritten.
        let mut second = EventCollector::default();
        Cpu::new()
            .run(&p, &mut second, RunLimits::with_fuel(30))
            .unwrap();
        let mut dec = crate::snap::Dec::new(&bytes);
        second.load_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(second.detector.cls().depth(), first.detector.cls().depth());

        cpu.resume(&p, &mut second, RunLimits::default()).unwrap();
        assert_eq!(second.events(), reference.events());
        assert_eq!(second.instructions(), reference.instructions());
    }

    #[test]
    fn events_positions_are_monotone() {
        let mut b = ProgramBuilder::new();
        b.counted_loop(3, |b, _| {
            b.counted_loop(2, |b, _| b.work(1));
            b.work(1);
        });
        let p = b.finish().unwrap();
        let (events, n) = collect(&p);
        let mut last = 0;
        for e in &events {
            assert!(e.pos() >= last, "positions must be non-decreasing");
            assert!(e.pos() <= n);
            last = e.pos();
        }
    }
}
