//! Seeded scenario families: named generators of structured programs.
//!
//! Each family stresses one loop shape from the paper's taxonomy —
//! data-dependent trip counts, deep irregular nesting, recursion-driven
//! iteration, interpreter-style dispatch, pointer chasing — plus a
//! `mixed` family wrapping the structured fuzzer. A `(family, seed)`
//! pair regenerates the identical program forever, which is what makes
//! failing-seed replay (`genfuzz --replay family:seed`) possible.

use std::fmt;
use std::str::FromStr;

use loopspec_isa::{AluOp, Cond};

use crate::ast::{
    arb_program, ArbConfig, ArrayInit, AstProgram, CondExpr, Expr, FuncDef, FuncId, Rhs, Stmt, VReg,
};
use crate::rng::Rng;

/// A named scenario family: a seeded generator of structured programs.
#[derive(Debug, Clone, Copy)]
pub struct Family {
    /// Short identifier used in replay tokens and reports.
    pub name: &'static str,
    /// One-line description for `genfuzz --list` and the repro table.
    pub description: &'static str,
    gen: fn(&mut Rng, u32) -> AstProgram,
}

impl Family {
    /// Generates this family's program for `(seed, size)`. Same
    /// arguments, same program, forever.
    pub fn generate(&self, seed: u64, size: u32) -> AstProgram {
        // Mix the family name into the stream so equal seeds do not
        // produce correlated draws across families.
        let tag = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        let mut r = Rng::new(seed ^ tag);
        (self.gen)(&mut r, size.max(1))
    }
}

const FAMILIES: [Family; 7] = [
    Family {
        name: "trips",
        description: "data-dependent trip counts from a self-mutating array",
        gen: gen_trips,
    },
    Family {
        name: "nest",
        description: "deep irregular loop nests (depth 6-8) with guards and breaks",
        gen: gen_nest,
    },
    Family {
        name: "rec",
        description: "recursion-driven loops with data-dependent depth",
        gen: gen_rec,
    },
    Family {
        name: "dispatch",
        description: "interpreter-style bytecode dispatch with indirect calls",
        gen: gen_dispatch,
    },
    Family {
        name: "chase",
        description: "pointer chasing through a permutation chain",
        gen: gen_chase,
    },
    Family {
        name: "mixed",
        description: "structured-fuzz programs over the full AST",
        gen: gen_mixed,
    },
    Family {
        name: "kernels",
        description: "native kernel calls interleaved with ordinary loops",
        gen: gen_kernels,
    },
];

/// The scenario-family registry.
pub fn families() -> &'static [Family] {
    &FAMILIES
}

/// Looks up a family by name.
pub fn family_by_name(name: &str) -> Option<&'static Family> {
    FAMILIES.iter().find(|f| f.name == name)
}

/// A parsed `family:seed` replay token, as printed by harness failures
/// (optionally carrying the `gen:` workload-name prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayToken {
    /// Family name.
    pub family: String,
    /// Generator seed.
    pub seed: u64,
}

impl ReplayToken {
    /// Regenerates the program this token names, if the family exists.
    pub fn program(&self, size: u32) -> Option<AstProgram> {
        family_by_name(&self.family).map(|f| f.generate(self.seed, size))
    }
}

impl fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.family, self.seed)
    }
}

impl FromStr for ReplayToken {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_prefix("gen:").unwrap_or(s);
        let (family, seed) = s
            .split_once(':')
            .ok_or_else(|| format!("expected family:seed, got {s:?}"))?;
        if family.is_empty() {
            return Err(format!("empty family name in {s:?}"));
        }
        let seed = seed
            .parse::<u64>()
            .map_err(|_| format!("bad seed {seed:?} in {s:?}"))?;
        Ok(ReplayToken {
            family: family.to_string(),
            seed,
        })
    }
}

fn cond(c: Cond, lhs: VReg, rhs: Rhs) -> CondExpr {
    CondExpr { cond: c, lhs, rhs }
}

/// Trip counts come from array cells the loop itself mutates: the
/// iteration space of the inner loop depends on the data the outer loop
/// wrote on earlier passes.
fn gen_trips(r: &mut Rng, size: u32) -> AstProgram {
    let mut p = AstProgram::new(r.below(1 << 20) as i64);
    let init: Vec<i64> = (0..16).map(|_| r.below(8) as i64).collect();
    let a = p.array(16, ArrayInit::Values(init));
    let i = p.vreg();
    let t = p.vreg();
    let u = p.vreg();
    let work = r.range(2, 6) as u32;
    p.body = vec![Stmt::For {
        trips: Expr::Const(4 * size as i64),
        body: vec![
            Stmt::Let(i, Expr::RngBelow(16)),
            Stmt::Let(t, Expr::LoadArr(a, i)),
            Stmt::Let(t, Expr::Bin(AluOp::And, t, Rhs::Imm(7))),
            Stmt::For {
                trips: Expr::Copy(t),
                body: vec![Stmt::Work(work)],
            },
            Stmt::Let(u, Expr::Bin(AluOp::Add, t, Rhs::Imm(1))),
            Stmt::StoreArr(a, i, u),
        ],
    }];
    p
}

/// Deep irregular nests: 6-8 loop levels with random small trip
/// counts, guest-RNG guards and rare breaks — the shapes that exhaust
/// register-resident counters and exercise the memory-loop fallback.
fn gen_nest(r: &mut Rng, size: u32) -> AstProgram {
    fn level(p: &mut AstProgram, r: &mut Rng, d: u32) -> Vec<Stmt> {
        if d == 0 {
            return vec![Stmt::Work(r.range(1, 6) as u32)];
        }
        let mut body = Vec::new();
        if r.below(2) == 0 {
            body.push(Stmt::Work(r.range(1, 4) as u32));
        }
        if r.below(4) == 0 {
            // Rare early exit from this level.
            let v = p.vreg();
            body.push(Stmt::Seq(vec![
                Stmt::Let(v, Expr::RngBelow(10)),
                Stmt::BreakIf(cond(Cond::Eq, v, Rhs::Imm(9))),
            ]));
        }
        let inner = level(p, r, d - 1);
        let looped = Stmt::For {
            trips: Expr::Const(r.range(1, 4) as i64),
            body: inner,
        };
        if r.below(3) == 0 {
            // Guard the next level behind a data-dependent branch.
            let v = p.vreg();
            body.push(Stmt::Seq(vec![
                Stmt::Let(v, Expr::RngBelow(4)),
                Stmt::If {
                    cond: cond(Cond::Ne, v, Rhs::Imm(0)),
                    then_b: vec![looped],
                    else_b: vec![Stmt::Work(2)],
                },
            ]));
        } else {
            body.push(looped);
        }
        body
    }
    let mut p = AstProgram::new(r.below(1 << 20) as i64);
    let depth = r.range(6, 9) as u32;
    let nest = level(&mut p, r, depth);
    p.body = vec![Stmt::For {
        trips: Expr::Const(size as i64),
        body: nest,
    }];
    p
}

/// Recursion-driven iteration: a self-recursive function whose depth is
/// drawn from the guest RNG per call site, with a counted loop at every
/// activation.
fn gen_rec(r: &mut Rng, size: u32) -> AstProgram {
    let mut p = AstProgram::new(r.below(1 << 20) as i64);
    let n = VReg(0);
    let t = VReg(1);
    let work = r.range(1, 6) as u32;
    let body = vec![
        Stmt::Let(n, Expr::Arg(0)),
        Stmt::Let(t, Expr::Bin(AluOp::And, n, Rhs::Imm(3))),
        Stmt::For {
            trips: Expr::Copy(t),
            body: vec![Stmt::Work(work)],
        },
        Stmt::If {
            cond: cond(Cond::GtS, n, Rhs::Imm(0)),
            then_b: vec![Stmt::Call {
                func: FuncId(0),
                args: vec![Expr::Bin(AluOp::Add, n, Rhs::Imm(-1))],
            }],
            else_b: vec![Stmt::FWork(1)],
        },
        Stmt::SetRet(Expr::Copy(n)),
    ];
    p.funcs.push(FuncDef { vregs: 2, body });
    let d = p.vreg();
    let depth_mod = r.range(3, 9) as i32;
    p.body = vec![Stmt::For {
        trips: Expr::Const(2 * size as i64),
        body: vec![
            Stmt::Let(d, Expr::RngBelow(depth_mod)),
            Stmt::Let(d, Expr::Bin(AluOp::Add, d, Rhs::Imm(2))),
            Stmt::Call {
                func: FuncId(0),
                args: vec![Expr::Copy(d)],
            },
        ],
    }];
    p
}

/// Interpreter-style dispatch: a bytecode array driven by a `pc` loop
/// whose body switches over the fetched opcode; one opcode dispatches
/// further through the function-pointer table.
fn gen_dispatch(r: &mut Rng, size: u32) -> AstProgram {
    let mut p = AstProgram::new(r.below(1 << 20) as i64);
    let v0 = VReg(0);
    let f0 = p.func(
        1,
        vec![
            Stmt::Let(v0, Expr::Arg(0)),
            Stmt::For {
                trips: Expr::Bin(AluOp::And, v0, Rhs::Imm(3)),
                body: vec![Stmt::Work(2)],
            },
            Stmt::SetRet(Expr::Bin(AluOp::Add, v0, Rhs::Imm(1))),
        ],
    );
    let f1 = p.func(
        1,
        vec![
            Stmt::Let(v0, Expr::Arg(0)),
            Stmt::Work(3),
            Stmt::FWork(2),
            Stmt::SetRet(Expr::Bin(AluOp::Xor, v0, Rhs::Imm(5))),
        ],
    );
    p.table = vec![f0, f1, f0];
    let clen = 32u32;
    let code: Vec<i64> = (0..clen).map(|_| r.below(5) as i64).collect();
    let a = p.array(clen, ArrayInit::Values(code));
    let pc = p.vreg();
    let op = p.vreg();
    let acc = p.vreg();
    let arms = vec![
        vec![Stmt::Work(2)],
        vec![Stmt::FWork(1)],
        vec![Stmt::For {
            trips: Expr::Bin(AluOp::And, acc, Rhs::Imm(3)),
            body: vec![Stmt::Work(1)],
        }],
        vec![
            Stmt::CallTab {
                sel: acc,
                args: vec![Expr::Copy(acc)],
            },
            Stmt::Let(acc, Expr::RetVal),
        ],
        vec![Stmt::Let(acc, Expr::Bin(AluOp::Add, acc, Rhs::Imm(1)))],
    ];
    p.body = vec![Stmt::For {
        trips: Expr::Const(size as i64),
        body: vec![
            Stmt::Let(pc, Expr::Const(0)),
            Stmt::Let(acc, Expr::RngBelow(7)),
            Stmt::While {
                cond: cond(Cond::LtS, pc, Rhs::Imm(clen as i32)),
                body: vec![
                    Stmt::Let(op, Expr::LoadArr(a, pc)),
                    Stmt::Switch { sel: op, arms },
                    Stmt::Let(pc, Expr::Bin(AluOp::Add, pc, Rhs::Imm(1))),
                ],
            },
        ],
    }];
    p
}

/// Pointer chasing: the array is initialized as a pointer chain through
/// its own cells (odd multiplier → a permutation), and the loop follows
/// absolute addresses with raw pointer loads.
fn gen_chase(r: &mut Rng, size: u32) -> AstProgram {
    let mut p = AstProgram::new(r.below(1 << 20) as i64);
    const MULS: [u32; 5] = [3, 5, 7, 9, 11];
    let mul = MULS[r.below(5) as usize];
    let add = r.below(64) as u32;
    let a = p.array(64, ArrayInit::PtrChain { mul, add });
    let st = p.vreg();
    let ptr = p.vreg();
    let steps = r.range(16, 33) as i64;
    p.body = vec![Stmt::For {
        trips: Expr::Const(2 * size as i64),
        body: vec![
            Stmt::Let(st, Expr::RngBelow(64)),
            Stmt::Let(ptr, Expr::LoadArr(a, st)),
            Stmt::For {
                trips: Expr::Const(steps),
                body: vec![Stmt::Let(ptr, Expr::LoadPtr(ptr, 0))],
            },
            Stmt::Work(2),
        ],
    }];
    p
}

/// Native kernel calls interleaved with ordinary lowered loops: every
/// registered kernel gets invoked with generator-drawn trip counts
/// (zero-trip included), memory kernels run over 4096-word arrays
/// (exactly the kernel ABI's index-mask window), and results feed both
/// subsequent kernel arguments and data-dependent ordinary loops — so
/// a wrong kernel result changes control flow, not just a cell.
fn gen_kernels(r: &mut Rng, size: u32) -> AstProgram {
    use loopspec_isa::kernel;

    let mut p = AstProgram::new(r.below(1 << 20) as i64);
    let init_a: Vec<i64> = (0..256).map(|_| r.below(2000) as i64 - 1000).collect();
    let init_b: Vec<i64> = (0..256).map(|_| r.below(97) as i64 + 1).collect();
    // The kernels mask indices with the immediate `i & 4095`, so a
    // 4096-word array is exactly the reachable window from its base.
    let a = p.array(4096, ArrayInit::Values(init_a));
    let b = p.array(4096, ArrayInit::Values(init_b));
    let acc = p.vreg();
    let n = p.vreg();

    let mut rep = vec![
        // Fresh data-dependent trip count each outer iteration;
        // occasionally zero to exercise the zero-trip guard.
        Stmt::Let(n, Expr::RngBelow(200)),
    ];
    let defs = kernel::all();
    // Every registered kernel at least once per rep (rotated by the
    // seed), plus a few seed-drawn repeats.
    let rot = r.below(defs.len() as u64) as usize;
    let extra = r.below(3) as usize;
    for k in 0..defs.len() + extra {
        let def = &defs[(k + rot) % defs.len()];
        let args = match def.name {
            "ksum" => vec![Expr::Copy(n), Expr::ArrayBase(a)],
            "kfill" => vec![Expr::Copy(n), Expr::ArrayBase(b), Expr::Copy(acc)],
            "kdot" => vec![Expr::Copy(n), Expr::ArrayBase(a), Expr::ArrayBase(b)],
            "khash" => vec![Expr::Copy(n), Expr::Copy(acc)],
            other => panic!("kernels family does not know builtin {other}"),
        };
        rep.push(Stmt::KernelCall { id: def.id, args });
        rep.push(Stmt::Let(acc, Expr::RetVal));
        rep.push(Stmt::Let(acc, Expr::Bin(AluOp::Xor, acc, Rhs::Reg(n))));
    }
    // Feed the kernel result back into ordinary loop shapes so the
    // detector sees real loops whose trip counts depend on kernel
    // output.
    rep.push(Stmt::For {
        trips: Expr::Bin(AluOp::And, acc, Rhs::Imm(7)),
        body: vec![Stmt::Work(r.range(1, 5) as u32)],
    });
    rep.push(Stmt::StoreArr(a, n, acc));

    p.body = vec![
        Stmt::Let(acc, Expr::Const(r.below(1000) as i64)),
        Stmt::For {
            trips: Expr::Const(2 * size as i64),
            body: rep,
        },
    ];
    p
}

/// The structured fuzzer as a family: arbitrary terminating programs
/// over the full AST, top width scaled by size.
fn gen_mixed(r: &mut Rng, size: u32) -> AstProgram {
    let cfg = ArbConfig {
        max_depth: 3,
        max_top: (2 + size as u64).min(8),
        extended: true,
    };
    arb_program(r, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use loopspec_cpu::{Cpu, NullTracer, RunLimits};

    #[test]
    fn every_family_is_seeded_and_reproducible() {
        for f in families() {
            let a = f.generate(11, 2);
            let b = f.generate(11, 2);
            assert_eq!(a, b, "family {} is not reproducible", f.name);
            let c = f.generate(12, 2);
            assert_ne!(a, c, "family {} ignores its seed", f.name);
        }
    }

    #[test]
    fn every_family_compiles_and_halts() {
        for f in families() {
            for seed in [0u64, 1, 2] {
                let ast = f.generate(seed, 1);
                let prog = compile(&ast)
                    .unwrap_or_else(|e| panic!("{}:{seed} failed to compile: {e:?}", f.name));
                let s = Cpu::new()
                    .run(&prog, &mut NullTracer, RunLimits::with_fuel(5_000_000))
                    .unwrap_or_else(|e| panic!("{}:{seed} faulted: {e:?}", f.name));
                assert!(s.halted(), "{}:{seed} did not halt", f.name);
            }
        }
    }

    /// `compile` lowers `Stmt::KernelCall` to one native `KernelCall`
    /// instruction; `compile_inline_kernels` splices the registered body
    /// inline. Both must leave identical registers and memory — the gen
    /// layer's own oracle that native kernel retirement is faithful.
    #[test]
    fn inline_kernels_matches_native_final_state() {
        let f = family_by_name("kernels").expect("registered");
        for seed in [0u64, 1, 2, 3, 4] {
            let ast = f.generate(seed, 1);
            let native = compile(&ast).expect("native compile");
            let inlined = crate::compile_inline_kernels(&ast).expect("inline compile");
            assert_ne!(native, inlined, "kernels:{seed} generated no kernel calls");
            let run = |prog| {
                let mut cpu = Cpu::new();
                let s = cpu
                    .run(prog, &mut NullTracer, RunLimits::with_fuel(50_000_000))
                    .unwrap_or_else(|e| panic!("kernels:{seed} faulted: {e:?}"));
                assert!(s.halted(), "kernels:{seed} did not halt");
                let mut enc = loopspec_isa::snap::Enc::new();
                cpu.mem().save_state(&mut enc);
                let regs: Vec<u64> = loopspec_isa::Reg::ALL.iter().map(|&r| cpu.reg(r)).collect();
                (enc.into_bytes(), regs)
            };
            let (mem_a, regs_a) = run(&native);
            let (mem_b, regs_b) = run(&inlined);
            assert_eq!(regs_a, regs_b, "kernels:{seed} register divergence");
            assert_eq!(mem_a, mem_b, "kernels:{seed} memory divergence");
        }
    }

    #[test]
    fn replay_token_round_trips() {
        let t = ReplayToken {
            family: "dispatch".into(),
            seed: 991,
        };
        assert_eq!(t.to_string(), "dispatch:991");
        assert_eq!("dispatch:991".parse::<ReplayToken>().unwrap(), t);
        assert_eq!("gen:dispatch:991".parse::<ReplayToken>().unwrap(), t);
        assert!("nocolon".parse::<ReplayToken>().is_err());
        assert!(":7".parse::<ReplayToken>().is_err());
        assert!("chase:notanumber".parse::<ReplayToken>().is_err());
        let p = t.program(1).expect("known family");
        assert_eq!(p, family_by_name("dispatch").unwrap().generate(991, 1));
        assert!(ReplayToken {
            family: "nope".into(),
            seed: 0
        }
        .program(1)
        .is_none());
    }
}
