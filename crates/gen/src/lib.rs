//! # loopspec-gen — structured-program compiler and scenario families
//!
//! The repo's hand-written workloads cover the paper's benchmark
//! shapes; this crate generates *programs we did not think of*. It is
//! a small compiler pipeline on top of `loopspec-asm`:
//!
//! 1. **[AST](ast)** — a portable statement tree over virtual
//!    registers: loops, conditionals, calls (direct, recursive, and
//!    through function-pointer tables), dispatch, and memory ops on
//!    declared arrays or raw pointers.
//! 2. **[Allocator](alloc)** — maps virtual registers onto the
//!    builder's physical pools, spilling the overflow to static memory
//!    (main) or the stack frame (functions, recursion-safe).
//! 3. **[Lowering](compile)** — emits ISA code: canonical loop shapes
//!    with register counters while they last and memory-resident
//!    counters beyond, masked array indexing, normalized dispatch.
//!
//! On top sit the **[scenario families](family)** — named, seeded
//! generators (`trips`, `nest`, `rec`, `dispatch`, `chase`, `mixed`,
//! `kernels`) each stressing one loop shape from the paper's taxonomy
//! (`kernels` mixes in native [`KernelCall`
//! dispatch](loopspec_isa::kernel)) — and the
//! **[differential harness](harness)**, which runs each generated
//! program through every execution path in the repo (legacy vs decoded
//! CPU, batch vs streaming vs sharded engines) and cross-checks the
//! results bit for bit. A failure prints a `genfuzz --replay
//! family:seed` line that regenerates the exact program anywhere.
//!
//! ## Example
//!
//! ```
//! use loopspec_gen::{compile, family_by_name, harness};
//!
//! let family = family_by_name("trips").unwrap();
//! let ast = family.generate(3, 1);          // seeded: same program forever
//! let program = compile(&ast)?;             // executable ISA code
//! assert!(program.len() > 0);
//! let check = harness::check_program(family, 3, 1).unwrap();
//! assert!(check.instructions > 0);
//! # Ok::<(), loopspec_asm::AsmError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod alloc;
pub mod ast;
pub mod family;
pub mod harness;
mod lower;
mod rng;

pub use ast::{arb_program, ArbConfig, AstProgram, Stmt};
pub use family::{families, family_by_name, Family, ReplayToken};
pub use harness::{check_events, check_program, run_corpus, run_family, FamilyReport};
pub use lower::{compile, compile_inline_kernels};
pub use rng::Rng;
