//! The differential property harness.
//!
//! For one generated program, [`check_program`] drives every execution
//! path the repo has and cross-checks them:
//!
//! 1. **Legacy CPU** — runs to halt under an [`EventCollector`]; the
//!    loop-event stream must be well-formed ([`check_events`]).
//! 2. **Decoded CPU** — same program through the pre-decoded
//!    threaded-code front-end: identical events, retired count and
//!    serialized architectural state, including under an odd,
//!    seed-derived fuel slice with pause/resume.
//! 3. **Speculation engines** — batch [`Engine`] runs at 2/4/8/16 TUs
//!    must obey the conservation laws (spawned == resolved, TPC within
//!    `[1, ideal]`), and the streaming engine must match batch reports
//!    bit for bit.
//! 4. **Streaming vs sharded** — a single-pass [`Session`] with an
//!    [`EngineGrid`] must equal `K ∈ {2, 4}` checkpoint-linked
//!    [`ShardedRun`]s, byte-identical reports, on both interpreters.
//!
//! Failures carry a self-contained replay line
//! (`genfuzz --replay family:seed`) so any CI failure reproduces
//! locally with one command.

use std::collections::HashMap;
use std::fmt;

use loopspec_core::{EventCollector, LoopEvent, LoopId};
use loopspec_cpu::{Cpu, DecodedProgram, RunLimits};
use loopspec_mt::{ideal_tpc, AnnotatedTrace, Engine, EngineGrid, StrNestedPolicy, StrPolicy};
use loopspec_pipeline::{Interp, Session, ShardedRun};

use crate::family::{families, Family};

/// Fuel per unit of size — generous: generated programs are built to
/// terminate well below this, so hitting the cap is itself a failure.
const FUEL_PER_SIZE: u64 = 4_000_000;

/// One harness failure, carrying everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Family name.
    pub family: String,
    /// Generator seed.
    pub seed: u64,
    /// What diverged or broke.
    pub what: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gen harness failure in {}:{} — {}",
            self.family, self.seed, self.what
        )?;
        write!(
            f,
            "    reproduce with: genfuzz --replay {}:{}",
            self.family, self.seed
        )
    }
}

impl std::error::Error for Failure {}

/// Cheap summary of one checked program, aggregated per family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramCheck {
    /// Instructions the program retired.
    pub instructions: u64,
    /// Loop events the detector emitted.
    pub loop_events: u64,
}

/// Event-stream well-formedness: monotone positions, dense iteration
/// indices, matched open/close, nothing left open at halt. (The checker
/// the property suite has always used, now shared library code.)
///
/// # Errors
///
/// Returns a description of the first malformation found.
pub fn check_events(events: &[LoopEvent]) -> Result<(), String> {
    let mut open: HashMap<LoopId, u32> = HashMap::new();
    let mut last_pos = 0u64;
    for e in events {
        if e.pos() < last_pos {
            return Err(format!("position went backwards at {e}"));
        }
        last_pos = e.pos();
        match *e {
            LoopEvent::ExecutionStart { loop_id, .. } => {
                if open.insert(loop_id, 1).is_some() {
                    return Err(format!("double open {loop_id}"));
                }
            }
            LoopEvent::IterationStart { loop_id, iter, .. } => {
                let last = open
                    .get_mut(&loop_id)
                    .ok_or_else(|| format!("iteration of closed {loop_id}"))?;
                if iter != *last + 1 {
                    return Err(format!(
                        "non-dense iteration index on {loop_id}: {iter} after {last}"
                    ));
                }
                *last = iter;
            }
            LoopEvent::ExecutionEnd {
                loop_id,
                iterations,
                ..
            }
            | LoopEvent::Evicted {
                loop_id,
                iterations,
                ..
            } => {
                let last = open
                    .remove(&loop_id)
                    .ok_or_else(|| format!("close of unopened {loop_id}"))?;
                if iterations != last {
                    return Err(format!(
                        "{loop_id} closed with {iterations} iterations, saw {last}"
                    ));
                }
            }
            LoopEvent::OneShot { .. } => {}
        }
    }
    if !open.is_empty() {
        return Err(format!("{} loops left open at halt", open.len()));
    }
    Ok(())
}

/// The lane set every streaming/sharded comparison runs: an idle
/// baseline, STR at two TU counts, and nested STR.
fn make_grid() -> EngineGrid {
    let mut g = EngineGrid::new();
    g.push_idle(4);
    g.push_str(2);
    g.push_str(4);
    g.push_str_nested(2, 4);
    g
}

/// Runs `(family, seed, size)` through every execution path and
/// cross-checks them.
///
/// # Errors
///
/// Returns a [`Failure`] naming the first divergence, with a replay
/// line embedded in its `Display`.
pub fn check_program(family: &Family, seed: u64, size: u32) -> Result<ProgramCheck, Failure> {
    let fail = |what: String| Failure {
        family: family.name.to_string(),
        seed,
        what,
    };
    let ast = family.generate(seed, size);
    let program = crate::compile(&ast).map_err(|e| fail(format!("failed to assemble: {e}")))?;
    let fuel = FUEL_PER_SIZE * size.max(1) as u64;
    let limits = RunLimits::with_fuel(fuel);

    // 1. Legacy CPU + event stream.
    let mut legacy_cpu = Cpu::new();
    let mut collector = EventCollector::default();
    let summary = legacy_cpu
        .run(&program, &mut collector, limits)
        .map_err(|e| fail(format!("legacy cpu fault: {e}")))?;
    if !summary.halted() {
        return Err(fail(format!(
            "did not halt within {fuel} instructions (retired {})",
            summary.retired
        )));
    }
    let (events, n) = collector.into_parts();
    check_events(&events).map_err(|e| fail(format!("malformed event stream: {e}")))?;

    // 2. Decoded CPU: identical events, retirement count and state.
    let decoded = DecodedProgram::new(&program);
    let mut decoded_cpu = Cpu::new();
    let mut decoded_collector = EventCollector::default();
    let dsummary = decoded_cpu
        .run_decoded(&decoded, &mut decoded_collector, limits)
        .map_err(|e| fail(format!("decoded cpu fault: {e}")))?;
    if dsummary.retired != summary.retired {
        return Err(fail(format!(
            "decoded retired {} vs legacy {}",
            dsummary.retired, summary.retired
        )));
    }
    let (devents, dn) = decoded_collector.into_parts();
    if dn != n || devents != events {
        return Err(fail("decoded loop events diverge from legacy".into()));
    }
    if arch_state(&legacy_cpu) != arch_state(&decoded_cpu) {
        return Err(fail("decoded final state diverges from legacy".into()));
    }

    // 2b. Decoded under an odd seed-derived fuel slice, pause/resume.
    let slice = 11 + seed.wrapping_mul(7919) % 97;
    let mut sliced_cpu = Cpu::new();
    let mut sliced_collector = EventCollector::default();
    let mut first = true;
    loop {
        let s = if first {
            first = false;
            sliced_cpu.run_decoded(&decoded, &mut sliced_collector, RunLimits::with_fuel(slice))
        } else {
            sliced_cpu.resume_decoded(&decoded, &mut sliced_collector, RunLimits::with_fuel(slice))
        }
        .map_err(|e| fail(format!("decoded cpu fault mid-slice: {e}")))?;
        if s.halted() {
            break;
        }
        if sliced_cpu.retired() >= fuel {
            return Err(fail("sliced decoded run overran the fuel cap".into()));
        }
    }
    let (sevents, sn) = sliced_collector.into_parts();
    if sn != n || sevents != events {
        return Err(fail(format!(
            "decoded events diverge under fuel slices of {slice}"
        )));
    }
    if arch_state(&sliced_cpu) != arch_state(&legacy_cpu) {
        return Err(fail(format!(
            "decoded state diverges under fuel slices of {slice}"
        )));
    }

    // 3. Batch engine conservation laws at every TU count.
    let trace = AnnotatedTrace::build(&events, n);
    let ideal = ideal_tpc(&trace);
    if ideal.tpc < 1.0 - 1e-9 {
        return Err(fail(format!("ideal TPC {} below 1", ideal.tpc)));
    }
    for tus in [2usize, 4, 8, 16] {
        let r = Engine::new(&trace, StrPolicy::new(), tus).run();
        if r.spec.threads_spawned != r.spec.resolved() {
            return Err(fail(format!(
                "STR@{tus}: {} spawned vs {} resolved",
                r.spec.threads_spawned,
                r.spec.resolved()
            )));
        }
        if r.cycles > n {
            return Err(fail(format!("STR@{tus}: {} cycles > {n} instrs", r.cycles)));
        }
        if r.tpc() < 1.0 - 1e-9 || r.tpc() > ideal.tpc + 1e-9 {
            return Err(fail(format!(
                "STR@{tus}: TPC {} outside [1, {}]",
                r.tpc(),
                ideal.tpc
            )));
        }
    }
    {
        let r = Engine::new(&trace, StrNestedPolicy::new(2), 4).run();
        if r.spec.threads_spawned != r.spec.resolved() {
            return Err(fail("STR-nested@4: spawned != resolved".into()));
        }
    }

    // 4. Streaming session (both interpreters) vs K-sharded runs.
    let stream_reports = |interp: Interp| -> Result<Vec<loopspec_mt::EngineReport>, Failure> {
        let mut grid = make_grid();
        let mut session = Session::new();
        session.set_interp(interp);
        session.observe_checkpointable(&mut grid);
        let s = session
            .run(&program, limits)
            .map_err(|e| fail(format!("{interp:?} session fault: {e}")))?;
        if s.instructions != n {
            return Err(fail(format!(
                "{interp:?} session retired {} vs cpu {n}",
                s.instructions
            )));
        }
        Ok(grid.reports().expect("stream ended").to_vec())
    };
    let reference = stream_reports(Interp::Legacy)?;
    let decoded_reports = stream_reports(Interp::Decoded)?;
    if decoded_reports != reference {
        return Err(fail("decoded session reports diverge from legacy".into()));
    }
    for k in [2usize, 4] {
        let out = ShardedRun::new(k)
            .run(&program, RunLimits::with_fuel(n), make_grid)
            .map_err(|e| fail(format!("{k}-sharded run failed: {e}")))?;
        if out.sink.reports() != Some(&reference[..]) {
            return Err(fail(format!(
                "{k}-sharded reports diverge from the single pass"
            )));
        }
    }

    Ok(ProgramCheck {
        instructions: n,
        loop_events: events.len() as u64,
    })
}

fn arch_state(cpu: &Cpu) -> Vec<u8> {
    let mut enc = loopspec_isa::snap::Enc::new();
    cpu.save_state(&mut enc);
    enc.into_bytes()
}

/// Aggregated harness results for one family — the per-family row of
/// the "fig6 by loop shape" table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyReport {
    /// Family name.
    pub family: &'static str,
    /// Seeds checked.
    pub seeds: u64,
    /// Seeds that passed every cross-check.
    pub passed: u64,
    /// Failures, one per failing seed.
    pub failures: Vec<Failure>,
    /// Total instructions retired across passing seeds.
    pub instructions: u64,
    /// Total loop events across passing seeds.
    pub loop_events: u64,
}

impl FamilyReport {
    /// `true` when every seed passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `seeds` consecutive seeds (from 0) of one family.
pub fn run_family(family: &Family, seeds: u64, size: u32) -> FamilyReport {
    let mut report = FamilyReport {
        family: family.name,
        seeds,
        passed: 0,
        failures: Vec::new(),
        instructions: 0,
        loop_events: 0,
    };
    for seed in 0..seeds {
        match check_program(family, seed, size) {
            Ok(c) => {
                report.passed += 1;
                report.instructions += c.instructions;
                report.loop_events += c.loop_events;
            }
            Err(f) => report.failures.push(f),
        }
    }
    report
}

/// Runs the whole registry — the fixed-seed corpus CI executes on
/// every push.
pub fn run_corpus(seeds_per_family: u64, size: u32) -> Vec<FamilyReport> {
    families()
        .iter()
        .map(|f| run_family(f, seeds_per_family, size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::family_by_name;

    #[test]
    fn failure_display_carries_a_replay_line() {
        let f = Failure {
            family: "nest".into(),
            seed: 77,
            what: "synthetic".into(),
        };
        let text = f.to_string();
        assert!(text.contains("genfuzz --replay nest:77"), "{text}");
        assert!(text.contains("synthetic"), "{text}");
    }

    #[test]
    fn check_events_rejects_malformed_streams() {
        // A lone iteration without an open execution must be rejected.
        let bad = vec![LoopEvent::IterationStart {
            loop_id: LoopId::from(loopspec_isa::Addr::new(7)),
            iter: 2,
            pos: 10,
        }];
        assert!(check_events(&bad).is_err());
        assert!(check_events(&[]).is_ok());
    }

    #[test]
    fn one_program_passes_end_to_end() {
        let f = family_by_name("trips").expect("registered");
        let c = check_program(f, 0, 1).unwrap_or_else(|e| panic!("{e}"));
        assert!(c.instructions > 0);
    }
}
