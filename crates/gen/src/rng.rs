//! Seeded program-generation RNG.
//!
//! Same xorshift64* recurrence as `loopspec-testutil`'s `Rng` — the
//! suites' seeded-determinism contract — but duplicated here because
//! that crate is a dev-dependency by policy and the family generators
//! are library code: a `(family, seed)` pair printed by a failing CI
//! run must rebuild the identical program in any later session.

/// xorshift64* — deterministic, dependency-free generator driving the
/// scenario-family and structured-fuzz program generators.
///
/// ```
/// use loopspec_gen::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next(), b.next());
/// assert!(a.below(10) < 10);
/// let v = a.range(3, 9);
/// assert!((3..9).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).wrapping_add(1))
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform-ish value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform-ish value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_as_the_testutil_contract() {
        // Golden values pin the recurrence: a seed printed by a failing
        // run must regenerate the same program forever.
        let mut r = Rng::new(42);
        let first: Vec<u64> = (0..4).map(|_| r.below(1_000_003)).collect();
        let mut again = Rng::new(42);
        let second: Vec<u64> = (0..4).map(|_| again.below(1_000_003)).collect();
        assert_eq!(first, second);
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert!(distinct.len() > 1, "stream looks degenerate: {first:?}");
    }
}
