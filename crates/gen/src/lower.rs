//! Lowering: [`AstProgram`] → executable [`Program`].
//!
//! The pass plans a [`RegAlloc`] per scope, emits an initialization
//! prelude (array contents, the function-pointer table), then walks the
//! statement tree emitting ISA code through the
//! [`ProgramBuilder`]. Control flow is emitted directly over assembler
//! labels — the canonical backward-branch loop shapes the detector
//! recognizes — with the pass keeping its own continue/break label
//! stack so `BreakIf`/`ContinueIf` work uniformly in both loop forms:
//!
//! * **Register loops.** While at least two pool registers are free, a
//!   `For` gets a register counter and bound (`li i, 0` … `addi` +
//!   closing backward branch).
//! * **Memory loops.** Deeper nests fall back to memory-resident
//!   counters — a static slot pair in the main body, stack-frame slots
//!   inside functions (so recursion stays re-entrant). The increment
//!   leads the loop head, making `ContinueIf` safe.
//!
//! Array indices are masked to the power-of-two-rounded length, and
//! `Switch`/`CallTab` selectors are normalized with a
//! `rem n; add n; rem n` chain, so any generated integer is a safe
//! index: lowered programs cannot read or write outside their declared
//! static data no matter what the generator drew.

use loopspec_asm::{AsmError, Program, ProgramBuilder};
use loopspec_isa::{AluOp, Cond, Reg};

use crate::alloc::RegAlloc;
use crate::ast::{ArrayInit, AstProgram, CondExpr, Expr, FuncDef, Rhs, Stmt, VReg};

/// Label of the `k`-th AST function in the builder's namespace.
fn func_name(k: usize) -> String {
    format!("f{k}")
}

/// Per-program lowering context shared by main and function scopes.
#[derive(Debug, Clone)]
struct Ctx {
    /// `(base, mask)` per declared array, lengths rounded to powers of
    /// two.
    arrays: Vec<(i64, i64)>,
    /// Static base of the function-pointer table (0 when empty).
    table_base: i64,
    /// Entries in the function-pointer table.
    table_len: usize,
    /// Expand [`Stmt::KernelCall`] bodies inline instead of emitting
    /// `KernelCall` instructions (see [`compile_inline_kernels`]).
    inline_kernels: bool,
}

/// One scope's lowering state: the shared context, the scope's
/// allocation, and the active continue/break label stack.
struct Lower<'c> {
    ctx: &'c Ctx,
    alloc: RegAlloc,
    loops: Vec<(loopspec_asm::LabelId, loopspec_asm::LabelId)>,
}

/// Compiles a structured program to an executable [`Program`].
///
/// # Panics
///
/// Panics on malformed ASTs — an out-of-range [`VReg`]/array/function
/// handle, a `CallTab` against an empty table, an unregistered
/// [`Stmt::KernelCall`] id, or more than four call arguments.
/// Generators are expected to uphold these invariants; the panic
/// message names the violation.
pub fn compile(ast: &AstProgram) -> Result<Program, AsmError> {
    compile_with(ast, false)
}

/// [`compile`], but every [`Stmt::KernelCall`] is expanded into the
/// registered body's instructions in place instead of a single
/// `KernelCall` — the architectural reference for differential testing
/// of the native kernel path. The expansion clobbers exactly the
/// registers the kernel ABI reserves, so the two compilations reach
/// the same registers and memory (events, pcs and retirement counts
/// differ, since the inline body occupies real code addresses).
pub fn compile_inline_kernels(ast: &AstProgram) -> Result<Program, AsmError> {
    compile_with(ast, true)
}

fn compile_with(ast: &AstProgram, inline_kernels: bool) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(ast.rng_seed);

    let mut arrays = Vec::with_capacity(ast.arrays.len());
    for a in &ast.arrays {
        let len = a.len.max(1).next_power_of_two() as i64;
        arrays.push((b.alloc_static(len), len - 1));
    }
    let table_base = if ast.table.is_empty() {
        0
    } else {
        b.alloc_static(ast.table.len() as i64)
    };
    let ctx = Ctx {
        arrays,
        table_base,
        table_len: ast.table.len(),
        inline_kernels,
    };

    for (k, f) in ast.funcs.iter().enumerate() {
        let body = f.clone();
        let fctx = ctx.clone();
        b.define_func(&func_name(k), move |b| lower_func(b, &fctx, &body));
    }

    let alloc = RegAlloc::plan_main(&mut b, ast.vregs);
    let mut lo = Lower {
        ctx: &ctx,
        alloc,
        loops: Vec::new(),
    };
    lo.prelude(&mut b, ast);
    lo.block(&mut b, &ast.body);
    lo.alloc.release(&mut b);
    b.finish()
}

/// Lowers one function body inside the builder's prologue/epilogue.
fn lower_func(b: &mut ProgramBuilder, ctx: &Ctx, f: &FuncDef) {
    let loop_words = 2 * count_fors(&f.body) as i32;
    let (alloc, frame) = RegAlloc::plan_func(b, f.vregs, loop_words);
    if frame > 0 {
        b.addi(Reg::SP, Reg::SP, -frame);
    }
    let mut lo = Lower {
        ctx,
        alloc,
        loops: Vec::new(),
    };
    lo.block(b, &f.body);
    if frame > 0 {
        b.addi(Reg::SP, Reg::SP, frame);
    }
    lo.alloc.release(b);
}

/// Splices a registered kernel body into the instruction stream in
/// place of a `KernelCall`: each body-local branch target becomes an
/// assembler label, every other instruction is emitted verbatim. The
/// body only touches the kernel ABI's clobber set, so the surrounding
/// lowered code sees exactly the register effects the native call
/// would have.
///
/// # Panics
///
/// Panics when `id` is not in the kernel registry (mirroring the
/// `UnknownKernel` fault the native path would raise).
fn inline_kernel(b: &mut ProgramBuilder, id: u32) {
    let def = loopspec_isa::kernel::lookup(id)
        .unwrap_or_else(|| panic!("KernelCall names unregistered kernel id {id}"));
    let body = def.body();
    // One label per body pc plus the completion point (branch targets
    // may be `body.len()`, the kernel's exit).
    let labels: Vec<loopspec_asm::LabelId> =
        (0..=body.len()).map(|_| b.asm().new_label()).collect();
    for (i, instr) in body.iter().enumerate() {
        b.asm().bind(labels[i]).expect("fresh label");
        match *instr {
            loopspec_isa::Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                b.asm()
                    .branch(cond, ra, rb, labels[target.index() as usize]);
            }
            other => {
                b.emit(other);
            }
        }
    }
    b.asm().bind(labels[body.len()]).expect("fresh label");
}

/// Counts `For` nodes (recursively) to pre-size a function's
/// loop-counter stack region; register-form loops simply leave their
/// reservation unused.
fn count_fors(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Seq(inner) => count_fors(inner),
            Stmt::For { body, .. } => 1 + count_fors(body),
            Stmt::While { body, .. } => count_fors(body),
            Stmt::If { then_b, else_b, .. } => count_fors(then_b) + count_fors(else_b),
            Stmt::Switch { arms, .. } => arms.iter().map(|a| count_fors(a)).sum(),
            _ => 0,
        })
        .sum()
}

impl Lower<'_> {
    fn block(&mut self, b: &mut ProgramBuilder, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(b, s);
        }
    }

    fn stmt(&mut self, b: &mut ProgramBuilder, s: &Stmt) {
        match s {
            Stmt::Seq(inner) => self.block(b, inner),
            Stmt::Work(n) => b.work(*n),
            Stmt::FWork(n) => b.fwork(*n),
            Stmt::Let(v, e) => {
                let d = self.alloc.dest(*v);
                self.eval(b, e, d);
                self.alloc.commit(b, *v);
            }
            Stmt::StoreArr(a, idx, val) => {
                let (base, mask) = self.ctx.arrays[a.0 as usize];
                let ri = self.alloc.read(b, *idx, 0);
                let s0 = self.alloc.scratch(0);
                b.op_imm(AluOp::And, s0, ri, mask as i32);
                let rv = self.alloc.read(b, *val, 1);
                b.store_idx(rv, base, s0);
            }
            Stmt::StorePtr { ptr, offset, val } => {
                let rp = self.alloc.read(b, *ptr, 0);
                let rv = self.alloc.read(b, *val, 1);
                b.store_at(rv, rp, *offset);
            }
            Stmt::For { trips, body } => self.lower_for(b, trips, body),
            Stmt::While { cond, body } => self.lower_while(b, cond, body),
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => self.lower_if(b, cond, then_b, else_b),
            Stmt::BreakIf(c) => {
                if let Some(&(_, brk)) = self.loops.last() {
                    let (cond, ra, rb) = self.cond(b, c);
                    b.asm().branch(cond, ra, rb, brk);
                }
            }
            Stmt::ContinueIf(c) => {
                if let Some(&(cont, _)) = self.loops.last() {
                    let (cond, ra, rb) = self.cond(b, c);
                    b.asm().branch(cond, ra, rb, cont);
                }
            }
            Stmt::Switch { sel, arms } => {
                assert!(!arms.is_empty(), "Switch with no arms");
                let s0 = self.normalized_sel(b, *sel, arms.len());
                b.switch_table(s0, arms.len(), |b, k| self.block(b, &arms[k]));
            }
            Stmt::Call { func, args } => {
                self.eval_args(b, args);
                b.call_func(&func_name(func.0 as usize));
            }
            Stmt::CallTab { sel, args } => {
                assert!(self.ctx.table_len > 0, "CallTab against an empty table");
                self.eval_args(b, args);
                let s0 = self.normalized_sel(b, *sel, self.ctx.table_len);
                b.load_idx(s0, self.ctx.table_base, s0);
                b.call_reg(s0);
            }
            Stmt::SetRet(e) => {
                let s0 = self.alloc.scratch(0);
                self.eval(b, e, s0);
                b.set_ret(s0);
            }
            Stmt::KernelCall { id, args } => {
                self.eval_args(b, args);
                if self.ctx.inline_kernels {
                    inline_kernel(b, *id);
                } else {
                    b.kernel_call(*id);
                }
            }
        }
    }

    /// Evaluates `e` into `dest`. Reads may pass through the scratch
    /// registers, but the result always lands in `dest` last, so
    /// `dest == scratch 0` (the spilled-destination convention) is
    /// safe.
    fn eval(&mut self, b: &mut ProgramBuilder, e: &Expr, dest: Reg) {
        match e {
            Expr::Const(c) => b.li(dest, *c),
            Expr::Copy(v) => {
                let r = self.alloc.read(b, *v, 1);
                if r != dest {
                    b.mov(dest, r);
                }
            }
            Expr::RngBelow(n) => b.rng_below(dest, *n),
            Expr::Arg(k) => b.mov(dest, ProgramBuilder::ARG_REGS[*k as usize]),
            Expr::RetVal => b.mov(dest, ProgramBuilder::RET_REG),
            Expr::ArrayBase(a) => {
                let (base, _) = self.ctx.arrays[a.0 as usize];
                b.li(dest, base);
            }
            Expr::Bin(op, a, rhs) => match rhs {
                Rhs::Imm(i) => {
                    let ra = self.alloc.read(b, *a, 0);
                    b.op_imm(*op, dest, ra, *i);
                }
                Rhs::Reg(c) => {
                    let ra = self.alloc.read(b, *a, 0);
                    let rc = self.alloc.read(b, *c, 1);
                    b.op(*op, dest, ra, rc);
                }
            },
            Expr::LoadArr(a, idx) => {
                let (base, mask) = self.ctx.arrays[a.0 as usize];
                let ri = self.alloc.read(b, *idx, 1);
                let s1 = self.alloc.scratch(1);
                b.op_imm(AluOp::And, s1, ri, mask as i32);
                b.load_idx(dest, base, s1);
            }
            Expr::LoadPtr(p, off) => {
                let rp = self.alloc.read(b, *p, 1);
                b.load_at(dest, rp, *off);
            }
        }
    }

    /// Evaluates up to four call arguments into the argument registers.
    fn eval_args(&mut self, b: &mut ProgramBuilder, args: &[Expr]) {
        assert!(args.len() <= 4, "more than four call arguments");
        for (k, a) in args.iter().enumerate() {
            let s0 = self.alloc.scratch(0);
            self.eval(b, a, s0);
            b.set_arg(k, s0);
        }
    }

    /// Materializes a compare's operands.
    fn cond(&mut self, b: &mut ProgramBuilder, c: &CondExpr) -> (Cond, Reg, Reg) {
        let ra = self.alloc.read(b, c.lhs, 0);
        let rb = match c.rhs {
            Rhs::Imm(0) => Reg::R0,
            Rhs::Imm(i) => {
                let s1 = self.alloc.scratch(1);
                b.li(s1, i as i64);
                s1
            }
            Rhs::Reg(v) => self.alloc.read(b, v, 1),
        };
        (c.cond, ra, rb)
    }

    /// Folds an arbitrary selector into `0..n` (in scratch 0):
    /// `rem n; add n; rem n` is total for any signed input.
    fn normalized_sel(&mut self, b: &mut ProgramBuilder, sel: VReg, n: usize) -> Reg {
        let rs = self.alloc.read(b, sel, 0);
        let s0 = self.alloc.scratch(0);
        let n = n as i32;
        b.op_imm(AluOp::Rem, s0, rs, n);
        b.op_imm(AluOp::Add, s0, s0, n);
        b.op_imm(AluOp::Rem, s0, s0, n);
        s0
    }

    fn lower_for(&mut self, b: &mut ProgramBuilder, trips: &Expr, body: &[Stmt]) {
        if b.free_regs() >= 2 {
            // Register form: canonical counted-loop shape.
            let n = b.alloc_reg();
            self.eval(b, trips, n);
            let i = b.alloc_reg();
            b.li(i, 0);
            let top = b.asm().new_label();
            let cont = b.asm().new_label();
            let exit = b.asm().new_label();
            b.asm().branch(Cond::GeS, i, n, exit);
            b.asm().bind(top).expect("fresh label");
            self.loops.push((cont, exit));
            self.block(b, body);
            self.loops.pop();
            b.asm().bind(cont).expect("fresh label");
            b.addi(i, i, 1);
            b.asm().branch(Cond::LtS, i, n, top);
            b.asm().bind(exit).expect("fresh label");
            b.free_reg(i);
            b.free_reg(n);
        } else {
            // Memory form: counter and bound in slots, increment at the
            // loop head so `continue` re-enters through the increment.
            let (slot_i, slot_n) = self.alloc.loop_slots(b);
            let s0 = self.alloc.scratch(0);
            let s1 = self.alloc.scratch(1);
            self.eval(b, trips, s0);
            slot_n.store(b, s0);
            b.li(s0, -1);
            slot_i.store(b, s0);
            let top = b.asm().label_here();
            let exit = b.asm().new_label();
            slot_i.load(b, s0);
            b.addi(s0, s0, 1);
            slot_i.store(b, s0);
            slot_n.load(b, s1);
            b.asm().branch(Cond::GeS, s0, s1, exit);
            self.loops.push((top, exit));
            self.block(b, body);
            self.loops.pop();
            b.asm().jump(top);
            b.asm().bind(exit).expect("fresh label");
        }
    }

    fn lower_while(&mut self, b: &mut ProgramBuilder, cond: &CondExpr, body: &[Stmt]) {
        let top = b.asm().label_here();
        let exit = b.asm().new_label();
        let (c, ra, rb) = self.cond(b, cond);
        b.asm().branch(c.negate(), ra, rb, exit);
        self.loops.push((top, exit));
        self.block(b, body);
        self.loops.pop();
        b.asm().jump(top);
        b.asm().bind(exit).expect("fresh label");
    }

    fn lower_if(
        &mut self,
        b: &mut ProgramBuilder,
        cond: &CondExpr,
        then_b: &[Stmt],
        else_b: &[Stmt],
    ) {
        let (c, ra, rb) = self.cond(b, cond);
        let else_l = b.asm().new_label();
        let end = b.asm().new_label();
        b.asm().branch(c.negate(), ra, rb, else_l);
        self.block(b, then_b);
        b.asm().jump(end);
        b.asm().bind(else_l).expect("fresh label");
        self.block(b, else_b);
        b.asm().bind(end).expect("fresh label");
    }

    /// Emits the initialization prelude: array contents and the
    /// function-pointer table.
    fn prelude(&mut self, b: &mut ProgramBuilder, ast: &AstProgram) {
        let s0 = self.alloc.scratch(0);
        let s1 = self.alloc.scratch(1);
        for (a, (base, mask)) in ast.arrays.iter().zip(self.ctx.arrays.iter()) {
            match &a.init {
                ArrayInit::Zero => {}
                ArrayInit::Values(vs) => {
                    for (i, v) in vs.iter().enumerate() {
                        if *v != 0 {
                            b.li(s0, *v);
                            b.store_static(s0, base + i as i64);
                        }
                    }
                }
                ArrayInit::PtrChain { mul, add } => {
                    // a[i] = &a[(i*mul + add) & mask] — absolute word
                    // addresses, so LoadPtr(p, 0) follows the chain.
                    let len = mask + 1;
                    b.li(s0, 0);
                    let top = b.asm().label_here();
                    b.op_imm(AluOp::Mul, s1, s0, *mul as i32);
                    b.op_imm(AluOp::Add, s1, s1, *add as i32);
                    b.op_imm(AluOp::And, s1, s1, *mask as i32);
                    b.op_imm(AluOp::Add, s1, s1, *base as i32);
                    b.store_idx(s1, *base, s0);
                    b.addi(s0, s0, 1);
                    b.li(s1, len);
                    b.asm().branch(Cond::LtS, s0, s1, top);
                }
            }
        }
        for (k, f) in ast.table.iter().enumerate() {
            b.func_addr(s0, &func_name(f.0 as usize));
            b.store_static(s0, self.ctx.table_base + k as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArrayDecl, FuncId};
    use crate::{arb_program, ArbConfig, Rng};
    use loopspec_cpu::{Cpu, NullTracer, RunLimits};

    fn run(p: &Program) -> loopspec_cpu::RunSummary {
        Cpu::new()
            .run(p, &mut NullTracer, RunLimits::with_fuel(2_000_000))
            .expect("generated program executes")
    }

    #[test]
    fn trivial_program_compiles_and_halts() {
        let mut ast = AstProgram::new(1);
        let v = ast.vreg();
        ast.body = vec![
            Stmt::Let(v, Expr::Const(3)),
            Stmt::For {
                trips: Expr::Copy(v),
                body: vec![Stmt::Work(2)],
            },
        ];
        let p = compile(&ast).unwrap();
        assert!(run(&p).halted());
    }

    #[test]
    fn recursion_with_stack_spills_halts() {
        // f(n): if n > 0 { f(n - 1) twice-ish }, with enough vregs to
        // force stack spilling inside the function.
        let mut ast = AstProgram::new(2);
        let vr: Vec<VReg> = (0..12).map(VReg).collect();
        let mut body = vec![Stmt::Let(vr[0], Expr::Arg(0))];
        for k in 1..12 {
            body.push(Stmt::Let(
                vr[k],
                Expr::Bin(AluOp::Add, vr[k - 1], Rhs::Imm(1)),
            ));
        }
        body.push(Stmt::If {
            cond: CondExpr {
                cond: Cond::GtS,
                lhs: vr[0],
                rhs: Rhs::Imm(0),
            },
            then_b: vec![Stmt::Call {
                func: FuncId(0),
                args: vec![Expr::Bin(AluOp::Add, vr[0], Rhs::Imm(-1))],
            }],
            else_b: vec![Stmt::Work(1)],
        });
        // The last vreg must still hold first + 11 after the recursive
        // call returns (stack slots survived the callee).
        body.push(Stmt::SetRet(Expr::Copy(vr[11])));
        ast.funcs.push(FuncDef { vregs: 12, body });
        let res = ast.vreg();
        ast.body = vec![
            Stmt::Call {
                func: FuncId(0),
                args: vec![Expr::Const(5)],
            },
            Stmt::Let(res, Expr::RetVal),
            Stmt::For {
                trips: Expr::Bin(AluOp::And, res, Rhs::Imm(3)),
                body: vec![Stmt::Work(1)],
            },
        ];
        let p = compile(&ast).unwrap();
        assert!(run(&p).halted());
    }

    #[test]
    fn deep_nesting_falls_back_to_memory_loops() {
        // Nest 8 counted loops: the inner ones must switch to
        // memory-resident counters without the pool panicking.
        let mut ast = AstProgram::new(3);
        let mut body = vec![Stmt::Work(1)];
        for _ in 0..8 {
            body = vec![Stmt::For {
                trips: Expr::Const(2),
                body,
            }];
        }
        ast.body = body;
        let p = compile(&ast).unwrap();
        let s = run(&p);
        assert!(s.halted());
        // 2^8 innermost executions of Work(1) prove every level looped.
        assert!(s.retired > 256, "retired only {}", s.retired);
    }

    #[test]
    fn arbitrary_programs_compile_and_halt() {
        for seed in 0..24 {
            let ast = arb_program(&mut Rng::new(seed), ArbConfig::default());
            let p = compile(&ast).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert!(run(&p).halted(), "seed {seed} did not halt");
        }
    }

    #[test]
    fn ptr_chain_init_builds_valid_pointers() {
        let mut ast = AstProgram::new(4);
        let a = ast.array(8, ArrayInit::PtrChain { mul: 3, add: 1 });
        // Walk the chain 20 steps from element 0.
        let p0 = ast.vreg();
        let i = ast.vreg();
        ast.body = vec![
            Stmt::Let(i, Expr::Const(0)),
            Stmt::Let(p0, Expr::LoadArr(a, i)),
            Stmt::For {
                trips: Expr::Const(20),
                body: vec![Stmt::Let(p0, Expr::LoadPtr(p0, 0))],
            },
        ];
        let ArrayDecl { .. } = ast.arrays[0].clone();
        let p = compile(&ast).unwrap();
        assert!(run(&p).halted());
    }
}
