//! The structured-program AST.
//!
//! A portable statement tree over *virtual registers*: loops,
//! conditionals, calls (direct, recursive and through function-pointer
//! tables), and memory operations on declared static arrays or raw
//! pointers. The [allocator](crate::alloc) maps virtual registers to
//! the builder's physical pools (spilling the overflow), and the
//! [lowering pass](crate::compile) turns the tree into an executable
//! [`Program`](loopspec_asm::Program).
//!
//! The tree absorbs the ad-hoc `Stmt` generator that used to live
//! privately in `tests/prop_programs.rs` and extends it with the nodes
//! that suite could not express: data-dependent trip counts, calls and
//! recursion, interpreter-style dispatch, and pointer chasing.

use loopspec_isa::{AluOp, Cond};

use crate::rng::Rng;

/// A virtual register. Each function (and the main body) numbers its
/// own dense namespace from zero; [`AstProgram::vregs`] /
/// [`FuncDef::vregs`] give the counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VReg(pub u32);

/// Handle of a static array declared in [`AstProgram::arrays`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayId(pub u32);

/// Handle of a function defined in [`AstProgram::funcs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncId(pub u32);

/// Register-or-immediate right-hand side of compares and ALU ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rhs {
    /// Immediate operand.
    Imm(i32),
    /// Virtual-register operand.
    Reg(VReg),
}

/// A value-producing expression (the right-hand side of [`Stmt::Let`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Constant.
    Const(i64),
    /// Copy of another virtual register.
    Copy(VReg),
    /// Guest-side RNG draw in `0..n` (advances the global LCG state).
    RngBelow(i32),
    /// Function argument `k` (valid only as one of the first statements
    /// of a function body, before any call clobbers the argument regs).
    Arg(u8),
    /// The return value of the immediately preceding [`Stmt::Call`] /
    /// [`Stmt::CallTab`].
    RetVal,
    /// Base address of a static array (for pointer arithmetic).
    ArrayBase(ArrayId),
    /// Binary ALU operation.
    Bin(AluOp, VReg, Rhs),
    /// `array[index & (len-1)]` — masked element load (array lengths
    /// are rounded to powers of two by the lowering pass, so any index
    /// value is safe).
    LoadArr(ArrayId, VReg),
    /// `mem[ptr + offset]` — raw pointer load. The generator must
    /// guarantee pointer validity (see the `chase` family).
    LoadPtr(VReg, i32),
}

/// A compare of a virtual register against a [`Rhs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondExpr {
    /// Comparison condition.
    pub cond: Cond,
    /// Left-hand register.
    pub lhs: VReg,
    /// Right-hand operand.
    pub rhs: Rhs,
}

/// A structured statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A transparent statement sequence — flattened during lowering,
    /// carries no control flow of its own. Generator sugar for
    /// "set up a vreg, then use it" pairs that form one logical node.
    Seq(Vec<Stmt>),
    /// `n` filler integer ALU instructions.
    Work(u32),
    /// `n` filler floating-point instructions.
    FWork(u32),
    /// `vreg <- expr`.
    Let(VReg, Expr),
    /// `array[index & (len-1)] <- val`.
    StoreArr(ArrayId, VReg, VReg),
    /// `mem[ptr + offset] <- val` — raw pointer store.
    StorePtr {
        /// Pointer register.
        ptr: VReg,
        /// Word offset.
        offset: i32,
        /// Value register.
        val: VReg,
    },
    /// Counted loop running `max(trips, 0)` iterations.
    For {
        /// Trip-count expression, evaluated once on entry.
        trips: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Head-tested loop running while the condition holds. The body is
    /// responsible for making progress.
    While {
        /// Continue condition, re-evaluated each iteration.
        cond: CondExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Two-sided conditional.
    If {
        /// Branch condition.
        cond: CondExpr,
        /// Then-branch statements.
        then_b: Vec<Stmt>,
        /// Else-branch statements (may be empty).
        else_b: Vec<Stmt>,
    },
    /// Exits the innermost loop when the condition holds (no-op outside
    /// loops — the lowering pass drops it there).
    BreakIf(CondExpr),
    /// Re-tests the innermost loop when the condition holds (no-op
    /// outside loops).
    ContinueIf(CondExpr),
    /// N-way dispatch over `sel` (normalized into `0..arms.len()` by
    /// the lowering pass) through an indirect jump table.
    Switch {
        /// Selector register.
        sel: VReg,
        /// Dispatch arms.
        arms: Vec<Vec<Stmt>>,
    },
    /// Direct call with up to four argument expressions.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument expressions (evaluated left to right).
        args: Vec<Expr>,
    },
    /// Indirect call through the program's function-pointer table
    /// ([`AstProgram::table`]); `sel` is normalized into range.
    CallTab {
        /// Table-index register.
        sel: VReg,
        /// Argument expressions (evaluated left to right).
        args: Vec<Expr>,
    },
    /// Sets the function return value (function bodies only; returning
    /// happens by falling off the end of the body).
    SetRet(Expr),
    /// Call of a registered native kernel (see [`loopspec_isa::kernel`])
    /// with up to four argument expressions. Follows the [`Stmt::Call`]
    /// convention exactly — arguments in the argument registers, the
    /// result readable through [`Expr::RetVal`] — so the two lowering
    /// modes ([`crate::compile`] emits one `KernelCall`,
    /// [`crate::compile_inline_kernels`] splices the registered body
    /// in place) reach the same architectural result.
    KernelCall {
        /// Registered kernel id.
        id: u32,
        /// Argument expressions (evaluated left to right).
        args: Vec<Expr>,
    },
}

/// How a static array is initialized before `main` runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayInit {
    /// All zeros (static memory starts zeroed; no code emitted).
    Zero,
    /// Explicit word values (length gives the array length before
    /// power-of-two rounding; the padding is zero).
    Values(Vec<i64>),
    /// `a[i] = &a[(i * mul + add) & (len-1)]` — a pointer chain through
    /// the array's own cells, for the pointer-chasing family. With odd
    /// `mul` the chain is a permutation of the cells.
    PtrChain {
        /// Index multiplier (use an odd value for a full cycle).
        mul: u32,
        /// Index increment.
        add: u32,
    },
}

/// A static array declaration. The lowering pass rounds `len` up to a
/// power of two and masks every index, so no generated index can leave
/// the array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Requested length in words (rounded up to a power of two).
    pub len: u32,
    /// Initial contents.
    pub init: ArrayInit,
}

/// A function definition. Argument values arrive through
/// [`Expr::Arg`]; results leave through [`Stmt::SetRet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Number of virtual registers the body uses.
    pub vregs: u32,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole structured program: static data, functions, a
/// function-pointer table and the main body.
#[derive(Debug, Clone, PartialEq)]
pub struct AstProgram {
    /// Seed of the guest-side LCG (`ProgramBuilder::with_seed`).
    pub rng_seed: i64,
    /// Static arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Function definitions (`FuncId` indexes this).
    pub funcs: Vec<FuncDef>,
    /// Function-pointer table for [`Stmt::CallTab`] (may be empty).
    pub table: Vec<FuncId>,
    /// Number of virtual registers the main body uses.
    pub vregs: u32,
    /// Main-body statements.
    pub body: Vec<Stmt>,
}

impl AstProgram {
    /// An empty program with the given guest RNG seed.
    pub fn new(rng_seed: i64) -> Self {
        AstProgram {
            rng_seed,
            arrays: Vec::new(),
            funcs: Vec::new(),
            table: Vec::new(),
            vregs: 0,
            body: Vec::new(),
        }
    }

    /// Allocates a fresh main-body virtual register.
    pub fn vreg(&mut self) -> VReg {
        let v = VReg(self.vregs);
        self.vregs += 1;
        v
    }

    /// Declares a static array, returning its handle.
    pub fn array(&mut self, len: u32, init: ArrayInit) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl { len, init });
        id
    }

    /// Defines a function, returning its handle.
    pub fn func(&mut self, vregs: u32, body: Vec<Stmt>) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncDef { vregs, body });
        id
    }

    /// Total statement count across main and function bodies (a size
    /// proxy for generator tests).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Seq(inner) => count(inner),
                    Stmt::For { body, .. } | Stmt::While { body, .. } => 1 + count(body),
                    Stmt::If { then_b, else_b, .. } => 1 + count(then_b) + count(else_b),
                    Stmt::Switch { arms, .. } => 1 + arms.iter().map(|a| count(a)).sum::<usize>(),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body) + self.funcs.iter().map(|f| count(&f.body)).sum::<usize>()
    }
}

// ----------------------------------------------------------------
// Structured fuzzing: arbitrary terminating programs
// ----------------------------------------------------------------

/// Shape parameters for [`arb_program`].
#[derive(Debug, Clone, Copy)]
pub struct ArbConfig {
    /// Maximum loop/branch nesting depth.
    pub max_depth: u32,
    /// Top-level statement count is drawn from `1..=max_top`.
    pub max_top: u64,
    /// Allow call/dispatch/array nodes (off reproduces the historical
    /// `prop_programs` shape distribution exactly).
    pub extended: bool,
}

impl Default for ArbConfig {
    fn default() -> Self {
        ArbConfig {
            max_depth: 3,
            max_top: 4,
            extended: true,
        }
    }
}

/// Generates an arbitrary *terminating* structured program — the
/// `mixed` scenario family and the engine of the property suite. Same
/// seed, same program, forever.
pub fn arb_program(r: &mut Rng, cfg: ArbConfig) -> AstProgram {
    let mut p = AstProgram::new(r.below(1_000_000) as i64);
    let mut cx = Arb { cfg, helper: None };
    let top = r.range(1, cfg.max_top + 1);
    let mut body = Vec::new();
    for _ in 0..top {
        let s = cx.stmt(&mut p, r, 0, false);
        body.push(s);
    }
    p.body = body;
    p
}

struct Arb {
    cfg: ArbConfig,
    /// Lazily created leaf function for call nodes.
    helper: Option<FuncId>,
}

impl Arb {
    fn helper(&mut self, p: &mut AstProgram) -> FuncId {
        if let Some(f) = self.helper {
            return f;
        }
        // fn helper(n): loop n & 3 times over some work, return n + 1.
        let v = VReg(0);
        let t = VReg(1);
        let body = vec![
            Stmt::Let(v, Expr::Arg(0)),
            Stmt::Let(t, Expr::Bin(AluOp::And, v, Rhs::Imm(3))),
            Stmt::For {
                trips: Expr::Copy(t),
                body: vec![Stmt::Work(4)],
            },
            Stmt::SetRet(Expr::Bin(AluOp::Add, v, Rhs::Imm(1))),
        ];
        let f = p.func(2, body);
        self.helper = Some(f);
        f
    }

    fn block(&mut self, p: &mut AstProgram, r: &mut Rng, depth: u32, in_loop: bool) -> Vec<Stmt> {
        (0..r.range(1, 3))
            .map(|_| self.stmt(p, r, depth, in_loop))
            .collect()
    }

    /// One statement — the historical `arb_stmt` distribution, with the
    /// extended nodes mixed in at low probability when enabled.
    fn stmt(&mut self, p: &mut AstProgram, r: &mut Rng, depth: u32, in_loop: bool) -> Stmt {
        let leafy = depth >= self.cfg.max_depth || r.below(2) == 0;
        if leafy {
            if self.cfg.extended && r.below(8) == 0 {
                return self.leaf_extended(p, r, in_loop);
            }
            if r.below(4) == 0 {
                return self.break_if(p, r, in_loop);
            }
            return Stmt::Work(r.range(1, 12) as u32);
        }
        if self.cfg.extended && r.below(8) == 0 {
            return self.branchy_extended(p, r, depth, in_loop);
        }
        match r.below(4) {
            0 => Stmt::For {
                trips: Expr::Const(r.below(5) as i64),
                body: self.block(p, r, depth + 1, true),
            },
            1 => {
                // Variable trip count in 1..=n, drawn from the guest RNG.
                let v = p.vreg();
                let n = r.range(1, 5) as i32;
                Stmt::For {
                    trips: Expr::Copy(v),
                    body: self.block(p, r, depth + 1, true),
                }
                .prefixed(vec![
                    Stmt::Let(v, Expr::RngBelow(n)),
                    Stmt::Let(v, Expr::Bin(AluOp::Add, v, Rhs::Imm(1))),
                ])
            }
            2 => {
                // Count-down while loop; the decrement leads the body so
                // every iteration makes progress.
                let c = p.vreg();
                let n = r.range(1, 5) as i64;
                let mut body = vec![Stmt::Let(c, Expr::Bin(AluOp::Add, c, Rhs::Imm(-1)))];
                body.extend(self.block(p, r, depth + 1, true));
                Stmt::While {
                    cond: CondExpr {
                        cond: Cond::GtS,
                        lhs: c,
                        rhs: Rhs::Imm(0),
                    },
                    body,
                }
                .prefixed(vec![Stmt::Let(c, Expr::Const(n))])
            }
            _ => {
                let v = p.vreg();
                let then_b = self.block(p, r, depth + 1, in_loop);
                let else_b = self.block(p, r, depth + 1, in_loop);
                Stmt::If {
                    cond: CondExpr {
                        cond: Cond::Eq,
                        lhs: v,
                        rhs: Rhs::Imm(0),
                    },
                    then_b,
                    else_b,
                }
                .prefixed(vec![Stmt::Let(v, Expr::RngBelow(2))])
            }
        }
    }

    fn break_if(&mut self, p: &mut AstProgram, _r: &mut Rng, in_loop: bool) -> Stmt {
        if !in_loop {
            return Stmt::Work(1);
        }
        let v = p.vreg();
        Stmt::BreakIf(CondExpr {
            cond: Cond::Eq,
            lhs: v,
            rhs: Rhs::Imm(0),
        })
        .prefixed(vec![Stmt::Let(v, Expr::RngBelow(8))])
    }

    /// Extended leaves: FP work, a call, or an array touch.
    fn leaf_extended(&mut self, p: &mut AstProgram, r: &mut Rng, in_loop: bool) -> Stmt {
        match r.below(3) {
            0 => Stmt::FWork(r.range(1, 6) as u32),
            1 => {
                let f = self.helper(p);
                let v = p.vreg();
                Stmt::Call {
                    func: f,
                    args: vec![Expr::Copy(v)],
                }
                .prefixed(vec![Stmt::Let(v, Expr::RngBelow(4))])
            }
            _ => {
                if in_loop && r.below(2) == 0 {
                    return self.break_if(p, r, in_loop);
                }
                let a = self.array(p);
                let i = p.vreg();
                let v = p.vreg();
                Stmt::StoreArr(a, i, v).prefixed(vec![
                    Stmt::Let(i, Expr::RngBelow(8)),
                    Stmt::Let(v, Expr::RngBelow(100)),
                ])
            }
        }
    }

    /// Extended branchy nodes: dispatch over guest-RNG opcodes, or a
    /// data-dependent trip count read back from an array.
    fn branchy_extended(
        &mut self,
        p: &mut AstProgram,
        r: &mut Rng,
        depth: u32,
        in_loop: bool,
    ) -> Stmt {
        if r.below(2) == 0 {
            let sel = p.vreg();
            let n = r.range(2, 5) as usize;
            let arms = (0..n)
                .map(|_| self.block(p, r, depth + 1, in_loop))
                .collect();
            Stmt::Switch { sel, arms }.prefixed(vec![Stmt::Let(sel, Expr::RngBelow(n as i32))])
        } else {
            let a = self.array(p);
            let i = p.vreg();
            let t = p.vreg();
            Stmt::For {
                trips: Expr::Copy(t),
                body: self.block(p, r, depth + 1, true),
            }
            .prefixed(vec![
                Stmt::Let(i, Expr::RngBelow(8)),
                Stmt::Let(t, Expr::LoadArr(a, i)),
                Stmt::Let(t, Expr::Bin(AluOp::And, t, Rhs::Imm(3))),
            ])
        }
    }

    fn array(&mut self, p: &mut AstProgram) -> ArrayId {
        if p.arrays.is_empty() {
            let init = (0..8).map(|i| (i * 3 + 1) % 5).collect();
            return p.array(8, ArrayInit::Values(init));
        }
        ArrayId(0)
    }
}

impl Stmt {
    /// Wraps `self` behind set-up statements that run unconditionally —
    /// generator sugar turning "let v = …; use v" pairs into one node.
    fn prefixed(self, mut setup: Vec<Stmt>) -> Stmt {
        setup.push(self);
        Stmt::Seq(setup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arb_is_deterministic() {
        let a = arb_program(&mut Rng::new(9), ArbConfig::default());
        let b = arb_program(&mut Rng::new(9), ArbConfig::default());
        assert_eq!(a, b);
        let c = arb_program(&mut Rng::new(10), ArbConfig::default());
        assert_ne!(a, c, "different seeds should differ (typically)");
    }

    #[test]
    fn arb_respects_depth_cap() {
        fn depth(stmts: &[Stmt]) -> u32 {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Seq(inner) => depth(inner),
                    Stmt::For { body, .. } | Stmt::While { body, .. } => 1 + depth(body),
                    Stmt::If { then_b, else_b, .. } => 1 + depth(then_b).max(depth(else_b)),
                    Stmt::Switch { arms, .. } => {
                        1 + arms.iter().map(|a| depth(a)).max().unwrap_or(0)
                    }
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        for seed in 0..32 {
            let p = arb_program(&mut Rng::new(seed), ArbConfig::default());
            assert!(depth(&p.body) <= 4, "seed {seed} exceeded the depth cap");
        }
    }
}
