//! A simple register allocator over the builder's physical pools.
//!
//! Every virtual register of a function (or of the main body) gets a
//! *location* for its whole scope: a physical register from the
//! builder's active pool, or — once the pool budget is spent — a spill
//! slot. Spill slots live in static memory for the main body and in
//! the function's own stack frame for function bodies (so recursive
//! activations do not clobber each other). Two pool registers are
//! reserved as scratch for spill traffic and address arithmetic, and a
//! fixed headroom of pool registers is left free for the lowering
//! pass's register-resident loop counters.

use loopspec_asm::ProgramBuilder;
use loopspec_isa::Reg;

use crate::ast::VReg;

/// Pool registers the allocator leaves free for loop counters; when
/// they run out too, the lowering pass switches to memory-resident
/// counters, so deeper nests cost memory traffic instead of failing.
const LOOP_HEADROOM: usize = 4;

/// A spill-slot address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Absolute static-memory word address (main body).
    Static(i64),
    /// Stack-frame word offset from `SP` (function bodies).
    Stack(i32),
}

impl Slot {
    /// Emits `dest <- mem[slot]`.
    pub fn load(self, b: &mut ProgramBuilder, dest: Reg) {
        match self {
            Slot::Static(addr) => b.load_static(dest, addr),
            Slot::Stack(off) => b.load_at(dest, Reg::SP, off),
        }
    }

    /// Emits `mem[slot] <- src`.
    pub fn store(self, b: &mut ProgramBuilder, src: Reg) {
        match self {
            Slot::Static(addr) => b.store_static(src, addr),
            Slot::Stack(off) => b.store_at(src, Reg::SP, off),
        }
    }
}

/// Where a virtual register lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A pool register for the whole scope.
    Reg(Reg),
    /// A spill slot; reads/writes go through the scratch registers.
    Spill(Slot),
}

#[derive(Debug)]
enum Frame {
    /// Spills and loop counters come from `alloc_static`.
    Static,
    /// Spills and loop counters come from a pre-reserved stack region;
    /// `next` bumps toward `limit`.
    Stack { next: i32, limit: i32 },
}

/// The per-scope allocation: virtual-register locations, the two
/// scratch registers, and the spill frame.
#[derive(Debug)]
pub struct RegAlloc {
    locs: Vec<Loc>,
    scratch: [Reg; 2],
    homes: Vec<Reg>,
    frame: Frame,
}

impl RegAlloc {
    /// Plans the main body: scratches and register homes come from the
    /// main pool, spills from static memory.
    pub fn plan_main(b: &mut ProgramBuilder, vregs: u32) -> RegAlloc {
        let scratch = [b.alloc_reg(), b.alloc_reg()];
        let n_homes = (vregs as usize).min(b.free_regs().saturating_sub(LOOP_HEADROOM));
        let homes: Vec<Reg> = (0..n_homes).map(|_| b.alloc_reg()).collect();
        let n_spills = vregs as usize - n_homes;
        let spill_base = if n_spills > 0 {
            b.alloc_static(n_spills as i64)
        } else {
            0
        };
        let locs = (0..vregs as usize)
            .map(|k| {
                if k < n_homes {
                    Loc::Reg(homes[k])
                } else {
                    Loc::Spill(Slot::Static(spill_base + (k - n_homes) as i64))
                }
            })
            .collect();
        RegAlloc {
            locs,
            scratch,
            homes,
            frame: Frame::Static,
        }
    }

    /// Plans a function body: scratches and homes come from the
    /// function pool, spills and loop counters from a stack region of
    /// `loop_words` + spill-count words. Returns the allocation and the
    /// total frame size the lowering pass must reserve (`addi SP, -n` …
    /// `addi SP, +n` around the body).
    pub fn plan_func(b: &mut ProgramBuilder, vregs: u32, loop_words: i32) -> (RegAlloc, i32) {
        let scratch = [b.alloc_reg(), b.alloc_reg()];
        let n_homes = (vregs as usize).min(b.free_regs().saturating_sub(LOOP_HEADROOM));
        let homes: Vec<Reg> = (0..n_homes).map(|_| b.alloc_reg()).collect();
        let n_spills = (vregs as usize - n_homes) as i32;
        let frame_words = n_spills + loop_words;
        let locs = (0..vregs as usize)
            .map(|k| {
                if k < n_homes {
                    Loc::Reg(homes[k])
                } else {
                    Loc::Spill(Slot::Stack((k - n_homes) as i32))
                }
            })
            .collect();
        let alloc = RegAlloc {
            locs,
            scratch,
            homes,
            frame: Frame::Stack {
                next: n_spills,
                limit: frame_words,
            },
        };
        (alloc, frame_words)
    }

    /// Scratch register `k` (`k < 2`).
    pub fn scratch(&self, k: usize) -> Reg {
        self.scratch[k]
    }

    /// The location of `v`.
    pub fn loc(&self, v: VReg) -> Loc {
        self.locs[v.0 as usize]
    }

    /// Materializes `v` for reading: its home register, or a load into
    /// scratch `slot` when spilled. The returned register must not be
    /// written unless it is also the destination of the current op.
    pub fn read(&self, b: &mut ProgramBuilder, v: VReg, slot: usize) -> Reg {
        match self.loc(v) {
            Loc::Reg(r) => r,
            Loc::Spill(s) => {
                let sc = self.scratch[slot];
                s.load(b, sc);
                sc
            }
        }
    }

    /// The register an op should write `v` through: the home register,
    /// or scratch 0 for spilled vregs ([`RegAlloc::commit`] then stores
    /// it back).
    pub fn dest(&self, v: VReg) -> Reg {
        match self.loc(v) {
            Loc::Reg(r) => r,
            Loc::Spill(_) => self.scratch[0],
        }
    }

    /// Completes a write to `v`: stores scratch 0 back to the spill
    /// slot when `v` is spilled, no-op otherwise.
    pub fn commit(&self, b: &mut ProgramBuilder, v: VReg) {
        if let Loc::Spill(s) = self.loc(v) {
            s.store(b, self.scratch[0]);
        }
    }

    /// Reserves a `(counter, bound)` slot pair for a memory-resident
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if a function body reserves more loop slots than the
    /// lowering pass pre-counted (an internal bug, not a user error).
    pub fn loop_slots(&mut self, b: &mut ProgramBuilder) -> (Slot, Slot) {
        match &mut self.frame {
            Frame::Static => {
                let base = b.alloc_static(2);
                (Slot::Static(base), Slot::Static(base + 1))
            }
            Frame::Stack { next, limit } => {
                assert!(*next + 2 <= *limit, "loop-slot reservation exceeded");
                let off = *next;
                *next += 2;
                (Slot::Stack(off), Slot::Stack(off + 1))
            }
        }
    }

    /// Returns all claimed pool registers; call once at scope end.
    pub fn release(self, b: &mut ProgramBuilder) {
        for r in self.homes.into_iter().rev() {
            b.free_reg(r);
        }
        b.free_reg(self.scratch[1]);
        b.free_reg(self.scratch[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_counts_live_in_registers() {
        let mut b = ProgramBuilder::new();
        let a = RegAlloc::plan_main(&mut b, 3);
        for k in 0..3 {
            assert!(matches!(a.loc(VReg(k)), Loc::Reg(_)));
        }
        a.release(&mut b);
    }

    #[test]
    fn overflow_spills_to_static_memory() {
        let mut b = ProgramBuilder::new();
        let a = RegAlloc::plan_main(&mut b, 20);
        let spilled = (0..20)
            .filter(|&k| matches!(a.loc(VReg(k)), Loc::Spill(Slot::Static(_))))
            .count();
        assert!(spilled >= 10, "expected heavy spilling, got {spilled}");
        // Headroom for loop counters must remain.
        assert!(b.free_regs() >= 4);
        a.release(&mut b);
    }

    #[test]
    fn function_spills_use_the_stack_frame() {
        let mut b = ProgramBuilder::new();
        b.define_func("probe", |b| {
            let (a, frame) = RegAlloc::plan_func(b, 12, 4);
            let spilled = (0..12)
                .filter(|&k| matches!(a.loc(VReg(k)), Loc::Spill(Slot::Stack(_))))
                .count();
            assert!(spilled > 0);
            assert_eq!(frame, spilled as i32 + 4);
            let (i, n) = {
                let mut a = a;
                let pair = a.loop_slots(b);
                a.release(b);
                pair
            };
            assert!(matches!(i, Slot::Stack(_)));
            assert!(matches!(n, Slot::Stack(_)));
        });
        b.call_func("probe");
        b.finish().unwrap();
    }
}
