//! Per-iteration live-in tracking frames.

use std::collections::HashMap;

use loopspec_core::LoopId;
use loopspec_cpu::ArchReg;
use loopspec_isa::{FReg, Reg};

use crate::MAX_MEM_SLOTS;

/// Dense index of an architectural register in `0..64` (integer file
/// first, then FP).
#[inline]
pub(crate) fn reg_slot(reg: ArchReg) -> usize {
    match reg {
        ArchReg::Int(r) => r.index(),
        ArchReg::Fp(r) => 32 + r.index(),
    }
}

#[inline]
pub(crate) fn slot_reg(slot: usize) -> ArchReg {
    if slot < 32 {
        ArchReg::Int(Reg::from_index(slot).expect("slot < 32"))
    } else {
        ArchReg::Fp(FReg::from_index(slot - 32).expect("slot < 64"))
    }
}

/// Live-in observation state for one open loop iteration.
///
/// Registers use a bitmask + value array (the architectural file is only
/// 64 registers); memory uses hash maps keyed by word address. A register
/// or memory word is live-in when it is read before any write to it
/// *within this iteration*.
#[derive(Debug, Clone)]
pub(crate) struct IterFrame {
    pub loop_id: LoopId,
    /// FNV-1a running hash over (pc, taken) of conditional branches.
    pub path_hash: u64,
    /// Registers written so far (bit = reg slot).
    written_regs: u64,
    /// Registers recorded as live-in (bit = reg slot).
    livein_regs: u64,
    /// First-read value per register slot (valid where `livein_regs` set).
    livein_values: [u64; 64],
    /// Memory words stored to so far.
    written_mem: HashMap<u64, ()>,
    /// Live-in loads in first-access order: (address, first value).
    pub livein_mem: Vec<(u64, u64)>,
    /// Live-in loads dropped because `MAX_MEM_SLOTS` was reached.
    pub mem_overflow: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

#[inline]
fn fnv_mix(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl IterFrame {
    pub fn new(loop_id: LoopId) -> Self {
        IterFrame {
            loop_id,
            path_hash: FNV_OFFSET,
            written_regs: 0,
            livein_regs: 0,
            livein_values: [0; 64],
            written_mem: HashMap::new(),
            livein_mem: Vec::new(),
            mem_overflow: 0,
        }
    }

    /// Records a control-flow divergence point into the path signature:
    /// a conditional branch's outcome, or an indirect transfer's dynamic
    /// target.
    #[inline]
    pub fn note_divergence(&mut self, pc: u32, outcome: u32) {
        self.path_hash = fnv_mix(self.path_hash, ((pc as u64) << 32) | outcome as u64);
    }

    /// Records a register read (with the observed value).
    #[inline]
    pub fn note_reg_read(&mut self, reg: ArchReg, value: u64) {
        // The hardwired zero register is trivially constant; it is not a
        // meaningful live-in.
        if matches!(reg, ArchReg::Int(r) if r.is_zero()) {
            return;
        }
        let slot = reg_slot(reg);
        let bit = 1u64 << slot;
        if self.written_regs & bit == 0 && self.livein_regs & bit == 0 {
            self.livein_regs |= bit;
            self.livein_values[slot] = value;
        }
    }

    /// Records a register write.
    #[inline]
    pub fn note_reg_write(&mut self, reg: ArchReg) {
        self.written_regs |= 1u64 << reg_slot(reg);
    }

    /// Records a memory load (address, loaded value).
    #[inline]
    pub fn note_load(&mut self, addr: u64, value: u64) {
        if self.written_mem.contains_key(&addr) {
            return;
        }
        if self.livein_mem.iter().any(|&(a, _)| a == addr) {
            return;
        }
        if self.livein_mem.len() >= MAX_MEM_SLOTS {
            self.mem_overflow += 1;
            return;
        }
        self.livein_mem.push((addr, value));
    }

    /// Records a memory store.
    #[inline]
    pub fn note_store(&mut self, addr: u64) {
        self.written_mem.insert(addr, ());
    }

    /// Iterates over the live-in registers with their first-read values.
    pub fn livein_regs_iter(&self) -> impl Iterator<Item = (ArchReg, u64)> + '_ {
        (0..64usize).filter_map(move |slot| {
            if self.livein_regs & (1u64 << slot) != 0 {
                Some((slot_reg(slot), self.livein_values[slot]))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_isa::Addr;

    fn frame() -> IterFrame {
        IterFrame::new(LoopId(Addr::new(1)))
    }

    #[test]
    fn read_before_write_is_live_in() {
        let mut f = frame();
        f.note_reg_read(ArchReg::Int(Reg::R5), 99);
        f.note_reg_write(ArchReg::Int(Reg::R5));
        let l: Vec<_> = f.livein_regs_iter().collect();
        assert_eq!(l, vec![(ArchReg::Int(Reg::R5), 99)]);
    }

    #[test]
    fn write_before_read_is_not_live_in() {
        let mut f = frame();
        f.note_reg_write(ArchReg::Int(Reg::R5));
        f.note_reg_read(ArchReg::Int(Reg::R5), 99);
        assert_eq!(f.livein_regs_iter().count(), 0);
    }

    #[test]
    fn first_read_value_sticks() {
        let mut f = frame();
        f.note_reg_read(ArchReg::Int(Reg::R5), 1);
        f.note_reg_read(ArchReg::Int(Reg::R5), 2);
        assert_eq!(f.livein_regs_iter().next().unwrap().1, 1);
    }

    #[test]
    fn zero_register_is_ignored() {
        let mut f = frame();
        f.note_reg_read(ArchReg::Int(Reg::R0), 0);
        assert_eq!(f.livein_regs_iter().count(), 0);
    }

    #[test]
    fn fp_registers_live_in_separate_slots() {
        let mut f = frame();
        f.note_reg_read(ArchReg::Int(Reg::R3), 7);
        f.note_reg_read(ArchReg::Fp(FReg::F3), 8);
        let l: Vec<_> = f.livein_regs_iter().collect();
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].0, ArchReg::Int(Reg::R3));
        assert_eq!(l[1].0, ArchReg::Fp(FReg::F3));
    }

    #[test]
    fn memory_live_in_order_and_dedup() {
        let mut f = frame();
        f.note_store(100);
        f.note_load(100, 5); // stored first: not live-in
        f.note_load(200, 6);
        f.note_load(200, 7); // duplicate
        f.note_load(300, 8);
        assert_eq!(f.livein_mem, vec![(200, 6), (300, 8)]);
    }

    #[test]
    fn memory_slots_cap() {
        let mut f = frame();
        for a in 0..(MAX_MEM_SLOTS as u64 + 10) {
            f.note_load(a + 1000, a);
        }
        assert_eq!(f.livein_mem.len(), MAX_MEM_SLOTS);
        assert_eq!(f.mem_overflow, 10);
    }

    #[test]
    fn path_hash_depends_on_outcomes() {
        let mut a = frame();
        let mut b = frame();
        a.note_divergence(10, 1);
        b.note_divergence(10, 0);
        assert_ne!(a.path_hash, b.path_hash);
        let mut c = frame();
        c.note_divergence(10, 1);
        assert_eq!(a.path_hash, c.path_hash);
    }

    #[test]
    fn slot_mapping_round_trips() {
        for slot in 0..64 {
            assert_eq!(reg_slot(slot_reg(slot)), slot);
        }
    }
}
