//! The §4 profiler: paths, live-ins and their predictability.

use std::collections::HashMap;

use loopspec_core::{LoopDetector, LoopEvent, LoopEventSink, LoopId};
use loopspec_cpu::{InstrEvent, Tracer};
use loopspec_isa::ControlKind;

use crate::frame::{reg_slot, IterFrame};
use crate::value_pred::{PredOutcome, StridePredictor};

/// Per-iteration profiling record: which path the iteration took and how
/// many of its live-ins were stride-predicted correctly.
///
/// Records are kept so the most-frequent-path filter can be applied *post
/// hoc*, exactly like the paper's two-phase measurement ("we have first
/// identified for each loop the different control flows…; for these
/// iterations we have measured…").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterRecord {
    /// The loop this iteration belongs to.
    pub loop_id: LoopId,
    /// Path signature (hash of conditional-branch outcomes).
    pub path: u64,
    /// Live-in registers observed.
    pub lr_seen: u16,
    /// ... of which correctly predicted.
    pub lr_correct: u16,
    /// Live-in memory locations observed.
    pub lm_seen: u16,
    /// ... of which correctly predicted (address *and* value).
    pub lm_correct: u16,
}

impl IterRecord {
    /// All live-in registers predicted correctly (vacuously true with no
    /// live-ins).
    pub fn all_lr(&self) -> bool {
        self.lr_correct == self.lr_seen
    }

    /// All live-in memory locations predicted correctly.
    pub fn all_lm(&self) -> bool {
        self.lm_correct == self.lm_seen
    }

    /// All live-in values (registers and memory) predicted correctly.
    pub fn all_data(&self) -> bool {
        self.all_lr() && self.all_lm()
    }
}

/// The Figure 8 statistics, as percentages over iterations of each loop's
/// most frequent path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataSpecReport {
    /// Profiled iterations (detected iterations of multi-iteration
    /// loops).
    pub iterations: u64,
    /// Distinct loops profiled.
    pub loops: usize,
    /// `same path`: % of iterations covered by their loop's most frequent
    /// path.
    pub same_path_percent: f64,
    /// `lr pred`: % of live-in registers correctly predicted.
    pub lr_pred_percent: f64,
    /// `lm pred`: % of live-in memory locations correctly predicted.
    pub lm_pred_percent: f64,
    /// `all lr`: % of iterations with *all* live-in registers correct.
    pub all_lr_percent: f64,
    /// `all lm`: % of iterations with *all* live-in memory locations
    /// correct.
    pub all_lm_percent: f64,
    /// `all data`: % of iterations with every live-in value correct.
    pub all_data_percent: f64,
    /// Live-in loads dropped by the per-iteration slot cap.
    pub mem_slot_overflow: u64,
    /// Live-in registers observed on most-frequent-path iterations
    /// (denominator of `lr_pred_percent`).
    pub lr_seen: u64,
    /// Live-in memory locations observed on most-frequent-path
    /// iterations (denominator of `lm_pred_percent`; `0` means the
    /// memory percentages are vacuous).
    pub lm_seen: u64,
}

/// The live-in analysis proper, detached from loop detection: charges
/// instructions to the open iteration frames and rolls the
/// stride predictors at the iteration boundaries *somebody else*
/// announces.
///
/// This is the streaming-pipeline form of the profiler: it implements
/// [`Tracer`] for the per-instruction half and [`LoopEventSink`] for the
/// boundary half, so a `loopspec_pipeline::Session` can drive it from
/// the **shared** CLS of the whole pass instead of a private duplicate.
/// When driving a CPU directly, use [`DataSpecProfiler`], which bundles a
/// detector and keeps the two halves synchronised.
#[derive(Debug, Default)]
pub struct LiveInProfiler {
    frames: Vec<IterFrame>,
    reg_pred: StridePredictor<(LoopId, u8)>,
    mem_addr_pred: StridePredictor<(LoopId, u16)>,
    mem_val_pred: StridePredictor<(LoopId, u16)>,
    records: Vec<IterRecord>,
    mem_overflow: u64,
}

impl LiveInProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-iteration records collected so far.
    pub fn records(&self) -> &[IterRecord] {
        &self.records
    }

    /// Finalises nothing (frames still open are discarded — they belong
    /// to iterations whose end was never observed) and aggregates the
    /// Figure 8 report.
    pub fn report(&self) -> DataSpecReport {
        aggregate(&self.records, self.mem_overflow)
    }

    /// Charges one retired instruction to every open iteration frame.
    ///
    /// Must be called *before* the loop events that instruction produced
    /// are delivered to [`LoopEventSink::on_loop_event`] — the closing
    /// branch belongs to the iteration it ends. Both drivers (the bundled
    /// [`DataSpecProfiler`] and the pipeline `Session`) preserve this
    /// order.
    pub fn observe_instr(&mut self, ev: &InstrEvent) {
        // Charge the instruction to every open iteration (instructions
        // of nested loops and called subroutines belong to all
        // enclosing executions). The path signature covers every
        // *dynamically divergent* control transfer: conditional
        // branches by outcome, indirect jumps/calls and returns by
        // target (a "path" is the exact instruction sequence of the
        // iteration, paper §4).
        if self.frames.is_empty() {
            return;
        }
        let divergence = match ev.control.kind {
            ControlKind::CondBranch { .. } => Some(ev.control.taken as u32),
            ControlKind::IndirectJump | ControlKind::IndirectCall | ControlKind::Ret => {
                Some(ev.control.target.index())
            }
            _ => None,
        };
        for frame in &mut self.frames {
            for read in ev.reads.iter().flatten() {
                frame.note_reg_read(read.reg, read.value);
            }
            if let Some(w) = ev.write {
                frame.note_reg_write(w.reg);
            }
            if let Some(m) = ev.mem_read {
                frame.note_load(m.addr, m.value);
            }
            if let Some(m) = ev.mem_write {
                frame.note_store(m.addr);
            }
            if let Some(d) = divergence {
                frame.note_divergence(ev.pc.index(), d);
            }
        }
    }

    fn close_frame(&mut self, loop_id: LoopId) {
        let Some(idx) = self.frames.iter().rposition(|f| f.loop_id == loop_id) else {
            return;
        };
        let frame = self.frames.remove(idx);
        self.mem_overflow += frame.mem_overflow;

        let mut rec = IterRecord {
            loop_id,
            path: frame.path_hash,
            lr_seen: 0,
            lr_correct: 0,
            lm_seen: 0,
            lm_correct: 0,
        };
        for (reg, value) in frame.livein_regs_iter() {
            rec.lr_seen += 1;
            let out = self.reg_pred.observe((loop_id, reg_slot(reg) as u8), value);
            if out.is_correct() {
                rec.lr_correct += 1;
            }
        }
        for (slot, &(addr, value)) in frame.livein_mem.iter().enumerate() {
            rec.lm_seen += 1;
            let a = self.mem_addr_pred.observe((loop_id, slot as u16), addr);
            let v = self.mem_val_pred.observe((loop_id, slot as u16), value);
            if a.is_correct() && v.is_correct() {
                rec.lm_correct += 1;
            }
            // Both predictors train even when the other missed; a cold
            // (PredOutcome::Cold) observation counts as not-predicted.
            let _ = PredOutcome::Cold;
        }
        self.records.push(rec);
    }

    fn open_frame(&mut self, loop_id: LoopId) {
        self.frames.push(IterFrame::new(loop_id));
    }
}

/// The per-instruction half, for registration as a plain tracer.
impl Tracer for LiveInProfiler {
    #[inline]
    fn on_retire(&mut self, ev: &InstrEvent) {
        self.observe_instr(ev);
    }
}

/// The boundary half: iteration starts/ends roll the live-in frames.
impl LoopEventSink for LiveInProfiler {
    fn on_loop_event(&mut self, ev: &LoopEvent) {
        match *ev {
            LoopEvent::IterationStart { loop_id, .. } => {
                self.close_frame(loop_id);
                self.open_frame(loop_id);
            }
            LoopEvent::ExecutionEnd { loop_id, .. } | LoopEvent::Evicted { loop_id, .. } => {
                self.close_frame(loop_id);
            }
            LoopEvent::ExecutionStart { .. } | LoopEvent::OneShot { .. } => {}
        }
    }

    // The default `on_loop_events` (a loop over `on_loop_event`) is
    // exactly right for this sink: boundary handling is inherently
    // per-event, and the default body monomorphizes per impl, so there
    // is nothing to override.
}

/// ATOM-style tracer computing the paper's data-speculation statistics:
/// a [`LiveInProfiler`] bundled with its own [`LoopDetector`] so a bare
/// `Cpu::run` drives both halves in the right order.
///
/// In a streaming `Session` (one shared CLS feeding many analyses),
/// register a [`LiveInProfiler`] instead — running a second detector
/// there would duplicate work.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Default)]
pub struct DataSpecProfiler {
    detector: LoopDetector,
    inner: LiveInProfiler,
}

impl DataSpecProfiler {
    /// Creates a profiler with the default 16-entry CLS.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-iteration records collected so far.
    pub fn records(&self) -> &[IterRecord] {
        self.inner.records()
    }

    /// Aggregates the Figure 8 report (see [`LiveInProfiler::report`]).
    pub fn report(&self) -> DataSpecReport {
        self.inner.report()
    }
}

impl Tracer for DataSpecProfiler {
    fn on_retire(&mut self, ev: &InstrEvent) {
        // 1. Charge the instruction to every open iteration.
        self.inner.observe_instr(ev);

        // 2. Roll iteration boundaries (the detector and the analysis are
        //    disjoint fields, so the event slice can be consumed without
        //    an intermediate buffer).
        if !matches!(ev.control.kind, ControlKind::None) {
            for e in self.detector.process(ev) {
                self.inner.on_loop_event(e);
            }
        }
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

fn aggregate(records: &[IterRecord], mem_overflow: u64) -> DataSpecReport {
    // Pass 1: most frequent path per loop.
    let mut paths: HashMap<LoopId, HashMap<u64, u64>> = HashMap::new();
    for r in records {
        *paths
            .entry(r.loop_id)
            .or_default()
            .entry(r.path)
            .or_insert(0) += 1;
    }
    let mfp: HashMap<LoopId, u64> = paths
        .iter()
        .map(|(l, m)| {
            let best = m
                .iter()
                .max_by_key(|(_, &c)| c)
                .map(|(&p, _)| p)
                .expect("non-empty path map");
            (*l, best)
        })
        .collect();

    // Pass 2: aggregate over most-frequent-path iterations.
    let mut on_path = 0u64;
    let (mut lr_seen, mut lr_ok, mut lm_seen, mut lm_ok) = (0u64, 0u64, 0u64, 0u64);
    let (mut all_lr, mut all_lm, mut all_data) = (0u64, 0u64, 0u64);
    for r in records {
        if mfp.get(&r.loop_id) != Some(&r.path) {
            continue;
        }
        on_path += 1;
        lr_seen += r.lr_seen as u64;
        lr_ok += r.lr_correct as u64;
        lm_seen += r.lm_seen as u64;
        lm_ok += r.lm_correct as u64;
        all_lr += r.all_lr() as u64;
        all_lm += r.all_lm() as u64;
        all_data += r.all_data() as u64;
    }

    DataSpecReport {
        iterations: records.len() as u64,
        loops: paths.len(),
        same_path_percent: percent(on_path, records.len() as u64),
        lr_pred_percent: percent(lr_ok, lr_seen),
        lm_pred_percent: percent(lm_ok, lm_seen),
        all_lr_percent: percent(all_lr, on_path),
        all_lm_percent: percent(all_lm, on_path),
        all_data_percent: percent(all_data, on_path),
        mem_slot_overflow: mem_overflow,
        lr_seen,
        lm_seen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_asm::ProgramBuilder;
    use loopspec_cpu::{Cpu, RunLimits};
    use loopspec_isa::{AluOp, Cond, Reg};

    fn profile(build: impl FnOnce(&mut ProgramBuilder)) -> DataSpecReport {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().expect("assembles");
        let mut prof = DataSpecProfiler::new();
        Cpu::new()
            .run(&p, &mut prof, RunLimits::default())
            .expect("runs");
        prof.report()
    }

    #[test]
    fn induction_variables_are_predictable() {
        // Live-ins of a bare counted loop: the induction register
        // (stride 1) and the bound (stride 0) — both predictable once the
        // predictors warm up. (The final iteration takes a different path
        // — its closing branch falls through — so same-path is 58/59.)
        let r = profile(|b| b.counted_loop(60, |_b, _| {}));
        assert_eq!(r.loops, 1);
        assert!(r.same_path_percent > 95.0, "{r:?}");
        assert!(r.lr_pred_percent > 85.0, "{r:?}");
        assert!(r.all_lr_percent > 85.0, "{r:?}");
    }

    #[test]
    fn work_filler_is_not_live_in() {
        // `work` starts with a fresh constant load, so the scratch
        // accumulator is written before read — the loop's live-ins stay
        // the (predictable) induction registers.
        let r = profile(|b| b.counted_loop(60, |b, _| b.work(4)));
        assert!(r.lr_pred_percent > 85.0, "{r:?}");
        assert!(r.all_lr_percent > 85.0, "{r:?}");
    }

    #[test]
    fn loop_carried_computed_values_dilute_predictability() {
        // A register that carries a non-linear recurrence across
        // iterations is live-in every iteration and never predicts.
        let r = profile(|b| {
            let acc = b.alloc_reg();
            b.li(acc, 7);
            b.counted_loop(60, |b, _| {
                b.op_imm(AluOp::Xor, acc, acc, 0x5a);
                b.op_imm(AluOp::Mul, acc, acc, 3);
            });
        });
        assert!(
            r.lr_pred_percent > 40.0 && r.lr_pred_percent < 90.0,
            "mixed live-ins: {r:?}"
        );
        assert!(r.all_lr_percent < 10.0, "{r:?}");
    }

    #[test]
    fn memory_accumulator_is_predictable() {
        // g starts at 0 and grows by 3 per iteration: constant address,
        // strided value.
        let r = profile(|b| {
            let g = b.alloc_static(1);
            let x = b.alloc_reg();
            b.counted_loop(60, |b, _| {
                b.load_static(x, g);
                b.addi(x, x, 3);
                b.store_static(x, g);
            });
        });
        assert!(r.lm_pred_percent > 85.0, "{r:?}");
        assert!(r.all_lm_percent > 85.0, "{r:?}");
    }

    #[test]
    fn random_values_are_not_predictable() {
        // The LCG state register is live-in every iteration but its
        // values follow no linear stride.
        let r = profile(|b| {
            let x = b.alloc_reg();
            b.counted_loop(60, |b, _| {
                b.rng_below(x, 1000);
            });
        });
        // r6 (rng state) is live-in and wrong; induction + bound right:
        // per-register accuracy must sit strictly between.
        assert!(r.lr_pred_percent < 90.0, "{r:?}");
        assert!(r.all_lr_percent < 10.0, "rng state spoils all-lr: {r:?}");
    }

    #[test]
    fn alternating_branch_splits_paths() {
        let r = profile(|b| {
            let parity = b.alloc_reg();
            b.counted_loop(61, |b, i| {
                b.op_imm(AluOp::Rem, parity, i, 2);
                b.if_else(Cond::Eq, parity, Reg::ZERO, |b| b.work(2), |b| b.work(6));
            });
        });
        assert!(
            r.same_path_percent > 35.0 && r.same_path_percent < 65.0,
            "two alternating paths: {r:?}"
        );
    }

    #[test]
    fn nested_loops_profile_both_levels() {
        let r = profile(|b| {
            b.counted_loop(10, |b, _| {
                b.counted_loop(10, |b, _| b.work(2));
            });
        });
        assert_eq!(r.loops, 2);
        assert!(r.iterations > 80);
    }

    #[test]
    fn no_loops_no_records() {
        let r = profile(|b| b.work(50));
        assert_eq!(r.iterations, 0);
        assert_eq!(r.loops, 0);
        assert_eq!(r.same_path_percent, 0.0);
    }

    #[test]
    fn strided_array_walk_memory_is_address_predictable() {
        // a[i] = a[i] (+ values pre-initialised to 7*i): address strides
        // by 1, value strides by 7 → predictable.
        let r = profile(|b| {
            let base = b.alloc_static(128);
            let x = b.alloc_reg();
            // init: a[i] = 7*i (one-shot-ish loop noise is fine)
            b.counted_loop(100, |b, i| {
                b.op_imm(AluOp::Mul, x, i, 7);
                b.store_idx(x, base, i);
            });
            // walk: read a[i]
            b.counted_loop(100, |b, i| {
                b.load_idx(x, base, i);
            });
        });
        // The walking loop's loads: addr stride 1, value stride 7.
        assert!(r.lm_pred_percent > 80.0, "{r:?}");
    }

    #[test]
    fn record_helpers() {
        let mut r = IterRecord {
            loop_id: LoopId(loopspec_isa::Addr::new(1)),
            path: 0,
            lr_seen: 2,
            lr_correct: 2,
            lm_seen: 1,
            lm_correct: 0,
        };
        assert!(r.all_lr());
        assert!(!r.all_lm());
        assert!(!r.all_data());
        r.lm_correct = 1;
        assert!(r.all_data());
    }
}
