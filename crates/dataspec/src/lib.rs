//! # loopspec-dataspec — data-speculation predictability (paper §4)
//!
//! The paper's §4 measures how *predictable* the data flowing into
//! speculative loop-iteration threads is — if live-in values can be
//! stride-predicted, dependent iterations can run in parallel without
//! synchronisation. This crate reproduces those statistics (Figure 8):
//!
//! * **paths** — each iteration's control flow is summarised as a hash of
//!   its conditional-branch outcomes; the *most frequent path* of each
//!   loop covers ~85 % of SPEC95 iterations in the paper;
//! * **live-ins** — a register read before it is written inside an
//!   iteration, or a memory word loaded before it is stored, is live-in
//!   to that iteration;
//! * **stride prediction** — per (loop, register) the value at the start
//!   of the last iteration plus the last stride; per (loop, load slot)
//!   the last effective address and value with their strides (the paper
//!   stores exactly these fields in the LIT).
//!
//! The profiler is an ATOM-style [`Tracer`](loopspec_cpu::Tracer): run it
//! over a program once and ask for the [`DataSpecReport`].
//!
//! ## Example
//!
//! ```
//! use loopspec_asm::ProgramBuilder;
//! use loopspec_cpu::{Cpu, RunLimits};
//! use loopspec_dataspec::DataSpecProfiler;
//!
//! let mut b = ProgramBuilder::new();
//! let acc = b.alloc_reg();
//! b.li(acc, 0);
//! b.counted_loop(100, |b, i| {
//!     b.op(loopspec_isa::AluOp::Add, acc, acc, i);
//!     b.work(5);
//! });
//! let program = b.finish()?;
//!
//! let mut prof = DataSpecProfiler::default();
//! Cpu::new().run(&program, &mut prof, RunLimits::default())?;
//! let report = prof.report();
//! assert!(report.same_path_percent > 95.0, "single-path loop");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod frame;
mod profile;
mod value_pred;

pub use profile::{DataSpecProfiler, DataSpecReport, IterRecord, LiveInProfiler};
pub use value_pred::{PredOutcome, StridePredictor};

/// Maximum live-in memory slots tracked per iteration; iterations with
/// more live-in loads have the excess ignored (counted in
/// [`DataSpecReport::mem_slot_overflow`]).
pub const MAX_MEM_SLOTS: usize = 64;
