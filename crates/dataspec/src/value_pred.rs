//! Last-value-plus-stride prediction.

use std::collections::HashMap;
use std::hash::Hash;

/// Outcome of presenting an observed value to a [`StridePredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOutcome {
    /// Fewer than two prior observations existed — no prediction could be
    /// made ("the difference between the last two consecutive iterations"
    /// needs two of them).
    Cold,
    /// The prediction `last + stride` matched the observation.
    Correct,
    /// The prediction missed.
    Incorrect,
}

impl PredOutcome {
    /// `true` only for [`PredOutcome::Correct`].
    pub fn is_correct(self) -> bool {
        matches!(self, PredOutcome::Correct)
    }
}

#[derive(Debug, Clone, Copy)]
struct VState {
    last: u64,
    stride: i64,
    observations: u32,
}

/// A map of last-value + stride predictors keyed by `K` (the paper keys
/// by loop × live-in location).
///
/// [`StridePredictor::observe`] both *checks* the prediction for the new
/// observation and *trains* on it, in that order — exactly the roll the
/// LIT performs when a new iteration of a loop begins.
///
/// ```
/// use loopspec_dataspec::{StridePredictor, PredOutcome};
/// let mut p: StridePredictor<&str> = StridePredictor::new();
/// assert_eq!(p.observe("x", 10), PredOutcome::Cold);      // first sight
/// assert_eq!(p.observe("x", 13), PredOutcome::Cold);      // stride trains (3)
/// assert_eq!(p.observe("x", 16), PredOutcome::Correct);   // 13 + 3
/// assert_eq!(p.observe("x", 20), PredOutcome::Incorrect); // 16 + 3 != 20
/// ```
#[derive(Debug, Clone)]
pub struct StridePredictor<K> {
    states: HashMap<K, VState>,
}

impl<K: Eq + Hash> Default for StridePredictor<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash> StridePredictor<K> {
    /// Creates an empty (unbounded) predictor map.
    pub fn new() -> Self {
        StridePredictor {
            states: HashMap::new(),
        }
    }

    /// Checks the prediction for `key` against `value`, then trains on
    /// `value`.
    pub fn observe(&mut self, key: K, value: u64) -> PredOutcome {
        match self.states.get_mut(&key) {
            None => {
                self.states.insert(
                    key,
                    VState {
                        last: value,
                        stride: 0,
                        observations: 1,
                    },
                );
                PredOutcome::Cold
            }
            Some(st) => {
                let outcome = if st.observations >= 2 {
                    let predicted = st.last.wrapping_add(st.stride as u64);
                    if predicted == value {
                        PredOutcome::Correct
                    } else {
                        PredOutcome::Incorrect
                    }
                } else {
                    PredOutcome::Cold
                };
                st.stride = value.wrapping_sub(st.last) as i64;
                st.last = value;
                st.observations += 1;
                outcome
            }
        }
    }

    /// Peeks at the current prediction for `key` without training.
    pub fn predict(&self, key: &K) -> Option<u64> {
        self.states
            .get(key)
            .filter(|st| st.observations >= 2)
            .map(|st| st.last.wrapping_add(st.stride as u64))
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_values_predict_after_two_sightings() {
        let mut p: StridePredictor<u32> = StridePredictor::new();
        assert_eq!(p.observe(1, 42), PredOutcome::Cold);
        assert_eq!(p.observe(1, 42), PredOutcome::Cold);
        for _ in 0..5 {
            assert_eq!(p.observe(1, 42), PredOutcome::Correct);
        }
    }

    #[test]
    fn strided_sequence_tracks() {
        let mut p: StridePredictor<u32> = StridePredictor::new();
        p.observe(7, 100);
        p.observe(7, 110);
        for v in (120..200).step_by(10) {
            assert_eq!(p.observe(7, v), PredOutcome::Correct);
        }
    }

    #[test]
    fn stride_change_misses_once_then_recovers() {
        let mut p: StridePredictor<u32> = StridePredictor::new();
        p.observe(1, 0);
        p.observe(1, 1);
        assert_eq!(p.observe(1, 2), PredOutcome::Correct);
        assert_eq!(p.observe(1, 10), PredOutcome::Incorrect); // stride breaks
        assert_eq!(p.observe(1, 18), PredOutcome::Correct); // new stride 8
    }

    #[test]
    fn negative_strides_and_wrapping() {
        let mut p: StridePredictor<u32> = StridePredictor::new();
        p.observe(1, 10);
        p.observe(1, 7);
        assert_eq!(p.observe(1, 4), PredOutcome::Correct);
        assert_eq!(p.observe(1, 1), PredOutcome::Correct);
        // 1 - 3 wraps below zero in u64 space.
        assert_eq!(p.observe(1, 1u64.wrapping_sub(3)), PredOutcome::Correct);
    }

    #[test]
    fn keys_are_independent() {
        let mut p: StridePredictor<(u32, u32)> = StridePredictor::new();
        p.observe((1, 1), 5);
        p.observe((1, 2), 1000);
        p.observe((1, 1), 6);
        p.observe((1, 2), 2000);
        assert_eq!(p.observe((1, 1), 7), PredOutcome::Correct);
        assert_eq!(p.observe((1, 2), 3000), PredOutcome::Correct);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn predict_peek_matches_observe() {
        let mut p: StridePredictor<u32> = StridePredictor::new();
        assert_eq!(p.predict(&1), None);
        p.observe(1, 4);
        assert_eq!(p.predict(&1), None); // still cold
        p.observe(1, 6);
        assert_eq!(p.predict(&1), Some(8));
    }
}
