//! End-to-end §4 scenarios: the profiler on programs engineered to have
//! known path distributions and live-in predictability.

use loopspec_asm::ProgramBuilder;
use loopspec_cpu::{Cpu, RunLimits};
use loopspec_dataspec::{DataSpecProfiler, DataSpecReport};
use loopspec_isa::{AluOp, Cond, Reg};

fn profile(build: impl FnOnce(&mut ProgramBuilder)) -> DataSpecReport {
    let mut b = ProgramBuilder::new();
    build(&mut b);
    let p = b.finish().expect("assembles");
    let mut prof = DataSpecProfiler::new();
    let s = Cpu::new()
        .run(&p, &mut prof, RunLimits::default())
        .expect("runs");
    assert!(s.halted());
    prof.report()
}

#[test]
fn three_way_path_split_caps_same_path_coverage() {
    // i % 3 selects one of three arms: the most frequent path covers
    // about a third of iterations.
    let r = profile(|b| {
        let sel = b.alloc_reg();
        b.counted_loop(90, |b, i| {
            b.op_imm(AluOp::Rem, sel, i, 3);
            b.switch_table(sel, 3, |b, k| b.work(2 + k as u32));
        });
    });
    assert!(
        r.same_path_percent > 20.0 && r.same_path_percent < 50.0,
        "{r:?}"
    );
}

#[test]
fn rare_branch_keeps_dominant_path_high() {
    // One iteration in 16 takes a slow path: same-path stays ~94%.
    let r = profile(|b| {
        let rem = b.alloc_reg();
        b.counted_loop(64, |b, i| {
            b.op_imm(AluOp::Rem, rem, i, 16);
            b.if_then(Cond::Eq, rem, Reg::R0, |b| b.work(10));
            b.work(3);
        });
    });
    assert!(
        r.same_path_percent > 85.0 && r.same_path_percent < 99.0,
        "{r:?}"
    );
}

#[test]
fn memory_walk_with_alternating_stride_defeats_value_prediction() {
    // Addresses stride regularly but stored values alternate between two
    // sequences: value stride flips sign every iteration and the
    // last+stride predictor misses most of the time.
    let r = profile(|b| {
        let base = b.alloc_static(128);
        let v = b.alloc_reg();
        // init: a[i] = (i % 2) * 1000 + i
        b.counted_loop(100, |b, i| {
            b.op_imm(AluOp::Rem, v, i, 2);
            b.op_imm(AluOp::Mul, v, v, 1000);
            b.op(AluOp::Add, v, v, i);
            b.store_idx(v, base, i);
        });
        // walk
        b.counted_loop(100, |b, i| {
            b.load_idx(v, base, i);
        });
    });
    // Address prediction is perfect but value prediction fails, so the
    // combined live-in-memory accuracy lands low.
    assert!(r.lm_pred_percent < 50.0, "{r:?}");
}

#[test]
fn nested_loops_get_independent_livein_accounting() {
    // The outer loop's live-ins include the inner loop's bound; both
    // levels profile with their own (loop, location) predictor keys.
    let r = profile(|b| {
        let bound = b.alloc_reg();
        b.li(bound, 8);
        b.counted_loop(20, |b, _| {
            b.counted_loop(bound, |b, _| b.work(2));
        });
    });
    assert_eq!(r.loops, 2);
    assert!(r.lr_pred_percent > 70.0, "{r:?}");
}

#[test]
fn subroutine_state_counts_toward_caller_iterations() {
    // A callee reads a global accumulator cell: the caller loop's
    // iterations see that cell as live-in memory (subroutine bodies
    // belong to the enclosing execution).
    let r = profile(|b| {
        let cell = b.alloc_static(1);
        b.define_func("tick", move |b| {
            let v = b.alloc_reg();
            b.load_static(v, cell);
            b.addi(v, v, 5);
            b.store_static(v, cell);
            b.free_reg(v);
        });
        b.counted_loop(40, |b, _| {
            b.call_func("tick");
        });
    });
    assert!(r.lm_seen > 0, "callee load must register: {r:?}");
    assert!(
        r.lm_pred_percent > 80.0,
        "constant address, stride-5 value: {r:?}"
    );
}

#[test]
fn report_denominators_are_exposed() {
    let with_mem = profile(|b| {
        let g = b.alloc_static(1);
        let x = b.alloc_reg();
        b.counted_loop(30, |b, _| {
            b.load_static(x, g);
            b.addi(x, x, 1);
            b.store_static(x, g);
        });
    });
    assert!(with_mem.lm_seen > 0);
    assert!(with_mem.lr_seen > 0);

    let without_mem = profile(|b| b.counted_loop(30, |_b, _| {}));
    assert_eq!(without_mem.lm_seen, 0);
    assert_eq!(without_mem.lm_pred_percent, 0.0, "vacuous");
}

#[test]
fn first_iterations_are_not_profiled() {
    // 10 executions of a 2-iteration loop: only iteration 2 of each is
    // detectable, so exactly 10 records exist.
    let r = profile(|b| {
        b.define_func("twice", |b| {
            b.counted_loop(2, |b, _| b.work(2));
        });
        for _ in 0..10 {
            b.call_func("twice");
        }
    });
    assert_eq!(r.iterations, 10, "{r:?}");
}
