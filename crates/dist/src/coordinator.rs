//! The coordinator: N worker processes, one job queue of
//! snapshot-linked shards, crash-tolerant scheduling, bit-identical
//! merged results.
//!
//! ## Scheduling model
//!
//! Each workload is a **chain**: a sequence of shards linked by
//! serialized snapshots, scheduled by the same
//! [`Plan`] the in-thread drivers use. Chains
//! are mutually independent (one workload's shards never touch
//! another's state), so the coordinator keeps every chain's *head
//! shard* in a ready queue and hands heads to idle workers as they
//! free up — with W workers, up to W workloads replay concurrently,
//! each chain migrating between workers at every snapshot boundary.
//! Within a chain, shards stay serial (iteration N+1 needs the state
//! of iteration N); across chains, the suite saturates the worker
//! pool.
//!
//! ## Failure model
//!
//! * **Worker death** (dropped connection — process exit, kill, broken
//!   pipe): the in-flight job's *input* snapshot is still held by the
//!   coordinator, so the chain is requeued from its last good snapshot
//!   and handed to another worker — and, for spawned pools, a
//!   replacement process is spawned the same way the initial pool was,
//!   restoring the worker count. Work is lost, state is not; the
//!   merged result is still bit-identical.
//! * **Poison shard**: a shard that kills two workers in a row (no
//!   completed shard on its chain in between) fails the run
//!   ([`DistError::Failed`]) instead of grinding through fresh
//!   processes forever.
//! * **Spawn failure** (misconfigured binary path, missing stdio
//!   pipes): [`DistError::Spawn`] up front; a failed mid-run respawn
//!   silently shrinks the pool to the survivors. Respawns per run are
//!   budgeted (2× the initial pool), so a binary that handshakes and
//!   exits cannot respawn forever.
//! * **Deterministic job failure** ([`Frame::Error`]: unknown
//!   workload, invalid lane, snapshot rejected): retrying elsewhere
//!   would fail identically, so the run fails with
//!   [`DistError::Failed`].
//! * **All workers dead** with work remaining:
//!   [`DistError::AllWorkersDied`] (always reachable for
//!   pre-connected pools, which cannot respawn, and for
//!   [`Coordinator::no_respawn`]).
//!
//! ## Bit-identity
//!
//! A worker's [`Report`](crate::wire::Report) carries both the
//! integer-exact per-lane reports and the final sink's deterministic
//! `save_state` bytes. [`DistOutcome::verify_single_pass`] recomputes
//! each workload in-process with one uninterrupted [`Session`] and
//! compares **bytes**, not summaries — the distributed grid must be
//! indistinguishable from the single-pass grid down to its serialized
//! state.

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::process::Command;
use std::sync::mpsc;
use std::time::Instant;

use loopspec_core::snap::Enc;
use loopspec_core::SnapshotState;
use loopspec_cpu::RunLimits;
use loopspec_obs::{self as obs, journal, EventKind};
use loopspec_pipeline::{Plan, Session};
use loopspec_workloads::Scale;

use crate::pool::{PoolEvent, RespawnFn, WorkerPool};
use crate::wire::{Frame, Job, LaneReport, LaneSpec, WireError, PROTOCOL};

pub use crate::pool::WorkerLink;

/// Why a distributed run failed.
#[derive(Debug)]
pub enum DistError {
    /// Transport-level failure outside any worker conversation.
    Io(io::Error),
    /// A worker process could not be spawned or wired up (misconfigured
    /// binary path, missing stdio pipes).
    Spawn {
        /// Human-readable cause.
        message: String,
    },
    /// A job failed deterministically — on a worker
    /// ([`Frame::Error`]) or locally while verifying.
    Failed {
        /// The workload involved (empty during the handshake).
        workload: String,
        /// Human-readable cause.
        message: String,
    },
    /// Every worker died with work remaining; nothing left to
    /// reassign jobs to.
    AllWorkersDied {
        /// Workload chains that did complete.
        completed: usize,
        /// Total chains in the suite.
        total: usize,
    },
    /// A worker violated the protocol (wrong handshake echo, reply for
    /// a job it was never given).
    Protocol(String),
    /// The bit-identity check failed: a distributed result differs
    /// from the single-pass reference.
    Mismatch {
        /// The differing workload.
        workload: String,
        /// Which comparison differed.
        what: &'static str,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "distributed run i/o error: {e}"),
            DistError::Spawn { message } => {
                write!(f, "failed to spawn a worker process: {message}")
            }
            DistError::Failed { workload, message } if workload.is_empty() => {
                write!(f, "worker failed: {message}")
            }
            DistError::Failed { workload, message } => {
                write!(f, "workload '{workload}' failed: {message}")
            }
            DistError::AllWorkersDied { completed, total } => write!(
                f,
                "all workers died with {completed}/{total} workloads complete"
            ),
            DistError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DistError::Mismatch { workload, what } => write!(
                f,
                "bit-identity violation on '{workload}': {what} differs from the single pass"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> Self {
        DistError::Io(e)
    }
}

/// The 20-lane experiment grid — every (policy × TU-count) point of the
/// paper's evaluation, as wire lane specs.
pub fn default_lanes() -> Vec<LaneSpec> {
    let mut lanes = Vec::with_capacity(20);
    for tus in [2u32, 4, 8, 16] {
        lanes.push(LaneSpec::Idle { tus });
        lanes.push(LaneSpec::Str { tus });
        for limit in 1..=3 {
            lanes.push(LaneSpec::StrNested { limit, tus });
        }
    }
    lanes
}

/// What to replay, how to slice it, and through which lanes.
#[derive(Debug, Clone)]
pub struct SuiteSpec {
    /// Workload names, scheduled as independent chains.
    pub workloads: Vec<String>,
    /// Scale every workload is built at.
    pub scale: Scale,
    /// Engine lanes each chain fans its events into.
    pub lanes: Vec<LaneSpec>,
    /// How each chain is sliced into shards (shared with the
    /// in-thread drivers).
    pub plan: Plan,
    /// Total instruction budget per workload (the default
    /// [`RunLimits`] fuel — workloads halt long before it).
    pub total_fuel: u64,
}

impl SuiteSpec {
    /// A spec over the named workloads.
    pub fn new<S: Into<String>>(
        workloads: impl IntoIterator<Item = S>,
        scale: Scale,
        lanes: Vec<LaneSpec>,
        plan: Plan,
    ) -> Self {
        SuiteSpec {
            workloads: workloads.into_iter().map(Into::into).collect(),
            scale,
            lanes,
            plan,
            total_fuel: RunLimits::default().max_instrs,
        }
    }

    /// The full 18-workload suite through the 20-lane grid, sliced
    /// into fixed `shard_fuel` checkpoints.
    pub fn full_grid(scale: Scale, shard_fuel: u64) -> Self {
        SuiteSpec::new(
            loopspec_workloads::all().iter().map(|w| w.name),
            scale,
            default_lanes(),
            Plan::sliced(shard_fuel),
        )
    }
}

/// One workload chain's merged result.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// Workload name.
    pub workload: String,
    /// Total instructions replayed.
    pub instructions: u64,
    /// Shards the chain actually ran (requeued shards count once).
    pub shards_run: u32,
    /// Times the chain was requeued after losing a worker mid-shard.
    pub retries: u32,
    /// Per-lane final reports, in lane order.
    pub lanes: Vec<LaneReport>,
    /// The final sink grid's deterministic `save_state` bytes.
    pub state: Vec<u8>,
}

/// A completed distributed run.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// Per-workload results, in suite order.
    pub outcomes: Vec<WorkloadOutcome>,
    /// Worker connections lost during the run.
    pub workers_lost: u32,
    /// Replacement worker processes spawned to keep the pool at full
    /// strength after losses (0 for coordinators that cannot respawn).
    pub workers_respawned: u32,
    /// Jobs dispatched (including requeued re-dispatches).
    pub jobs_dispatched: u64,
    /// Total snapshot bytes shipped back from workers at shard
    /// boundaries.
    pub handoff_bytes: u64,
}

impl DistOutcome {
    /// Recomputes every workload with one uninterrupted in-process
    /// [`Session`] and requires the distributed results to be
    /// **byte-identical**: same instruction counts, same integer-exact
    /// lane reports, same serialized final sink state.
    ///
    /// # Errors
    ///
    /// [`DistError::Mismatch`] naming the first differing workload and
    /// comparison; [`DistError::Failed`] if a reference run itself
    /// fails.
    pub fn verify_single_pass(&self, spec: &SuiteSpec) -> Result<(), DistError> {
        for outcome in &self.outcomes {
            let reference =
                single_pass_outcome(&outcome.workload, spec.scale, &spec.lanes, spec.total_fuel)?;
            let what = if outcome.instructions != reference.instructions {
                Some("instruction count")
            } else if outcome.lanes != reference.lanes {
                Some("lane reports")
            } else if outcome.state != reference.state {
                Some("serialized sink state")
            } else {
                None
            };
            if let Some(what) = what {
                return Err(DistError::Mismatch {
                    workload: outcome.workload.clone(),
                    what,
                });
            }
        }
        Ok(())
    }
}

/// The single-pass reference for one workload: the same lanes, one
/// uninterrupted [`Session`], packaged as a [`WorkloadOutcome`]
/// (`shards_run = 1`, `retries = 0`) so distributed results can be
/// compared field for field.
///
/// # Errors
///
/// [`DistError::Failed`] when the workload is unknown, fails to
/// assemble, or faults while running.
pub fn single_pass_outcome(
    workload: &str,
    scale: Scale,
    lanes: &[LaneSpec],
    total_fuel: u64,
) -> Result<WorkloadOutcome, DistError> {
    let fail = |message: String| DistError::Failed {
        workload: workload.to_string(),
        message,
    };
    let program = loopspec_workloads::build_named(workload, scale)
        .ok_or_else(|| fail(format!("unknown workload '{workload}'")))?
        .map_err(|e| fail(format!("failed to assemble: {e}")))?;
    let mut grid = LaneSpec::build_grid(lanes).map_err(|e| fail(format!("bad lane spec: {e}")))?;
    let summary = {
        let mut session = Session::new();
        session.observe_checkpointable(&mut grid);
        session
            .run(&program, RunLimits::with_fuel(total_fuel))
            .map_err(|e| fail(format!("cpu fault: {e}")))?
    };
    let lanes = grid
        .reports()
        .expect("stream ended")
        .iter()
        .map(Into::into)
        .collect();
    let mut enc = Enc::new();
    grid.save_state(&mut enc);
    Ok(WorkloadOutcome {
        workload: workload.to_string(),
        instructions: summary.instructions,
        shards_run: 1,
        retries: 0,
        lanes,
        state: enc.into_bytes(),
    })
}

/// Per-worker scheduler state.
enum WorkerState {
    /// Hello sent, echo not yet received.
    Connecting,
    Idle,
    /// Executing the job for chain `chain` under job id `job`,
    /// dispatched at `since` (coordinator-side shard wall clock —
    /// observational only).
    Busy {
        job: u64,
        chain: usize,
        since: Instant,
    },
    Dead,
}

/// One workload's chain through the job queue.
struct Chain {
    name: String,
    shard: u32,
    executed: u64,
    /// Last good snapshot — input of the next (or in-flight) shard.
    /// Retained until the *next* snapshot arrives, so a lost worker
    /// only loses work, never state.
    snapshot: Option<Vec<u8>>,
    retries: u32,
    /// Workers that died while executing the chain's *current* shard
    /// (reset whenever a shard completes). One death is retryable
    /// (requeue + respawn a replacement); a second death without
    /// progress in between means the replacement died there too — a
    /// poison shard that would grind through the pool forever, so the
    /// suite fails instead.
    deaths: u32,
}

/// The multi-process shard scheduler. Construct with connected
/// [`WorkerLink`]s ([`Coordinator::spawn`] for the common
/// re-invoke-current-binary case) and call [`Coordinator::run_suite`].
///
/// Coordinators built via [`Coordinator::spawn`] /
/// [`Coordinator::spawn_with`] **replenish the pool**: when a worker
/// dies mid-shard its chain is requeued from the last good snapshot
/// *and* a replacement process is spawned the same way the initial pool
/// was (bounded by a 2×-pool respawn budget per run), so the worker
/// count stays constant. A shard that kills two workers in a row fails
/// the suite ([`DistError::Failed`]) instead of cycling through fresh
/// processes. Coordinators over pre-connected
/// links ([`Coordinator::new`]) cannot respawn and simply shrink to the
/// survivors, failing with [`DistError::AllWorkersDied`] when none
/// remain — [`Coordinator::no_respawn`] opts a spawned pool into the
/// same behavior.
pub struct Coordinator {
    links: Vec<WorkerLink>,
    /// `Some` when the coordinator knows how to spawn replacements
    /// (built via `spawn`/`spawn_with`); the argument is the new
    /// worker's slot index.
    respawn: Option<RespawnFn>,
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers", &self.links.len())
            .field("respawn", &self.respawn.is_some())
            .finish()
    }
}

impl Coordinator {
    /// A coordinator over already-connected workers. Such a pool cannot
    /// be replenished (the coordinator does not know how its links were
    /// made): worker deaths shrink it to the survivors.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    pub fn new(links: Vec<WorkerLink>) -> Self {
        assert!(!links.is_empty(), "a run needs at least one worker");
        Coordinator {
            links,
            respawn: None,
        }
    }

    /// Spawns `workers` processes by re-invoking the current executable
    /// with `--worker` — the binary must call
    /// [`maybe_serve_stdio`](crate::worker::maybe_serve_stdio) first
    /// thing in `main` (the `dist_run` binary and the `distributed_run`
    /// example both do). Workers lost mid-run are replaced the same
    /// way, keeping the pool at `workers`.
    ///
    /// # Errors
    ///
    /// [`DistError::Spawn`] when a worker cannot be started.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn(workers: usize) -> Result<Self, DistError> {
        let exe = std::env::current_exe().map_err(|e| DistError::Spawn {
            message: format!("cannot resolve the current executable: {e}"),
        })?;
        Self::spawn_with(workers, move |_| {
            let mut cmd = Command::new(&exe);
            cmd.arg("--worker");
            cmd
        })
    }

    /// Spawns `workers` processes from per-worker commands — the hook
    /// for custom binaries, per-worker environment (the crash-injection
    /// tests use it), or remote-execution wrappers. A replacement for a
    /// worker lost mid-run is spawned with `command(i)` where `i` is
    /// the replacement's fresh slot index (≥ `workers`).
    ///
    /// # Errors
    ///
    /// [`DistError::Spawn`] when a worker cannot be started.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn spawn_with(
        workers: usize,
        mut command: impl FnMut(usize) -> Command + Send + 'static,
    ) -> Result<Self, DistError> {
        let links = (0..workers)
            .map(|i| WorkerLink::spawn(&mut command(i)))
            .collect::<Result<Vec<_>, _>>()?;
        let mut coordinator = Self::new(links);
        coordinator.respawn = Some(Box::new(command));
        Ok(coordinator)
    }

    /// Disables pool replenishment: worker deaths shrink the pool to
    /// the survivors even for a spawned coordinator (the strict mode
    /// the all-workers-dead tests pin down).
    pub fn no_respawn(mut self) -> Self {
        self.respawn = None;
        self
    }

    /// Number of connected workers (including replacements spawned
    /// mid-run; dead workers are not removed from the count until the
    /// run ends).
    pub fn workers(&self) -> usize {
        self.links.len()
    }

    /// Runs the whole suite across the worker pool and merges the
    /// results; see the [module docs](self) for the scheduling and
    /// failure model. Consumes the coordinator: workers are shut down
    /// (EOF on their job streams) and reaped before this returns,
    /// success or failure.
    ///
    /// # Errors
    ///
    /// See [`DistError`].
    pub fn run_suite(self, spec: &SuiteSpec) -> Result<DistOutcome, DistError> {
        let (tx, rx) = mpsc::channel::<PoolEvent>();
        let (mut pool, alive) = WorkerPool::start(self.links, self.respawn, tx);
        let result = schedule(spec, &rx, &mut pool, &alive);
        // Shutdown: EOF the job streams, reap children, join readers;
        // then drain the final Closed events the reader guards sent.
        pool.shutdown();
        while rx.try_recv().is_ok() {}
        result
    }
}

/// The scheduler loop proper (pool bring-up and shutdown handled by
/// [`Coordinator::run_suite`]). `alive` is the per-initial-slot
/// handshake aliveness [`WorkerPool::start`] reported.
fn schedule(
    spec: &SuiteSpec,
    rx: &mpsc::Receiver<PoolEvent>,
    pool: &mut WorkerPool<PoolEvent>,
    alive: &[bool],
) -> Result<DistOutcome, DistError> {
    let mut chains: Vec<Chain> = spec
        .workloads
        .iter()
        .map(|name| Chain {
            name: name.clone(),
            shard: 0,
            executed: 0,
            snapshot: None,
            retries: 0,
            deaths: 0,
        })
        .collect();
    let mut ready: VecDeque<usize> = (0..chains.len()).collect();
    let mut outcomes: Vec<Option<WorkloadOutcome>> = chains.iter().map(|_| None).collect();
    let mut states: Vec<WorkerState> = alive
        .iter()
        .map(|&ok| {
            if ok {
                WorkerState::Connecting
            } else {
                WorkerState::Dead
            }
        })
        .collect();
    let mut completed = 0usize;
    let mut jobs_dispatched = 0u64;
    let mut handoff_bytes = 0u64;
    let mut next_job = 1u64;

    // An initial worker that died before its handshake is a loss like
    // any other: replace it (replacements handshake inside the pool)
    // so a transient startup failure does not run the pool under
    // strength.
    for i in 0..states.len() {
        if matches!(states[i], WorkerState::Dead) {
            respawn_into(pool, &mut states);
        }
    }

    while completed < chains.len() {
        // Hand every ready chain head to an idle worker.
        'dispatch: while let Some(&chain_idx) = ready.front() {
            let Some(worker) = states.iter().position(|s| matches!(s, WorkerState::Idle)) else {
                break 'dispatch;
            };
            ready.pop_front();
            let chain = &mut chains[chain_idx];
            let job_id = next_job;
            next_job += 1;
            // The snapshot is *moved* into the job (it is the largest
            // object in the system — no clone on the dispatch hot
            // path) and restored right after the write, so the chain
            // still holds its last good snapshot if this worker is
            // later lost mid-shard.
            let job = Frame::Job(Job {
                id: job_id,
                workload: chain.name.clone(),
                scale: spec.scale,
                lanes: spec.lanes.clone(),
                shard: chain.shard,
                budget: spec.plan.budget(spec.total_fuel, chain.executed),
                total_fuel: spec.total_fuel,
                last: spec.plan.is_last(chain.shard as usize),
                snapshot: chain.snapshot.take(),
            });
            let wrote = pool.send(worker, &job);
            let Frame::Job(job) = job else { unreachable!() };
            chains[chain_idx].snapshot = job.snapshot;
            match wrote {
                Ok(()) => {
                    jobs_dispatched += 1;
                    obs::counter("dist_jobs_dispatched").inc();
                    states[worker] = WorkerState::Busy {
                        job: job_id,
                        chain: chain_idx,
                        since: Instant::now(),
                    };
                }
                Err(WireError::Codec(e)) => {
                    // The job itself cannot be framed (e.g. its
                    // snapshot outgrew the frame limit) — every worker
                    // would refuse it identically, so fail the run
                    // with the cause instead of cycling through the
                    // pool.
                    return Err(DistError::Failed {
                        workload: chains[chain_idx].name.clone(),
                        message: format!("job could not be framed: {e}"),
                    });
                }
                Err(WireError::Io(_)) => {
                    // The worker died between frames; its Closed event
                    // will arrive too — requeue, retry on another
                    // worker, and replace the lost process so the pool
                    // keeps its strength. The job never reached the
                    // worker, so this death does not count against the
                    // chain.
                    states[worker] = WorkerState::Dead;
                    pool.note_lost();
                    chains[chain_idx].retries += 1;
                    obs::counter("dist_requeues").inc();
                    journal::record(
                        EventKind::Requeue,
                        job_id,
                        chains[chain_idx].shard,
                        format!("job write to worker {worker} failed; requeued"),
                    );
                    ready.push_front(chain_idx);
                    respawn_into(pool, &mut states);
                }
            }
        }

        if states.iter().all(|s| matches!(s, WorkerState::Dead)) {
            return Err(DistError::AllWorkersDied {
                completed,
                total: chains.len(),
            });
        }

        let event = rx.recv().map_err(|_| DistError::AllWorkersDied {
            completed,
            total: chains.len(),
        })?;
        match event {
            PoolEvent::Frame(w, Frame::Hello { protocol, worker })
                if matches!(states[w], WorkerState::Connecting) =>
            {
                if protocol != PROTOCOL || worker != w as u32 {
                    return Err(DistError::Protocol(format!(
                        "worker {w} echoed protocol v{protocol} id {worker}, \
                         expected v{PROTOCOL} id {w}"
                    )));
                }
                states[w] = WorkerState::Idle;
            }
            PoolEvent::Frame(
                w,
                Frame::Snapshot {
                    job,
                    instructions,
                    bytes,
                },
            ) => {
                let chain_idx = expect_busy(&states, w, job)?;
                if let WorkerState::Busy { since, .. } = states[w] {
                    obs::histogram("dist_shard_wall_us")
                        .observe(since.elapsed().as_micros() as u64);
                }
                let chain = &mut chains[chain_idx];
                handoff_bytes += bytes.len() as u64;
                obs::counter("dist_handoff_bytes").add(bytes.len() as u64);
                chain.executed = instructions;
                chain.shard += 1;
                chain.snapshot = Some(bytes);
                // Progress clears the poison-shard suspicion: only
                // deaths on the *same* shard count together.
                chain.deaths = 0;
                ready.push_back(chain_idx);
                states[w] = WorkerState::Idle;
            }
            PoolEvent::Frame(w, Frame::Report(report)) => {
                let chain_idx = expect_busy(&states, w, report.job)?;
                if let WorkerState::Busy { since, .. } = states[w] {
                    obs::histogram("dist_shard_wall_us")
                        .observe(since.elapsed().as_micros() as u64);
                }
                let chain = &mut chains[chain_idx];
                outcomes[chain_idx] = Some(WorkloadOutcome {
                    workload: chain.name.clone(),
                    instructions: report.instructions,
                    shards_run: chain.shard + 1,
                    retries: chain.retries,
                    lanes: report.lanes,
                    state: report.state,
                });
                completed += 1;
                states[w] = WorkerState::Idle;
            }
            PoolEvent::Frame(w, Frame::Error { message, .. }) => {
                let workload = match states[w] {
                    WorkerState::Busy { chain, .. } => chains[chain].name.clone(),
                    _ => String::new(),
                };
                return Err(DistError::Failed { workload, message });
            }
            PoolEvent::Frame(w, frame) => {
                return Err(DistError::Protocol(format!(
                    "worker {w} sent an unexpected frame: {frame:?}"
                )));
            }
            PoolEvent::Closed(w) => {
                // A failed job write may already have marked the
                // worker Dead (and respawned a replacement); only the
                // first observation of a death counts.
                let was_alive = !matches!(states[w], WorkerState::Dead);
                let busy = match states[w] {
                    WorkerState::Busy { job, chain, .. } => Some((job, chain)),
                    _ => None,
                };
                if was_alive {
                    pool.note_lost();
                    states[w] = WorkerState::Dead;
                    let (job, shard) = busy
                        .map(|(job, chain)| (job, chains[chain].shard))
                        .unwrap_or((0, 0));
                    journal::record(
                        EventKind::WorkerDeath,
                        job,
                        shard,
                        format!("worker {w} connection closed"),
                    );
                }
                if let Some((job, chain_idx)) = busy {
                    // Lost mid-shard: requeue from the last good
                    // snapshot (still held here — work lost, state
                    // not).
                    let chain = &mut chains[chain_idx];
                    chain.retries += 1;
                    chain.deaths += 1;
                    if chain.deaths >= 2 && pool.can_respawn() {
                        // The replacement died on the same shard: a
                        // poison shard would grind through fresh
                        // processes forever, so fail with the cause.
                        journal::record(
                            EventKind::PoisonShard,
                            job,
                            chain.shard,
                            format!("workload '{}' killed {} workers", chain.name, chain.deaths),
                        );
                        return Err(DistError::Failed {
                            workload: chain.name.clone(),
                            message: format!(
                                "shard {} killed {} workers in a row (no \
                                 completed shard in between): poison shard",
                                chain.shard, chain.deaths
                            ),
                        });
                    }
                    obs::counter("dist_requeues").inc();
                    journal::record(
                        EventKind::Requeue,
                        job,
                        chain.shard,
                        format!("worker {w} died mid-shard; requeued '{}'", chain.name),
                    );
                    ready.push_front(chain_idx);
                }
                // Replace the lost process — whether it was busy,
                // idle, or still connecting — so the pool keeps its
                // strength.
                if was_alive {
                    respawn_into(pool, &mut states);
                }
            }
            PoolEvent::Garbled(w, e) => {
                return Err(DistError::Protocol(format!(
                    "worker {w} produced a malformed frame stream: {e}"
                )));
            }
        }
    }

    Ok(DistOutcome {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("all chains completed"))
            .collect(),
        workers_lost: pool.lost(),
        workers_respawned: pool.respawned(),
        jobs_dispatched,
        handoff_bytes,
    })
}

/// Asks the pool for a replacement worker and mirrors the new slots
/// into the scheduler's state table.
fn respawn_into(pool: &mut WorkerPool<PoolEvent>, states: &mut Vec<WorkerState>) {
    for (slot, ok) in pool.respawn_worker() {
        journal::record(
            EventKind::WorkerRespawn,
            0,
            slot as u32,
            if ok {
                "replacement worker spawned"
            } else {
                "replacement worker failed to spawn"
            },
        );
        states.push(if ok {
            WorkerState::Connecting
        } else {
            WorkerState::Dead
        });
    }
}

/// The chain a busy worker's reply belongs to; protocol error if the
/// worker is not busy or echoes the wrong job id.
fn expect_busy(states: &[WorkerState], worker: usize, job: u64) -> Result<usize, DistError> {
    match states[worker] {
        WorkerState::Busy {
            job: expect, chain, ..
        } if expect == job => Ok(chain),
        WorkerState::Busy { job: expect, .. } => Err(DistError::Protocol(format!(
            "worker {worker} answered job {job}, expected {expect}"
        ))),
        _ => Err(DistError::Protocol(format!(
            "worker {worker} answered job {job} while not busy"
        ))),
    }
}

// The socket-pair transport these tests drive is Unix-only (process
// pipes, the production transport, are portable and covered by the
// root-level `distributed_equivalence` suite); the portable tests
// below the gated block run everywhere.
#[cfg(all(test, unix))]
mod unix_tests {
    use super::*;
    use crate::wire::{write_frame, FrameReader};
    use crate::worker::Worker;
    use std::os::unix::net::UnixStream;

    /// A coordinator over `n` worker *threads* connected by Unix socket
    /// pairs — the transport without the process spawn, so the unit
    /// tests stay fast and hermetic. (Real process spawning is covered
    /// by `tests/distributed_equivalence.rs` at the repo root and the
    /// `distributed_run` example.)
    fn thread_coordinator(n: usize) -> (Coordinator, Vec<std::thread::JoinHandle<()>>) {
        let mut links = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let (ours, theirs) = UnixStream::pair().expect("socketpair");
            links.push(WorkerLink::from_unix(ours).expect("clone"));
            handles.push(std::thread::spawn(move || {
                let reader = theirs.try_clone().expect("clone");
                let _ = Worker::new().serve(reader, theirs);
            }));
        }
        (Coordinator::new(links), handles)
    }

    fn small_spec() -> SuiteSpec {
        SuiteSpec::new(
            ["compress", "li"],
            Scale::Test,
            vec![LaneSpec::Str { tus: 4 }, LaneSpec::Idle { tus: 4 }],
            Plan::sliced(20_000),
        )
    }

    #[test]
    fn socketpair_suite_is_bit_identical_to_single_pass() {
        let spec = small_spec();
        let (coordinator, handles) = thread_coordinator(2);
        let outcome = coordinator.run_suite(&spec).expect("suite runs");
        assert_eq!(outcome.outcomes.len(), 2);
        assert_eq!(outcome.workers_lost, 0);
        assert!(outcome.handoff_bytes > 0, "chains crossed checkpoints");
        for o in &outcome.outcomes {
            assert!(
                o.shards_run > 1,
                "{} ran {} shards",
                o.workload,
                o.shards_run
            );
            assert_eq!(o.retries, 0);
        }
        outcome.verify_single_pass(&spec).expect("bit-identical");
        for h in handles {
            h.join().expect("worker thread exits cleanly");
        }
    }

    #[test]
    fn one_worker_is_enough() {
        let spec = small_spec();
        let (coordinator, handles) = thread_coordinator(1);
        let outcome = coordinator.run_suite(&spec).expect("suite runs");
        outcome.verify_single_pass(&spec).expect("bit-identical");
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn unknown_workload_fails_the_run() {
        let spec = SuiteSpec::new(
            ["specmark"],
            Scale::Test,
            vec![LaneSpec::Str { tus: 4 }],
            Plan::sliced(10_000),
        );
        let (coordinator, handles) = thread_coordinator(1);
        let err = coordinator.run_suite(&spec).expect_err("must fail");
        assert!(matches!(
            err,
            DistError::Failed { ref workload, .. } if workload == "specmark"
        ));
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn dead_on_arrival_workers_fail_cleanly() {
        // Workers whose far end is closed before the handshake: the
        // run reports AllWorkersDied instead of hanging.
        let mut links = Vec::new();
        for _ in 0..2 {
            let (ours, theirs) = UnixStream::pair().expect("socketpair");
            drop(theirs);
            links.push(WorkerLink::from_unix(ours).expect("clone"));
        }
        let err = Coordinator::new(links)
            .run_suite(&small_spec())
            .expect_err("must fail");
        assert!(matches!(
            err,
            DistError::AllWorkersDied { completed: 0, .. }
        ));
    }

    #[test]
    fn mid_run_worker_loss_requeues_from_the_last_snapshot() {
        // Two workers; one serves exactly one job then drops the
        // connection. The suite still completes bit-identically.
        let spec = small_spec();
        let mut links = Vec::new();
        let mut handles = Vec::new();
        for flaky in [true, false] {
            let (ours, theirs) = UnixStream::pair().expect("socketpair");
            links.push(WorkerLink::from_unix(ours).expect("clone"));
            handles.push(std::thread::spawn(move || {
                let reader = theirs.try_clone().expect("clone");
                if flaky {
                    // Serve the handshake plus one job by hand, then
                    // vanish (drop both halves).
                    let mut frames = FrameReader::new(reader);
                    let mut writer = theirs;
                    let Ok(Some(Frame::Hello { protocol, worker })) = frames.read_frame() else {
                        return;
                    };
                    write_frame(&mut writer, &Frame::Hello { protocol, worker }).unwrap();
                    // Receive a job and answer nothing: simulated loss
                    // mid-shard.
                    let _ = frames.read_frame();
                } else {
                    let _ = Worker::new().serve(reader, theirs);
                }
            }));
        }
        let outcome = Coordinator::new(links).run_suite(&spec).expect("completes");
        assert_eq!(outcome.workers_lost, 1);
        assert_eq!(
            outcome.outcomes.iter().map(|o| o.retries).sum::<u32>(),
            1,
            "exactly one chain was requeued"
        );
        outcome.verify_single_pass(&spec).expect("bit-identical");
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn garbled_worker_stream_is_a_protocol_error_not_worker_death() {
        // A "worker" that answers the handshake with garbage bytes: the
        // run must fail fast with Protocol (a deterministic peer bug),
        // not tear the link down as retryable death and end in a
        // misleading AllWorkersDied.
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let links = vec![WorkerLink::from_unix(ours).expect("clone")];
        let handle = std::thread::spawn(move || {
            use std::io::{Read, Write};
            let mut theirs = theirs;
            let mut sink = [0u8; 256];
            let _ = theirs.read(&mut sink); // swallow the Hello
            let _ = theirs.write_all(&[0xde, 0xad, 0xbe, 0xef].repeat(16));
            let _ = theirs.shutdown(std::net::Shutdown::Both);
        });
        let err = Coordinator::new(links)
            .run_suite(&small_spec())
            .expect_err("must fail");
        assert!(matches!(err, DistError::Protocol(_)), "got: {err}");
        handle.join().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lanes_are_the_20_point_grid() {
        let lanes = default_lanes();
        assert_eq!(lanes.len(), 20);
        assert!(lanes.iter().all(|l| l.validate().is_ok()));
    }

    #[test]
    fn misconfigured_binary_is_a_clean_spawn_error() {
        let err =
            Coordinator::spawn_with(1, |_| Command::new("/nonexistent/loopspec-worker-binary"))
                .expect_err("must fail");
        assert!(matches!(err, DistError::Spawn { .. }), "got: {err}");
        assert!(err.to_string().contains("spawn"), "{err}");
    }

    #[test]
    fn errors_display_their_cause() {
        for (e, needle) in [
            (
                DistError::Failed {
                    workload: "go".into(),
                    message: "boom".into(),
                },
                "go",
            ),
            (
                DistError::Failed {
                    workload: String::new(),
                    message: "handshake".into(),
                },
                "handshake",
            ),
            (
                DistError::AllWorkersDied {
                    completed: 3,
                    total: 18,
                },
                "3/18",
            ),
            (DistError::Protocol("bad echo".into()), "bad echo"),
            (
                DistError::Spawn {
                    message: "no such file".into(),
                },
                "spawn",
            ),
            (
                DistError::Mismatch {
                    workload: "li".into(),
                    what: "lane reports",
                },
                "lane reports",
            ),
            (DistError::Io(io::Error::other("io")), "i/o"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
