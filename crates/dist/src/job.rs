//! Typed replay-job specifications.
//!
//! A [`JobSpec`] is the one description of "what to replay" shared by
//! every driver in the system: the replay service submits it over the
//! wire ([`Frame::Submit`](crate::Frame::Submit)), `dist_run` expands
//! it into a [`SuiteSpec`], and the bench harness
//! derives its `ExecuteOptions` from it. The builder replaces the
//! loose `(workload, scale, lanes, plan, fuel)` tuples that used to be
//! assembled by hand at each call site:
//!
//! ```
//! use loopspec_dist::{JobSpec, Policy};
//!
//! let spec = JobSpec::new("compress")
//!     .policies([Policy::Str, Policy::StrNested { limit: 2 }])
//!     .tus([4, 16]);
//! assert_eq!(spec.lane_specs().len(), 4); // policies × tus
//! ```
//!
//! ## Content addressing
//!
//! [`JobSpec::fingerprint`] hashes the spec's canonical encoding —
//! **excluding the shard [`Plan`]** — into the 64-bit key the report
//! cache is addressed by. The plan is deliberately left out: the
//! distributed-equivalence suite proves lane reports are byte-identical
//! across every slicing, so two specs that differ only in how the work
//! is cut produce the same report and must hit the same cache line.

use std::fmt;

use loopspec_core::snap::{fnv1a, Dec, Enc, SnapError};
use loopspec_cpu::RunLimits;
use loopspec_mt::StreamError;
use loopspec_pipeline::Plan;
use loopspec_workloads::Scale;

use crate::coordinator::SuiteSpec;
use crate::wire::{load_scale, load_str, save_scale, save_str, LaneSpec};

/// Why a [`JobSpec`] failed admission ([`JobSpec::validate`]).
///
/// Lane errors come straight from the streaming layer's own
/// constructor ([`loopspec_mt::validate_tus`]), so a bad TU count is
/// reported with exactly the text `StreamEngine::try_new` would use;
/// everything else is a codec-style [`SnapError`]. Display forwards
/// the inner message verbatim either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// A non-lane field is invalid (workload name, lane-grid shape,
    /// fuel budget, kernel registry).
    Spec(SnapError),
    /// A lane is invalid (TU count outside the engine's range).
    Lanes(StreamError),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Spec(e) => e.fmt(f),
            JobError::Lanes(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Spec(e) => Some(e),
            JobError::Lanes(e) => Some(e),
        }
    }
}

impl From<SnapError> for JobError {
    fn from(e: SnapError) -> Self {
        JobError::Spec(e)
    }
}

impl From<StreamError> for JobError {
    fn from(e: StreamError) -> Self {
        JobError::Lanes(e)
    }
}

/// One speculation policy of a [`JobSpec`] grid — [`LaneSpec`] without
/// the thread-unit count (the spec crosses policies with its TU list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// No speculation (the baseline lane).
    Idle,
    /// Plain STR: speculate on the backward target.
    Str,
    /// STR(i): nested speculation up to `limit` levels.
    StrNested {
        /// Nesting limit (1 = innermost loops only).
        limit: u32,
    },
}

impl Policy {
    /// The [`LaneSpec`] for this policy at `tus` thread units.
    pub fn lane(self, tus: u32) -> LaneSpec {
        match self {
            Policy::Idle => LaneSpec::Idle { tus },
            Policy::Str => LaneSpec::Str { tus },
            Policy::StrNested { limit } => LaneSpec::StrNested { limit, tus },
        }
    }
}

/// A complete, typed description of one replay job: which workload, at
/// what scale, through which (policy × TU) engine grid, under what
/// fuel budget and shard plan. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload name (`loopspec_workloads::by_name`).
    pub workload: String,
    /// Workload scale.
    pub scale: Scale,
    /// Policy axis of the lane grid.
    pub policies: Vec<Policy>,
    /// Thread-unit axis of the lane grid.
    pub tus: Vec<u32>,
    /// Explicit lane list overriding the `policies × tus` cross
    /// product, for grids that are not a full rectangle.
    pub lanes: Option<Vec<LaneSpec>>,
    /// How the run is cut into snapshot-linked shards. Excluded from
    /// [`JobSpec::fingerprint`] — slicing never changes the report.
    pub plan: Plan,
    /// Total instruction budget.
    pub total_fuel: u64,
    /// Ask drivers that support it (the bench path) for the two-phase
    /// Figure 5 oracle alongside the grid.
    pub oracle: bool,
    /// Ask drivers that support it (the bench path) for the live-in
    /// data profile alongside the grid.
    pub dataspec: bool,
    /// Fingerprint of the kernel registry this spec was built against
    /// (see [`loopspec_isa::kernel::registry_fingerprint`]). Part of
    /// the report fingerprint — a `KernelCall`-bearing workload retires
    /// a different instruction stream under a different registry, so
    /// cached reports must never cross kernel-set boundaries — and
    /// checked by [`JobSpec::validate`] so a mismatched spec is
    /// rejected at admission, not detected mid-run.
    pub kernel_registry: u64,
}

impl JobSpec {
    /// A spec for `workload` with the standard defaults: test scale,
    /// the full paper grid (`{Idle, STR, STR(1..=3)} × {2,4,8,16}` —
    /// exactly [`default_lanes`](crate::default_lanes)), 25 k-fuel
    /// sliced shards, and the default CPU fuel budget.
    pub fn new(workload: impl Into<String>) -> Self {
        JobSpec {
            workload: workload.into(),
            scale: Scale::Test,
            policies: vec![
                Policy::Idle,
                Policy::Str,
                Policy::StrNested { limit: 1 },
                Policy::StrNested { limit: 2 },
                Policy::StrNested { limit: 3 },
            ],
            tus: vec![2, 4, 8, 16],
            lanes: None,
            plan: Plan::sliced(25_000),
            total_fuel: RunLimits::default().max_instrs,
            oracle: false,
            dataspec: false,
            kernel_registry: loopspec_isa::kernel::registry_fingerprint(),
        }
    }

    /// Sets the workload scale.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the policy axis of the lane grid.
    pub fn policies(mut self, policies: impl IntoIterator<Item = Policy>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Sets the thread-unit axis of the lane grid.
    pub fn tus(mut self, tus: impl IntoIterator<Item = u32>) -> Self {
        self.tus = tus.into_iter().collect();
        self
    }

    /// Overrides the `policies × tus` cross product with an explicit
    /// lane list.
    pub fn lanes(mut self, lanes: impl IntoIterator<Item = LaneSpec>) -> Self {
        self.lanes = Some(lanes.into_iter().collect());
        self
    }

    /// Sets the shard plan.
    pub fn plan(mut self, plan: Plan) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the total instruction budget.
    pub fn total_fuel(mut self, total_fuel: u64) -> Self {
        self.total_fuel = total_fuel;
        self
    }

    /// Requests the Figure 5 oracle (bench path only).
    pub fn oracle(mut self, oracle: bool) -> Self {
        self.oracle = oracle;
        self
    }

    /// Requests the live-in data profile (bench path only).
    pub fn dataspec(mut self, dataspec: bool) -> Self {
        self.dataspec = dataspec;
        self
    }

    /// The lane grid this spec describes: the explicit [`Self::lanes`]
    /// override if set, else the `tus × policies` cross product (outer
    /// loop over TUs — the [`default_lanes`](crate::default_lanes)
    /// order).
    pub fn lane_specs(&self) -> Vec<LaneSpec> {
        if let Some(lanes) = &self.lanes {
            return lanes.clone();
        }
        let mut lanes = Vec::with_capacity(self.tus.len() * self.policies.len());
        for &tus in &self.tus {
            for &policy in &self.policies {
                lanes.push(policy.lane(tus));
            }
        }
        lanes
    }

    /// Checks everything a worker or service would otherwise reject
    /// mid-run: a known workload name (a calibrated kernel, a
    /// well-formed `gen:<family>:<seed>` scenario, or a `kern:<kernel>`
    /// native driver), a non-empty valid lane grid, a non-zero fuel
    /// budget, and a kernel registry matching this build.
    ///
    /// # Errors
    ///
    /// [`JobError`] naming the offending field; bad TU counts carry
    /// the streaming layer's own message.
    pub fn validate(&self) -> Result<(), JobError> {
        if !loopspec_workloads::known_name(&self.workload) {
            return Err(SnapError::Corrupt {
                what: "unknown workload name",
            }
            .into());
        }
        let lanes = self.lane_specs();
        if lanes.is_empty() {
            return Err(SnapError::Corrupt {
                what: "empty lane grid",
            }
            .into());
        }
        for lane in &lanes {
            lane.validate()?;
        }
        if self.total_fuel == 0 {
            return Err(SnapError::Corrupt {
                what: "zero fuel budget",
            }
            .into());
        }
        if self.kernel_registry != loopspec_isa::kernel::registry_fingerprint() {
            return Err(SnapError::Corrupt {
                what: "kernel registry fingerprint",
            }
            .into());
        }
        Ok(())
    }

    /// The 64-bit content address of this spec: FNV-1a over the
    /// canonical encoding of every report-determining field. The shard
    /// [`Plan`] is excluded — slicing is proven report-invariant, so
    /// re-submitting the same study with a different shard size must
    /// hit the cache.
    pub fn fingerprint(&self) -> u64 {
        let mut enc = Enc::new();
        self.save_report_fields(&mut enc);
        fnv1a(&enc.into_bytes())
    }

    /// Every field that determines the report — the fingerprint domain.
    /// Lanes are canonicalized through [`Self::lane_specs`] so an
    /// explicit lane list and the equivalent cross product address the
    /// same cache line.
    fn save_report_fields(&self, enc: &mut Enc) {
        save_str(enc, &self.workload);
        save_scale(enc, self.scale);
        let lanes = self.lane_specs();
        enc.u64(lanes.len() as u64);
        for lane in &lanes {
            lane.save(enc);
        }
        enc.u64(self.total_fuel);
        enc.bool(self.oracle);
        enc.bool(self.dataspec);
        enc.u64(self.kernel_registry);
    }

    /// Wire encoding: the report-determining fields plus the plan
    /// (schedulers need it; the fingerprint ignores it).
    pub(crate) fn save(&self, enc: &mut Enc) {
        self.save_report_fields(enc);
        self.plan.save(enc);
    }

    /// Decodes a spec written by `save`. The lane grid comes back as
    /// an explicit lane list (the cross product was already expanded
    /// on the send side — the fingerprint is unchanged by that).
    pub(crate) fn load(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let workload = load_str(dec)?;
        let scale = load_scale(dec)?;
        // A lane spec is at least 5 encoded bytes (tag + tus).
        let n = dec.count_elems(5)?;
        let mut lanes = Vec::with_capacity(n);
        for _ in 0..n {
            lanes.push(LaneSpec::load(dec)?);
        }
        let total_fuel = dec.u64()?;
        let oracle = dec.bool()?;
        let dataspec = dec.bool()?;
        let kernel_registry = dec.u64()?;
        let plan = Plan::load(dec)?;
        Ok(JobSpec {
            workload,
            scale,
            policies: Vec::new(),
            tus: Vec::new(),
            lanes: Some(lanes),
            plan,
            total_fuel,
            oracle,
            dataspec,
            kernel_registry,
        })
    }

    /// The single-workload [`SuiteSpec`] this spec describes — the
    /// bridge onto the coordinator/worker scheduling core.
    pub fn suite(&self) -> SuiteSpec {
        let mut suite = SuiteSpec::new(
            [self.workload.clone()],
            self.scale,
            self.lane_specs(),
            self.plan,
        );
        suite.total_fuel = self.total_fuel;
        suite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::default_lanes;

    #[test]
    fn defaults_reproduce_the_paper_grid() {
        let spec = JobSpec::new("compress");
        assert_eq!(spec.lane_specs(), default_lanes());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn builder_crosses_policies_with_tus() {
        let spec = JobSpec::new("go")
            .policies([Policy::Idle, Policy::StrNested { limit: 2 }])
            .tus([4, 8]);
        assert_eq!(
            spec.lane_specs(),
            vec![
                LaneSpec::Idle { tus: 4 },
                LaneSpec::StrNested { limit: 2, tus: 4 },
                LaneSpec::Idle { tus: 8 },
                LaneSpec::StrNested { limit: 2, tus: 8 },
            ]
        );
    }

    #[test]
    fn explicit_lanes_override_the_cross_product() {
        let lanes = vec![LaneSpec::Str { tus: 32 }];
        let spec = JobSpec::new("compress").lanes(lanes.clone());
        assert_eq!(spec.lane_specs(), lanes);
    }

    #[test]
    fn fingerprint_ignores_the_plan_but_nothing_else() {
        let base = JobSpec::new("compress");
        let resliced = base.clone().plan(Plan::split(7));
        assert_eq!(base.fingerprint(), resliced.fingerprint());

        for other in [
            JobSpec::new("go"),
            base.clone().scale(Scale::Small),
            base.clone().tus([2, 4]),
            base.clone().policies([Policy::Str]),
            base.clone().total_fuel(999),
            base.clone().oracle(true),
            base.clone().dataspec(true),
        ] {
            assert_ne!(base.fingerprint(), other.fingerprint(), "{other:?}");
        }
    }

    #[test]
    fn explicit_lanes_equal_to_the_cross_product_share_a_fingerprint() {
        let implicit = JobSpec::new("compress");
        let explicit = JobSpec::new("compress").lanes(implicit.lane_specs());
        assert_eq!(implicit.fingerprint(), explicit.fingerprint());
    }

    #[test]
    fn wire_round_trip_preserves_fingerprint_and_grid() {
        let spec = JobSpec::new("compress")
            .scale(Scale::Small)
            .policies([Policy::Str, Policy::StrNested { limit: 3 }])
            .tus([2, 16])
            .plan(Plan::split(4))
            .total_fuel(1_000_000)
            .oracle(true);
        let mut enc = Enc::new();
        spec.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = JobSpec::load(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.fingerprint(), spec.fingerprint());
        assert_eq!(back.lane_specs(), spec.lane_specs());
        assert_eq!(back.plan, spec.plan);
        assert_eq!(back.total_fuel, spec.total_fuel);
        assert_eq!((back.oracle, back.dataspec), (spec.oracle, spec.dataspec));
    }

    #[test]
    fn validation_names_the_offending_field() {
        assert!(JobSpec::new("specmark").validate().is_err());
        assert!(JobSpec::new("compress").tus([]).validate().is_err());
        assert!(JobSpec::new("compress").tus([1]).validate().is_err());
        assert!(JobSpec::new("compress").total_fuel(0).validate().is_err());
    }

    #[test]
    fn validation_admits_generated_scenarios() {
        assert!(JobSpec::new("gen:chase:7").validate().is_ok());
        assert!(JobSpec::new("gen:mixed:123456789").validate().is_ok());
    }

    #[test]
    fn validation_rejects_malformed_gen_tokens() {
        // Every malformation admission control must stop before a
        // worker sees it: bad family, bad seed, bad shape.
        for name in [
            "gen:",
            "gen:chase",
            "gen:chase:",
            "gen:chase:seed",
            "gen:chase:-1",
            "gen:chase:1.5",
            "gen::7",
            "gen:unknownfamily:7",
            "gen:CHASE:7",
        ] {
            let err = JobSpec::new(name).validate();
            assert!(err.is_err(), "{name:?} must be rejected");
        }
        // Other fields are still checked for gen names.
        assert!(JobSpec::new("gen:chase:7")
            .total_fuel(0)
            .validate()
            .is_err());
        assert!(JobSpec::new("gen:chase:7").tus([]).validate().is_err());
    }

    #[test]
    fn gen_fingerprints_distinguish_family_and_seed() {
        let a = JobSpec::new("gen:chase:7");
        assert_ne!(a.fingerprint(), JobSpec::new("gen:chase:8").fingerprint());
        assert_ne!(a.fingerprint(), JobSpec::new("gen:trips:7").fingerprint());
        assert_eq!(a.fingerprint(), JobSpec::new("gen:chase:7").fingerprint());
    }

    #[test]
    fn bad_tu_rejection_text_matches_the_stream_engine() {
        // The same bad TU count must read identically whether it is
        // rejected at job admission or by the engine constructor.
        let admission = JobSpec::new("compress").tus([1]).validate().unwrap_err();
        let engine = loopspec_mt::StreamEngine::try_new(loopspec_mt::IdlePolicy, 1).unwrap_err();
        assert_eq!(admission.to_string(), engine.to_string());
        assert_eq!(admission.to_string(), "num_tus must be in 2..=4096 (got 1)");
    }

    #[test]
    fn foreign_kernel_registries_change_the_fingerprint_and_fail_validation() {
        let base = JobSpec::new("compress");
        let mut foreign = base.clone();
        foreign.kernel_registry ^= 1;
        assert_ne!(
            base.fingerprint(),
            foreign.fingerprint(),
            "kernel registry must be part of the cache address"
        );
        assert!(base.validate().is_ok());
        assert!(
            foreign.validate().is_err(),
            "a spec from a foreign kernel registry must be rejected at admission"
        );
    }

    #[test]
    fn suite_bridges_onto_the_coordinator_spec() {
        let spec = JobSpec::new("compress").total_fuel(123);
        let suite = spec.suite();
        assert_eq!(suite.workloads, vec!["compress".to_string()]);
        assert_eq!(suite.lanes, spec.lane_specs());
        assert_eq!(suite.total_fuel, 123);
        assert_eq!(suite.plan, spec.plan);
    }
}
