//! The worker side of the protocol: a loop that turns [`Job`] frames
//! into [`Frame::Snapshot`] / [`Frame::Report`] answers.
//!
//! A worker owns nothing between jobs except a program cache: every
//! shard starts from a fresh [`Session`] and fresh sinks, restored
//! entirely from the snapshot bytes inside the job — the same
//! "nothing survives but the bytes" discipline
//! [`ShardedRun`](loopspec_pipeline::ShardedRun) enforces in-thread,
//! now with a process boundary underneath it. Shard execution itself is
//! [`run_shard`], the same scheduling-core primitive every other driver
//! uses, so a worker process cannot drift from the in-thread semantics.
//!
//! Deterministic failures (unknown workload, invalid lane, snapshot
//! that does not decode) are answered with [`Frame::Error`] — retrying
//! them elsewhere would fail identically, so the coordinator fails the
//! run instead of requeueing. Transport loss (the coordinator sees EOF)
//! is the *retryable* failure mode; the coordinator requeues the lost
//! job from its last good snapshot.

use std::collections::HashMap;
use std::io::{self, Read, Write};

use loopspec_asm::Program;
use loopspec_cpu::RunLimits;
use loopspec_mt::EngineGrid;
use loopspec_pipeline::{run_shard, Session, Snapshot};
use loopspec_workloads::Scale;

use crate::wire::{write_frame, Frame, FrameReader, Job, LaneSpec, Report, WireError, PROTOCOL};

/// Environment variable enabling the crash-injection test hook: a
/// worker with `LOOPSPEC_DIST_CRASH_AFTER=n` exits abruptly (no reply,
/// exit code 3) upon receiving its (n+1)-th job — from the
/// coordinator's side, a worker dying mid-shard.
pub const CRASH_AFTER_ENV: &str = "LOOPSPEC_DIST_CRASH_AFTER";

/// The worker loop configuration. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Worker {
    /// Crash-injection hook: abruptly exit the process upon receiving
    /// job number `n` (0-based) instead of answering it.
    crash_after_jobs: Option<u32>,
}

impl Worker {
    /// A well-behaved worker.
    pub fn new() -> Self {
        Worker::default()
    }

    /// Test hook: the worker will `process::exit(3)` — no reply, no
    /// cleanup — upon receiving its `jobs`-th job (0-based), simulating
    /// a machine lost mid-shard.
    pub fn crash_after_jobs(mut self, jobs: u32) -> Self {
        self.crash_after_jobs = Some(jobs);
        self
    }

    /// Serves jobs from `reader`/`writer` until the coordinator closes
    /// the stream: handshake (read the coordinator's
    /// [`Frame::Hello`], echo it), then answer [`Job`]s one at a time.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the transport fails or the stream decodes to
    /// garbage; a protocol-version mismatch is also a [`WireError`]
    /// (after answering with a [`Frame::Error`] so the coordinator can
    /// log the cause).
    pub fn serve(self, reader: impl Read, mut writer: impl Write) -> Result<(), WireError> {
        let mut reader = FrameReader::new(reader);
        match reader.read_frame()? {
            Some(Frame::Hello { protocol, worker }) if protocol == PROTOCOL => {
                write_frame(&mut writer, &Frame::Hello { protocol, worker })?;
            }
            Some(Frame::Hello { protocol, .. }) => {
                write_frame(
                    &mut writer,
                    &Frame::Error {
                        job: 0,
                        message: format!(
                            "protocol mismatch: coordinator speaks v{protocol}, worker v{PROTOCOL}"
                        ),
                    },
                )?;
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "protocol version mismatch",
                )));
            }
            Some(_) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected Hello as the first frame",
                )));
            }
            None => return Ok(()),
        }

        let mut programs: HashMap<(String, Scale), Program> = HashMap::new();
        let mut jobs_served = 0u32;
        while let Some(frame) = reader.read_frame()? {
            let Frame::Job(job) = frame else {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "worker expected a Job frame",
                )));
            };
            if self.crash_after_jobs == Some(jobs_served) {
                // Simulated machine loss: vanish without a reply.
                std::process::exit(3);
            }
            jobs_served += 1;
            let job_id = job.id;
            let answer = execute_job(&job, &mut programs).unwrap_or_else(|message| Frame::Error {
                job: job_id,
                message,
            });
            match write_frame(&mut writer, &answer) {
                Ok(()) => {}
                // An unframeable reply (e.g. a snapshot over the frame
                // limit) is deterministic: report it as a job error so
                // the coordinator fails the run with the cause instead
                // of requeueing into the same wall.
                Err(WireError::Codec(e)) => write_frame(
                    &mut writer,
                    &Frame::Error {
                        job: job_id,
                        message: format!("reply could not be framed: {e}"),
                    },
                )?,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Runs one shard and builds the answer frame; a `String` error becomes
/// a [`Frame::Error`] (deterministic failure).
fn execute_job(
    job: &Job,
    programs: &mut HashMap<(String, Scale), Program>,
) -> Result<Frame, String> {
    let key = (job.workload.clone(), job.scale);
    let program = match programs.entry(key) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            let program = loopspec_workloads::build_named(&job.workload, job.scale)
                .ok_or_else(|| format!("unknown workload '{}'", job.workload))?
                .map_err(|e| format!("workload '{}' failed to assemble: {e}", job.workload))?;
            e.insert(program)
        }
    };

    let grid = LaneSpec::build_grid(&job.lanes).map_err(|e| format!("bad lane spec: {e}"))?;
    // The session owns its sink: no borrow ties the grid's lifetime to
    // this stack frame, and `into_sink` hands it back once the shard
    // is done.
    let mut session = Session::new();
    session.add_sink(grid);
    if let Some(bytes) = &job.snapshot {
        let snapshot =
            Snapshot::from_bytes(bytes).map_err(|e| format!("snapshot rejected: {e}"))?;
        session
            .resume(&snapshot)
            .map_err(|e| format!("resume failed: {e}"))?;
    }
    let step = run_shard(
        program,
        RunLimits::with_fuel(job.total_fuel),
        job.budget,
        job.last,
        &mut session,
    )
    .map_err(|e| format!("shard execution failed: {e}"))?;
    let grid: EngineGrid = session.into_sink(0).expect("slot 0 owns the grid");

    Ok(match step.handoff {
        Some(bytes) => Frame::Snapshot {
            job: job.id,
            instructions: step.summary.instructions,
            bytes,
        },
        None => {
            let lanes = grid
                .reports()
                .expect("stream ended in this shard")
                .iter()
                .map(Into::into)
                .collect();
            let mut enc = loopspec_core::snap::Enc::new();
            loopspec_core::SnapshotState::save_state(&grid, &mut enc);
            Frame::Report(Report {
                job: job.id,
                instructions: step.summary.instructions,
                lanes,
                state: enc.into_bytes(),
            })
        }
    })
}

/// If the process was invoked as a worker (`--worker` anywhere in its
/// arguments), serve jobs on stdin/stdout and **exit the process** —
/// never returns in that case. Call this first in `main` of any binary
/// a coordinator re-invokes (the `dist_run` binary and the
/// `distributed_run` example both do).
///
/// Honors the [`CRASH_AFTER_ENV`] crash-injection hook.
pub fn maybe_serve_stdio() {
    if std::env::args().any(|a| a == "--worker") {
        let mut worker = Worker::new();
        if let Some(n) = std::env::var(CRASH_AFTER_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
        {
            worker = worker.crash_after_jobs(n);
        }
        let code = match worker.serve(io::stdin().lock(), io::stdout().lock()) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("worker: {e}");
                1
            }
        };
        std::process::exit(code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::LaneSpec;

    /// Drives a worker over in-memory byte streams: scripted
    /// coordinator frames in, worker answers out.
    fn converse(frames: &[Frame]) -> Vec<Frame> {
        let mut input = Vec::new();
        for f in frames {
            write_frame(&mut input, f).unwrap();
        }
        let mut output = Vec::new();
        Worker::new().serve(&input[..], &mut output).unwrap();
        let mut reader = FrameReader::new(&output[..]);
        let mut answers = Vec::new();
        while let Some(f) = reader.read_frame().unwrap() {
            answers.push(f);
        }
        answers
    }

    fn hello() -> Frame {
        Frame::Hello {
            protocol: PROTOCOL,
            worker: 5,
        }
    }

    fn job(id: u64, budget: u64, snapshot: Option<Vec<u8>>) -> Frame {
        Frame::Job(Job {
            id,
            workload: "compress".into(),
            scale: Scale::Test,
            lanes: vec![LaneSpec::Str { tus: 4 }],
            shard: 0,
            budget,
            total_fuel: RunLimits::default().max_instrs,
            last: false,
            snapshot,
        })
    }

    #[test]
    fn handshake_echoes_the_hello() {
        let answers = converse(&[hello()]);
        assert_eq!(answers, vec![hello()]);
    }

    #[test]
    fn protocol_mismatch_is_refused() {
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &Frame::Hello {
                protocol: PROTOCOL + 1,
                worker: 0,
            },
        )
        .unwrap();
        let mut output = Vec::new();
        assert!(Worker::new().serve(&input[..], &mut output).is_err());
        let mut reader = FrameReader::new(&output[..]);
        assert!(matches!(
            reader.read_frame().unwrap(),
            Some(Frame::Error { job: 0, .. })
        ));
    }

    #[test]
    fn a_chain_of_jobs_reaches_a_report() {
        // First job pauses at a checkpoint; feeding the snapshot back
        // in a fresh job finishes the workload.
        let answers = converse(&[hello(), job(1, 10_000, None)]);
        let Frame::Snapshot {
            job: 1,
            instructions,
            bytes,
        } = &answers[1]
        else {
            panic!("expected a snapshot, got {:?}", answers[1]);
        };
        assert_eq!(*instructions, 10_000);

        let answers = converse(&[hello(), {
            let Frame::Job(mut j) = job(2, u64::MAX, Some(bytes.clone())) else {
                unreachable!()
            };
            j.shard = 1;
            Frame::Job(j)
        }]);
        let Frame::Report(report) = &answers[1] else {
            panic!("expected a report, got {:?}", answers[1]);
        };
        assert_eq!(report.job, 2);
        assert!(report.instructions > 10_000);
        assert_eq!(report.lanes.len(), 1);
        assert_eq!(report.lanes[0].policy, "STR");
        assert!(!report.state.is_empty());
    }

    #[test]
    fn deterministic_failures_answer_with_error_frames() {
        // Unknown workload.
        let mut bad = job(7, 100, None);
        if let Frame::Job(j) = &mut bad {
            j.workload = "specmark".into();
        }
        let answers = converse(&[hello(), bad, job(8, 100_000_000, None)]);
        assert!(matches!(&answers[1], Frame::Error { job: 7, .. }));
        // The worker survives and serves the next job.
        assert!(matches!(&answers[2], Frame::Report(r) if r.job == 8));

        // Corrupt snapshot bytes.
        let answers = converse(&[hello(), job(9, 100, Some(vec![1, 2, 3]))]);
        assert!(
            matches!(&answers[1], Frame::Error { job: 9, message } if message.contains("snapshot"))
        );

        // Invalid lane.
        let mut bad = job(10, 100, None);
        if let Frame::Job(j) = &mut bad {
            j.lanes = vec![LaneSpec::Str { tus: 1 }];
        }
        let answers = converse(&[hello(), bad]);
        assert!(
            matches!(&answers[1], Frame::Error { job: 10, message } if message.contains("lane"))
        );
    }

    #[test]
    fn empty_stream_is_a_clean_exit() {
        let mut output = Vec::new();
        Worker::new().serve(&[][..], &mut output).unwrap();
        assert!(output.is_empty());
    }
}
