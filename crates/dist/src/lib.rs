//! # loopspec-dist — multi-process distributed replay
//!
//! The checkpoint subsystem made a [`Session`](loopspec_pipeline::Session)
//! portable: everything a run needs lives in a deterministic byte
//! [`Snapshot`](loopspec_pipeline::Snapshot), and
//! [`ShardedRun`](loopspec_pipeline::ShardedRun) proved that a trace
//! split into snapshot-linked shards replays **bit-identically** to a
//! single pass. This crate puts a process boundary (and, by extension,
//! a machine boundary) under that proof — the software analogue of
//! Prophet-style CMP speculation, where loop-level work units ship to
//! independent execution contexts with only small state handoffs:
//!
//! * [`wire`] — a std-only, length-prefixed, FNV-checksummed frame
//!   protocol (`Hello`/`Job`/`Snapshot`/`Report`/`Error`, with a
//!   protocol-version echo) over any byte stream: the stdio pipes of a
//!   spawned worker, or a Unix socket.
//! * [`worker`] — the serve loop: receive a workload + lane
//!   configuration + fuel budget + optional predecessor snapshot,
//!   resume a fresh `Session`, run one shard through the shared
//!   [`run_shard`](loopspec_pipeline::run_shard) scheduling core, and
//!   answer with the next checkpoint or the final per-lane reports.
//! * [`coordinator`] — spawn N worker processes (re-invoking the
//!   current binary), schedule the workload suite as a job queue of
//!   snapshot-linked chains, reassign jobs when a worker dies (dropped
//!   connection ⇒ requeue from the last good snapshot), and merge
//!   reports with a bit-identical check against the single-pass
//!   result.
//!
//! ```no_run
//! use loopspec_dist::{Coordinator, SuiteSpec};
//! use loopspec_workloads::Scale;
//!
//! // In main(), before anything else — the spawned workers re-enter
//! // this same binary with `--worker`:
//! loopspec_dist::worker::maybe_serve_stdio();
//!
//! let spec = SuiteSpec::full_grid(Scale::Test, 25_000);
//! let outcome = Coordinator::spawn(4)?.run_suite(&spec)?;
//! outcome.verify_single_pass(&spec)?; // byte-identical, or an error
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `distributed_equivalence` suite at the repo root holds this to
//! the same standard as every other driver: all 18 workloads, N ∈
//! {2, 4} worker processes, byte-identical lane reports *and* final
//! sink state — including after an injected worker crash.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod coordinator;
pub mod job;
pub mod pool;
pub mod wire;
pub mod worker;

pub use coordinator::{
    default_lanes, single_pass_outcome, Coordinator, DistError, DistOutcome, SuiteSpec, WorkerLink,
    WorkloadOutcome,
};
pub use job::{JobError, JobSpec, Policy};
pub use pool::{PoolEvent, RespawnFn, WorkerPool};
pub use wire::{
    Frame, Job, LaneReport, LaneSpec, Report, SvcStats, WireError, MAX_FRAME, PROTOCOL,
};
pub use worker::Worker;
