//! The coordinator ↔ worker frame protocol.
//!
//! Everything that crosses a worker boundary is a [`Frame`]: a tagged
//! payload encoded with the `isa::snap` [`Enc`]/[`Dec`] primitives and
//! wrapped in the length-prefixed, FNV-checksummed frame container
//! (`len | payload | fnv1a`, see [`loopspec_core::snap::frame`]), so
//! the byte stream (a pipe to a spawned process, or a Unix socket) is
//! self-delimiting and self-checking. Incremental decoding reuses
//! [`FrameBuf`], which verifies declared
//! lengths against a limit *before* allocating — a corrupt or hostile
//! length prefix can never trigger an OOM-sized reservation.
//!
//! The conversation (see [`Frame`] for each frame's fields):
//!
//! | direction | frame | meaning |
//! |---|---|---|
//! | C → W | [`Frame::Hello`] | protocol version + assigned worker id |
//! | W → C | [`Frame::Hello`] | the same values echoed back (version handshake) |
//! | C → W | [`Frame::Job`] | run one shard: workload + lanes + fuel budget + optional predecessor snapshot |
//! | W → C | [`Frame::Snapshot`] | shard paused at a checkpoint: serialized [`Snapshot`](loopspec_pipeline::Snapshot) bytes for the successor shard |
//! | W → C | [`Frame::Report`] | stream ended in this shard: per-lane reports + final sink state bytes |
//! | W → C | [`Frame::Error`] | the job failed deterministically (unknown workload, bad lane, snapshot mismatch) |
//!
//! ```
//! use loopspec_dist::wire::{Frame, PROTOCOL};
//!
//! let hello = Frame::Hello { protocol: PROTOCOL, worker: 3 };
//! let bytes = hello.encode();
//! assert_eq!(Frame::decode(&bytes)?, hello);
//! # Ok::<(), loopspec_core::snap::SnapError>(())
//! ```

use std::fmt;
use std::io::{self, Read, Write};

use loopspec_core::snap::{fnv1a, Dec, Enc, FrameBuf, SnapError};
use loopspec_mt::{EngineGrid, EngineReport, StreamError};
use loopspec_workloads::Scale;

use crate::job::JobSpec;

/// Protocol version. The coordinator sends it in its [`Frame::Hello`];
/// the worker echoes it back, and either side drops the connection on a
/// mismatch — a worker from another build can never silently compute
/// with different semantics.
///
/// v2 added the replay-service frames ([`Frame::Submit`],
/// [`Frame::Done`], [`Frame::StatsRequest`], [`Frame::Stats`],
/// [`Frame::Rejected`]).
///
/// v3 added `Scale::Huge` (wire tag 3) and the kernel-registry
/// fingerprint inside every encoded [`JobSpec`] — a coordinator and a
/// worker built with different kernel registries must never exchange
/// jobs, because their "identical" workloads would retire different
/// instruction streams.
pub const PROTOCOL: u32 = 3;

/// Default [`FrameBuf`] payload limit: large enough for any snapshot a
/// workload produces (CPU memory pages dominate), small enough that a
/// corrupt length prefix cannot balloon memory.
pub const MAX_FRAME: usize = 64 << 20;

/// One engine-lane configuration inside a [`Frame::Job`] — the wire
/// twin of the three `EngineGrid::push_*` constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneSpec {
    /// `EngineGrid::push_idle(tus)`.
    Idle {
        /// Thread units.
        tus: u32,
    },
    /// `EngineGrid::push_str(tus)`.
    Str {
        /// Thread units.
        tus: u32,
    },
    /// `EngineGrid::push_str_nested(limit, tus)`.
    StrNested {
        /// The STR(i) nesting limit.
        limit: u32,
        /// Thread units.
        tus: u32,
    },
}

impl LaneSpec {
    /// The thread-unit count of this lane.
    pub fn tus(&self) -> u32 {
        match *self {
            LaneSpec::Idle { tus } | LaneSpec::Str { tus } | LaneSpec::StrNested { tus, .. } => tus,
        }
    }

    /// Checks the invariants `EngineGrid` would otherwise panic on, so
    /// a worker can reject a malformed job with a [`Frame::Error`]
    /// instead of dying.
    pub fn validate(&self) -> Result<(), StreamError> {
        // Route through the streaming layer's single TU-range
        // constructor so admission control and
        // `StreamEngine::try_new` reject the same input with the same
        // message.
        loopspec_mt::validate_tus(self.tus() as usize)
    }

    /// Appends this lane to `grid`.
    pub fn add_to(&self, grid: &mut EngineGrid) {
        match *self {
            LaneSpec::Idle { tus } => grid.push_idle(tus as usize),
            LaneSpec::Str { tus } => grid.push_str(tus as usize),
            LaneSpec::StrNested { limit, tus } => grid.push_str_nested(limit, tus as usize),
        };
    }

    /// Builds an [`EngineGrid`] with one lane per spec, in order.
    ///
    /// # Errors
    ///
    /// Rejects any lane [`LaneSpec::validate`] rejects.
    pub fn build_grid(lanes: &[LaneSpec]) -> Result<EngineGrid, StreamError> {
        let mut grid = EngineGrid::new();
        for lane in lanes {
            lane.validate()?;
            lane.add_to(&mut grid);
        }
        Ok(grid)
    }

    pub(crate) fn save(&self, enc: &mut Enc) {
        match *self {
            LaneSpec::Idle { tus } => {
                enc.u8(0);
                enc.u32(tus);
            }
            LaneSpec::Str { tus } => {
                enc.u8(1);
                enc.u32(tus);
            }
            LaneSpec::StrNested { limit, tus } => {
                enc.u8(2);
                enc.u32(limit);
                enc.u32(tus);
            }
        }
    }

    pub(crate) fn load(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match dec.u8()? {
            0 => LaneSpec::Idle { tus: dec.u32()? },
            1 => LaneSpec::Str { tus: dec.u32()? },
            2 => LaneSpec::StrNested {
                limit: dec.u32()?,
                tus: dec.u32()?,
            },
            _ => {
                return Err(SnapError::Corrupt {
                    what: "lane spec tag",
                })
            }
        })
    }
}

/// One shard of one workload's replay — the unit the coordinator's job
/// queue schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Coordinator-assigned id, echoed in every response frame.
    pub id: u64,
    /// Workload name (`loopspec_workloads::by_name`).
    pub workload: String,
    /// Workload scale.
    pub scale: Scale,
    /// Engine lanes to fan the shard's events into (the sink
    /// configuration — snapshots carry only mutable state, so every
    /// shard of a chain must name the same lanes).
    pub lanes: Vec<LaneSpec>,
    /// Shard index within the chain (0-based; diagnostic).
    pub shard: u32,
    /// Fuel for **this shard** (already clamped by the scheduler).
    pub budget: u64,
    /// Total instruction budget of the whole run — reaching it ends
    /// the stream like a fuel-truncated single pass.
    pub total_fuel: u64,
    /// Force an explicit end-of-stream when the budget is exhausted
    /// (the final slice of a split plan).
    pub last: bool,
    /// The predecessor shard's serialized snapshot; `None` for the
    /// first shard of a chain.
    pub snapshot: Option<Vec<u8>>,
}

/// One lane's final engine report in wire form — a field-for-field,
/// integer-exact copy of [`EngineReport`], so two reports are equal
/// *iff* their encodings are byte-identical. This is the unit the
/// distributed-equivalence check compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneReport {
    /// Policy name (e.g. `"STR"`).
    pub policy: String,
    /// Thread units (`0` = unbounded).
    pub tus: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// The seven speculation counters, in `SpecStats` field order.
    pub spec: [u64; 7],
}

impl LaneReport {
    /// Threads per cycle — same definition as [`EngineReport::tpc`].
    pub fn tpc(&self) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    fn save(&self, enc: &mut Enc) {
        save_str(enc, &self.policy);
        enc.u64(self.tus);
        enc.u64(self.instructions);
        enc.u64(self.cycles);
        for v in self.spec {
            enc.u64(v);
        }
    }

    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let policy = load_str(dec)?;
        let tus = dec.u64()?;
        let instructions = dec.u64()?;
        let cycles = dec.u64()?;
        let mut spec = [0u64; 7];
        for v in &mut spec {
            *v = dec.u64()?;
        }
        Ok(LaneReport {
            policy,
            tus,
            instructions,
            cycles,
            spec,
        })
    }
}

impl From<&EngineReport> for LaneReport {
    fn from(r: &EngineReport) -> Self {
        LaneReport {
            policy: r.policy.to_string(),
            tus: r.tus.map_or(0, |t| t as u64),
            instructions: r.instructions,
            cycles: r.cycles,
            spec: [
                r.spec.spec_actions,
                r.spec.threads_spawned,
                r.spec.verified,
                r.spec.squashed_misspec,
                r.spec.squashed_policy,
                r.spec.squashed_stale,
                r.spec.instr_to_outcome_sum,
            ],
        }
    }
}

/// A worker's final answer for one workload chain: the stream ended in
/// its shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The finishing job's id.
    pub job: u64,
    /// Total instructions of the whole run.
    pub instructions: u64,
    /// One report per lane, in lane order.
    pub lanes: Vec<LaneReport>,
    /// The final grid's full `save_state` bytes — deterministic (equal
    /// state ⇒ equal bytes), so the coordinator's bit-identity check
    /// can compare entire sink states, not just reports.
    pub state: Vec<u8>,
}

/// The replay service's metrics counters, as one flat wire-encodable
/// struct (every field a `u64`, encoded in declaration order). The
/// service guarantees two invariants at every observation point:
/// `submitted == accepted + rejected` and
/// `accepted == completed + failed + in_flight`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SvcStats {
    /// Jobs received over [`Frame::Submit`] (or the in-process API).
    pub submitted: u64,
    /// Jobs admitted past backpressure control.
    pub accepted: u64,
    /// Jobs refused with [`Frame::Rejected`] (queue full).
    pub rejected: u64,
    /// Accepted jobs answered with a report.
    pub completed: u64,
    /// Accepted jobs answered with an error.
    pub failed: u64,
    /// Accepted jobs not yet answered.
    pub in_flight: u64,
    /// Submissions answered straight from the report cache.
    pub cache_hits: u64,
    /// Submissions that had to compute (includes coalesced waiters'
    /// leaders).
    pub cache_misses: u64,
    /// Submissions attached to an already-running identical job
    /// (counted as neither hit nor miss).
    pub coalesced: u64,
    /// Cache entries evicted (capacity pressure or corruption).
    pub evictions: u64,
    /// Jobs waiting for a worker right now.
    pub queue_depth: u64,
    /// Workers currently idle.
    pub workers_idle: u64,
    /// Workers currently running a shard.
    pub workers_busy: u64,
    /// Workers currently dead (lost and not yet replaced).
    pub workers_dead: u64,
    /// Worker processes lost over the service's lifetime.
    pub workers_lost: u64,
    /// Replacement workers spawned over the service's lifetime.
    pub workers_respawned: u64,
    /// Shard jobs dispatched to workers.
    pub jobs_dispatched: u64,
    /// Snapshot bytes that crossed a worker boundary.
    pub handoff_bytes: u64,
}

impl SvcStats {
    const FIELDS: usize = 18;

    fn to_array(self) -> [u64; Self::FIELDS] {
        [
            self.submitted,
            self.accepted,
            self.rejected,
            self.completed,
            self.failed,
            self.in_flight,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.evictions,
            self.queue_depth,
            self.workers_idle,
            self.workers_busy,
            self.workers_dead,
            self.workers_lost,
            self.workers_respawned,
            self.jobs_dispatched,
            self.handoff_bytes,
        ]
    }

    fn from_array(v: [u64; Self::FIELDS]) -> Self {
        SvcStats {
            submitted: v[0],
            accepted: v[1],
            rejected: v[2],
            completed: v[3],
            failed: v[4],
            in_flight: v[5],
            cache_hits: v[6],
            cache_misses: v[7],
            coalesced: v[8],
            evictions: v[9],
            queue_depth: v[10],
            workers_idle: v[11],
            workers_busy: v[12],
            workers_dead: v[13],
            workers_lost: v[14],
            workers_respawned: v[15],
            jobs_dispatched: v[16],
            handoff_bytes: v[17],
        }
    }

    fn save(&self, enc: &mut Enc) {
        for v in self.to_array() {
            enc.u64(v);
        }
    }

    fn load(dec: &mut Dec<'_>) -> Result<Self, SnapError> {
        let mut v = [0u64; Self::FIELDS];
        for slot in &mut v {
            *slot = dec.u64()?;
        }
        Ok(Self::from_array(v))
    }
}

/// Everything that crosses the coordinator ↔ worker byte stream. See
/// the [module docs](self) for the conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Version handshake; sent by the coordinator, echoed by the worker.
    Hello {
        /// Protocol version ([`PROTOCOL`]).
        protocol: u32,
        /// Coordinator-assigned worker id (echoed back verbatim).
        worker: u32,
    },
    /// Run one shard.
    Job(Job),
    /// The shard paused at a checkpoint; bytes for the successor.
    Snapshot {
        /// The paused job's id.
        job: u64,
        /// Cumulative instructions retired so far (lets the scheduler
        /// compute the next budget without decoding the snapshot).
        instructions: u64,
        /// Serialized [`Snapshot`](loopspec_pipeline::Snapshot).
        bytes: Vec<u8>,
    },
    /// The stream ended in this shard; the chain is complete.
    Report(Report),
    /// The job failed deterministically; retrying elsewhere would fail
    /// the same way.
    Error {
        /// The failing job's id (`0` when no job context exists).
        job: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Client → service: run this spec (or answer it from the cache).
    Submit {
        /// Client-chosen id, echoed in the [`Frame::Done`] /
        /// [`Frame::Rejected`] / [`Frame::Error`] answer.
        id: u64,
        /// What to replay.
        spec: JobSpec,
    },
    /// Service → client: the submission's report grid.
    Done {
        /// The submission's id.
        id: u64,
        /// Whether the report came from the content-addressed cache.
        cached: bool,
        /// The full report — same shape (and same bytes) as a
        /// coordinator-path [`Frame::Report`].
        report: Report,
    },
    /// Client → service: send me a [`Frame::Stats`].
    StatsRequest,
    /// Service → client: the current metrics counters.
    Stats(SvcStats),
    /// Service → client: the submission was refused by admission
    /// control — the queue is full; back off and retry.
    Rejected {
        /// The refused submission's id.
        id: u64,
        /// The queue depth that triggered the refusal.
        queue_depth: u64,
    },
}

pub(crate) fn save_str(enc: &mut Enc, s: &str) {
    enc.bytes(s.as_bytes());
}

pub(crate) fn load_str(dec: &mut Dec<'_>) -> Result<String, SnapError> {
    std::str::from_utf8(dec.bytes()?)
        .map(str::to_owned)
        .map_err(|_| SnapError::Corrupt {
            what: "utf-8 string",
        })
}

pub(crate) fn save_scale(enc: &mut Enc, scale: Scale) {
    enc.u8(match scale {
        Scale::Test => 0,
        Scale::Small => 1,
        Scale::Full => 2,
        Scale::Huge => 3,
    });
}

pub(crate) fn load_scale(dec: &mut Dec<'_>) -> Result<Scale, SnapError> {
    Ok(match dec.u8()? {
        0 => Scale::Test,
        1 => Scale::Small,
        2 => Scale::Full,
        3 => Scale::Huge,
        _ => return Err(SnapError::Corrupt { what: "scale tag" }),
    })
}

impl Frame {
    /// Encodes the frame payload (tag + body). Wrap with
    /// [`loopspec_core::snap::frame`] — or use [`write_frame`] — before
    /// putting it on a stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        match self {
            Frame::Hello { protocol, worker } => {
                enc.u8(1);
                enc.u32(*protocol);
                enc.u32(*worker);
            }
            Frame::Job(job) => {
                enc.u8(2);
                enc.u64(job.id);
                save_str(&mut enc, &job.workload);
                save_scale(&mut enc, job.scale);
                enc.u64(job.lanes.len() as u64);
                for lane in &job.lanes {
                    lane.save(&mut enc);
                }
                enc.u32(job.shard);
                enc.u64(job.budget);
                enc.u64(job.total_fuel);
                enc.bool(job.last);
                match &job.snapshot {
                    None => enc.bool(false),
                    Some(bytes) => {
                        enc.bool(true);
                        enc.bytes(bytes);
                    }
                }
            }
            Frame::Snapshot {
                job,
                instructions,
                bytes,
            } => {
                enc.u8(3);
                enc.u64(*job);
                enc.u64(*instructions);
                enc.bytes(bytes);
            }
            Frame::Report(report) => {
                enc.u8(4);
                enc.u64(report.job);
                enc.u64(report.instructions);
                enc.u64(report.lanes.len() as u64);
                for lane in &report.lanes {
                    lane.save(&mut enc);
                }
                enc.bytes(&report.state);
            }
            Frame::Error { job, message } => {
                enc.u8(5);
                enc.u64(*job);
                save_str(&mut enc, message);
            }
            Frame::Submit { id, spec } => {
                enc.u8(6);
                enc.u64(*id);
                spec.save(&mut enc);
            }
            Frame::Done { id, cached, report } => {
                enc.u8(7);
                enc.u64(*id);
                enc.bool(*cached);
                enc.u64(report.job);
                enc.u64(report.instructions);
                enc.u64(report.lanes.len() as u64);
                for lane in &report.lanes {
                    lane.save(&mut enc);
                }
                enc.bytes(&report.state);
            }
            Frame::StatsRequest => {
                enc.u8(8);
            }
            Frame::Stats(stats) => {
                enc.u8(9);
                stats.save(&mut enc);
            }
            Frame::Rejected { id, queue_depth } => {
                enc.u8(10);
                enc.u64(*id);
                enc.u64(*queue_depth);
            }
        }
        enc.into_bytes()
    }

    /// Decodes a payload written by [`Frame::encode`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on a bad tag, truncation, or malformed field.
    pub fn decode(payload: &[u8]) -> Result<Frame, SnapError> {
        let mut dec = Dec::new(payload);
        let frame = match dec.u8()? {
            1 => Frame::Hello {
                protocol: dec.u32()?,
                worker: dec.u32()?,
            },
            2 => {
                let id = dec.u64()?;
                let workload = load_str(&mut dec)?;
                let scale = load_scale(&mut dec)?;
                // A lane spec is at least 5 encoded bytes (tag + tus).
                let n = dec.count_elems(5)?;
                let mut lanes = Vec::with_capacity(n);
                for _ in 0..n {
                    lanes.push(LaneSpec::load(&mut dec)?);
                }
                let shard = dec.u32()?;
                let budget = dec.u64()?;
                let total_fuel = dec.u64()?;
                let last = dec.bool()?;
                let snapshot = if dec.bool()? {
                    Some(dec.bytes()?.to_vec())
                } else {
                    None
                };
                Frame::Job(Job {
                    id,
                    workload,
                    scale,
                    lanes,
                    shard,
                    budget,
                    total_fuel,
                    last,
                    snapshot,
                })
            }
            3 => Frame::Snapshot {
                job: dec.u64()?,
                instructions: dec.u64()?,
                bytes: dec.bytes()?.to_vec(),
            },
            4 => {
                let job = dec.u64()?;
                let instructions = dec.u64()?;
                // A lane report is at least 88 encoded bytes (string
                // length prefix + ten u64 counters) — a wire-controlled
                // count can never reserve more than ~the frame's size.
                let n = dec.count_elems(88)?;
                let mut lanes = Vec::with_capacity(n);
                for _ in 0..n {
                    lanes.push(LaneReport::load(&mut dec)?);
                }
                let state = dec.bytes()?.to_vec();
                Frame::Report(Report {
                    job,
                    instructions,
                    lanes,
                    state,
                })
            }
            5 => Frame::Error {
                job: dec.u64()?,
                message: load_str(&mut dec)?,
            },
            6 => Frame::Submit {
                id: dec.u64()?,
                spec: JobSpec::load(&mut dec)?,
            },
            7 => {
                let id = dec.u64()?;
                let cached = dec.bool()?;
                let job = dec.u64()?;
                let instructions = dec.u64()?;
                let n = dec.count_elems(88)?;
                let mut lanes = Vec::with_capacity(n);
                for _ in 0..n {
                    lanes.push(LaneReport::load(&mut dec)?);
                }
                let state = dec.bytes()?.to_vec();
                Frame::Done {
                    id,
                    cached,
                    report: Report {
                        job,
                        instructions,
                        lanes,
                        state,
                    },
                }
            }
            8 => Frame::StatsRequest,
            9 => Frame::Stats(SvcStats::load(&mut dec)?),
            10 => Frame::Rejected {
                id: dec.u64()?,
                queue_depth: dec.u64()?,
            },
            _ => return Err(SnapError::Corrupt { what: "frame tag" }),
        };
        dec.finish()?;
        Ok(frame)
    }
}

/// Why reading or writing a frame stream failed.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed (broken pipe, reset socket).
    Io(io::Error),
    /// The stream decoded to garbage (bad checksum, bad tag, truncated
    /// field) — framing is lost; drop the connection.
    Codec(SnapError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Codec(e) => write!(f, "malformed frame stream: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<SnapError> for WireError {
    fn from(e: SnapError) -> Self {
        WireError::Codec(e)
    }
}

/// Writes one frame (container + payload) and flushes — a frame is a
/// message, and the peer blocks until it arrives whole.
///
/// # Errors
///
/// [`WireError::Io`] on transport failure; [`WireError::Codec`] when
/// the payload exceeds [`MAX_FRAME`] — the receiver would reject it
/// unread, so the send side refuses up front (a *deterministic*
/// failure, distinguishable from a dead peer: a coordinator must fail
/// the job instead of requeueing it into the same wall).
pub fn write_frame(w: &mut impl Write, f: &Frame) -> Result<(), WireError> {
    let payload = f.encode();
    if payload.len() > MAX_FRAME {
        return Err(WireError::Codec(SnapError::Corrupt {
            what: "frame length",
        }));
    }
    // Header, payload and trailer are written separately instead of
    // concatenated into one buffer: the payload is dominated by
    // snapshot bytes (up to MAX_FRAME), and this path runs once per
    // shard — no point copying megabytes to save two small writes.
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&fnv1a(&payload).to_le_bytes())?;
    w.flush()?;
    // Out-of-band transport telemetry (header + payload + trailer);
    // once per frame, never on the retirement path.
    loopspec_obs::counter("dist_frame_bytes_out").add(payload.len() as u64 + 8);
    Ok(())
}

/// Blocking frame reader over any [`Read`] transport: an 8 KiB read
/// buffer feeding a [`FrameBuf`], popping one decoded [`Frame`] at a
/// time.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: FrameBuf,
}

impl<R: Read> FrameReader<R> {
    /// A reader over `inner` accepting frames up to [`MAX_FRAME`].
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: FrameBuf::new(MAX_FRAME),
        }
    }

    /// Reads until one whole frame is buffered and returns it; `None`
    /// on a clean end-of-stream (the peer closed between frames).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on transport failure — including an EOF that
    /// cuts a frame in half — and [`WireError::Codec`] when the stream
    /// decodes to garbage.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(payload) = self.buf.next_frame()? {
                loopspec_obs::counter("dist_frame_bytes_in").add(payload.len() as u64 + 8);
                return Ok(Some(Frame::decode(&payload)?));
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(WireError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        )))
                    };
                }
                Ok(n) => self.buf.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                protocol: PROTOCOL,
                worker: 7,
            },
            Frame::Job(Job {
                id: 42,
                workload: "compress".into(),
                scale: Scale::Test,
                lanes: vec![
                    LaneSpec::Idle { tus: 4 },
                    LaneSpec::Str { tus: 8 },
                    LaneSpec::StrNested { limit: 3, tus: 2 },
                ],
                shard: 2,
                budget: 25_000,
                total_fuel: 100_000_000,
                last: false,
                snapshot: Some(vec![9, 8, 7]),
            }),
            Frame::Job(Job {
                id: 43,
                workload: "go".into(),
                scale: Scale::Full,
                lanes: vec![],
                shard: 0,
                budget: 1,
                total_fuel: 1,
                last: true,
                snapshot: None,
            }),
            Frame::Snapshot {
                job: 42,
                instructions: 50_000,
                bytes: vec![1; 300],
            },
            Frame::Report(Report {
                job: 42,
                instructions: 123_456,
                lanes: vec![LaneReport {
                    policy: "STR".into(),
                    tus: 4,
                    instructions: 123_456,
                    cycles: 45_678,
                    spec: [1, 2, 3, 4, 5, 6, 7],
                }],
                state: vec![0xaa; 64],
            }),
            Frame::Error {
                job: 9,
                message: "unknown workload 'specmark'".into(),
            },
            // In wire-canonical form: decoding expands the policy ×
            // TU cross product into an explicit lane list.
            Frame::Submit {
                id: 11,
                spec: JobSpec::new("compress")
                    .scale(Scale::Small)
                    .total_fuel(1_000_000)
                    .policies([])
                    .tus([])
                    .lanes(JobSpec::new("compress").tus([2, 16]).lane_specs()),
            },
            Frame::Done {
                id: 11,
                cached: true,
                report: Report {
                    job: 0,
                    instructions: 77,
                    lanes: vec![],
                    state: vec![3, 1, 4],
                },
            },
            Frame::StatsRequest,
            Frame::Stats(SvcStats {
                submitted: 12,
                accepted: 10,
                rejected: 2,
                completed: 9,
                failed: 0,
                in_flight: 1,
                cache_hits: 4,
                cache_misses: 6,
                ..SvcStats::default()
            }),
            Frame::Rejected {
                id: 12,
                queue_depth: 64,
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in samples() {
            let payload = f.encode();
            assert_eq!(Frame::decode(&payload).unwrap(), f);
            // Encoding is deterministic.
            assert_eq!(payload, f.encode());
        }
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        for f in samples() {
            let payload = f.encode();
            for cut in 0..payload.len() {
                assert!(
                    Frame::decode(&payload[..cut]).is_err(),
                    "{f:?} cut at {cut} must not decode"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = samples()[0].encode();
        payload.push(0);
        assert_eq!(
            Frame::decode(&payload),
            Err(SnapError::Trailing { bytes: 1 })
        );
    }

    #[test]
    fn bad_tags_are_corrupt() {
        assert_eq!(
            Frame::decode(&[0xee]),
            Err(SnapError::Corrupt { what: "frame tag" })
        );
    }

    #[test]
    fn frames_cross_a_stream() {
        let mut stream = Vec::new();
        for f in samples() {
            write_frame(&mut stream, &f).unwrap();
        }
        let mut reader = FrameReader::new(&stream[..]);
        for f in samples() {
            assert_eq!(reader.read_frame().unwrap(), Some(f));
        }
        assert_eq!(reader.read_frame().unwrap(), None);
    }

    #[test]
    fn oversized_payloads_are_refused_at_the_send_side() {
        // A reply the receiver would reject unread must fail on write
        // as a *codec* error (deterministic), not reach the stream.
        let huge = Frame::Snapshot {
            job: 1,
            instructions: 0,
            bytes: vec![0u8; MAX_FRAME],
        };
        let mut stream = Vec::new();
        assert!(matches!(
            write_frame(&mut stream, &huge),
            Err(WireError::Codec(SnapError::Corrupt {
                what: "frame length"
            }))
        ));
        assert!(stream.is_empty(), "nothing half-written");
    }

    #[test]
    fn eof_mid_frame_is_an_io_error() {
        let mut stream = Vec::new();
        write_frame(
            &mut stream,
            &Frame::Hello {
                protocol: PROTOCOL,
                worker: 0,
            },
        )
        .unwrap();
        let cut = stream.len() - 3;
        let mut reader = FrameReader::new(&stream[..cut]);
        assert!(matches!(
            reader.read_frame(),
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn lane_spec_validation_and_grid_building() {
        assert!(LaneSpec::Str { tus: 4 }.validate().is_ok());
        assert!(LaneSpec::Str { tus: 1 }.validate().is_err());
        assert!(LaneSpec::Idle { tus: 5000 }.validate().is_err());
        let grid = LaneSpec::build_grid(&[
            LaneSpec::Idle { tus: 4 },
            LaneSpec::StrNested { limit: 2, tus: 4 },
        ])
        .unwrap();
        assert_eq!(grid.len(), 2);
        assert!(LaneSpec::build_grid(&[LaneSpec::Str { tus: 0 }]).is_err());
    }

    #[test]
    fn lane_report_mirrors_engine_report() {
        let report = LaneReport {
            policy: "IDLE".into(),
            tus: 0,
            instructions: 10,
            cycles: 0,
            spec: [0; 7],
        };
        assert_eq!(report.tpc(), 1.0);
    }

    #[test]
    fn errors_display_their_cause() {
        let io: WireError = io::Error::new(io::ErrorKind::BrokenPipe, "gone").into();
        assert!(io.to_string().contains("transport"));
        let codec: WireError = SnapError::Corrupt { what: "frame tag" }.into();
        assert!(codec.to_string().contains("malformed"));
    }
}
