//! The shared worker-pool substrate beneath every multi-process
//! driver: connected [`WorkerLink`]s, one reader thread per worker
//! draining frames into the scheduler's event channel, and the bounded
//! respawn machinery that keeps a spawned pool at full strength.
//!
//! Two schedulers run on top of this today — the one-suite
//! [`Coordinator`](crate::Coordinator) and the persistent replay
//! service (`loopspec-svc`), which multiplexes many concurrent jobs
//! over one pool. Both consume [`PoolEvent`]s; the service's scheduler
//! merges them with client events, which is why the pool is generic
//! over the channel's event type (`E: From<PoolEvent>`).

use std::fmt;
use std::io::{self, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;

use crate::coordinator::DistError;
use crate::wire::{write_frame, Frame, FrameReader, WireError, PROTOCOL};

/// One connected worker: a writable half the scheduler sends jobs on,
/// a readable half a reader thread drains, and — for spawned workers —
/// the child process handle.
#[derive(Debug)]
pub struct WorkerLink {
    pub(crate) writer: LinkWriter,
    pub(crate) reader: Option<LinkReader>,
    pub(crate) child: Option<Child>,
}

#[derive(Debug)]
pub(crate) enum LinkWriter {
    Pipe(Option<std::process::ChildStdin>),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

#[derive(Debug)]
pub(crate) enum LinkReader {
    Pipe(std::process::ChildStdout),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Write for LinkWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            LinkWriter::Pipe(Some(w)) => w.write(buf),
            LinkWriter::Pipe(None) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "worker stdin already closed",
            )),
            #[cfg(unix)]
            LinkWriter::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            LinkWriter::Pipe(Some(w)) => w.flush(),
            LinkWriter::Pipe(None) => Ok(()),
            #[cfg(unix)]
            LinkWriter::Unix(s) => s.flush(),
        }
    }
}

impl Read for LinkReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            LinkReader::Pipe(r) => r.read(buf),
            #[cfg(unix)]
            LinkReader::Unix(s) => s.read(buf),
        }
    }
}

impl LinkWriter {
    /// Signals end-of-jobs to the worker (EOF on its reading side).
    pub(crate) fn close(&mut self) {
        match self {
            LinkWriter::Pipe(w) => drop(w.take()),
            #[cfg(unix)]
            LinkWriter::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
        }
    }
}

impl WorkerLink {
    /// Spawns `cmd` as a worker process talking frames on its
    /// stdin/stdout (stderr is inherited, so worker diagnostics land in
    /// the coordinator's stderr).
    ///
    /// # Errors
    ///
    /// [`DistError::Spawn`] when the process cannot be started or its
    /// stdio pipes cannot be wired up (a misconfigured binary path
    /// fails the suite cleanly instead of panicking).
    pub fn spawn(cmd: &mut Command) -> Result<Self, DistError> {
        let program = format!("{:?}", cmd.get_program());
        let spawn_err = |what: &str| DistError::Spawn {
            message: format!("{what} for worker command {program}"),
        };
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| spawn_err(&e.to_string()))?;
        let Some(stdin) = child.stdin.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(spawn_err("no piped stdin"));
        };
        let Some(stdout) = child.stdout.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(spawn_err("no piped stdout"));
        };
        Ok(WorkerLink {
            writer: LinkWriter::Pipe(Some(stdin)),
            reader: Some(LinkReader::Pipe(stdout)),
            child: Some(child),
        })
    }

    /// Wraps one end of a Unix socket pair whose other end a worker is
    /// serving (e.g. a worker thread in the same process — the
    /// transport the `dist_grid` bench uses, and the remote-host shape
    /// a future TCP transport would generalize).
    ///
    /// # Errors
    ///
    /// Propagates `try_clone` failure.
    #[cfg(unix)]
    pub fn from_unix(stream: std::os::unix::net::UnixStream) -> io::Result<Self> {
        let reader = stream.try_clone()?;
        Ok(WorkerLink {
            writer: LinkWriter::Unix(stream),
            reader: Some(LinkReader::Unix(reader)),
            child: None,
        })
    }
}

/// What a reader thread reports back to the scheduling loop.
#[derive(Debug)]
pub enum PoolEvent {
    /// A frame arrived from worker `i`.
    Frame(usize, Frame),
    /// The worker's stream closed or broke mid-frame (EOF, transport
    /// error): the worker is gone and its in-flight job is retryable.
    Closed(usize),
    /// The worker's stream decoded to garbage (bad checksum, bad tag,
    /// oversized length). Unlike [`PoolEvent::Closed`], this is *not*
    /// treated as retryable worker death: a worker that deterministically
    /// produces malformed frames would tear down every link in turn and
    /// surface as a misleading `AllWorkersDied`.
    Garbled(usize, WireError),
}

/// How replacement worker processes are spawned after a worker death.
/// The argument is the replacement's fresh slot index.
pub type RespawnFn = Box<dyn FnMut(usize) -> Command + Send>;

/// The pool proper: links, reader threads, respawn budget, loss
/// counters. Scheduling state (which worker is busy with what) stays
/// with the scheduler on top — the pool only knows transport.
///
/// `E` is the scheduler's channel event type; reader threads deliver
/// `E::from(PoolEvent)`, so a scheduler with its own event enum (the
/// replay service, which also receives client submissions) shares the
/// channel between pool and non-pool events.
pub struct WorkerPool<E> {
    links: Vec<WorkerLink>,
    readers: Vec<std::thread::JoinHandle<()>>,
    tx: mpsc::Sender<E>,
    respawn: Option<RespawnFn>,
    /// Remaining respawn budget (starts at 2× the initial pool):
    /// replacement processes per pool lifetime are bounded, so a binary
    /// that handshakes and then exits (or workers dying faster than
    /// they serve) cannot respawn forever. Exhausting the budget
    /// degrades to shrink-to-survivors behavior.
    budget: u32,
    lost: u32,
    respawned: u32,
}

impl<E> fmt::Debug for WorkerPool<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.links.len())
            .field("respawn", &self.respawn.is_some())
            .field("budget", &self.budget)
            .field("lost", &self.lost)
            .field("respawned", &self.respawned)
            .finish()
    }
}

impl<E: From<PoolEvent> + Send + 'static> WorkerPool<E> {
    /// Brings the pool up: attaches one reader thread per link
    /// (delivering into `tx`) and writes the protocol handshake to
    /// every worker. Returns the pool plus one aliveness flag per
    /// initial slot — `false` means the handshake write already failed
    /// (counted as a loss) and the scheduler should treat that slot as
    /// dead from the start.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    pub fn start(
        links: Vec<WorkerLink>,
        respawn: Option<RespawnFn>,
        tx: mpsc::Sender<E>,
    ) -> (Self, Vec<bool>) {
        assert!(!links.is_empty(), "a pool needs at least one worker");
        let budget = 2 * links.len() as u32;
        let mut pool = WorkerPool {
            links,
            readers: Vec::new(),
            tx,
            respawn,
            budget,
            lost: 0,
            respawned: 0,
        };
        for i in 0..pool.links.len() {
            let handle = Self::attach_reader(&mut pool.links[i], i, &pool.tx);
            pool.readers.push(handle);
        }
        let alive = (0..pool.links.len())
            .map(|i| {
                let hello = Frame::Hello {
                    protocol: PROTOCOL,
                    worker: i as u32,
                };
                let ok = write_frame(&mut pool.links[i].writer, &hello).is_ok();
                if !ok {
                    pool.lost += 1;
                }
                loopspec_obs::journal::record(
                    loopspec_obs::EventKind::WorkerSpawn,
                    0,
                    i as u32,
                    if ok {
                        "worker connected"
                    } else {
                        "worker handshake write failed"
                    },
                );
                ok
            })
            .collect();
        (pool, alive)
    }

    /// Number of slots ever connected (including replacements; dead
    /// workers keep their slot until the pool shuts down).
    pub fn workers(&self) -> usize {
        self.links.len()
    }

    /// Worker connections lost so far (initial handshake failures,
    /// observed deaths, failed replacement handshakes).
    pub fn lost(&self) -> u32 {
        self.lost
    }

    /// Replacement processes spawned so far.
    pub fn respawned(&self) -> u32 {
        self.respawned
    }

    /// Records a worker death the *scheduler* observed (a `Closed`
    /// event for a live slot, a job write that hit a broken pipe).
    pub fn note_lost(&mut self) {
        self.lost += 1;
    }

    /// `true` when the pool knows how to spawn replacements.
    pub fn can_respawn(&self) -> bool {
        self.respawn.is_some()
    }

    /// Writes `frame` to worker `w`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the worker is gone (broken pipe) —
    /// retryable; [`WireError::Codec`] when the frame itself cannot be
    /// encoded (oversized) — deterministic, not retryable.
    pub fn send(&mut self, w: usize, frame: &Frame) -> Result<(), WireError> {
        write_frame(&mut self.links[w].writer, frame)
    }

    /// Spawns a replacement worker into a fresh pool slot (reader
    /// attached, handshake sent), consuming respawn budget. Returns
    /// the slots created, each with its handshake aliveness — the
    /// scheduler mirrors them into its own state table. A replacement
    /// whose handshake write fails counts as a loss (same as an initial
    /// worker that dies during the handshake) and is itself replaced
    /// while budget remains, so a single flaky handshake does not
    /// shrink the pool. A pool that cannot respawn, a failed spawn, or
    /// an exhausted budget returns what it managed (possibly nothing),
    /// preserving the all-workers-dead error path.
    pub fn respawn_worker(&mut self) -> Vec<(usize, bool)> {
        let mut created = Vec::new();
        // `make` is moved out and restored so the loop can push onto
        // `self.links` while holding it.
        let Some(mut make) = self.respawn.take() else {
            return created;
        };
        while self.budget > 0 {
            let idx = self.links.len();
            let Ok(mut link) = WorkerLink::spawn(&mut make(idx)) else {
                break;
            };
            self.readers
                .push(Self::attach_reader(&mut link, idx, &self.tx));
            let hello = Frame::Hello {
                protocol: PROTOCOL,
                worker: idx as u32,
            };
            let alive = write_frame(&mut link.writer, &hello).is_ok();
            self.links.push(link);
            self.budget -= 1;
            self.respawned += 1;
            if alive {
                created.push((idx, true));
                break;
            }
            self.lost += 1;
            created.push((idx, false));
        }
        self.respawn = Some(make);
        created
    }

    /// Tears the pool down: EOFs every worker's job stream, kills and
    /// reaps spawned children, joins the reader threads. The event
    /// sender is dropped with the pool — callers should drain their
    /// receiver afterwards (reader drop-guards deliver a final
    /// `Closed` per worker).
    pub fn shutdown(mut self) {
        for link in &mut self.links {
            link.writer.close();
        }
        for link in &mut self.links {
            if let Some(child) = &mut link.child {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Spawns the reader thread draining worker `i`'s frames into the
    /// scheduler's event channel. The thread *always* reports the
    /// worker as closed when it exits — a drop guard delivers the
    /// `Closed` event even if the read loop panics, so the scheduler
    /// (which holds a live sender and can therefore never see the
    /// channel disconnect) cannot block forever on a silently vanished
    /// reader. A duplicate `Closed` after a normal exit is harmless:
    /// schedulers ignore deaths of already-dead workers.
    fn attach_reader(
        link: &mut WorkerLink,
        i: usize,
        tx: &mpsc::Sender<E>,
    ) -> std::thread::JoinHandle<()> {
        let reader = link.reader.take().expect("fresh link has a reader");
        let tx = tx.clone();
        std::thread::spawn(move || {
            struct ClosedOnExit<E: From<PoolEvent>>(mpsc::Sender<E>, usize);
            impl<E: From<PoolEvent>> Drop for ClosedOnExit<E> {
                fn drop(&mut self) {
                    let _ = self.0.send(E::from(PoolEvent::Closed(self.1)));
                }
            }
            let guard = ClosedOnExit(tx.clone(), i);
            let mut frames = FrameReader::new(reader);
            loop {
                match frames.read_frame() {
                    Ok(Some(frame)) => {
                        if tx.send(E::from(PoolEvent::Frame(i, frame))).is_err() {
                            break;
                        }
                    }
                    Ok(None) | Err(WireError::Io(_)) => break,
                    Err(e @ WireError::Codec(_)) => {
                        let _ = tx.send(E::from(PoolEvent::Garbled(i, e)));
                        break;
                    }
                }
            }
            drop(guard);
        })
    }
}
