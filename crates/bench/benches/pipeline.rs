//! Streaming vs. materialized pipeline: the cost of the two shapes on
//! real workloads, snapshotted to `BENCH_pipeline.json` at the repo root
//! so future PRs have a perf trajectory.
//!
//! * `materialized/*` — the legacy three-pass shape: run the CPU into an
//!   `EventCollector`, build an `AnnotatedTrace`, replay it through the
//!   batch `Engine`.
//! * `streaming/*` — the single-pass shape: a `Session` feeds one shared
//!   detector into a `StreamEngine` as the program executes.
//! * `*_grid/*` — the experiment-harness case: all 20 (policy × TU)
//!   engine configurations, either replayed from the materialized trace
//!   or fanned out in the single streaming pass.
//! * `dist_grid/*` — the same 20-lane pass scheduled by the
//!   `loopspec-dist` coordinator across two protocol-speaking workers
//!   over Unix socket pairs (worker threads, so the gate prices the
//!   frame protocol + snapshot chaining + scheduling, not process
//!   spawn noise).
//! * `svc_grid/*` — the same job submitted to a persistent
//!   `loopspec-svc` replay service (cache disabled): the distributed
//!   pass plus submission, admission control, and the report round
//!   trip (gated against `streaming_grid`).
//! * `oracle_grid/*` vs `oracle_materialized/*` — the Figure 5 oracle
//!   study both ways: the two-phase streaming pair (count log in the
//!   CPU pass, oracle replay over the retained events) against the
//!   legacy annotate-then-batch-replay shape it retired.
//! * `cpu_only/*` vs `cpu_only_legacy/*` — raw interpreter throughput
//!   into a null sink: the pre-decoded threaded-code front-end against
//!   the legacy fetch/decode loop (gated: decoded must stay faster).
//! * `parallel_grid/*` — the 20-lane pass with the grid split across
//!   `ParallelSinkSet` worker threads (informational).

use loopspec_bench::experiments::{
    grid_points, run_engine, PolicyKind, FIG5_PREFIX_FRACTION, TU_COUNTS,
};
use loopspec_bench::timing::Suite;
use loopspec_core::EventCollector;
use loopspec_cpu::{Cpu, DecodedProgram, NullTracer, RunLimits};
use loopspec_mt::{
    ideal_tpc, ideal_tpc_streaming, ideal_tpc_with_feed, prefix_split, AnnotatedTrace, EngineGrid,
    IterationCountLog, StrPolicy, StreamEngine,
};
use loopspec_pipeline::{ParallelSinkSet, Session, ShardedRun};
use loopspec_workloads::{by_name, Scale};

/// Shard count for the `sharded_grid` and `dist_grid` benchmarks (and
/// their gate metrics).
const SHARDS: usize = 4;

/// Worker count for the `dist_grid` benchmark.
#[cfg(unix)]
const WORKERS: usize = 2;

/// One replay-service job for `name` over the full 20-lane grid,
/// submitted to a persistent [`loopspec_svc::Service`] running with
/// the cache disabled — so every iteration prices the whole service
/// path (submission, admission, scheduling over the worker pool,
/// report handoff) and never a cache hit. Unix-only, like
/// [`dist_grid_run`].
#[cfg(unix)]
fn svc_grid_run(service: &loopspec_svc::Service, name: &str, shard_fuel: u64) -> f64 {
    use loopspec_dist::JobSpec;
    use loopspec_pipeline::Plan;

    let completion = service
        .client()
        .run(JobSpec::new(name).plan(Plan::sliced(shard_fuel)))
        .expect("service job succeeds");
    assert!(!completion.cached, "the bench service runs cache-disabled");
    completion.report.lanes.iter().map(|l| l.tpc()).sum()
}

/// A persistent replay service over `WORKERS` protocol-speaking
/// worker threads on Unix socket pairs, cache disabled. The joiner
/// reaps the worker threads after the service shuts down.
#[cfg(unix)]
fn svc_start() -> (loopspec_svc::Service, impl FnOnce()) {
    use loopspec_dist::{Worker, WorkerLink};
    use loopspec_svc::{Service, SvcConfig};

    let mut links = Vec::with_capacity(WORKERS);
    let mut handles = Vec::with_capacity(WORKERS);
    for _ in 0..WORKERS {
        let (ours, theirs) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        links.push(WorkerLink::from_unix(ours).expect("clone"));
        handles.push(std::thread::spawn(move || {
            let reader = theirs.try_clone().expect("clone");
            let _ = Worker::new().serve(reader, theirs);
        }));
    }
    let config = SvcConfig {
        workers: WORKERS,
        cache_capacity: 0,
        ..SvcConfig::default()
    };
    let service = Service::with_links(config, links);
    (service, move || {
        for h in handles {
            h.join().expect("worker thread exits");
        }
    })
}

/// One distributed replay of `name` over the full 20-lane grid:
/// `WORKERS` protocol-speaking worker threads on Unix socket pairs,
/// the chain sliced into ~`SHARDS` snapshot-linked shards. Unix-only
/// (the socket-pair transport); on other hosts the group is absent and
/// the gate skips its metric.
#[cfg(unix)]
fn dist_grid_run(name: &str, shard_fuel: u64) -> f64 {
    use loopspec_dist::default_lanes;

    dist_run(name, Scale::Test, default_lanes(), shard_fuel, None)
}

/// One distributed replay of `name` at `scale` through `lanes`:
/// `WORKERS` protocol-speaking worker threads on Unix socket pairs.
/// `total_fuel` overrides the default 100 M-instruction budget for
/// runs (the `Scale::Huge` tier) that retire more.
#[cfg(unix)]
fn dist_run(
    name: &str,
    scale: Scale,
    lanes: Vec<loopspec_dist::LaneSpec>,
    shard_fuel: u64,
    total_fuel: Option<u64>,
) -> f64 {
    use loopspec_dist::{Coordinator, SuiteSpec, Worker, WorkerLink};
    use loopspec_pipeline::Plan;

    let mut links = Vec::with_capacity(WORKERS);
    let mut handles = Vec::with_capacity(WORKERS);
    for _ in 0..WORKERS {
        let (ours, theirs) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        links.push(WorkerLink::from_unix(ours).expect("clone"));
        handles.push(std::thread::spawn(move || {
            let reader = theirs.try_clone().expect("clone");
            let _ = Worker::new().serve(reader, theirs);
        }));
    }
    let mut spec = SuiteSpec::new([name], scale, lanes, Plan::sliced(shard_fuel));
    if let Some(fuel) = total_fuel {
        spec.total_fuel = fuel;
    }
    let outcome = Coordinator::new(links)
        .run_suite(&spec)
        .expect("distributed run succeeds");
    for h in handles {
        h.join().expect("worker thread exits");
    }
    outcome.outcomes[0].lanes.iter().map(|l| l.tpc()).sum()
}

fn main() {
    let mut s = Suite::new("pipeline");

    // One persistent service for the whole suite — that is the shape
    // being priced: a long-lived scheduler answering many submissions,
    // not a service spawned per job.
    #[cfg(unix)]
    let (service, join_workers) = svc_start();

    for name in ["compress", "go"] {
        let w = by_name(name).expect("workload exists");
        let program = w.build(Scale::Test).expect("assembles");

        // Instruction count for throughput annotation.
        let mut probe = EventCollector::default();
        Cpu::new()
            .run(&program, &mut probe, RunLimits::default())
            .expect("runs");
        let instructions = probe.instructions();

        // Raw interpreter throughput, no detector and no sinks: the
        // pre-decoded threaded-code front-end vs. the legacy
        // fetch/decode loop, both into a `NullTracer` (whose demand
        // mask lets both paths skip event assembly). The gate tracks
        // the `cpu_only / cpu_only_legacy` ratio so the decoded path's
        // advantage can't silently erode.
        let decoded = DecodedProgram::new(&program);
        s.bench(
            "cpu_only",
            &format!("decoded-null-tracer/{name}"),
            Some(instructions),
            || {
                let out = Cpu::new()
                    .run_decoded(&decoded, &mut NullTracer, RunLimits::default())
                    .expect("runs");
                std::hint::black_box(out.retired)
            },
        );

        s.bench(
            "cpu_only_legacy",
            &format!("legacy-null-tracer/{name}"),
            Some(instructions),
            || {
                let out = Cpu::new()
                    .run(&program, &mut NullTracer, RunLimits::default())
                    .expect("runs");
                std::hint::black_box(out.retired)
            },
        );

        s.bench(
            "materialized",
            &format!("cpu+collect+annotate+engine/{name}"),
            Some(instructions),
            || {
                let mut collector = EventCollector::default();
                Cpu::new()
                    .run(&program, &mut collector, RunLimits::default())
                    .expect("runs");
                let (events, n) = collector.into_parts();
                let trace = AnnotatedTrace::build(&events, n);
                std::hint::black_box(run_engine(&trace, PolicyKind::Str, 4).tpc())
            },
        );

        s.bench(
            "streaming",
            &format!("session+stream_engine/{name}"),
            Some(instructions),
            || {
                let mut engine = StreamEngine::new(StrPolicy::new(), 4);
                let mut session = Session::new();
                session.observe_loops(&mut engine);
                session.run(&program, RunLimits::default()).expect("runs");
                std::hint::black_box(engine.report().expect("finished").tpc())
            },
        );

        s.bench(
            "materialized_grid",
            &format!("20-replays/{name}"),
            Some(instructions),
            || {
                let mut collector = EventCollector::default();
                Cpu::new()
                    .run(&program, &mut collector, RunLimits::default())
                    .expect("runs");
                let (events, n) = collector.into_parts();
                let trace = AnnotatedTrace::build(&events, n);
                let mut acc = 0.0;
                for policy in PolicyKind::ALL {
                    for tus in TU_COUNTS {
                        acc += run_engine(&trace, policy, tus).tpc();
                    }
                }
                std::hint::black_box(acc)
            },
        );

        s.bench(
            "streaming_grid",
            &format!("20-sinks-one-pass/{name}"),
            Some(instructions),
            || {
                let mut grid = EngineGrid::new();
                for (p, tus) in grid_points() {
                    p.add_to_grid(&mut grid, tus);
                }
                let mut session = Session::new();
                session.observe_loops(&mut grid);
                session.run(&program, RunLimits::default()).expect("runs");
                let acc: f64 = grid
                    .reports()
                    .expect("finished")
                    .iter()
                    .map(|r| r.tpc())
                    .sum();
                std::hint::black_box(acc)
            },
        );

        // The same 20-lane pass with the grid split into 4 engine-lane
        // subsets, each owned by a `ParallelSinkSet` worker thread: the
        // CPU/detector pass stays on this thread while the per-event
        // engine work runs on 4 cores. Informational (thread spawn +
        // channel overhead make it workload-size sensitive); results
        // are bit-identical to `streaming_grid` by construction.
        s.bench(
            "parallel_grid",
            &format!("4-workers-20-lanes/{name}"),
            Some(instructions),
            || {
                let points: Vec<_> = grid_points().collect();
                let mut pool: ParallelSinkSet<EngineGrid> = points
                    .chunks(5)
                    .map(|subset| {
                        let mut grid = EngineGrid::new();
                        for &(p, tus) in subset {
                            p.add_to_grid(&mut grid, tus);
                        }
                        grid
                    })
                    .collect();
                let mut session = Session::new();
                session.observe_loops(&mut pool);
                session.run(&program, RunLimits::default()).expect("runs");
                let acc: f64 = pool
                    .with_each(|_, grid| {
                        grid.reports()
                            .expect("finished")
                            .iter()
                            .map(|r| r.tpc())
                            .sum::<f64>()
                    })
                    .into_iter()
                    .sum();
                std::hint::black_box(acc)
            },
        );

        // The streaming-grid pass split into checkpoint-linked shards:
        // same 20-lane grid, same single logical pass, plus a full
        // snapshot serialize → checksum → deserialize → restore cycle
        // at every shard boundary. The gate tracks this against
        // `streaming_grid` so checkpoint overhead regressions fail CI.
        s.bench(
            "sharded_grid",
            &format!("{SHARDS}-shards-one-pass/{name}"),
            Some(instructions),
            || {
                let out = ShardedRun::new(SHARDS)
                    .run(&program, RunLimits::with_fuel(instructions), || {
                        let mut grid = EngineGrid::new();
                        for (p, tus) in grid_points() {
                            p.add_to_grid(&mut grid, tus);
                        }
                        grid
                    })
                    .expect("sharded run succeeds");
                let acc: f64 = out
                    .sink
                    .reports()
                    .expect("finished")
                    .iter()
                    .map(|r| r.tpc())
                    .sum();
                std::hint::black_box(acc)
            },
        );

        // The Figure 5 oracle study, two-phase: the count log rides
        // the CPU pass (phase 1), then the retained event stream is
        // replayed through unbounded oracle lanes for the full run and
        // the prefix (phase 2). The gate tracks this against
        // `streaming_grid` so oracle-path regressions fail CI.
        s.bench(
            "oracle_grid",
            &format!("two-phase-fig5/{name}"),
            Some(instructions),
            || {
                let mut collector = EventCollector::default();
                let mut log = IterationCountLog::new();
                let mut session = Session::new();
                session
                    .observe_loops(&mut collector)
                    .observe_loops(&mut log);
                session.run(&program, RunLimits::default()).expect("runs");
                let (events, n) = collector.into_parts();
                let feed = log.into_feed();
                let all = ideal_tpc_with_feed(&events, n, &feed);
                let (split, cut) = prefix_split(&events, n, FIG5_PREFIX_FRACTION);
                let prefix = ideal_tpc_streaming(&events[..split], cut);
                std::hint::black_box(all.tpc + prefix.tpc)
            },
        );

        // The legacy materialized fig5 shape this PR retired from
        // production: collect, build an AnnotatedTrace (twice — full
        // and prefix), replay the batch oracle. Informational — it
        // prices what the two-phase path saves.
        s.bench(
            "oracle_materialized",
            &format!("annotate-fig5/{name}"),
            Some(instructions),
            || {
                let mut collector = EventCollector::default();
                Cpu::new()
                    .run(&program, &mut collector, RunLimits::default())
                    .expect("runs");
                let (events, n) = collector.into_parts();
                let all = ideal_tpc(&AnnotatedTrace::build(&events, n));
                let (split, cut) = prefix_split(&events, n, FIG5_PREFIX_FRACTION);
                let prefix = ideal_tpc(&AnnotatedTrace::build(&events[..split], cut));
                std::hint::black_box(all.tpc + prefix.tpc)
            },
        );

        // The same logical pass again, but scheduled by the dist
        // coordinator across two protocol-speaking workers: every
        // shard boundary is a snapshot serialize → frame → socket →
        // decode → restore round trip. The gate tracks this against
        // `streaming_grid` so wire-protocol overhead regressions fail
        // CI.
        #[cfg(unix)]
        {
            let shard_fuel = instructions.div_ceil(SHARDS as u64);
            s.bench(
                "dist_grid",
                &format!("{WORKERS}-workers-{SHARDS}-shards/{name}"),
                Some(instructions),
                || std::hint::black_box(dist_grid_run(name, shard_fuel)),
            );

            // The same job again, but submitted to the persistent
            // replay service (cache disabled): submission, admission
            // control, scheduling, and the report round trip on top of
            // the distributed pass. The gate tracks this against
            // `streaming_grid` so service-path regressions fail CI.
            s.bench(
                "svc_grid",
                &format!("service-{WORKERS}-workers/{name}"),
                Some(instructions),
                || std::hint::black_box(svc_grid_run(&service, name, shard_fuel)),
            );
        }
    }

    // `Scale::Huge` through the kernel-backed tier: one pure-register
    // kernel workload (~0.8 G retired instructions) measured raw
    // (decoded interpreter into a null tracer), streaming (one
    // Str/4-TU engine fed by a `Session`), and distributed (2 workers,
    // 50 M-instruction shards, the same single lane). Single-sample
    // (`bench_heavy`): each call is tens of seconds, so the standard
    // calibrate-then-sample protocol would cost minutes per entry.
    // The dist/streaming ratio is the number this group exists to
    // record — at Huge the checkpoint + frame overhead is amortised,
    // unlike at the Test scale `dist_grid` prices.
    {
        const HUGE_FUEL: u64 = 2_000_000_000;
        #[cfg(unix)]
        const HUGE_SHARD_FUEL: u64 = 50_000_000;
        let name = "kern:khash";
        let w = loopspec_workloads::native::workload_by_name(name).expect("kernel workload");
        let program = w.build(Scale::Huge).expect("assembles");
        let decoded = DecodedProgram::new(&program);
        let limits = RunLimits {
            max_instrs: HUGE_FUEL,
            ..RunLimits::default()
        };

        let mut retired = 0u64;
        s.bench_heavy("huge_grid", &format!("cpu-native/{name}"), None, || {
            let out = Cpu::new()
                .run_decoded(&decoded, &mut NullTracer, limits)
                .expect("runs");
            retired = out.retired;
            std::hint::black_box(out.retired)
        });

        s.bench_heavy(
            "huge_grid",
            &format!("streaming/{name}"),
            Some(retired),
            || {
                let mut engine = StreamEngine::new(StrPolicy::new(), 4);
                let mut session = Session::new();
                session.observe_loops(&mut engine);
                session.run(&program, limits).expect("runs");
                std::hint::black_box(engine.report().expect("finished").tpc())
            },
        );

        #[cfg(unix)]
        s.bench_heavy(
            "huge_grid",
            &format!("dist-{WORKERS}-workers/{name}"),
            Some(retired),
            || {
                std::hint::black_box(dist_run(
                    name,
                    Scale::Huge,
                    vec![loopspec_dist::LaneSpec::Str { tus: 4 }],
                    HUGE_SHARD_FUEL,
                    Some(HUGE_FUEL),
                ))
            },
        );
    }

    #[cfg(unix)]
    {
        service.shutdown();
        join_workers();
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    s.write_json(out);
}
