//! Ablation benches: cost of the design knobs the paper discusses —
//! CLS capacity (§2.2), LET/LIT size and replacement policy (§2.3), and
//! the stride value predictor of §4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loopspec_bench::run::WorkloadRun;
use loopspec_core::{Cls, EventCollector, Replacement, TableHitSim, TableKind};
use loopspec_cpu::{Cpu, RunLimits};
use loopspec_dataspec::StridePredictor;
use loopspec_workloads::{by_name, Scale};

/// Detection cost as a function of CLS capacity (the associative search
/// is linear in occupancy).
fn bench_cls_capacity(c: &mut Criterion) {
    let w = by_name("go").unwrap(); // deepest nesting in the suite
    let program = w.build(Scale::Test).unwrap();
    let mut g = c.benchmark_group("cls_capacity");
    for cap in [4usize, 8, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut collector = EventCollector::new(Cls::new(cap));
                Cpu::new()
                    .run(&program, &mut collector, RunLimits::default())
                    .expect("runs");
                std::hint::black_box(collector.events().len())
            })
        });
    }
    g.finish();
}

/// Hit-ratio simulation cost across table sizes and replacement
/// policies (event-stream replay).
fn bench_table_sim(c: &mut Criterion) {
    let run = WorkloadRun::execute(by_name("gcc").unwrap(), Scale::Test, false);
    let mut g = c.benchmark_group("table_sim");
    g.throughput(Throughput::Elements(run.events.len() as u64));
    for entries in [2usize, 8, 16] {
        g.bench_with_input(
            BenchmarkId::new("lit_lru", entries),
            &entries,
            |b, &entries| {
                b.iter(|| {
                    let mut sim = TableHitSim::new(TableKind::Lit, entries);
                    sim.observe_all(&run.events);
                    std::hint::black_box(sim.ratio().percent())
                })
            },
        );
    }
    g.bench_function("lit_nest_inhibit_16", |b| {
        b.iter(|| {
            let mut sim =
                TableHitSim::with_replacement(TableKind::Lit, 16, Replacement::NestInhibit);
            sim.observe_all(&run.events);
            std::hint::black_box(sim.ratio().percent())
        })
    });
    g.finish();
}

/// Raw stride-predictor roll rate (the per-live-in cost of §4).
fn bench_stride_predictor(c: &mut Criterion) {
    let keys: Vec<u32> = (0..64).collect();
    let mut g = c.benchmark_group("stride_predictor");
    g.throughput(Throughput::Elements(64 * 100));
    g.bench_function("observe", |b| {
        b.iter(|| {
            let mut p: StridePredictor<u32> = StridePredictor::new();
            for round in 0..100u64 {
                for &k in &keys {
                    std::hint::black_box(p.observe(k, round * k as u64));
                }
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cls_capacity,
    bench_table_sim,
    bench_stride_predictor
);
criterion_main!(benches);
