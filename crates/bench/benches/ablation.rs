//! Ablation benches: cost of the design knobs the paper discusses —
//! CLS capacity (§2.2), LET/LIT size and replacement policy (§2.3), and
//! the stride value predictor of §4.

use loopspec_bench::run::{ExecuteOptions, WorkloadRun};
use loopspec_bench::timing::Suite;
use loopspec_core::{Cls, EventCollector, Replacement, TableHitSim, TableKind};
use loopspec_cpu::{Cpu, RunLimits};
use loopspec_dataspec::StridePredictor;
use loopspec_workloads::{by_name, Scale};

/// Detection cost as a function of CLS capacity (the associative search
/// is linear in occupancy).
fn bench_cls_capacity(s: &mut Suite) {
    let w = by_name("go").unwrap(); // deepest nesting in the suite
    let program = w.build(Scale::Test).unwrap();
    for cap in [4usize, 8, 16, 32, 64] {
        s.bench("cls_capacity", &cap.to_string(), None, || {
            let mut collector = EventCollector::new(Cls::new(cap));
            Cpu::new()
                .run(&program, &mut collector, RunLimits::default())
                .expect("runs");
            std::hint::black_box(collector.events().len())
        });
    }
}

/// Hit-ratio simulation cost across table sizes and replacement
/// policies (event-stream replay).
fn bench_table_sim(s: &mut Suite) {
    let run = WorkloadRun::execute_with(
        by_name("gcc").unwrap(),
        Scale::Test,
        ExecuteOptions {
            engine_grid: false,
            oracle: false,
            ..ExecuteOptions::default()
        },
    );
    let events = run.events.len() as u64;
    for entries in [2usize, 8, 16] {
        s.bench(
            "table_sim",
            &format!("lit_lru/{entries}"),
            Some(events),
            || {
                let mut sim = TableHitSim::new(TableKind::Lit, entries);
                sim.observe_all(&run.events);
                std::hint::black_box(sim.ratio().percent())
            },
        );
    }
    s.bench("table_sim", "lit_nest_inhibit_16", Some(events), || {
        let mut sim = TableHitSim::with_replacement(TableKind::Lit, 16, Replacement::NestInhibit);
        sim.observe_all(&run.events);
        std::hint::black_box(sim.ratio().percent())
    });
}

/// Raw stride-predictor roll rate (the per-live-in cost of §4).
fn bench_stride_predictor(s: &mut Suite) {
    let keys: Vec<u32> = (0..64).collect();
    s.bench("stride_predictor", "observe", Some(64 * 100), || {
        let mut p: StridePredictor<u32> = StridePredictor::new();
        for round in 0..100u64 {
            for &k in &keys {
                std::hint::black_box(p.observe(k, round * k as u64));
            }
        }
    });
}

fn main() {
    let mut s = Suite::new("ablation");
    bench_cls_capacity(&mut s);
    bench_table_sim(&mut s);
    bench_stride_predictor(&mut s);
}
