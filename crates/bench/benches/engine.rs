//! Throughput of the speculation engine across policies and TU counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loopspec_bench::experiments::{run_engine, PolicyKind};
use loopspec_bench::run::WorkloadRun;
use loopspec_mt::ideal_tpc;
use loopspec_workloads::{by_name, Scale};

fn bench_policies(c: &mut Criterion) {
    let run = WorkloadRun::execute(by_name("hydro2d").unwrap(), Scale::Test, false);
    let trace = run.annotate();

    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    for policy in PolicyKind::ALL {
        g.bench_with_input(
            BenchmarkId::new("policy", policy.name()),
            &policy,
            |b, &p| b.iter(|| std::hint::black_box(run_engine(&trace, p, 4).tpc())),
        );
    }
    for tus in [2usize, 16, 256] {
        g.bench_with_input(BenchmarkId::new("tus", tus), &tus, |b, &t| {
            b.iter(|| std::hint::black_box(run_engine(&trace, PolicyKind::Str, t).tpc()))
        });
    }
    g.bench_function("ideal", |b| {
        b.iter(|| std::hint::black_box(ideal_tpc(&trace).tpc))
    });
    g.finish();
}

fn bench_annotate(c: &mut Criterion) {
    let run = WorkloadRun::execute(by_name("su2cor").unwrap(), Scale::Test, false);
    let mut g = c.benchmark_group("annotate");
    g.throughput(Throughput::Elements(run.events.len() as u64));
    g.bench_function("build", |b| {
        b.iter(|| std::hint::black_box(run.annotate().events.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_policies, bench_annotate);
criterion_main!(benches);
