//! Throughput of the speculation engine across policies and TU counts.

use loopspec_bench::experiments::{run_engine, PolicyKind};
use loopspec_bench::run::{ExecuteOptions, WorkloadRun};
use loopspec_bench::timing::Suite;
use loopspec_mt::ideal_tpc;
use loopspec_workloads::{by_name, Scale};

fn bench_policies(s: &mut Suite) {
    let run = WorkloadRun::execute_with(
        by_name("hydro2d").unwrap(),
        Scale::Test,
        ExecuteOptions {
            engine_grid: false,
            oracle: false,
            ..ExecuteOptions::default()
        },
    );
    let trace = run.annotate();
    let events = trace.events.len() as u64;

    for policy in PolicyKind::ALL {
        s.bench(
            "engine",
            &format!("policy/{}", policy.name()),
            Some(events),
            || std::hint::black_box(run_engine(&trace, policy, 4).tpc()),
        );
    }
    for tus in [2usize, 16, 256] {
        s.bench("engine", &format!("tus/{tus}"), Some(events), || {
            std::hint::black_box(run_engine(&trace, PolicyKind::Str, tus).tpc())
        });
    }
    s.bench("engine", "ideal", Some(events), || {
        std::hint::black_box(ideal_tpc(&trace).tpc)
    });
}

fn bench_annotate(s: &mut Suite) {
    let run = WorkloadRun::execute_with(
        by_name("su2cor").unwrap(),
        Scale::Test,
        ExecuteOptions {
            engine_grid: false,
            oracle: false,
            ..ExecuteOptions::default()
        },
    );
    s.bench("annotate", "build", Some(run.events.len() as u64), || {
        std::hint::black_box(run.annotate().events.len())
    });
}

fn main() {
    let mut s = Suite::new("engine");
    bench_policies(&mut s);
    bench_annotate(&mut s);
}
