//! Throughput of the loop-detection front end: the CLS update rules and
//! the full CPU + detector pipeline.

use loopspec_bench::timing::Suite;
use loopspec_core::{Cls, EventCollector, LoopEvent};
use loopspec_cpu::{ControlOutcome, Cpu, RunLimits};
use loopspec_isa::{Addr, ControlKind};
use loopspec_workloads::{by_name, Scale};

/// Raw CLS update-rule throughput on a synthetic nested-loop control
/// stream (no CPU in the way).
fn bench_cls(s: &mut Suite) {
    // Pre-generate a control stream: 3-deep nest, 10 x 10 x 10.
    let mut stream: Vec<(Addr, ControlOutcome)> = Vec::new();
    let branch = |t: u32, pc: u32, taken: bool| {
        (
            Addr::new(pc),
            ControlOutcome {
                kind: ControlKind::CondBranch {
                    target: Addr::new(t),
                },
                taken,
                target: Addr::new(if taken { t } else { pc + 1 }),
            },
        )
    };
    for _ in 0..10 {
        for _ in 0..10 {
            for k in 0..10 {
                stream.push(branch(30, 40, k != 9));
            }
            stream.push(branch(20, 50, true));
        }
        stream.push(branch(20, 50, false));
        stream.push(branch(10, 60, true));
    }
    stream.push(branch(10, 60, false));

    s.bench(
        "cls",
        "on_control/nest10x10x10",
        Some(stream.len() as u64),
        || {
            let mut cls = Cls::default();
            let mut out: Vec<LoopEvent> = Vec::with_capacity(8);
            for (k, (pc, outcome)) in stream.iter().enumerate() {
                out.clear();
                cls.on_control(*pc, outcome, k as u64, &mut out);
                std::hint::black_box(&out);
            }
        },
    );
}

/// End-to-end front end: interpret a workload and detect its loops.
fn bench_frontend(s: &mut Suite) {
    for name in ["compress", "swim", "go"] {
        let w = by_name(name).expect("workload exists");
        let program = w.build(Scale::Test).expect("assembles");
        // Measure instructions once for throughput annotation.
        let mut probe = EventCollector::default();
        Cpu::new()
            .run(&program, &mut probe, RunLimits::default())
            .expect("runs");
        let instructions = probe.instructions();
        s.bench(
            "frontend",
            &format!("cpu+detector/{name}"),
            Some(instructions),
            || {
                let mut collector = EventCollector::default();
                Cpu::new()
                    .run(&program, &mut collector, RunLimits::default())
                    .expect("runs");
                std::hint::black_box(collector.events().len())
            },
        );
    }
}

fn main() {
    let mut s = Suite::new("detector");
    bench_cls(&mut s);
    bench_frontend(&mut s);
}
