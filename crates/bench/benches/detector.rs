//! Throughput of the loop-detection front end: the CLS update rules and
//! the full CPU + detector pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loopspec_core::{Cls, EventCollector, LoopEvent};
use loopspec_cpu::{ControlOutcome, Cpu, RunLimits};
use loopspec_isa::{Addr, ControlKind};
use loopspec_workloads::{by_name, Scale};

/// Raw CLS update-rule throughput on a synthetic nested-loop control
/// stream (no CPU in the way).
fn bench_cls(c: &mut Criterion) {
    // Pre-generate a control stream: 3-deep nest, 10 x 10 x 10.
    let mut stream: Vec<(Addr, ControlOutcome)> = Vec::new();
    let branch = |t: u32, pc: u32, taken: bool| {
        (
            Addr::new(pc),
            ControlOutcome {
                kind: ControlKind::CondBranch {
                    target: Addr::new(t),
                },
                taken,
                target: Addr::new(if taken { t } else { pc + 1 }),
            },
        )
    };
    for _ in 0..10 {
        for _ in 0..10 {
            for k in 0..10 {
                stream.push(branch(30, 40, k != 9));
            }
            stream.push(branch(20, 50, true));
        }
        stream.push(branch(20, 50, false));
        stream.push(branch(10, 60, true));
    }
    stream.push(branch(10, 60, false));

    let mut g = c.benchmark_group("cls");
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("on_control/nest10x10x10", |b| {
        b.iter(|| {
            let mut cls = Cls::default();
            let mut out: Vec<LoopEvent> = Vec::with_capacity(8);
            for (k, (pc, outcome)) in stream.iter().enumerate() {
                out.clear();
                cls.on_control(*pc, outcome, k as u64, &mut out);
                std::hint::black_box(&out);
            }
        })
    });
    g.finish();
}

/// End-to-end pipeline: interpret a workload and detect its loops.
fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    for name in ["compress", "swim", "go"] {
        let w = by_name(name).expect("workload exists");
        let program = w.build(Scale::Test).expect("assembles");
        // Measure instructions once for throughput annotation.
        let mut probe = EventCollector::default();
        Cpu::new()
            .run(&program, &mut probe, RunLimits::default())
            .expect("runs");
        g.throughput(Throughput::Elements(probe.instructions()));
        g.bench_with_input(BenchmarkId::new("cpu+detector", name), &program, |b, p| {
            b.iter(|| {
                let mut collector = EventCollector::default();
                Cpu::new()
                    .run(p, &mut collector, RunLimits::default())
                    .expect("runs");
                std::hint::black_box(collector.events().len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cls, bench_pipeline);
criterion_main!(benches);
