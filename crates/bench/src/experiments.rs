//! One function per paper artefact (tables and figures).

use loopspec_core::{Cls, EventCollector, LoopStatsReport, Replacement, TableHitSim, TableKind};
use loopspec_cpu::{Cpu, RunLimits};
use loopspec_dataspec::DataSpecReport;
use loopspec_mt::{
    AnnotatedTrace, AnyStreamEngine, Engine, EngineGrid, EngineReport, EngineSink, IdlePolicy,
    StrNestedPolicy, StrPolicy, StreamEngine,
};
use loopspec_workloads::{PaperRow, Scale, Workload};

use crate::run::WorkloadRun;

/// Table sizes swept in Figure 4.
pub const TABLE_SIZES: [usize; 4] = [2, 4, 8, 16];

/// TU counts swept in Figures 6 and 7.
pub const TU_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// A speculation policy choice, as a value (the engine itself is generic
/// over policy types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Grab every idle TU.
    Idle,
    /// Stride-predicted burst sizing.
    Str,
    /// STR with the nesting limit `i`.
    StrNested(u32),
}

impl PolicyKind {
    /// All policies of Figure 7, in the paper's bar order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Idle,
        PolicyKind::Str,
        PolicyKind::StrNested(1),
        PolicyKind::StrNested(2),
        PolicyKind::StrNested(3),
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Idle => "IDLE",
            PolicyKind::Str => "STR",
            PolicyKind::StrNested(1) => "STR(1)",
            PolicyKind::StrNested(2) => "STR(2)",
            PolicyKind::StrNested(3) => "STR(3)",
            PolicyKind::StrNested(_) => "STR(i)",
        }
    }

    /// Boxes a streaming engine for this policy, ready to register in a
    /// [`loopspec_pipeline::Session`]. For the full experiment grid,
    /// prefer [`PolicyKind::add_to_grid`] — an [`EngineGrid`] shares
    /// the annotation bookkeeping across all configurations.
    pub fn stream_engine(self, tus: usize) -> Box<dyn EngineSink + Send> {
        match self {
            PolicyKind::Idle => Box::new(StreamEngine::new(IdlePolicy::new(), tus)),
            PolicyKind::Str => Box::new(StreamEngine::new(StrPolicy::new(), tus)),
            PolicyKind::StrNested(i) => Box::new(StreamEngine::new(StrNestedPolicy::new(i), tus)),
        }
    }

    /// A monomorphized streaming engine for this policy, for
    /// independent-sink fan-out
    /// ([`loopspec_pipeline::SinkSet`]`<AnyStreamEngine>`); the grid
    /// itself uses [`PolicyKind::add_to_grid`].
    pub fn any_engine(self, tus: usize) -> AnyStreamEngine {
        match self {
            PolicyKind::Idle => AnyStreamEngine::idle(tus),
            PolicyKind::Str => AnyStreamEngine::str(tus),
            PolicyKind::StrNested(i) => AnyStreamEngine::str_nested(i, tus),
        }
    }

    /// Adds a lane for this policy to a shared-annotation
    /// [`EngineGrid`]; returns the lane index.
    pub fn add_to_grid(self, grid: &mut EngineGrid, tus: usize) -> usize {
        match self {
            PolicyKind::Idle => grid.push_idle(tus),
            PolicyKind::Str => grid.push_str(tus),
            PolicyKind::StrNested(i) => grid.push_str_nested(i, tus),
        }
    }
}

/// The full experiment grid, in report order: every policy of
/// [`PolicyKind::ALL`] at every TU count of [`TU_COUNTS`].
pub fn grid_points() -> impl Iterator<Item = (PolicyKind, usize)> {
    PolicyKind::ALL
        .iter()
        .flat_map(|&p| TU_COUNTS.iter().map(move |&tus| (p, tus)))
}

/// Runs the batch speculation engine for a policy given by value — used
/// for ad-hoc sweeps and as the reference the streaming grid is checked
/// against; the figures themselves read `WorkloadRun::report`.
pub fn run_engine(trace: &AnnotatedTrace, policy: PolicyKind, tus: usize) -> EngineReport {
    match policy {
        PolicyKind::Idle => Engine::new(trace, IdlePolicy::new(), tus).run(),
        PolicyKind::Str => Engine::new(trace, StrPolicy::new(), tus).run(),
        PolicyKind::StrNested(i) => Engine::new(trace, StrNestedPolicy::new(i), tus).run(),
    }
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One Table 1 row: measured loop statistics next to the paper's.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload name.
    pub name: &'static str,
    /// Our measurements.
    pub ours: LoopStatsReport,
    /// The paper's SPEC95 values.
    pub paper: PaperRow,
}

/// Reproduces Table 1: loop statistics for every workload.
pub fn table1(runs: &[WorkloadRun]) -> Vec<Table1Row> {
    runs.iter()
        .map(|r| Table1Row {
            name: r.workload.name,
            ours: r.loop_stats(),
            paper: r.workload.paper,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

/// One bar of Figure 4: a table kind and size with the suite-average hit
/// ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// LET or LIT.
    pub kind: TableKind,
    /// Number of entries.
    pub entries: usize,
    /// Hit ratio averaged over the workloads (percent).
    pub avg_hit_percent: f64,
}

/// Reproduces Figure 4: average LET and LIT hit ratios for 2–16 entries.
pub fn fig4(runs: &[WorkloadRun]) -> Vec<Fig4Point> {
    fig4_with_replacement(runs, Replacement::Lru)
}

/// Figure 4 under a chosen replacement policy (the §2.3.2 ablation).
pub fn fig4_with_replacement(runs: &[WorkloadRun], replacement: Replacement) -> Vec<Fig4Point> {
    let mut out = Vec::new();
    for kind in [TableKind::Let, TableKind::Lit] {
        for entries in TABLE_SIZES {
            let mut sum = 0.0;
            for r in runs {
                let mut sim = TableHitSim::with_replacement(kind, entries, replacement);
                sim.observe_all(&r.events);
                sum += sim.ratio().percent();
            }
            out.push(Fig4Point {
                kind,
                entries,
                avg_hit_percent: sum / runs.len() as f64,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------

/// One pair of Figure 5 bars: ideal-machine TPC on the whole run and on
/// a prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Workload name.
    pub name: &'static str,
    /// TPC over all instructions.
    pub tpc_all: f64,
    /// TPC over the prefix (the paper uses the first 10⁹ instructions;
    /// we use the first quarter of the scaled run).
    pub tpc_prefix: f64,
}

/// Fraction of the run used as the Figure 5 "reduced part".
pub const FIG5_PREFIX_FRACTION: f64 = 0.25;

/// Reproduces Figure 5: potential TPC with infinite thread units, read
/// from the two-phase streaming oracle computed by
/// [`WorkloadRun::execute`] — phase 1 (the iteration-count log) rides
/// the shared single pass, phase 2 streams the retained events through
/// unbounded oracle lanes. No trace is materialized.
///
/// # Panics
///
/// Panics if the runs were executed with
/// [`ExecuteOptions::oracle`](crate::run::ExecuteOptions) off.
pub fn fig5(runs: &[WorkloadRun]) -> Vec<Fig5Row> {
    runs.iter()
        .map(|r| Fig5Row {
            name: r.workload.name,
            tpc_all: r.ideal_all().tpc,
            tpc_prefix: r.ideal_prefix().tpc,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

/// One Figure 6 group: per-workload TPC with the STR policy across TU
/// counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Row {
    /// Workload name.
    pub name: &'static str,
    /// TPC at 2, 4, 8 and 16 TUs.
    pub tpc: [f64; 4],
}

/// Reproduces Figure 6: STR TPC for every workload and TU count, read
/// from the streaming grid computed during the shared single pass.
pub fn fig6(runs: &[WorkloadRun]) -> Vec<Fig6Row> {
    runs.iter()
        .map(|r| {
            let mut tpc = [0.0; 4];
            for (k, tus) in TU_COUNTS.iter().enumerate() {
                tpc[k] = r.report(PolicyKind::Str, *tus).tpc();
            }
            Fig6Row {
                name: r.workload.name,
                tpc,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 6 by loop shape (generated scenario families)
// ---------------------------------------------------------------------

/// One "Figure 6 by loop shape" row: a generated scenario family's
/// STR TPC across TU counts, averaged over its seed corpus, plus the
/// differential-harness verdict for those seeds.
#[derive(Debug, Clone)]
pub struct GenFig6Row {
    /// Family name (see `loopspec_gen::families`).
    pub family: &'static str,
    /// Seeds swept (`0..seeds`).
    pub seeds: u64,
    /// Seeds that passed the full differential harness.
    pub passed: u64,
    /// Committed instructions across the corpus.
    pub instructions: u64,
    /// Loop events across the corpus.
    pub loop_events: u64,
    /// Corpus-average STR TPC at 2, 4, 8 and 16 TUs.
    pub tpc: [f64; 4],
}

/// The generated-scenario companion to Figure 6: the STR TPC sweep of
/// the paper, broken down *by loop shape* instead of by SPEC program.
/// Every seed is first pushed through the full differential harness
/// (legacy vs decoded, batch vs streaming vs sharded), so a row's TPC
/// numbers are only reported for programs whose reports were proven
/// byte-identical on every execution path.
pub fn gen_fig6(seeds: u64, scale: Scale) -> Vec<GenFig6Row> {
    let size = scale.factor() as u32;
    loopspec_gen::families()
        .iter()
        .map(|family| {
            let verdict = loopspec_gen::run_family(family, seeds, size);
            let mut tpc = [0.0f64; 4];
            for seed in 0..seeds {
                let program = loopspec_gen::compile(&family.generate(seed, size))
                    .expect("family programs compile");
                let mut collector = EventCollector::default();
                Cpu::new()
                    .run(&program, &mut collector, RunLimits::default())
                    .expect("family programs execute");
                let (events, n) = collector.into_parts();
                let trace = AnnotatedTrace::build(&events, n);
                for (k, tus) in TU_COUNTS.iter().enumerate() {
                    tpc[k] +=
                        Engine::new(&trace, StrPolicy::new(), *tus).run().tpc() / seeds as f64;
                }
            }
            GenFig6Row {
                family: family.name,
                seeds,
                passed: verdict.passed,
                instructions: verdict.instructions,
                loop_events: verdict.loop_events,
                tpc,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// One Figure 7 bar group: a policy's suite-average TPC per TU count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// The policy.
    pub policy: PolicyKind,
    /// Average TPC at 2, 4, 8 and 16 TUs.
    pub avg_tpc: [f64; 4],
}

/// Reproduces Figure 7: average TPC for IDLE, STR, STR(1..3), read from
/// the streaming grid computed during the shared single pass.
pub fn fig7(runs: &[WorkloadRun]) -> Vec<Fig7Row> {
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let mut avg_tpc = [0.0; 4];
            for (k, tus) in TU_COUNTS.iter().enumerate() {
                let sum: f64 = runs.iter().map(|r| r.report(policy, *tus).tpc()).sum();
                avg_tpc[k] = sum / runs.len() as f64;
            }
            Fig7Row { policy, avg_tpc }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// One Table 2 row: STR(3), 4 TUs speculation statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Workload name.
    pub name: &'static str,
    /// Control speculations performed.
    pub spec: u64,
    /// Average threads per speculation.
    pub threads_per_spec: f64,
    /// Thread hit ratio (percent).
    pub hit_ratio: f64,
    /// Average committed instructions from spawn to verification/squash.
    pub instr_to_verif: f64,
    /// Threads per cycle.
    pub tpc: f64,
}

/// Reproduces Table 2: STR(3) with 4 TUs, per workload, read from the
/// streaming grid computed during the shared single pass.
pub fn table2(runs: &[WorkloadRun]) -> Vec<Table2Row> {
    runs.iter()
        .map(|r| {
            let report = r.report(PolicyKind::StrNested(3), 4);
            Table2Row {
                name: r.workload.name,
                spec: report.spec.spec_actions,
                threads_per_spec: report.spec.threads_per_spec(),
                hit_ratio: report.spec.hit_ratio_percent(),
                instr_to_verif: report.spec.instr_to_verif(),
                tpc: report.tpc(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------

/// One Figure 8 row: a workload's data-speculation statistics.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Workload name.
    pub name: &'static str,
    /// The six percentages of Figure 8.
    pub report: DataSpecReport,
}

/// Reproduces Figure 8: per-workload and suite-average data-speculation
/// predictability.
///
/// # Panics
///
/// Panics if the runs were executed without data-speculation profiling.
pub fn fig8(runs: &[WorkloadRun]) -> (Vec<Fig8Row>, [f64; 6]) {
    let rows: Vec<Fig8Row> = runs
        .iter()
        .map(|r| Fig8Row {
            name: r.workload.name,
            report: r
                .dataspec
                .expect("fig8 requires runs executed with_dataspec"),
        })
        .collect();
    // Average each percentage only over workloads where it is
    // non-vacuous (a workload with no live-in memory contributes nothing
    // to the memory columns).
    let mut avg = [0.0; 6];
    let mut den = [0.0; 6];
    for row in &rows {
        let d = row.report;
        let lm_valid = d.lm_seen > 0;
        let cols = [
            (d.same_path_percent, true),
            (d.lr_pred_percent, d.lr_seen > 0),
            (d.lm_pred_percent, lm_valid),
            (d.all_lr_percent, d.lr_seen > 0),
            (d.all_lm_percent, lm_valid),
            (d.all_data_percent, true),
        ];
        for (slot, (v, valid)) in cols.iter().enumerate() {
            if *valid {
                avg[slot] += v;
                den[slot] += 1.0;
            }
        }
    }
    for slot in 0..6 {
        if den[slot] > 0.0 {
            avg[slot] /= den[slot];
        }
    }
    (rows, avg)
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// CLS-capacity ablation data point (suite averages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClsAblationPoint {
    /// CLS entries.
    pub capacity: usize,
    /// Total evictions across the suite.
    pub evictions: u64,
    /// Total detected executions across the suite.
    pub executions: u64,
    /// Maximum nesting observed anywhere.
    pub max_nesting: u32,
}

/// CLS capacities swept by [`cls_ablation`].
pub const CLS_CAPACITIES: [usize; 4] = [4, 8, 16, 32];

/// Ablates the CLS capacity (paper §2.2: "a few entries are enough to
/// guarantee no overflow for most programs"). Re-runs detection — the
/// event stream itself depends on the capacity.
pub fn cls_ablation(workloads: &[Workload], scale: Scale) -> Vec<ClsAblationPoint> {
    CLS_CAPACITIES
        .iter()
        .map(|&capacity| {
            let (mut evictions, mut executions, mut max_nesting) = (0u64, 0u64, 0u32);
            for w in workloads {
                let program = w.build(scale).expect("workload assembles");
                let mut c = EventCollector::new(Cls::new(capacity));
                Cpu::new()
                    .run(&program, &mut c, RunLimits::default())
                    .expect("workload runs");
                let (events, n) = c.into_parts();
                let mut stats = loopspec_core::LoopStats::new();
                stats.observe_all(&events);
                let rep = stats.report(n);
                evictions += events
                    .iter()
                    .filter(|e| matches!(e, loopspec_core::LoopEvent::Evicted { .. }))
                    .count() as u64;
                executions += rep.executions;
                max_nesting = max_nesting.max(rep.max_nesting);
            }
            ClsAblationPoint {
                capacity,
                evictions,
                executions,
                max_nesting,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{execute_all, ExecuteOptions};
    use loopspec_workloads::by_name;

    fn small_runs(with_ds: bool) -> Vec<WorkloadRun> {
        let ws: Vec<_> = ["compress", "perl", "swim"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect();
        execute_all(
            &ws,
            Scale::Test,
            ExecuteOptions {
                dataspec: with_ds,
                ..ExecuteOptions::default()
            },
        )
    }

    #[test]
    fn table1_rows_pair_measured_and_paper() {
        let rows = table1(&small_runs(false));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "compress");
        assert!(rows[0].ours.instructions > 0);
        assert_eq!(rows[0].paper.loops, 45);
    }

    #[test]
    fn fig4_larger_tables_hit_at_least_as_often() {
        let runs = small_runs(false);
        let points = fig4(&runs);
        assert_eq!(points.len(), 8);
        for kind in [TableKind::Let, TableKind::Lit] {
            let series: Vec<f64> = points
                .iter()
                .filter(|p| p.kind == kind)
                .map(|p| p.avg_hit_percent)
                .collect();
            for w in series.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{kind:?} not monotone: {series:?}");
            }
        }
    }

    #[test]
    fn fig5_prefix_behaves_like_full() {
        let runs = small_runs(false);
        for row in fig5(&runs) {
            assert!(row.tpc_all >= 1.0);
            assert!(row.tpc_prefix >= 1.0);
        }
    }

    #[test]
    fn fig6_tpc_monotone_in_tus() {
        let runs = small_runs(false);
        for row in fig6(&runs) {
            for w in row.tpc.windows(2) {
                assert!(
                    w[1] >= w[0] - 0.05,
                    "{}: TPC should not collapse with more TUs: {:?}",
                    row.name,
                    row.tpc
                );
            }
        }
    }

    #[test]
    fn fig7_produces_all_policies() {
        let runs = small_runs(false);
        let rows = fig7(&runs);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].policy.name(), "IDLE");
        // Every policy exploits some parallelism at 16 TUs on these
        // loop-heavy workloads.
        for r in &rows {
            assert!(r.avg_tpc[3] > 1.1, "{:?}", r);
        }
    }

    #[test]
    fn table2_hit_ratios_are_percentages() {
        let runs = small_runs(false);
        for row in table2(&runs) {
            assert!(
                (0.0..=100.0).contains(&row.hit_ratio),
                "{}: {row:?}",
                row.name
            );
            assert!(row.tpc >= 1.0 && row.tpc <= 4.0);
        }
    }

    #[test]
    fn fig8_averages_six_percentages() {
        let runs = small_runs(true);
        let (rows, avg) = fig8(&runs);
        assert_eq!(rows.len(), 3);
        for v in avg {
            assert!((0.0..=100.0).contains(&v), "{avg:?}");
        }
    }

    #[test]
    fn gen_fig6_verifies_and_reports_every_family() {
        let rows = gen_fig6(2, Scale::Test);
        assert_eq!(rows.len(), loopspec_gen::families().len());
        for r in &rows {
            assert_eq!(r.passed, r.seeds, "{}: harness failures", r.family);
            assert!(r.instructions > 0);
            for (k, tpc) in r.tpc.iter().enumerate() {
                assert!(
                    *tpc >= 1.0 - 1e-9 && *tpc <= TU_COUNTS[k] as f64 + 1e-9,
                    "{}: TPC {tpc} out of range at {} TUs",
                    r.family,
                    TU_COUNTS[k]
                );
            }
        }
    }

    #[test]
    fn cls_ablation_eviction_free_at_paper_capacity() {
        let ws = vec![by_name("compress").unwrap(), by_name("swim").unwrap()];
        let points = cls_ablation(&ws, Scale::Test);
        let cap16 = points.iter().find(|p| p.capacity == 16).unwrap();
        assert_eq!(
            cap16.evictions, 0,
            "16 entries suffice for shallow workloads"
        );
    }
}
