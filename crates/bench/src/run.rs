//! Workload execution and artifact caching.
//!
//! Every experiment consumes the same per-workload artifact, produced by
//! **one streaming pass** over the program: a single [`Session`] drives
//! the CPU and the shared CLS detector, and fans the live event stream
//! out to
//!
//! * one [`EngineGrid`] lane per (policy × TU-count) grid point — so
//!   every TPC figure/table reads from reports computed *during*
//!   execution, with the annotation bookkeeping shared across all 20
//!   lanes,
//! * an [`IterationCountLog`] — phase 1 of the two-phase streaming
//!   oracle: per-execution iteration counts for the Figure 5 potential
//!   study, replayed through unbounded-TU oracle lanes in a second
//!   streaming pass over the retained event stream (no
//!   [`AnnotatedTrace`] is materialized),
//! * the live-in profiler (when requested — only Figure 8 needs it),
//! * an [`EventCollector`] that retains the compact event stream for the
//!   replay-style analyses (Table 1 statistics, LET/LIT sweeps, and the
//!   phase-2 oracle replay).
//!
//! Workloads run in parallel on a work-queue sized to the machine.

use std::sync::atomic::{AtomicUsize, Ordering};

use loopspec_core::{EventCollector, LoopEvent, LoopStats, LoopStatsReport};
use loopspec_cpu::RunLimits;
use loopspec_dataspec::{DataSpecReport, LiveInProfiler};
use loopspec_mt::{
    ideal_tpc_streaming, ideal_tpc_with_feed, prefix_split, AnnotatedTrace, EngineGrid,
    EngineReport, IdealReport, IterationCountLog,
};
use loopspec_pipeline::Session;
use loopspec_workloads::{Scale, Workload};

use crate::experiments::{grid_points, PolicyKind, FIG5_PREFIX_FRACTION};

/// One workload's Figure 5 data points, computed by the two-phase
/// streaming oracle (no materialized trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealPair {
    /// The ideal machine over the whole run.
    pub all: IdealReport,
    /// The ideal machine over the first
    /// [`FIG5_PREFIX_FRACTION`] of the run.
    pub prefix: IdealReport,
}

/// The reusable result of executing one workload once.
#[derive(Debug)]
pub struct WorkloadRun {
    /// Which SPEC95-shaped workload this is.
    pub workload: Workload,
    /// The loop-event stream of the full run.
    pub events: Vec<LoopEvent>,
    /// Committed instructions.
    pub instructions: u64,
    /// Figure 8 statistics, if data-speculation profiling was enabled.
    pub dataspec: Option<DataSpecReport>,
    /// Streaming engine reports for every (policy, TUs) grid point,
    /// computed in the same pass as the event stream.
    reports: Vec<(PolicyKind, usize, EngineReport)>,
    /// Figure 5 ideal-machine reports (two-phase streaming oracle), if
    /// the oracle study was enabled.
    ideal: Option<IdealPair>,
}

/// What a [`WorkloadRun::execute_with`] pass should compute alongside
/// the event stream.
#[derive(Debug, Clone, Copy)]
pub struct ExecuteOptions {
    /// Run the live-in profiler (noticeably more expensive — only
    /// Figure 8 needs it).
    pub dataspec: bool,
    /// Fan out to the full (policy × TU) streaming engine grid. Callers
    /// that only want the event stream (table/detector sweeps) can turn
    /// this off and skip the 20-sink overhead.
    pub engine_grid: bool,
    /// Run the two-phase streaming oracle for the Figure 5 potential
    /// study: an [`IterationCountLog`] rides the main fan-out (phase
    /// 1), then unbounded-TU oracle lanes replay the retained event
    /// stream (phase 2) for the full run and its prefix.
    pub oracle: bool,
}

impl Default for ExecuteOptions {
    /// Engine grid and oracle on, dataspec off — what the figure
    /// harness wants.
    fn default() -> Self {
        ExecuteOptions {
            dataspec: false,
            engine_grid: true,
            oracle: true,
        }
    }
}

impl From<&loopspec_dist::JobSpec> for ExecuteOptions {
    /// Derives the artifacts a [`loopspec_dist::JobSpec`] asks for. A
    /// job's lane grid always runs (that is what the spec's fingerprint
    /// promises), so `engine_grid` is unconditionally on; the optional
    /// oracle and data-speculation studies map straight through.
    fn from(spec: &loopspec_dist::JobSpec) -> Self {
        ExecuteOptions {
            dataspec: spec.dataspec,
            engine_grid: true,
            oracle: spec.oracle,
        }
    }
}

impl WorkloadRun {
    /// Executes `workload` at `scale` in a single streaming pass.
    /// `with_dataspec` additionally runs the live-in profiler; the full
    /// engine grid is always computed (see [`WorkloadRun::execute_with`]
    /// to opt out).
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to assemble, run, or halt — these are
    /// suite bugs, not user conditions.
    pub fn execute(workload: Workload, scale: Scale, with_dataspec: bool) -> Self {
        Self::execute_with(
            workload,
            scale,
            ExecuteOptions {
                dataspec: with_dataspec,
                ..ExecuteOptions::default()
            },
        )
    }

    /// Executes `workload` at `scale`, computing exactly the artifacts
    /// `opts` asks for.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to assemble, run, or halt — these are
    /// suite bugs, not user conditions.
    pub fn execute_with(workload: Workload, scale: Scale, opts: ExecuteOptions) -> Self {
        let program = workload
            .build(scale)
            .unwrap_or_else(|e| panic!("{}: assembly failed: {e}", workload.name));
        let limits = RunLimits {
            max_instrs: 1_000_000_000,
            ..RunLimits::default()
        };

        let mut collector = EventCollector::default();
        // The grid runs as ONE registered sink: a shared-annotation
        // EngineGrid, so the session pays one virtual call per event
        // chunk for all 20 grid points, the annotation bookkeeping runs
        // once instead of per engine, and the per-lane fan-out
        // dispatches statically.
        let points: Vec<(PolicyKind, usize)> = if opts.engine_grid {
            grid_points().collect()
        } else {
            Vec::new()
        };
        let mut grid = EngineGrid::new();
        for &(p, tus) in &points {
            p.add_to_grid(&mut grid, tus);
        }
        let mut profiler = opts.dataspec.then(LiveInProfiler::new);
        // Phase 1 of the two-phase oracle: the count log rides the same
        // fan-out as every other sink.
        let mut count_log = opts.oracle.then(IterationCountLog::new);

        let mut session = Session::new();
        session.observe_loops(&mut collector);
        if !grid.is_empty() {
            session.observe_loops(&mut grid);
        }
        if let Some(log) = count_log.as_mut() {
            session.observe_loops(log);
        }
        if let Some(p) = profiler.as_mut() {
            session.observe_both(p);
        }

        let out = session
            .run(&program, limits)
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", workload.name));
        assert!(out.halted(), "{}: did not halt", workload.name);

        let lane_reports = if grid.is_empty() {
            &[][..]
        } else {
            grid.reports()
                .unwrap_or_else(|| panic!("{}: engine grid did not finish", workload.name))
        };
        let reports = points
            .into_iter()
            .zip(lane_reports.iter())
            .map(|((p, tus), report)| (p, tus, report.clone()))
            .collect();

        let dataspec = profiler.map(|p| p.report());
        let (events, instructions) = collector.into_parts();

        // Phase 2: replay the retained event stream through unbounded
        // oracle lanes. The full run consumes the counts the session
        // already recorded; the prefix study is its own two-phase run
        // over the event prefix (the truncated future differs from the
        // full run's, exactly as the paper's reduced-input bars do).
        let ideal = count_log.map(|log| {
            let feed = log.into_feed();
            let all = ideal_tpc_with_feed(&events, instructions, &feed);
            let (split, cut) = prefix_split(&events, instructions, FIG5_PREFIX_FRACTION);
            let prefix = ideal_tpc_streaming(&events[..split], cut);
            IdealPair { all, prefix }
        });

        WorkloadRun {
            workload,
            events,
            instructions,
            dataspec,
            reports,
            ideal,
        }
    }

    /// The streaming engine report for a (policy, TUs) grid point.
    ///
    /// # Panics
    ///
    /// Panics when the point is outside the precomputed grid
    /// ([`PolicyKind::ALL`] × [`TU_COUNTS`](crate::experiments::TU_COUNTS),
    /// empty when the run was executed with
    /// [`ExecuteOptions::engine_grid`] off).
    pub fn report(&self, policy: PolicyKind, tus: usize) -> &EngineReport {
        self.reports
            .iter()
            .find(|(p, t, _)| *p == policy && *t == tus)
            .map(|(_, _, r)| r)
            .unwrap_or_else(|| panic!("no precomputed report for {policy:?} @ {tus} TUs"))
    }

    /// All precomputed (policy, TUs, report) grid points.
    pub fn reports(&self) -> impl Iterator<Item = (PolicyKind, usize, &EngineReport)> {
        self.reports.iter().map(|(p, t, r)| (*p, *t, r))
    }

    /// Loop statistics (Table 1 row) of this run.
    pub fn loop_stats(&self) -> LoopStatsReport {
        let mut s = LoopStats::new();
        s.observe_all(&self.events);
        s.report(self.instructions)
    }

    /// Figure 5 ideal-machine report over the whole run, from the
    /// two-phase streaming oracle.
    ///
    /// # Panics
    ///
    /// Panics when the run was executed with
    /// [`ExecuteOptions::oracle`] off.
    pub fn ideal_all(&self) -> &IdealReport {
        &self
            .ideal
            .as_ref()
            .expect("run executed without the oracle study")
            .all
    }

    /// Figure 5 ideal-machine report over the first
    /// [`FIG5_PREFIX_FRACTION`] of the run, from the two-phase
    /// streaming oracle.
    ///
    /// # Panics
    ///
    /// Panics when the run was executed with
    /// [`ExecuteOptions::oracle`] off.
    pub fn ideal_prefix(&self) -> &IdealReport {
        &self
            .ideal
            .as_ref()
            .expect("run executed without the oracle study")
            .prefix
    }

    /// Annotated trace for the **legacy** batch engine — kept as the
    /// cross-check reference for equivalence tests and the
    /// `materialized` benchmark groups; no production figure reads it
    /// (the grid and the Figure 5 oracle both stream).
    pub fn annotate(&self) -> AnnotatedTrace {
        AnnotatedTrace::build(&self.events, self.instructions)
    }
}

/// Executes all `workloads` in parallel and returns the runs in the same
/// order, computing the artifacts `opts` asks for (callers that never
/// render Figure 5 or Figure 8 should turn `oracle` / `dataspec` off
/// and skip those passes entirely). A shared work-queue feeds up to
/// `available_parallelism` worker threads, so an 18-workload batch
/// saturates the machine without spawning 18 threads on a 4-core box.
pub fn execute_all(workloads: &[Workload], scale: Scale, opts: ExecuteOptions) -> Vec<WorkloadRun> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, workloads.len().max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<WorkloadRun>> = Vec::new();
    results.resize_with(workloads.len(), || None);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(w) = workloads.get(i) else { break };
                        local.push((i, WorkloadRun::execute_with(*w, scale, opts)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, run) in h.join().expect("workload worker panicked") {
                results[i] = Some(run);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("work queue covered every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_engine, TU_COUNTS};
    use loopspec_workloads::by_name;

    #[test]
    fn execute_produces_consistent_artifacts() {
        let run = WorkloadRun::execute(by_name("compress").unwrap(), Scale::Test, false);
        assert!(run.instructions > 10_000);
        assert!(!run.events.is_empty());
        assert!(run.dataspec.is_none());
        let stats = run.loop_stats();
        assert_eq!(stats.instructions, run.instructions);
        let trace = run.annotate();
        assert_eq!(trace.instructions, run.instructions);
        assert_eq!(run.ideal_all().instructions, run.instructions);
        assert!(run.ideal_prefix().instructions < run.instructions);
    }

    #[test]
    fn streaming_grid_matches_batch_replay() {
        // The precomputed single-pass reports must be identical to what
        // the batch engine derives from the collected events.
        let run = WorkloadRun::execute(by_name("li").unwrap(), Scale::Test, false);
        let trace = run.annotate();
        let mut checked = 0;
        for (policy, tus, streamed) in run.reports() {
            assert_eq!(
                streamed,
                &run_engine(&trace, policy, tus),
                "{policy:?} @ {tus}"
            );
            checked += 1;
        }
        assert_eq!(checked, PolicyKind::ALL.len() * TU_COUNTS.len());
    }

    #[test]
    fn dataspec_flag_populates_report() {
        let run = WorkloadRun::execute(by_name("perl").unwrap(), Scale::Test, true);
        let ds = run.dataspec.expect("requested dataspec");
        assert!(ds.iterations > 0);
    }

    #[test]
    fn two_phase_ideal_matches_the_legacy_materialized_path() {
        use crate::experiments::FIG5_PREFIX_FRACTION;
        use loopspec_core::LoopEvent;
        use loopspec_mt::ideal_tpc;

        let run = WorkloadRun::execute(by_name("swim").unwrap(), Scale::Test, false);
        // Full run: the streaming pair must equal the batch oracle on
        // the materialized trace.
        assert_eq!(*run.ideal_all(), ideal_tpc(&run.annotate()));
        // Prefix: same comparison against an annotated event prefix.
        let cut = (run.instructions as f64 * FIG5_PREFIX_FRACTION) as u64;
        let prefix: Vec<LoopEvent> = run
            .events
            .iter()
            .filter(|e| e.pos() <= cut)
            .copied()
            .collect();
        let legacy = ideal_tpc(&loopspec_mt::AnnotatedTrace::build(&prefix, cut));
        assert_eq!(*run.ideal_prefix(), legacy);
        assert!(run.ideal_prefix().instructions < run.ideal_all().instructions);
    }

    #[test]
    #[should_panic(expected = "without the oracle study")]
    fn ideal_reports_require_the_oracle_option() {
        let run = WorkloadRun::execute_with(
            by_name("compress").unwrap(),
            Scale::Test,
            ExecuteOptions {
                oracle: false,
                engine_grid: false,
                ..ExecuteOptions::default()
            },
        );
        let _ = run.ideal_all();
    }

    #[test]
    fn parallel_execution_preserves_order() {
        let ws: Vec<_> = ["gcc", "li"].iter().map(|n| by_name(n).unwrap()).collect();
        let runs = execute_all(&ws, Scale::Test, ExecuteOptions::default());
        assert_eq!(runs[0].workload.name, "gcc");
        assert_eq!(runs[1].workload.name, "li");
    }

    #[test]
    #[should_panic(expected = "no precomputed report")]
    fn off_grid_report_panics() {
        let run = WorkloadRun::execute(by_name("compress").unwrap(), Scale::Test, false);
        let _ = run.report(PolicyKind::Str, 3);
    }

    #[test]
    fn job_spec_maps_to_execute_options() {
        let spec = loopspec_dist::JobSpec::new("compress")
            .oracle(true)
            .dataspec(true);
        let opts = ExecuteOptions::from(&spec);
        assert!(opts.dataspec && opts.engine_grid && opts.oracle);

        let lean = loopspec_dist::JobSpec::new("compress");
        let opts = ExecuteOptions::from(&lean);
        assert!(!opts.dataspec && opts.engine_grid && !opts.oracle);
    }

    #[test]
    fn grid_can_be_disabled() {
        let run = WorkloadRun::execute_with(
            by_name("compress").unwrap(),
            Scale::Test,
            ExecuteOptions {
                engine_grid: false,
                ..ExecuteOptions::default()
            },
        );
        assert_eq!(run.reports().count(), 0);
        assert!(!run.events.is_empty(), "event stream still collected");
    }
}
