//! Workload execution and artifact caching.
//!
//! Every experiment consumes the same per-workload artifact — the loop
//! event stream plus instruction count (and, when requested, the
//! data-speculation records) — so the harness executes each workload
//! *once* per scale and replays the compact event stream into each
//! analysis. Workloads run in parallel threads.

use loopspec_core::{EventCollector, LoopEvent, LoopStats, LoopStatsReport};
use loopspec_cpu::{Cpu, RunLimits};
use loopspec_dataspec::{DataSpecProfiler, DataSpecReport};
use loopspec_mt::AnnotatedTrace;
use loopspec_workloads::{Scale, Workload};

/// The reusable result of executing one workload once.
#[derive(Debug)]
pub struct WorkloadRun {
    /// Which SPEC95-shaped workload this is.
    pub workload: Workload,
    /// The loop-event stream of the full run.
    pub events: Vec<LoopEvent>,
    /// Committed instructions.
    pub instructions: u64,
    /// Figure 8 statistics, if data-speculation profiling was enabled.
    pub dataspec: Option<DataSpecReport>,
}

impl WorkloadRun {
    /// Executes `workload` at `scale`. `with_dataspec` additionally runs
    /// the live-in profiler (noticeably more expensive — only Figure 8
    /// needs it).
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to assemble, run, or halt — these are
    /// suite bugs, not user conditions.
    pub fn execute(workload: Workload, scale: Scale, with_dataspec: bool) -> Self {
        let program = workload
            .build(scale)
            .unwrap_or_else(|e| panic!("{}: assembly failed: {e}", workload.name));
        let limits = RunLimits {
            max_instrs: 1_000_000_000,
            ..RunLimits::default()
        };

        let mut collector = EventCollector::default();
        let dataspec = if with_dataspec {
            let mut profiler = DataSpecProfiler::new();
            let mut both = (&mut collector, &mut profiler);
            let summary = Cpu::new()
                .run(&program, &mut both, limits)
                .unwrap_or_else(|e| panic!("{}: run failed: {e}", workload.name));
            assert!(summary.halted(), "{}: did not halt", workload.name);
            Some(profiler.report())
        } else {
            let summary = Cpu::new()
                .run(&program, &mut collector, limits)
                .unwrap_or_else(|e| panic!("{}: run failed: {e}", workload.name));
            assert!(summary.halted(), "{}: did not halt", workload.name);
            None
        };

        let (events, instructions) = collector.into_parts();
        WorkloadRun {
            workload,
            events,
            instructions,
            dataspec,
        }
    }

    /// Loop statistics (Table 1 row) of this run.
    pub fn loop_stats(&self) -> LoopStatsReport {
        let mut s = LoopStats::new();
        s.observe_all(&self.events);
        s.report(self.instructions)
    }

    /// Annotated trace for the speculation engine.
    pub fn annotate(&self) -> AnnotatedTrace {
        AnnotatedTrace::build(&self.events, self.instructions)
    }

    /// Annotated trace truncated to the first `fraction` of the run
    /// (Figure 5's "first 10⁹ instructions" prefix).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction <= 1.0`.
    pub fn annotate_prefix(&self, fraction: f64) -> AnnotatedTrace {
        assert!(fraction > 0.0 && fraction <= 1.0, "bad fraction {fraction}");
        let cut = (self.instructions as f64 * fraction) as u64;
        let events: Vec<LoopEvent> = self
            .events
            .iter()
            .filter(|e| e.pos() <= cut)
            .copied()
            .collect();
        AnnotatedTrace::build(&events, cut)
    }
}

/// Executes all `workloads` in parallel (one thread each) and returns the
/// runs in the same order.
pub fn execute_all(workloads: &[Workload], scale: Scale, with_dataspec: bool) -> Vec<WorkloadRun> {
    std::thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                let w = *w;
                s.spawn(move || WorkloadRun::execute(w, scale, with_dataspec))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_workloads::by_name;

    #[test]
    fn execute_produces_consistent_artifacts() {
        let run = WorkloadRun::execute(by_name("compress").unwrap(), Scale::Test, false);
        assert!(run.instructions > 10_000);
        assert!(!run.events.is_empty());
        assert!(run.dataspec.is_none());
        let stats = run.loop_stats();
        assert_eq!(stats.instructions, run.instructions);
        let trace = run.annotate();
        assert_eq!(trace.instructions, run.instructions);
    }

    #[test]
    fn dataspec_flag_populates_report() {
        let run = WorkloadRun::execute(by_name("perl").unwrap(), Scale::Test, true);
        let ds = run.dataspec.expect("requested dataspec");
        assert!(ds.iterations > 0);
    }

    #[test]
    fn prefix_truncates() {
        let run = WorkloadRun::execute(by_name("swim").unwrap(), Scale::Test, false);
        let full = run.annotate();
        let half = run.annotate_prefix(0.5);
        assert!(half.instructions < full.instructions);
        assert!(half.events.len() <= full.events.len());
    }

    #[test]
    fn parallel_execution_preserves_order() {
        let ws: Vec<_> = ["gcc", "li"].iter().map(|n| by_name(n).unwrap()).collect();
        let runs = execute_all(&ws, Scale::Test, false);
        assert_eq!(runs[0].workload.name, "gcc");
        assert_eq!(runs[1].workload.name, "li");
    }
}
