//! Plain-text table rendering for the `repro` binary.

use std::fmt::Write as _;

use loopspec_core::TableKind;

use crate::experiments::{
    ClsAblationPoint, Fig4Point, Fig5Row, Fig6Row, Fig7Row, Fig8Row, GenFig6Row, Table1Row,
    Table2Row, TU_COUNTS,
};
use crate::paper;

/// A right-aligned plain-text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for k in 0..cols {
                if k > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[k], width = widths[k]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

fn f1(v: f64) -> String {
    format!("{v:.1}")
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders Table 1 with the paper's values interleaved.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut t = TextTable::new([
        "program", "#instr", "#loops", "#it/ex", "(paper)", "#in/it", "(paper)", "avg.nl",
        "(paper)", "max.nl", "(paper)",
    ]);
    for r in rows {
        t.row([
            r.name.to_string(),
            r.ours.instructions.to_string(),
            r.ours.static_loops.to_string(),
            f2(r.ours.iter_per_exec),
            f2(r.paper.iter_per_exec),
            f1(r.ours.instr_per_iter),
            f1(r.paper.instr_per_iter),
            f2(r.ours.avg_nesting),
            f2(r.paper.avg_nl),
            r.ours.max_nesting.to_string(),
            r.paper.max_nl.to_string(),
        ]);
    }
    format!("Table 1: loop statistics (ours vs paper)\n{}", t.render())
}

/// Renders Figure 4 with the paper's quoted points.
pub fn render_fig4(points: &[Fig4Point]) -> String {
    let mut t = TextTable::new(["table", "entries", "avg hit %", "paper %"]);
    for p in points {
        let kind = match p.kind {
            TableKind::Let => "LET",
            TableKind::Lit => "LIT",
        };
        let paper = paper::FIG4_QUOTED
            .iter()
            .find(|(k, e, _)| *k == kind && *e == p.entries)
            .map(|(_, _, v)| f2(*v))
            .unwrap_or_else(|| "-".into());
        t.row([
            kind.to_string(),
            p.entries.to_string(),
            f2(p.avg_hit_percent),
            paper,
        ]);
    }
    format!(
        "Figure 4: average LET/LIT hit ratios (CLS = 16 entries)\n{}",
        t.render()
    )
}

/// Renders Figure 5.
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut t = TextTable::new(["program", "TPC (all)", "TPC (prefix)"]);
    for r in rows {
        t.row([r.name.to_string(), f1(r.tpc_all), f1(r.tpc_prefix)]);
    }
    format!(
        "Figure 5: ideal-machine TPC, infinite TUs (all vs first quarter)\n{}",
        t.render()
    )
}

/// Renders Figure 6.
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut t = TextTable::new(["program", "2 TUs", "4 TUs", "8 TUs", "16 TUs"]);
    let mut avg = [0.0f64; 4];
    for r in rows {
        t.row([
            r.name.to_string(),
            f2(r.tpc[0]),
            f2(r.tpc[1]),
            f2(r.tpc[2]),
            f2(r.tpc[3]),
        ]);
        for (slot, v) in avg.iter_mut().zip(r.tpc.iter()) {
            *slot += v / rows.len() as f64;
        }
    }
    t.row([
        "AVG".to_string(),
        f2(avg[0]),
        f2(avg[1]),
        f2(avg[2]),
        f2(avg[3]),
    ]);
    let paper: Vec<String> = paper::STR_AVG_TPC.iter().map(|(_, v)| f2(*v)).collect();
    t.row([
        "(paper AVG)".to_string(),
        paper[0].clone(),
        paper[1].clone(),
        paper[2].clone(),
        paper[3].clone(),
    ]);
    format!("Figure 6: TPC with the STR policy\n{}", t.render())
}

/// Renders the generated-scenario companion to Figure 6.
pub fn render_gen_fig6(rows: &[GenFig6Row]) -> String {
    let mut t = TextTable::new([
        "family",
        "verified",
        "instrs",
        "loop evts",
        "2 TUs",
        "4 TUs",
        "8 TUs",
        "16 TUs",
    ]);
    for r in rows {
        t.row([
            r.family.to_string(),
            format!("{}/{}", r.passed, r.seeds),
            r.instructions.to_string(),
            r.loop_events.to_string(),
            f2(r.tpc[0]),
            f2(r.tpc[1]),
            f2(r.tpc[2]),
            f2(r.tpc[3]),
        ]);
    }
    format!(
        "Figure 6 by loop shape: STR TPC over generated scenario families\n\
         (each seed differentially verified: legacy = decoded, batch = streaming = sharded)\n{}",
        t.render()
    )
}

/// Renders Figure 7.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut t = TextTable::new(["policy", "2 TUs", "4 TUs", "8 TUs", "16 TUs"]);
    for r in rows {
        t.row([
            r.policy.name().to_string(),
            f2(r.avg_tpc[0]),
            f2(r.avg_tpc[1]),
            f2(r.avg_tpc[2]),
            f2(r.avg_tpc[3]),
        ]);
    }
    let _ = TU_COUNTS;
    format!(
        "Figure 7: average TPC per speculation policy\n{}",
        t.render()
    )
}

/// Renders Table 2 with the paper's values.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut t = TextTable::new([
        "program",
        "#spec",
        "#thr/spec",
        "(paper)",
        "hit %",
        "(paper)",
        "#in->verif",
        "TPC",
        "(paper)",
    ]);
    for r in rows {
        let p = paper::TABLE2.iter().find(|p| p.name == r.name);
        t.row([
            r.name.to_string(),
            r.spec.to_string(),
            f2(r.threads_per_spec),
            p.map(|p| f2(p.threads_per_spec)).unwrap_or_default(),
            f2(r.hit_ratio),
            p.map(|p| f2(p.hit_ratio)).unwrap_or_default(),
            f1(r.instr_to_verif),
            f2(r.tpc),
            p.map(|p| f2(p.tpc)).unwrap_or_default(),
        ]);
    }
    format!(
        "Table 2: control speculation statistics, STR(3), 4 TUs\n{}",
        t.render()
    )
}

/// Renders Figure 8.
pub fn render_fig8(rows: &[Fig8Row], avg: &[f64; 6]) -> String {
    let mut t = TextTable::new([
        "program",
        "same path",
        "lr pred",
        "lm pred",
        "all lr",
        "all lm",
        "all data",
    ]);
    for r in rows {
        let d = r.report;
        let lm = |v: f64| if d.lm_seen == 0 { "-".into() } else { f1(v) };
        t.row([
            r.name.to_string(),
            f1(d.same_path_percent),
            f1(d.lr_pred_percent),
            lm(d.lm_pred_percent),
            f1(d.all_lr_percent),
            lm(d.all_lm_percent),
            f1(d.all_data_percent),
        ]);
    }
    t.row([
        "AVG".to_string(),
        f1(avg[0]),
        f1(avg[1]),
        f1(avg[2]),
        f1(avg[3]),
        f1(avg[4]),
        f1(avg[5]),
    ]);
    format!(
        "Figure 8: data speculation statistics (%; paper quotes ~{} same-path)\n{}",
        paper::SAME_PATH_PERCENT,
        t.render()
    )
}

/// Renders the CLS-capacity ablation.
pub fn render_cls_ablation(points: &[ClsAblationPoint]) -> String {
    let mut t = TextTable::new(["CLS entries", "evictions", "executions", "max nesting"]);
    for p in points {
        t.row([
            p.capacity.to_string(),
            p.evictions.to_string(),
            p.executions.to_string(),
            p.max_nesting.to_string(),
        ]);
    }
    format!("Ablation: CLS capacity (paper §2.2)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["12345", "x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn renderers_embed_paper_values() {
        let rows = vec![Table2Row {
            name: "swim",
            spec: 10,
            threads_per_spec: 2.5,
            hit_ratio: 99.0,
            instr_to_verif: 100.0,
            tpc: 3.2,
        }];
        let s = render_table2(&rows);
        assert!(s.contains("swim"));
        assert!(s.contains("99.91"), "paper hit ratio shown: {s}");
    }
}
