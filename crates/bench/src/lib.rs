//! # loopspec-bench — the experiment harness
//!
//! Regenerates every table and figure of Tubella & González (HPCA 1998)
//! on the synthetic workload suite:
//!
//! | Experiment | Paper artefact | Entry point |
//! |---|---|---|
//! | Loop statistics | Table 1 | [`experiments::table1`] |
//! | LET/LIT hit ratios (2/4/8/16 entries) | Figure 4 | [`experiments::fig4`] |
//! | Ideal-machine TPC, full vs prefix | Figure 5 | [`experiments::fig5`] |
//! | TPC per program, STR, 2/4/8/16 TUs | Figure 6 | [`experiments::fig6`] |
//! | Average TPC per policy | Figure 7 | [`experiments::fig7`] |
//! | Speculation statistics, STR(3), 4 TUs | Table 2 | [`experiments::table2`] |
//! | Data-speculation predictability | Figure 8 | [`experiments::fig8`] |
//! | CLS capacity / replacement ablations | §2.2, §2.3.2 | [`experiments::cls_ablation`] |
//!
//! The `repro` binary prints each as an aligned text table with the
//! paper's reference values alongside:
//!
//! ```text
//! cargo run --release -p loopspec-bench --bin repro -- all --scale full
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod experiments;
pub mod gate;
pub mod paper;
pub mod report;
pub mod run;
pub mod timing;
