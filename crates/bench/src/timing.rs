//! Dependency-free micro-benchmark harness.
//!
//! The build environment has no network access, so `criterion` is not
//! available; this module provides the small subset the benches need:
//! warm-up, iteration-count calibration to a target sample time, median
//! of several samples, optional element-throughput annotation, and a
//! hand-rolled JSON snapshot for cross-PR perf trajectories.
//!
//! Run with `cargo bench -p loopspec-bench`. Set `LOOPSPEC_BENCH_MS` to
//! change the per-sample target time (default 200 ms; the CI smoke run
//! uses a small value).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One span's accumulated activity during a benchmark's measured
/// samples — the delta of the global `loopspec-obs` span aggregates
/// across the sample loop (warm-up and calibration excluded).
#[derive(Debug, Clone)]
pub struct SpanTotal {
    /// Span name (a call-site literal like `"session.advance"`).
    pub name: String,
    /// Times the span was entered during the measured samples.
    pub count: u64,
    /// Total nanoseconds spent inside the span across all samples.
    pub total_ns: u64,
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark group (e.g. `"engine"`).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Elements processed per iteration, when meaningful (enables a
    /// throughput column).
    pub elements: Option<u64>,
    /// Per-span time totals recorded while the samples ran, when the
    /// benched code is span-instrumented. Informational: the JSON
    /// snapshot emits it as an extra `breakdown` object, which the
    /// bench gate's parser (keyed on `group`/`name`/`median_ns`)
    /// ignores.
    pub breakdown: Vec<SpanTotal>,
}

impl Measurement {
    /// Millions of elements per second, if an element count was given.
    pub fn melem_per_s(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 * 1_000.0 / self.median_ns)
    }
}

/// A named collection of benchmarks, printed as it runs.
#[derive(Debug)]
pub struct Suite {
    name: &'static str,
    target: Duration,
    samples: u32,
    results: Vec<Measurement>,
}

impl Suite {
    /// Creates a suite; the per-sample target time comes from
    /// `LOOPSPEC_BENCH_MS` (default 200).
    pub fn new(name: &'static str) -> Self {
        let ms = std::env::var("LOOPSPEC_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        println!("== bench suite: {name} (target {ms} ms/sample) ==");
        Suite {
            name,
            target: Duration::from_millis(ms.max(1)),
            samples: 5,
            results: Vec::new(),
        }
    }

    /// Benchmarks `f`, recording the median time per call.
    ///
    /// `elements` annotates how many logical items one call processes
    /// (instructions, events, ...) for a throughput column.
    pub fn bench<R>(
        &mut self,
        group: &str,
        name: &str,
        elements: Option<u64>,
        mut f: impl FnMut() -> R,
    ) {
        // Warm-up and calibration: find an iteration count whose total
        // run time is close to the target sample time.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.target / 2 || iters >= 1 << 20 {
                break;
            }
            let scale = (self.target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).min(64.0);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }

        let spans_before = span_marks();
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_iter[per_iter.len() / 2];
        self.record(group, name, elements, median_ns, span_delta(&spans_before));
    }

    /// Benchmarks `f` with a single calibration-free call. For
    /// multi-second workloads (the `Scale::Huge` entries) the standard
    /// calibrate-then-sample protocol would cost minutes per entry;
    /// one timed call is the honest trade — treat these entries as
    /// indicative, not statistically tight.
    pub fn bench_heavy<R>(
        &mut self,
        group: &str,
        name: &str,
        elements: Option<u64>,
        mut f: impl FnMut() -> R,
    ) {
        let spans_before = span_marks();
        let t0 = Instant::now();
        std::hint::black_box(f());
        let median_ns = t0.elapsed().as_nanos() as f64;
        self.record(group, name, elements, median_ns, span_delta(&spans_before));
    }

    fn record(
        &mut self,
        group: &str,
        name: &str,
        elements: Option<u64>,
        median_ns: f64,
        breakdown: Vec<SpanTotal>,
    ) {
        let m = Measurement {
            group: group.to_string(),
            name: name.to_string(),
            median_ns,
            elements,
            breakdown,
        };
        let thr = match m.melem_per_s() {
            Some(t) => format!("  ({t:.1} Melem/s)"),
            None => String::new(),
        };
        println!("{group}/{name}: {}{thr}", fmt_ns(median_ns));
        self.results.push(m);
    }

    /// All measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the suite as a JSON snapshot (no external dependencies, so
    /// the writer is hand-rolled; names are plain identifiers and need no
    /// escaping beyond the conservative one applied here).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"suite\": \"{}\",", esc(self.name));
        let _ = writeln!(out, "  \"benchmarks\": [");
        for (k, m) in self.results.iter().enumerate() {
            let comma = if k + 1 == self.results.len() { "" } else { "," };
            let elems = match m.elements {
                Some(e) => format!(
                    ", \"elements\": {e}, \"elements_per_sec\": {:.1}",
                    e as f64 * 1e9 / m.median_ns.max(1e-9)
                ),
                None => String::new(),
            };
            let breakdown = if m.breakdown.is_empty() {
                String::new()
            } else {
                let entries: Vec<String> = m
                    .breakdown
                    .iter()
                    .map(|s| {
                        format!(
                            "\"{}\": {{\"count\": {}, \"total_ns\": {}}}",
                            esc(&s.name),
                            s.count,
                            s.total_ns
                        )
                    })
                    .collect();
                format!(", \"breakdown\": {{{}}}", entries.join(", "))
            };
            let _ = writeln!(
                out,
                "    {{\"group\": \"{}\", \"name\": \"{}\", \
                 \"median_ns\": {:.1}{elems}{breakdown}}}{comma}",
                esc(&m.group),
                esc(&m.name),
                m.median_ns,
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// Writes the JSON snapshot to `path`.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written (benches treat IO failures
    /// as fatal).
    pub fn write_json(&self, path: &str) {
        std::fs::write(path, self.to_json() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}

/// The global span aggregates as a name-keyed `(count, total_ns)` map.
fn span_marks() -> HashMap<String, (u64, u64)> {
    loopspec_obs::global()
        .span_totals()
        .into_iter()
        .map(|(name, count, total, _)| (name, (count, total)))
        .collect()
}

/// Span activity since `before`, dropping spans that never fired
/// during the measurement window.
fn span_delta(before: &HashMap<String, (u64, u64)>) -> Vec<SpanTotal> {
    loopspec_obs::global()
        .span_totals()
        .into_iter()
        .filter_map(|(name, count, total, _)| {
            let (c0, t0) = before.get(&name).copied().unwrap_or((0, 0));
            (count > c0).then(|| SpanTotal {
                count: count - c0,
                total_ns: total.saturating_sub(t0),
                name,
            })
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_snapshot_is_well_formed() {
        std::env::set_var("LOOPSPEC_BENCH_MS", "1");
        let mut s = Suite::new("test");
        s.bench("g", "noop", Some(10), || 1 + 1);
        let json = s.to_json();
        assert!(json.contains("\"suite\": \"test\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"elements\": 10"));
        assert!(json.contains("\"elements_per_sec\":"));
        assert_eq!(s.results().len(), 1);
        assert!(s.results()[0].median_ns >= 0.0);
    }

    #[test]
    fn span_breakdown_rides_the_snapshot_without_new_gate_keys() {
        std::env::set_var("LOOPSPEC_BENCH_MS", "1");
        let mut s = Suite::new("bd-test");
        s.bench("g", "spanned", None, || {
            let _g = loopspec_obs::span!("bench.breakdown_test");
            std::hint::black_box(1 + 1)
        });
        let m = &s.results()[0];
        assert!(
            m.breakdown.iter().any(|b| b.name == "bench.breakdown_test"),
            "span delta captured: {:?}",
            m.breakdown
        );
        let json = s.to_json();
        assert!(json.contains("\"breakdown\": {"), "{json}");
        let parsed = crate::gate::parse_snapshot(&json).expect("gate parser tolerates breakdown");
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].name, "spanned");
        assert!(parsed.entries[0].median_ns >= 0.0);
    }

    #[test]
    fn escaping_is_conservative() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x y");
    }
}
