//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT ...] [--scale test|small|full] [--metrics]
//!
//! EXPERIMENT: table1 fig4 fig5 fig6 genfig6 fig7 table2 fig8 ablation all
//! ```
//!
//! `--metrics` appends the process-wide telemetry registry (counters,
//! histograms, span aggregates) as exposition text plus a one-line
//! JSON snapshot after the experiment output.

use std::process::ExitCode;
use std::time::Instant;

use loopspec_bench::experiments::{self, cls_ablation};
use loopspec_bench::report;
use loopspec_bench::run::{execute_all, ExecuteOptions, WorkloadRun};
use loopspec_core::Replacement;
use loopspec_pipeline::Interp;
use loopspec_workloads::{all, Scale};

const USAGE: &str =
    "usage: repro [table1|fig4|fig5|fig6|genfig6|fig7|table2|fig8|ablation|all ...] \
                     [--scale test|small|full|huge] [--workload NAME ...] [--metrics]";

const ALL_EXPERIMENTS: [&str; 9] = [
    "table1", "fig4", "fig5", "fig6", "genfig6", "fig7", "table2", "fig8", "ablation",
];

/// Seeds per generated family in the `genfig6` sweep.
const GEN_SEEDS: u64 = 4;

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut metrics = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => metrics = true,
            "--scale" => {
                let Some(v) = args.next() else {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                };
                scale = match v.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    "huge" => Scale::Huge,
                    other => {
                        eprintln!("unknown scale `{other}`\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--workload" => {
                let Some(v) = args.next() else {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                };
                only.push(v);
            }
            "all" => wanted.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            exp if ALL_EXPERIMENTS.contains(&exp) => wanted.push(exp.to_string()),
            other => {
                eprintln!("unknown experiment `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    wanted.dedup();

    // `--workload` narrows the suite; names may be the 18 SPEC95
    // selectors or `kern:<kernel>` native drivers (the usual pick for
    // `--scale huge`, where the interpreted suite would take minutes
    // per workload).
    let workloads = if only.is_empty() {
        all()
    } else {
        let mut picked = Vec::with_capacity(only.len());
        for name in &only {
            let w = loopspec_workloads::by_name(name)
                .or_else(|| loopspec_workloads::native::workload_by_name(name));
            match w {
                Some(w) => picked.push(w),
                None => {
                    eprintln!("unknown workload `{name}`\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };
    let need_dataspec = wanted.iter().any(|w| w == "fig8");
    let need_oracle = wanted.iter().any(|w| w == "fig5");

    eprintln!(
        "repro: executing {} workloads at {scale:?} scale \
         (dataspec: {need_dataspec}, oracle: {need_oracle}, \
         interpreter: {}) ...",
        workloads.len(),
        Interp::from_env(),
    );
    let t0 = Instant::now();
    let runs: Vec<WorkloadRun> = execute_all(
        &workloads,
        scale,
        ExecuteOptions {
            dataspec: need_dataspec,
            oracle: need_oracle,
            ..ExecuteOptions::default()
        },
    );
    let elapsed = t0.elapsed().as_secs_f64();
    let total: u64 = runs.iter().map(|r| r.instructions).sum();
    eprintln!(
        "repro: {total} instructions across the suite in {elapsed:.1}s \
         ({:.2} M retired instrs/sec)\n",
        total as f64 / elapsed.max(1e-9) / 1e6
    );

    for exp in &wanted {
        let t = Instant::now();
        let text = match exp.as_str() {
            "table1" => report::render_table1(&experiments::table1(&runs)),
            "fig4" => report::render_fig4(&experiments::fig4(&runs)),
            "fig5" => report::render_fig5(&experiments::fig5(&runs)),
            "fig6" => report::render_fig6(&experiments::fig6(&runs)),
            "genfig6" => report::render_gen_fig6(&experiments::gen_fig6(GEN_SEEDS, scale)),
            "fig7" => report::render_fig7(&experiments::fig7(&runs)),
            "table2" => report::render_table2(&experiments::table2(&runs)),
            "fig8" => {
                let (rows, avg) = experiments::fig8(&runs);
                report::render_fig8(&rows, &avg)
            }
            "ablation" => {
                let mut s = report::render_cls_ablation(&cls_ablation(&workloads, Scale::Test));
                s.push('\n');
                s.push_str("Ablation: LET/LIT replacement (paper §2.3.2, LRU vs nest-inhibit)\n");
                let lru = experiments::fig4(&runs);
                let nest = experiments::fig4_with_replacement(&runs, Replacement::NestInhibit);
                let mut t = report::TextTable::new(["table", "entries", "LRU %", "nest-inhibit %"]);
                for (a, b) in lru.iter().zip(nest.iter()) {
                    t.row([
                        format!("{:?}", a.kind),
                        a.entries.to_string(),
                        format!("{:.2}", a.avg_hit_percent),
                        format!("{:.2}", b.avg_hit_percent),
                    ]);
                }
                s.push_str(&t.render());
                s
            }
            _ => unreachable!("validated above"),
        };
        println!("{text}");
        eprintln!("({exp} in {:.1}s)\n", t.elapsed().as_secs_f64());
    }

    if metrics {
        // Everything the suite's pipeline runs recorded out-of-band:
        // CPU front-end counters, chunk fan-out, span aggregates.
        println!("== metrics ==");
        print!("{}", loopspec_obs::global().render_text());
        println!("== metrics json ==");
        println!("{}", loopspec_obs::global().snapshot_json());
    }
    ExitCode::SUCCESS
}
