//! CI perf-regression gate over `BENCH_pipeline.json` snapshots.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [tolerance]
//! ```
//!
//! Compares the streaming-grid / materialized-grid ratio per workload
//! (machine-speed independent) and exits non-zero when any workload's
//! fresh ratio exceeds `baseline_ratio * tolerance` (default 1.20,
//! i.e. +20 %). See [`loopspec_bench::gate`] for the comparison rules.

use std::process::ExitCode;

use loopspec_bench::gate::{check, parse_snapshot};

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, fresh_path) = match &args[..] {
        [b, f] | [b, f, _] => (b, f),
        _ => return Err("usage: bench_gate <baseline.json> <fresh.json> [tolerance]".into()),
    };
    let tolerance: f64 = match args.get(2) {
        Some(t) => t
            .parse()
            .map_err(|_| format!("bad tolerance '{t}' (want e.g. 1.2)"))?,
        None => 1.20,
    };
    if tolerance < 1.0 {
        return Err(format!("tolerance {tolerance} must be >= 1.0"));
    }

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline =
        parse_snapshot(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = parse_snapshot(&read(fresh_path)?).map_err(|e| format!("{fresh_path}: {e}"))?;

    println!(
        "bench gate: {} vs {} (tolerance {tolerance}x)",
        baseline_path, fresh_path
    );
    let rows = check(&baseline, &fresh, tolerance)?;
    let mut ok = true;
    for row in &rows {
        println!("  {row}");
        ok &= row.passed();
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench gate: FAIL — streaming fan-out regressed past tolerance");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench gate: error: {e}");
            ExitCode::FAILURE
        }
    }
}
