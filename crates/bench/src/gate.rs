//! The bench perf-regression gate.
//!
//! CI runs the `pipeline` bench, then compares the fresh
//! `BENCH_pipeline.json` against the snapshot committed at the repo root.
//! Comparing absolute nanoseconds across machines is meaningless, so the
//! gate checks the **streaming-grid / materialized-grid ratio** per
//! workload — a machine-speed-independent measure of the streaming
//! fan-out's overhead — and fails when a workload's fresh ratio exceeds
//! its baseline ratio by more than the tolerance factor.
//!
//! The parser handles exactly the JSON that
//! [`Suite::to_json`](crate::timing::Suite::to_json) emits (one
//! benchmark object per line); it is not a general JSON parser.

use std::fmt;

/// One parsed benchmark entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark group (e.g. `"streaming_grid"`).
    pub group: String,
    /// Benchmark name (e.g. `"20-sinks-one-pass/compress"`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

impl BenchEntry {
    /// The workload suffix of the benchmark name (after the last `/`).
    pub fn workload(&self) -> &str {
        self.name.rsplit('/').next().unwrap_or(&self.name)
    }
}

/// A parsed `BENCH_*.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Suite name (e.g. `"pipeline"`).
    pub suite: String,
    /// All benchmark entries, in file order.
    pub entries: Vec<BenchEntry>,
}

impl BenchSnapshot {
    /// The entry for `group` whose name ends in `/workload`, if any.
    pub fn find(&self, group: &str, workload: &str) -> Option<&BenchEntry> {
        self.entries
            .iter()
            .find(|e| e.group == group && e.workload() == workload)
    }
}

/// Extracts the string value of `"key": "value"` from a JSON line.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts the numeric value of `"key": 123.4` from a JSON line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a snapshot produced by
/// [`Suite::write_json`](crate::timing::Suite::write_json).
///
/// # Errors
///
/// Returns a description of the first malformed line, or of a missing
/// suite name.
pub fn parse_snapshot(json: &str) -> Result<BenchSnapshot, String> {
    let mut suite = None;
    let mut entries = Vec::new();
    for line in json.lines() {
        if suite.is_none() {
            if let Some(s) = str_field(line, "suite") {
                suite = Some(s.to_string());
                continue;
            }
        }
        if let Some(group) = str_field(line, "group") {
            let name = str_field(line, "name")
                .ok_or_else(|| format!("benchmark line without name: {line}"))?;
            let median_ns = num_field(line, "median_ns")
                .ok_or_else(|| format!("benchmark line without median_ns: {line}"))?;
            entries.push(BenchEntry {
                group: group.to_string(),
                name: name.to_string(),
                median_ns,
            });
        }
    }
    Ok(BenchSnapshot {
        suite: suite.ok_or("snapshot has no suite field")?,
        entries,
    })
}

/// The ratio pairs the gate guards, as `(numerator_group,
/// denominator_group, label)`:
///
/// * `streaming_grid / materialized_grid` — the streaming fan-out's
///   overhead over batch replay;
/// * `sharded_grid / streaming_grid` — the checkpoint/resume overhead
///   of splitting the same pass into snapshot-linked shards (serialize,
///   checksum, restore at every boundary);
/// * `dist_grid / streaming_grid` — the full distributed-replay
///   overhead: the sharded pass again, but scheduled by the
///   `loopspec-dist` coordinator across protocol-speaking workers on
///   Unix sockets (frame encode/decode, snapshot shipping, job-queue
///   round trips);
/// * `oracle_grid / streaming_grid` — the two-phase streaming oracle
///   (Figure 5: count-log forward pass + oracle replay of the retained
///   events) relative to the plain streaming grid pass, so regressions
///   in the oracle path fail CI;
/// * `svc_grid / streaming_grid` — the replay-service overhead: the
///   same distributed job submitted through a persistent
///   `loopspec-svc` service with the cache disabled, so the gate
///   prices submission, admission control, scheduling, and the report
///   round trip on top of the worker-pool pass;
/// * `cpu_only / cpu_only_legacy` — the pre-decoded threaded-code
///   front-end against the legacy fetch/decode interpreter, both into a
///   null sink: the decoded path must stay decisively faster (the
///   baseline ratio is well under 1), and losing that edge fails CI.
pub const METRICS: [(&str, &str, &str); 6] = [
    (
        "streaming_grid",
        "materialized_grid",
        "streaming/materialized",
    ),
    ("sharded_grid", "streaming_grid", "sharded/streaming"),
    ("dist_grid", "streaming_grid", "dist/streaming"),
    ("oracle_grid", "streaming_grid", "oracle/streaming"),
    ("svc_grid", "streaming_grid", "svc/streaming"),
    ("cpu_only", "cpu_only_legacy", "decoded/legacy"),
];

/// One workload's gate verdict for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Workload name (benchmark-name suffix).
    pub workload: String,
    /// Which ratio this row checks (a label from [`METRICS`]).
    pub metric: &'static str,
    /// The metric's ratio in the committed baseline.
    pub baseline_ratio: f64,
    /// The same ratio in the fresh run.
    pub fresh_ratio: f64,
    /// Highest acceptable fresh ratio (`baseline_ratio * tolerance`).
    pub limit: f64,
}

impl GateRow {
    /// `true` when the fresh ratio is within the limit.
    pub fn passed(&self) -> bool {
        self.fresh_ratio <= self.limit
    }
}

impl fmt::Display for GateRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>10}: {} {:.3}x (baseline {:.3}x, limit {:.3}x) {}",
            self.workload,
            self.metric,
            self.fresh_ratio,
            self.baseline_ratio,
            self.limit,
            if self.passed() { "OK" } else { "REGRESSION" },
        )
    }
}

/// The `num/den` group ratio of one workload within a snapshot, if both
/// benchmarks are present.
fn group_ratio(snapshot: &BenchSnapshot, num: &str, den: &str, workload: &str) -> Option<f64> {
    let numerator = snapshot.find(num, workload)?.median_ns;
    let denominator = snapshot.find(den, workload)?.median_ns;
    (denominator > 0.0).then_some(numerator / denominator)
}

/// Compares every `(metric, workload)` pair measured in **both**
/// snapshots; `tolerance` is the multiplicative slack on the baseline
/// ratio (e.g. `1.2` = +20 %). Metrics absent from the baseline (e.g. a
/// baseline predating `sharded_grid`) are skipped, never failed.
///
/// # Errors
///
/// Errors when nothing at all can be compared — a gate that silently
/// compares nothing would always pass.
pub fn check(
    baseline: &BenchSnapshot,
    fresh: &BenchSnapshot,
    tolerance: f64,
) -> Result<Vec<GateRow>, String> {
    let mut rows = Vec::new();
    for (num, den, label) in METRICS {
        for entry in &fresh.entries {
            if entry.group != num {
                continue;
            }
            let workload = entry.workload();
            let (Some(baseline_ratio), Some(fresh_ratio)) = (
                group_ratio(baseline, num, den, workload),
                group_ratio(fresh, num, den, workload),
            ) else {
                continue;
            };
            rows.push(GateRow {
                workload: workload.to_string(),
                metric: label,
                baseline_ratio,
                fresh_ratio,
                limit: baseline_ratio * tolerance,
            });
        }
    }
    if rows.is_empty() {
        return Err(format!(
            "no comparable grid-ratio pairs between baseline suite '{}' \
             and fresh suite '{}'",
            baseline.suite, fresh.suite
        ));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(pairs: &[(&str, f64, f64)]) -> BenchSnapshot {
        let entries = pairs
            .iter()
            .flat_map(|&(w, s, m)| {
                [
                    BenchEntry {
                        group: "streaming_grid".into(),
                        name: format!("20-sinks-one-pass/{w}"),
                        median_ns: s,
                    },
                    BenchEntry {
                        group: "materialized_grid".into(),
                        name: format!("20-replays/{w}"),
                        median_ns: m,
                    },
                ]
            })
            .collect();
        BenchSnapshot {
            suite: "pipeline".into(),
            entries,
        }
    }

    #[test]
    fn parses_the_suite_writer_format() {
        std::env::set_var("LOOPSPEC_BENCH_MS", "1");
        let mut s = crate::timing::Suite::new("gate-test");
        s.bench("streaming_grid", "x/compress", Some(10), || 1 + 1);
        s.bench("materialized_grid", "y/compress", Some(10), || 1 + 1);
        let parsed = parse_snapshot(&s.to_json()).expect("parses");
        assert_eq!(parsed.suite, "gate-test");
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[0].group, "streaming_grid");
        assert_eq!(parsed.entries[0].workload(), "compress");
        assert!(parsed.entries[0].median_ns >= 0.0);
        assert!(parsed.find("materialized_grid", "compress").is_some());
        assert!(parsed.find("materialized_grid", "go").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot("").is_err());
    }

    #[test]
    fn equal_ratios_pass() {
        let base = snapshot(&[("compress", 120.0, 100.0), ("go", 110.0, 100.0)]);
        let rows = check(&base, &base, 1.2).expect("comparable");
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(GateRow::passed));
    }

    #[test]
    fn improvement_passes_even_when_absolutes_differ() {
        let base = snapshot(&[("compress", 120.0, 100.0)]);
        // 10x slower machine, better ratio.
        let fresh = snapshot(&[("compress", 1100.0, 1000.0)]);
        let rows = check(&base, &fresh, 1.2).expect("comparable");
        assert!(rows[0].passed());
        assert!(rows[0].fresh_ratio < rows[0].baseline_ratio);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = snapshot(&[("compress", 120.0, 100.0)]);
        let fresh = snapshot(&[("compress", 150.0, 100.0)]); // 1.5 > 1.2*1.2
        let rows = check(&base, &fresh, 1.2).expect("comparable");
        assert!(!rows[0].passed());
        // ...but a looser tolerance admits it.
        let rows = check(&base, &fresh, 1.3).expect("comparable");
        assert!(rows[0].passed());
    }

    #[test]
    fn missing_counterpart_is_skipped_not_failed() {
        let base = snapshot(&[("compress", 120.0, 100.0)]);
        let fresh = snapshot(&[("compress", 115.0, 100.0), ("go", 110.0, 100.0)]);
        let rows = check(&base, &fresh, 1.2).expect("comparable");
        assert_eq!(rows.len(), 1, "go has no baseline and is skipped");
    }

    #[test]
    fn nothing_comparable_is_an_error() {
        let base = snapshot(&[("compress", 120.0, 100.0)]);
        let fresh = snapshot(&[("go", 110.0, 100.0)]);
        assert!(check(&base, &fresh, 1.2).is_err());
    }

    #[test]
    fn row_display_names_the_verdict() {
        let row = GateRow {
            workload: "go".into(),
            metric: "sharded/streaming",
            baseline_ratio: 1.0,
            fresh_ratio: 2.0,
            limit: 1.2,
        };
        let s = format!("{row}");
        assert!(s.contains("REGRESSION"));
        assert!(s.contains("sharded/streaming"));
    }

    fn with_sharded(mut snap: BenchSnapshot, pairs: &[(&str, f64)]) -> BenchSnapshot {
        for &(w, ns) in pairs {
            snap.entries.push(BenchEntry {
                group: "sharded_grid".into(),
                name: format!("4-shards-one-pass/{w}"),
                median_ns: ns,
            });
        }
        snap
    }

    #[test]
    fn sharded_metric_is_gated_when_both_snapshots_have_it() {
        let base = with_sharded(
            snapshot(&[("compress", 120.0, 100.0)]),
            &[("compress", 130.0)],
        );
        // Sharded overhead doubled: the second metric must fail even
        // though streaming/materialized is unchanged.
        let fresh = with_sharded(
            snapshot(&[("compress", 120.0, 100.0)]),
            &[("compress", 260.0)],
        );
        let rows = check(&base, &fresh, 1.2).expect("comparable");
        assert_eq!(rows.len(), 2);
        let sharded = rows
            .iter()
            .find(|r| r.metric == "sharded/streaming")
            .unwrap();
        assert!(!sharded.passed());
        assert!(rows
            .iter()
            .any(|r| r.metric == "streaming/materialized" && r.passed()));
    }

    #[test]
    fn dist_metric_is_gated_when_both_snapshots_have_it() {
        fn with_dist(mut snap: BenchSnapshot, ns: f64) -> BenchSnapshot {
            snap.entries.push(BenchEntry {
                group: "dist_grid".into(),
                name: "2-workers-4-shards/compress".into(),
                median_ns: ns,
            });
            snap
        }
        let base = with_dist(snapshot(&[("compress", 120.0, 100.0)]), 180.0);
        let fresh = with_dist(snapshot(&[("compress", 120.0, 100.0)]), 400.0);
        let rows = check(&base, &fresh, 1.2).expect("comparable");
        let dist = rows.iter().find(|r| r.metric == "dist/streaming").unwrap();
        assert!(!dist.passed(), "doubled wire overhead must fail");
        // Against a baseline predating dist_grid, the metric is skipped.
        let rows = check(&snapshot(&[("compress", 120.0, 100.0)]), &fresh, 1.2).unwrap();
        assert!(rows.iter().all(|r| r.metric != "dist/streaming"));
    }

    #[test]
    fn oracle_metric_is_gated_when_both_snapshots_have_it() {
        fn with_oracle(mut snap: BenchSnapshot, ns: f64) -> BenchSnapshot {
            snap.entries.push(BenchEntry {
                group: "oracle_grid".into(),
                name: "two-phase-fig5/compress".into(),
                median_ns: ns,
            });
            snap
        }
        let base = with_oracle(snapshot(&[("compress", 120.0, 100.0)]), 90.0);
        let fresh = with_oracle(snapshot(&[("compress", 120.0, 100.0)]), 200.0);
        let rows = check(&base, &fresh, 1.2).expect("comparable");
        let oracle = rows
            .iter()
            .find(|r| r.metric == "oracle/streaming")
            .unwrap();
        assert!(!oracle.passed(), "doubled oracle overhead must fail");
        // Against a baseline predating oracle_grid, the metric is
        // skipped.
        let rows = check(&snapshot(&[("compress", 120.0, 100.0)]), &fresh, 1.2).unwrap();
        assert!(rows.iter().all(|r| r.metric != "oracle/streaming"));
    }

    #[test]
    fn cpu_only_metric_is_gated_when_both_snapshots_have_it() {
        fn with_cpu_only(mut snap: BenchSnapshot, decoded: f64, legacy: f64) -> BenchSnapshot {
            snap.entries.push(BenchEntry {
                group: "cpu_only".into(),
                name: "decoded-null-tracer/compress".into(),
                median_ns: decoded,
            });
            snap.entries.push(BenchEntry {
                group: "cpu_only_legacy".into(),
                name: "legacy-null-tracer/compress".into(),
                median_ns: legacy,
            });
            snap
        }
        // Baseline: decoded runs in half the legacy time (ratio 0.5).
        let base = with_cpu_only(snapshot(&[("compress", 120.0, 100.0)]), 50.0, 100.0);
        // Fresh: decoded slowed to 0.8x of legacy — the edge eroded
        // beyond 0.5 * 1.2, so the gate must fail.
        let fresh = with_cpu_only(snapshot(&[("compress", 120.0, 100.0)]), 80.0, 100.0);
        let rows = check(&base, &fresh, 1.2).expect("comparable");
        let cpu = rows.iter().find(|r| r.metric == "decoded/legacy").unwrap();
        assert!(!cpu.passed(), "eroded decoded advantage must fail");
        // Against a baseline predating cpu_only, the metric is skipped.
        let rows = check(&snapshot(&[("compress", 120.0, 100.0)]), &fresh, 1.2).unwrap();
        assert!(rows.iter().all(|r| r.metric != "decoded/legacy"));
    }

    #[test]
    fn sharded_metric_is_skipped_against_an_old_baseline() {
        // Baselines predating sharded_grid still gate the streaming
        // metric and silently skip the sharded one.
        let base = snapshot(&[("compress", 120.0, 100.0)]);
        let fresh = with_sharded(
            snapshot(&[("compress", 120.0, 100.0)]),
            &[("compress", 150.0)],
        );
        let rows = check(&base, &fresh, 1.2).expect("comparable");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].metric, "streaming/materialized");
    }
}
