//! Reference values transcribed from the paper, for side-by-side
//! reporting.

/// One row of the paper's Table 2 (STR(3) policy, 4 thread units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable2Row {
    /// Program name.
    pub name: &'static str,
    /// `#spec.` — control speculations performed.
    pub spec: u64,
    /// `#threads/spec.`.
    pub threads_per_spec: f64,
    /// `hit ratio (%)`.
    pub hit_ratio: f64,
    /// `#instr. to verif`.
    pub instr_to_verif: f64,
    /// `TPC`.
    pub tpc: f64,
}

/// The paper's Table 2, in order.
pub const TABLE2: [PaperTable2Row; 18] = [
    PaperTable2Row {
        name: "applu",
        spec: 218_661,
        threads_per_spec: 2.62,
        hit_ratio: 54.51,
        instr_to_verif: 2316.0,
        tpc: 2.21,
    },
    PaperTable2Row {
        name: "apsi",
        spec: 118_637,
        threads_per_spec: 2.91,
        hit_ratio: 90.48,
        instr_to_verif: 2301.0,
        tpc: 3.51,
    },
    PaperTable2Row {
        name: "compress",
        spec: 2_804_450,
        threads_per_spec: 2.69,
        hit_ratio: 100.00,
        instr_to_verif: 91.94,
        tpc: 3.23,
    },
    PaperTable2Row {
        name: "fpppp",
        spec: 3_417,
        threads_per_spec: 1.67,
        hit_ratio: 86.92,
        instr_to_verif: 191_727.0,
        tpc: 2.71,
    },
    PaperTable2Row {
        name: "gcc",
        spec: 1_206_937,
        threads_per_spec: 2.06,
        hit_ratio: 76.05,
        instr_to_verif: 370.0,
        tpc: 2.37,
    },
    PaperTable2Row {
        name: "go",
        spec: 18_427,
        threads_per_spec: 2.09,
        hit_ratio: 71.17,
        instr_to_verif: 69_749.0,
        tpc: 1.06,
    },
    PaperTable2Row {
        name: "hydro2d",
        spec: 706_635,
        threads_per_spec: 2.99,
        hit_ratio: 99.43,
        instr_to_verif: 433.0,
        tpc: 2.52,
    },
    PaperTable2Row {
        name: "ijpeg",
        spec: 150_450,
        threads_per_spec: 2.72,
        hit_ratio: 96.54,
        instr_to_verif: 1_608.0,
        tpc: 2.36,
    },
    PaperTable2Row {
        name: "li",
        spec: 1_567_433,
        threads_per_spec: 1.71,
        hit_ratio: 69.16,
        instr_to_verif: 353.0,
        tpc: 1.75,
    },
    PaperTable2Row {
        name: "m88ksim",
        spec: 1_097_194,
        threads_per_spec: 2.77,
        hit_ratio: 97.32,
        instr_to_verif: 292.0,
        tpc: 2.78,
    },
    PaperTable2Row {
        name: "mgrid",
        spec: 7_900,
        threads_per_spec: 2.80,
        hit_ratio: 97.50,
        instr_to_verif: 36_523.0,
        tpc: 3.71,
    },
    PaperTable2Row {
        name: "perl",
        spec: 3_114_338,
        threads_per_spec: 2.33,
        hit_ratio: 60.34,
        instr_to_verif: 35.0,
        tpc: 1.17,
    },
    PaperTable2Row {
        name: "su2cor",
        spec: 4_906_331,
        threads_per_spec: 2.22,
        hit_ratio: 99.92,
        instr_to_verif: 45.0,
        tpc: 1.94,
    },
    PaperTable2Row {
        name: "swim",
        spec: 61_005,
        threads_per_spec: 3.00,
        hit_ratio: 99.91,
        instr_to_verif: 4_455.0,
        tpc: 3.48,
    },
    PaperTable2Row {
        name: "tomcatv",
        spec: 111_394,
        threads_per_spec: 2.86,
        hit_ratio: 77.24,
        instr_to_verif: 2_363.0,
        tpc: 3.85,
    },
    PaperTable2Row {
        name: "turb3d",
        spec: 106_237,
        threads_per_spec: 2.99,
        hit_ratio: 99.18,
        instr_to_verif: 2_417.0,
        tpc: 3.84,
    },
    PaperTable2Row {
        name: "vortex",
        spec: 131_024,
        threads_per_spec: 2.12,
        hit_ratio: 90.25,
        instr_to_verif: 2_502.0,
        tpc: 3.03,
    },
    PaperTable2Row {
        name: "wave5",
        spec: 165_950,
        threads_per_spec: 2.60,
        hit_ratio: 99.95,
        instr_to_verif: 1_778.0,
        tpc: 3.75,
    },
];

/// Average TPC for the STR policy by TU count (paper §3.2 / Figure 6-7).
pub const STR_AVG_TPC: [(usize, f64); 4] = [(2, 1.65), (4, 2.6), (8, 4.0), (16, 6.2)];

/// Figure 4 hit ratios quoted in the text: (table, entries, percent).
pub const FIG4_QUOTED: [(&str, usize, f64); 4] = [
    ("LIT", 4, 90.50),
    ("LET", 16, 91.98),
    ("LIT", 2, 85.00),
    ("LET", 8, 72.44),
];

/// The paper's §4 headline: the most frequent path covers ~85 % of all
/// iterations.
pub const SAME_PATH_PERCENT: f64 = 85.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_complete_and_ordered() {
        assert_eq!(TABLE2.len(), 18);
        let mut names: Vec<&str> = TABLE2.iter().map(|r| r.name).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort();
            s
        };
        assert_eq!(names, sorted, "paper order is alphabetical");
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn table2_matches_workload_hit_ratios() {
        for row in &TABLE2 {
            let w = loopspec_workloads::by_name(row.name).expect("workload exists");
            assert!(
                (w.paper.hit_ratio - row.hit_ratio).abs() < 0.05,
                "{}: {} vs {}",
                row.name,
                w.paper.hit_ratio,
                row.hit_ratio
            );
        }
    }
}
