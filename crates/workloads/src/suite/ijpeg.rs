//! `ijpeg` — JPEG compression/decompression.
//!
//! Paper personality: iteration-rich for an integer code (20.75
//! iterations/execution), big bodies (336 instructions/iteration), deep
//! (6.37 avg / 9 max — blocked 2-D processing), very regular (96.5 %:
//! image dimensions are fixed).
//!
//! Synthetic structure: block-decomposed image passes: rows × columns of
//! 8×8 DCT-ish blocks, each running fixed small nests (the 8-point
//! butterflies) plus a quantisation scan, a structure that stacks to
//! depth 8-9 through a `dct8x8` subroutine.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::nest_work;
use crate::{PaperRow, Scale, Workload};

const MCU_ROWS: i64 = 6;
const MCU_COLS: i64 = 20;

/// The `ijpeg` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "ijpeg",
        description: "blocked image passes over 8×8 DCT kernels with fixed dimensions",
        paper: PaperRow {
            instr_g: 40.98,
            loops: 198,
            iter_per_exec: 20.75,
            instr_per_iter: 336.26,
            avg_nl: 6.37,
            max_nl: 9,
            hit_ratio: 96.54,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x19e6);

    // 8×8 block transform: row pass, column pass, quant scan — depth 3
    // inside the function, plus a zig-zag output loop.
    b.define_func("dct8x8", |b| {
        nest_work(b, &[8, 8], 3, 2); // row butterflies
        nest_work(b, &[8, 8], 3, 2); // column butterflies
        b.counted_loop(64, |b, _z| {
            b.work(2); // quant + zig-zag
        });
    });

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(3, |b, _pass| {
        for _rep in 0..scale.factor() {
            // Component loop × MCU grid.
            b.counted_loop(3, |b, _comp| {
                b.counted_loop(MCU_ROWS, |b, _r| {
                    b.counted_loop(MCU_COLS, |b, _c| {
                        b.call_func("dct8x8");
                    });
                });
            });
            // Entropy-coding pass: long flat scan.
            b.counted_loop(MCU_ROWS * MCU_COLS * 4, |b, _u| {
                b.work(6);
            });
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.max_nesting >= 6, "{r:?}");
        assert!(r.iter_per_exec > 10.0, "{r:?}");
    }
}
