//! `fpppp` — quantum-chemistry two-electron integrals.
//!
//! Paper personality: the outlier — *enormous* loop bodies (3217.8
//! instructions per iteration, 12× the next largest), very short
//! executions (3.05 iterations), deep call-driven nesting (6.66 avg,
//! 9 max), hit ratio 86.9 %.
//!
//! Synthetic structure: shell-pair loops whose bodies are two huge
//! straight-line integral kernels (hundreds of filler instructions plus
//! calls), nested through a chain of subroutines to reach depth 9.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::var_loop;
use crate::{PaperRow, Scale, Workload};

/// The `fpppp` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "fpppp",
        description: "tiny trip counts around gigantic straight-line integral bodies",
        paper: PaperRow {
            instr_g: 144.49,
            loops: 83,
            iter_per_exec: 3.05,
            instr_per_iter: 3217.80,
            avg_nl: 6.66,
            max_nl: 9,
            hit_ratio: 86.92,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0xf999);

    // The giant straight-line integral kernel (≈ 700 instructions).
    b.define_func("integral", |b| {
        b.work(300);
        b.fwork(350);
        b.work(50);
    });

    // Contraction: 3-deep short nest around the integral kernel.
    b.define_func("contract", |b| {
        var_loop(b, 2, 4, &mut |b, _k| {
            b.counted_loop(3, |b, _l| {
                b.counted_loop(2, |b, _m| {
                    b.call_func("integral");
                    b.fwork(40);
                });
            });
        });
    });

    // Shell-pair driver: 4 outer levels (2 in main, 2 in `shell`).
    b.define_func("shell", |b| {
        b.counted_loop(2, |b, _i| {
            var_loop(b, 2, 3, &mut |b, _j| {
                b.call_func("contract");
            });
        });
    });

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(3, |b, _pass| {
        for _rep in 0..scale.factor() {
            b.counted_loop(3, |b, _p| {
                b.counted_loop(2, |b, _q| {
                    b.call_func("shell");
                });
            });
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.max_nesting >= 7, "{r:?}");
        assert!(
            r.instr_per_iter > 300.0,
            "fpppp must have huge bodies: {r:?}"
        );
        assert!(r.iter_per_exec < 6.0, "{r:?}");
    }
}
