//! `tomcatv` — vectorised mesh generation.
//!
//! Paper personality: long loops (57.2 iterations/execution), shallow
//! nesting (max 4), but a *mediocre* speculation hit ratio (77.2 %) —
//! the mesh solver iterates to convergence, so some trip counts move
//! around between executions.
//!
//! Synthetic structure: a time-step loop over fixed-size mesh sweeps plus
//! a residual-reduction `while` whose trip count is RNG-perturbed — the
//! irregular component that caps the hit ratio.

use loopspec_asm::{AsmError, Program, ProgramBuilder};
use loopspec_isa::{AluOp, Cond, Reg};

use crate::kernels::stencil2d;
use crate::{PaperRow, Scale, Workload};

const ROWS: i64 = 16;
const COLS: i64 = 56;

/// The `tomcatv` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "tomcatv",
        description: "mesh-generation sweeps with an RNG-perturbed convergence loop",
        paper: PaperRow {
            instr_g: 32.05,
            loops: 91,
            iter_per_exec: 57.18,
            instr_per_iter: 224.82,
            avg_nl: 3.01,
            max_nl: 4,
            hit_ratio: 77.24,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x70c7);
    let x = b.alloc_static(ROWS * COLS);
    let y = b.alloc_static(ROWS * COLS);

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(5, |b, _ts| {
        for _rep in 0..scale.factor() {
            // Coordinate sweeps (regular).
            stencil2d(b, x, ROWS, COLS, 2);
            stencil2d(b, y, ROWS, COLS, 2);

            // Convergence pass: residual shrinks by an RNG-drawn decrement,
            // so the iteration count differs from execution to execution.
            let res = b.alloc_reg();
            let dec = b.alloc_reg();
            b.li(res, 40);
            b.while_loop(
                |_| (Cond::GtS, res, Reg::ZERO),
                |b| {
                    b.counted_loop(COLS / 2, |b, i| {
                        b.with_reg(|b, v| {
                            b.load_idx(v, x, i);
                            b.addi(v, v, 1);
                            b.store_idx(v, x, i);
                        });
                        b.fwork(2);
                    });
                    b.rng_below(dec, 9);
                    b.addi(dec, dec, 1);
                    b.op(AluOp::Sub, res, res, dec);
                },
            );
            b.free_reg(dec);
            b.free_reg(res);
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.max_nesting >= 3, "{r:?}");
        assert!(r.iter_per_exec > 20.0, "{r:?}");
    }
}
