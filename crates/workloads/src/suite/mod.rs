//! The 18 SPEC95-shaped workloads, one module each.
//!
//! Every module exposes a `workload()` constructor; `all()` returns them
//! in the paper's Table 1 (alphabetical) order.

mod applu;
mod apsi;
mod compress;
mod fpppp;
mod gcc;
mod go;
mod hydro2d;
mod ijpeg;
mod li;
mod m88ksim;
mod mgrid;
mod perl;
mod su2cor;
mod swim;
mod tomcatv;
mod turb3d;
mod vortex;
mod wave5;

use crate::Workload;

pub(crate) fn all() -> Vec<Workload> {
    vec![
        applu::workload(),
        apsi::workload(),
        compress::workload(),
        fpppp::workload(),
        gcc::workload(),
        go::workload(),
        hydro2d::workload(),
        ijpeg::workload(),
        li::workload(),
        m88ksim::workload(),
        mgrid::workload(),
        perl::workload(),
        su2cor::workload(),
        swim::workload(),
        tomcatv::workload(),
        turb3d::workload(),
        vortex::workload(),
        wave5::workload(),
    ]
}
