//! `mgrid` — multigrid 3-D potential solver.
//!
//! Paper personality: iteration-rich (28.9/execution), deep-ish (max 6),
//! big bodies (512.7 instructions/iteration), very regular (97.5 %).
//!
//! Synthetic structure: a V-cycle over three grid levels; each level has
//! its own statically distinct 3-D relaxation nest (so per-loop trip
//! counts stay constant across executions, as in the original where each
//! level re-runs with the same size).

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::nest_work;
use crate::{PaperRow, Scale, Workload};

/// Grid sizes per multigrid level (coarsest last).
const LEVELS: [i64; 3] = [24, 12, 6];

/// The `mgrid` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "mgrid",
        description: "multigrid V-cycles: per-level 3-D relaxation nests with constant sizes",
        paper: PaperRow {
            instr_g: 102.81,
            loops: 142,
            iter_per_exec: 28.93,
            instr_per_iter: 512.68,
            avg_nl: 4.93,
            max_nl: 6,
            hit_ratio: 97.50,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x36d1);

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(3, |b, _cycle| {
        for _rep in 0..scale.factor() {
            // Descend the V: relax at each level (each level is a separate
            // static nest => separate loops with constant trip counts; the
            // long grid dimension is innermost, as in the original's
            // stride-1 i-loops).
            for &n in &LEVELS {
                nest_work(b, &[4, n / 2, n], 6, 10);
            }
            // Ascend: interpolate + correct at the two finer levels.
            for &n in &LEVELS[..2] {
                nest_work(b, &[4, n], 4, 6);
            }
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert_eq!(r.max_nesting, 4, "{r:?}");
        assert!(r.iter_per_exec > 8.0, "long inner grid loops: {r:?}");
        assert!(r.static_loops >= 10, "{r:?}");
    }
}
