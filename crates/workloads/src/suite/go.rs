//! `go` — the game of Go (Many Faces of Go engine).
//!
//! Paper personality: the deepest nesting of the suite (max 11 — loops
//! inside recursive game-tree search), short irregular executions (3.76
//! iterations, 71.2 % hit ratio), moderate bodies (156.6
//! instructions/iteration).
//!
//! Synthetic structure: alternating board-scan nests and a recursive
//! tactical search whose per-node move loops have RNG trip counts — the
//! CLS stacks one loop per recursion level, reaching depth 10+.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::{call_chain, define_walker_chain, nest_work, var_loop};
use crate::{PaperRow, Scale, Workload};

/// Tactical search depth: distinct move-generator loops per ply.
const SEARCH_LEVELS: usize = 10;

/// The `go` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "go",
        description: "board scans + recursive tactical search with RNG move loops (depth 10+)",
        paper: PaperRow {
            instr_g: 38.87,
            loops: 709,
            iter_per_exec: 3.76,
            instr_per_iter: 156.60,
            avg_nl: 4.86,
            max_nl: 11,
            hit_ratio: 71.17,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x9090);

    // Tactical search: a ply chain — each ply's move-generation loop is
    // a distinct static loop (the paper's recursion rule merges
    // re-entered identical loops, so depth needs distinct ones), with
    // RNG-sized move lists throughout.
    define_walker_chain(&mut b, "ply", SEARCH_LEVELS, 1, 3, 14);

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(4, |b, _turn| {
        for _rep in 0..scale.factor() {
            // Full-board influence scan (regular 9×9).
            nest_work(b, &[9, 9], 8, 0);
            // Pattern matching per point: small irregular loops.
            b.counted_loop(9, |b, _row| {
                var_loop(b, 1, 4, &mut |b, _pat| b.work(9));
            });
            // Tactical reading.
            call_chain(b, "ply");
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(
            r.max_nesting >= 8,
            "go must nest deeply through recursion: {r:?}"
        );
        assert!(r.iter_per_exec < 8.0, "{r:?}");
    }
}
