//! `vortex` — object-oriented database transactions.
//!
//! Paper personality: a steady transactional mix: 12.08
//! iterations/execution, 215.6 instructions/iteration, nesting 3.06
//! avg / 6 max, 90.25 % hit ratio (hash chains are regular; validation
//! scans are not quite).
//!
//! Synthetic structure: a transaction loop over insert/lookup/commit
//! subsystems, each a subroutine with fixed-trip hash-bucket loops; an
//! RNG-length integrity scan supplies the irregular minority.

use loopspec_asm::{AsmError, Program, ProgramBuilder};
use loopspec_isa::AluOp;

use crate::kernels::var_loop;
use crate::{PaperRow, Scale, Workload};

const BUCKETS: i64 = 64;
const CHAIN: i64 = 12;

/// The `vortex` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "vortex",
        description: "transaction loop over subsystems with fixed hash-chain loops",
        paper: PaperRow {
            instr_g: 94.98,
            loops: 220,
            iter_per_exec: 12.08,
            instr_per_iter: 215.56,
            avg_nl: 3.06,
            max_nl: 6,
            hit_ratio: 90.25,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x50f7);
    let index = b.alloc_static(BUCKETS);

    // Insert: hash probe + fixed chain walk, through two call levels
    // (Db -> Bucket) for call-driven depth.
    b.define_func("bucket_walk", move |b| {
        let h = b.alloc_reg();
        b.mov(h, ProgramBuilder::ARG_REGS[0]);
        b.counted_loop(CHAIN, |b, _link| {
            b.op_imm(AluOp::Mul, h, h, 31);
            b.op_imm(AluOp::Rem, h, h, BUCKETS as i32);
            b.with_reg(|b, e| {
                b.load_idx(e, index, h);
                b.addi(e, e, 1);
                b.store_idx(e, index, h);
            });
            b.work(6);
        });
        b.free_reg(h);
    });

    b.define_func("db_insert", |b| {
        b.work(12); // object marshalling
        b.counted_loop(3, |b, part| {
            b.set_arg(0, part);
            b.call_func("bucket_walk");
        });
    });

    b.counted_loop(8 * scale.factor(), |b, txn| {
        // A batch of inserts/lookups.
        b.counted_loop(6, |b, _op| {
            b.call_func("db_insert");
            b.fwork(3);
        });
        // Periodic integrity scan with RNG extent (the irregular part).
        b.with_reg(|b, rem| {
            b.op_imm(AluOp::Rem, rem, txn, 3);
            b.if_then(loopspec_isa::Cond::Eq, rem, loopspec_isa::Reg::ZERO, |b| {
                var_loop(b, 6, 18, &mut |b, _| b.work(8));
            });
        });
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.max_nesting >= 4, "{r:?}");
        assert!(r.iter_per_exec > 5.0 && r.iter_per_exec < 20.0, "{r:?}");
    }
}
