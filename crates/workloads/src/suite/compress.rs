//! `compress` — LZW text compression.
//!
//! Paper personality: the *perfectly predictable* program — 100.00 % hit
//! ratio (its loops repeat identical trip counts), small bodies (84.7
//! instructions/iteration), shallow nesting (2.52 avg / 4 max), 6.27
//! iterations/execution.
//!
//! Synthetic structure: a block-compression pipeline where every loop
//! has a compile-time-constant trip count: byte scan → hash probe chain
//! (fixed depth) → code emit, repeated over input blocks.

use loopspec_asm::{AsmError, Program, ProgramBuilder};
use loopspec_isa::AluOp;

use crate::{PaperRow, Scale, Workload};

const BLOCK: i64 = 24;
const PROBES: i64 = 6;

/// The `compress` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "compress",
        description: "LZW-style pipeline with strictly constant trip counts everywhere",
        paper: PaperRow {
            instr_g: 61.05,
            loops: 45,
            iter_per_exec: 6.27,
            instr_per_iter: 84.65,
            avg_nl: 2.52,
            max_nl: 4,
            hit_ratio: 100.00,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0xc0b9);
    let input = b.alloc_static(BLOCK);
    let table = b.alloc_static(256);

    b.counted_loop(40 * scale.factor(), |b, _blk| {
        // Fill the input block deterministically.
        b.counted_loop(BLOCK, |b, i| {
            b.with_reg(|b, v| {
                b.op_imm(AluOp::Mul, v, i, 37);
                b.op_imm(AluOp::And, v, v, 0xff);
                b.store_idx(v, input, i);
            });
        });
        // Compress: per byte, probe the hash chain a fixed number of
        // times and update the table.
        b.counted_loop(BLOCK, |b, i| {
            let h = b.alloc_reg();
            b.load_idx(h, input, i);
            b.counted_loop(PROBES, |b, _p| {
                b.op_imm(AluOp::Mul, h, h, 61);
                b.op_imm(AluOp::And, h, h, 0xff);
                b.with_reg(|b, e| {
                    b.load_idx(e, table, h);
                    b.addi(e, e, 1);
                    b.store_idx(e, table, h);
                });
            });
            b.work(4); // code emission
            b.free_reg(h);
        });
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert_eq!(r.max_nesting, 3, "{r:?}");
        assert!(r.iter_per_exec > 4.0 && r.iter_per_exec < 30.0, "{r:?}");
    }
}
