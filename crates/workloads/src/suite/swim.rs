//! `swim` — shallow-water finite differences.
//!
//! Paper personality: the *most iteration-rich* loops of the suite
//! (188.5 iterations/execution), shallow nesting (max 3: time step × row
//! × column), long FP stencil bodies, and near-perfect speculation hit
//! ratio (99.91 % — every trip count is a compile-time constant).
//!
//! Synthetic structure: a time-step loop over two long-row stencil sweeps
//! (`calc1`/`calc2` in the original) plus a short boundary-fixup pass.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::stencil2d;
use crate::{PaperRow, Scale, Workload};

/// Rows per sweep (outer spatial loop).
const ROWS: i64 = 20;
/// Columns per sweep (the long inner loop that drives iter/exec up).
const COLS: i64 = 144;

/// The `swim` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "swim",
        description: "time-stepped long-row FP stencils with constant trip counts",
        paper: PaperRow {
            instr_g: 40.75,
            loops: 79,
            iter_per_exec: 188.54,
            instr_per_iter: 278.89,
            avg_nl: 2.99,
            max_nl: 3,
            hit_ratio: 99.91,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x5717);
    let u = b.alloc_static(ROWS * COLS);
    let v = b.alloc_static(ROWS * COLS);

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(5, |b, _ts| {
        for _rep in 0..scale.factor() {
            // calc1: update u from v.
            stencil2d(b, u, ROWS, COLS, 3);
            // calc2: update v from u.
            stencil2d(b, v, ROWS, COLS, 3);
            // Boundary fixup: one short row pass.
            b.counted_loop(COLS, |b, i| {
                b.with_reg(|b, x| {
                    b.load_idx(x, u, i);
                    b.store_idx(x, v, i);
                });
            });
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert_eq!(r.max_nesting, 3, "{r:?}");
        assert!(r.iter_per_exec > 60.0, "long inner loops: {r:?}");
        assert!(r.instructions > 50_000);
    }
}
