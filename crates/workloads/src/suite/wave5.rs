//! `wave5` — plasma particle-in-cell simulation.
//!
//! Paper personality: the second-most iteration-rich program (56.2
//! iterations/execution), shallow nesting (max 5), near-perfect hit
//! ratio (99.95 %).
//!
//! Synthetic structure: a time-step loop alternating a long particle-push
//! loop (one iteration per particle) with field-solve stencil nests.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::{nest_work, stencil2d};
use crate::{PaperRow, Scale, Workload};

const PARTICLES: i64 = 160;
const GRID: i64 = 24;

/// The `wave5` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "wave5",
        description: "particle-push long loop alternating with field-solve nests",
        paper: PaperRow {
            instr_g: 35.69,
            loops: 195,
            iter_per_exec: 56.15,
            instr_per_iter: 164.25,
            avg_nl: 3.12,
            max_nl: 5,
            hit_ratio: 99.95,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x3a5e);
    let field = b.alloc_static(GRID * GRID);
    let px = b.alloc_static(PARTICLES);

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(5, |b, _ts| {
        for _rep in 0..scale.factor() {
            // Particle push: one long flat loop with a gather/scatter.
            b.counted_loop(PARTICLES, |b, p| {
                b.with_reg(|b, v| {
                    b.load_idx(v, px, p);
                    b.addi(v, v, 3);
                    b.store_idx(v, px, p);
                });
                b.fwork(4);
                b.work(2);
            });
            // Field solve: regular square stencil.
            stencil2d(b, field, GRID, GRID, 2);
            // Fourier filter: long rows under a thin nest.
            nest_work(b, &[2, 4, GRID], 2, 2);
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.max_nesting >= 3, "{r:?}");
        assert!(r.iter_per_exec > 15.0, "{r:?}");
    }
}
