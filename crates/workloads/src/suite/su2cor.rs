//! `su2cor` — quantum-chromodynamics Monte-Carlo.
//!
//! Paper personality: very iteration-rich (51.2/execution), moderate
//! nesting (max 5), essentially perfect regularity (99.92 %).
//!
//! Synthetic structure: sweeps over a 4-D-flattened lattice with long,
//! constant-trip inner loops and an update/measure phase pair.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::nest_work;
use crate::{PaperRow, Scale, Workload};

const LATTICE: i64 = 48;

/// The `su2cor` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "su2cor",
        description: "lattice sweeps: long constant-trip loops under a shallow phase nest",
        paper: PaperRow {
            instr_g: 40.23,
            loops: 213,
            iter_per_exec: 51.23,
            instr_per_iter: 257.17,
            avg_nl: 3.50,
            max_nl: 5,
            hit_ratio: 99.92,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x5246);

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(4, |b, _sweep| {
        for _rep in 0..scale.factor() {
            // Gauge update: directions × spins × sites — the long dimension
            // is innermost, so most executions are long.
            nest_work(b, &[4, 4, LATTICE], 4, 6);
            // Correlation measurement: long site scans under a thin nest.
            nest_work(b, &[2, LATTICE / 8, LATTICE], 3, 3);
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.max_nesting >= 4, "{r:?}");
        assert!(r.iter_per_exec > 8.0, "{r:?}");
    }
}
