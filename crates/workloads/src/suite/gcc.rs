//! `gcc` — the GNU C compiler (cc1).
//!
//! Paper personality: by far the most *static* loops (1229), small
//! bodies (80 instructions/iteration), short executions (5.28
//! iterations), moderate-depth nesting through recursive tree walks
//! (3.43 avg / 7 max), mediocre predictability (76 %).
//!
//! Synthetic structure: per "function being compiled": a recursive
//! parse-tree walk (loops inside recursion), then a pass pipeline
//! dispatching over many *distinct static loops* — arms mix fixed and
//! RNG trip counts, reproducing both the loop population and the mixed
//! hit ratio.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::{call_chain, define_walker_chain, dispatch_loop, var_loop};
use crate::{PaperRow, Scale, Workload};

/// Arms in the pass-pipeline dispatch (each is a distinct static loop).
const PASS_ARMS: usize = 14;

/// The `gcc` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "gcc",
        description: "recursive tree walks + a pass pipeline of many distinct small loops",
        paper: PaperRow {
            instr_g: 1.93,
            loops: 1229,
            iter_per_exec: 5.28,
            instr_per_iter: 80.21,
            avg_nl: 3.43,
            max_nl: 7,
            hit_ratio: 76.05,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x9cc1);
    // Recursive descent: expr → term → factor → … — each level its own
    // statically distinct loop, stacking to depth ~7 on the CLS.
    define_walker_chain(&mut b, "parse", 7, 1, 3, 6);

    b.counted_loop(10 * scale.factor(), |b, _func| {
        // Front end: recursive descent with per-level loops.
        call_chain(b, "parse");
        // Optimisation passes: one dispatch spin per RTL insn; every arm
        // is a statically distinct loop, half fixed-trip, half RNG-trip.
        dispatch_loop(b, 18, PASS_ARMS, &mut |b, k| {
            if k % 2 == 0 {
                b.counted_loop(3 + (k as i64 % 5), |b, _| b.work(7));
            } else {
                var_loop(b, 2, 7, &mut |b, _| b.work(7));
            }
        });
        // Register allocation: a triangular-ish conflict scan.
        var_loop(b, 4, 9, &mut |b, _| {
            b.counted_loop(4, |b, _| b.work(5));
        });
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(
            r.static_loops >= PASS_ARMS + 4,
            "gcc needs a large loop population: {r:?}"
        );
        assert!(r.max_nesting >= 5, "{r:?}");
        assert!(r.iter_per_exec < 10.0, "{r:?}");
    }
}
