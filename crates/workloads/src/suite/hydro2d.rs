//! `hydro2d` — Navier-Stokes hydrodynamics.
//!
//! Paper personality: iteration-rich (29.4/execution), shallow (max 4),
//! extremely regular (99.43 % hit ratio).
//!
//! Synthetic structure: a time-step loop over several square stencil
//! phases with constant trip counts.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::{nest_work, stencil2d};
use crate::{PaperRow, Scale, Workload};

const N: i64 = 28;

/// The `hydro2d` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "hydro2d",
        description: "time-stepped square hydro stencil phases, all trip counts constant",
        paper: PaperRow {
            instr_g: 50.57,
            loops: 291,
            iter_per_exec: 29.37,
            instr_per_iter: 127.66,
            avg_nl: 3.50,
            max_nl: 4,
            hit_ratio: 99.43,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x42d0);
    let grid = b.alloc_static(N * N);

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(4, |b, _ts| {
        for _rep in 0..scale.factor() {
            // Advection phase: memory-touching stencil.
            stencil2d(b, grid, N, N, 2);
            // Pressure phase: pure-FP square nest.
            nest_work(b, &[N, N], 2, 4);
            // Flux phase: slightly deeper, long inner dimension.
            nest_work(b, &[N / 4, 4, N], 1, 2);
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert_eq!(r.max_nesting, 4, "{r:?}");
        assert!(r.iter_per_exec > 10.0, "{r:?}");
    }
}
