//! `li` — the xlisp interpreter.
//!
//! Paper personality: short irregular executions (3.48 iterations,
//! 69.2 % hit ratio — cons-cell list lengths vary), deep nesting through
//! recursive `eval` (5.15 avg / 10 max), small-to-medium bodies (107.8
//! instructions/iteration).
//!
//! Synthetic structure: a read-eval-print driver: recursive `eval` whose
//! per-node argument loops have RNG lengths, plus a periodic mark-sweep
//! scan over a heap array.

use loopspec_asm::{AsmError, Program, ProgramBuilder};
use loopspec_isa::{Cond, Reg};

use crate::kernels::{call_chain, define_walker_chain, var_loop};
use crate::{PaperRow, Scale, Workload};

const HEAP: i64 = 96;
/// Distinct evaluator levels (eval → apply → evlist → …).
const EVAL_LEVELS: usize = 8;

/// The `li` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "li",
        description: "recursive eval over RNG-shaped cons trees + periodic GC mark loop",
        paper: PaperRow {
            instr_g: 70.77,
            loops: 94,
            iter_per_exec: 3.48,
            instr_per_iter: 107.80,
            avg_nl: 5.15,
            max_nl: 10,
            hit_ratio: 69.16,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x11f9);
    let heap = b.alloc_static(HEAP);

    // eval/apply/evlist chain: each interpreter layer has its own
    // argument-list loop with RNG length, stacking distinct loops on the
    // CLS per recursion level.
    define_walker_chain(&mut b, "eval", EVAL_LEVELS, 1, 3, 8);

    b.counted_loop(16 * scale.factor(), |b, i| {
        // One top-level expression.
        call_chain(b, "eval");

        // Every 4th expression triggers a GC mark pass (flat heap scan
        // with a small, RNG-length free-list walk per object).
        b.with_reg(|b, rem| {
            b.op_imm(loopspec_isa::AluOp::Rem, rem, i, 4);
            b.if_then(Cond::Eq, rem, Reg::ZERO, |b| {
                b.counted_loop(HEAP / 4, |b, o| {
                    b.with_reg(|b, m| {
                        b.load_idx(m, heap, o);
                        b.addi(m, m, 1);
                        b.store_idx(m, heap, o);
                    });
                    var_loop(b, 1, 2, &mut |b, _f| b.work(3));
                });
            });
        });
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.max_nesting >= 6, "recursion must nest: {r:?}");
        assert!(r.iter_per_exec < 7.0, "short lists: {r:?}");
    }
}
