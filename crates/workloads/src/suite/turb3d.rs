//! `turb3d` — isotropic-turbulence FFT solver.
//!
//! Paper personality: short executions (4.1 iterations — FFT radix loops
//! are short by nature), decent bodies (239 instructions/iteration),
//! nesting 3.97 avg / 6 max, very regular (99.18 %).
//!
//! Synthetic structure: time steps over 3-D FFT-like passes: log-depth
//! butterfly stages with small constant trip counts, nested per
//! dimension.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::nest_work;
use crate::{PaperRow, Scale, Workload};

/// The `turb3d` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "turb3d",
        description: "FFT butterfly stages: short constant-trip loops, 6-deep per dimension",
        paper: PaperRow {
            instr_g: 96.27,
            loops: 152,
            iter_per_exec: 4.11,
            instr_per_iter: 239.44,
            avg_nl: 3.97,
            max_nl: 6,
            hit_ratio: 99.18,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x7b3d);

    // One FFT "dimension pass": stages × groups × butterflies, all short
    // and constant; lives in a function so three dimensions reach depth 6
    // without exhausting main registers.
    b.define_func("fft_pass", |b| {
        nest_work(b, &[4, 4, 4], 6, 8);
    });

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(4, |b, _ts| {
        for _rep in 0..scale.factor() {
            // x/y/z transform passes under a per-plane loop.
            b.counted_loop(6, |b, _plane| {
                b.counted_loop(3, |b, _dim| {
                    b.call_func("fft_pass");
                });
            });
            // Non-linear term: one regular wide nest.
            nest_work(b, &[6, 6], 5, 8);
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert_eq!(r.max_nesting, 6, "{r:?}");
        assert!(r.iter_per_exec < 8.0, "{r:?}");
    }
}
