//! `applu` — parabolic/elliptic PDE solver (SSOR).
//!
//! Paper personality: the *least predictable* program of the suite
//! (54.5 % hit ratio) despite being a Fortran solver: short executions
//! (3.5 iterations each) whose counts wander, under deep nesting
//! (avg 5.16, max 7) and sizeable bodies (261 instructions/iteration).
//!
//! Synthetic structure: SSOR-style block sweeps where *every* nest level
//! draws its trip count from the RNG — the stride predictor never locks
//! on, reproducing the low hit ratio. The two innermost levels live in a
//! `cell` subroutine (deep nesting through calls, like the original's
//! `blts`/`buts` kernels).

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::var_loop;
use crate::{PaperRow, Scale, Workload};

/// The `applu` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "applu",
        description: "deep SSOR block sweeps with RNG-drawn trip counts at every level",
        paper: PaperRow {
            instr_g: 53.02,
            loops: 189,
            iter_per_exec: 3.50,
            instr_per_iter: 261.08,
            avg_nl: 5.16,
            max_nl: 7,
            hit_ratio: 54.51,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x0a99_0137);

    // Innermost cell kernel: three more RNG-trip levels inside a
    // function (fresh register pool keeps the 7-deep nest feasible).
    b.define_func("cell", |b| {
        var_loop(b, 2, 6, &mut |b, _i| {
            b.work(8);
            b.fwork(6);
            var_loop(b, 2, 4, &mut |b, _jac| {
                b.work(4);
                b.fwork(3);
                var_loop(b, 2, 4, &mut |b, _sub| {
                    b.work(3);
                });
            });
        });
    });

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(4, |b, _ts| {
        for _rep in 0..scale.factor() {
            var_loop(b, 3, 5, &mut |b, _blk| {
                var_loop(b, 3, 6, &mut |b, _k| {
                    var_loop(b, 3, 6, &mut |b, _j| {
                        b.call_func("cell");
                    });
                });
            });
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert_eq!(r.max_nesting, 7, "{r:?}");
        assert!(r.iter_per_exec < 8.0, "short executions: {r:?}");
        assert!(r.avg_nesting > 3.5, "{r:?}");
    }
}
