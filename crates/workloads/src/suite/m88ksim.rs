//! `m88ksim` — Motorola 88100 processor simulator.
//!
//! Paper personality: the *shallowest* real nesting (1.98 avg — one hot
//! fetch-decode-execute loop with flat helpers), tiny bodies (39.8
//! instructions/iteration, smallest in the suite), 9.38
//! iterations/execution, very regular (97.3 %).
//!
//! Synthetic structure: a long main simulation loop dispatching over an
//! opcode table; every helper loop has a constant trip count (register
//! file save, TLB probe, …), so only the dispatch path varies.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::dispatch_loop;
use crate::{PaperRow, Scale, Workload};

const OPCODES: usize = 7;

/// The `m88ksim` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "m88ksim",
        description: "flat fetch-decode-execute loop over constant-trip helper loops",
        paper: PaperRow {
            instr_g: 79.19,
            loops: 127,
            iter_per_exec: 9.38,
            instr_per_iter: 39.82,
            avg_nl: 1.98,
            max_nl: 5,
            hit_ratio: 97.32,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x88_500);
    let regfile = b.alloc_static(32);

    // The simulated-CPU main loop: fetch (memory), decode (dispatch),
    // execute (small fixed helper loops).
    dispatch_loop(&mut b, 220 * scale.factor(), OPCODES, &mut |b, k| {
        match k {
            // Loads/stores: register-file scan of fixed length.
            0 | 1 => {
                b.counted_loop(8, |b, r| {
                    b.with_reg(|b, v| {
                        b.load_idx(v, regfile, r);
                        b.addi(v, v, 1);
                        b.store_idx(v, regfile, r);
                    });
                });
            }
            // ALU ops: straight-line semantics.
            2 | 3 => b.work(14),
            // Branches: small fixed predictor-update loop.
            4 => {
                b.counted_loop(6, |b, _| b.work(3));
            }
            // TLB probe: two-level fixed mini-nest.
            5 => {
                b.counted_loop(4, |b, _| {
                    b.counted_loop(4, |b, _| b.work(2));
                });
            }
            // Exception path (rare-ish): the deepest fixed nest.
            _ => {
                b.counted_loop(3, |b, _| {
                    b.counted_loop(3, |b, _| {
                        b.counted_loop(4, |b, _| b.work(3));
                    });
                });
            }
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.avg_nesting < 3.0, "m88ksim is flat: {r:?}");
        assert_eq!(r.max_nesting, 4, "{r:?}");
        assert!(r.instr_per_iter < 60.0, "tiny bodies: {r:?}");
    }
}
