//! `apsi` — mesoscale pollutant-distribution model.
//!
//! Paper personality: medium everything — 10.75 iterations/execution,
//! 229 instructions/iteration, nesting 3.14 avg / 5 max, 90.5 % hit
//! ratio (mostly regular with a sprinkle of variability).
//!
//! Synthetic structure: a time-step loop over fixed-size atmospheric
//! phases, plus one RNG-perturbed column-adjustment loop that knocks the
//! hit ratio below the Fortran-perfect group.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::{nest_work, var_loop};
use crate::{PaperRow, Scale, Workload};

const COLS: i64 = 12;
const LEVELS: i64 = 10;

/// The `apsi` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "apsi",
        description: "fixed atmospheric phase nests plus one RNG-perturbed column loop",
        paper: PaperRow {
            instr_g: 33.06,
            loops: 207,
            iter_per_exec: 10.75,
            instr_per_iter: 229.34,
            // The paper's Table 1 really does say 3.14 for apsi.
            #[allow(clippy::approx_constant)]
            avg_nl: 3.14,
            max_nl: 5,
            hit_ratio: 90.48,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x000a_9512);

    // The outer loop keeps a *fixed*, small trip count — like the
    // paper's 10⁹-instruction window, which sees only a few outer
    // iterations — and the run scales by structurally repeating the
    // phase code (each repetition is a distinct set of static loops).
    b.counted_loop(4, |b, _ts| {
        for _rep in 0..scale.factor() {
            // Wind-field phase: regular 3-deep nest.
            nest_work(b, &[COLS, COLS, LEVELS], 4, 5);
            // Diffusion phase: regular, wider body.
            nest_work(b, &[COLS, LEVELS], 6, 8);
            // Column adjustment: trip count wobbles around LEVELS.
            b.counted_loop(COLS, |b, _c| {
                var_loop(b, (LEVELS - 3) as i32, (LEVELS + 3) as i32, &mut |b, _l| {
                    b.work(5);
                    b.fwork(4);
                });
            });
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert_eq!(r.max_nesting, 4, "{r:?}");
        assert!(r.iter_per_exec > 6.0 && r.iter_per_exec < 20.0, "{r:?}");
    }
}
