//! `perl` — the Perl interpreter.
//!
//! Paper personality: the *worst* speculation target of the integer
//! codes: shallowest nesting of the whole suite (1.35 avg), tiniest
//! executions (3.11 iterations), small bodies (47 instructions) and a
//! 60.3 % hit ratio — interpreted string/list operations have throwaway
//! loops with data-dependent lengths.
//!
//! Synthetic structure: opcode dispatch where *every* arm's loop draws
//! its trip count from the RNG (many degenerate to one-shots), plus a
//! rare deeper regex path.

use loopspec_asm::{AsmError, Program, ProgramBuilder};

use crate::kernels::{dispatch_loop, var_loop};
use crate::{PaperRow, Scale, Workload};

const OPS: usize = 8;

/// The `perl` workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "perl",
        description: "interpreter dispatch with RNG-length throwaway loops in every arm",
        paper: PaperRow {
            instr_g: 30.66,
            loops: 147,
            iter_per_exec: 3.11,
            instr_per_iter: 47.02,
            avg_nl: 1.35,
            max_nl: 5,
            hit_ratio: 60.34,
        },
        build,
    }
}

fn build(scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::with_seed(0x9e71);

    dispatch_loop(&mut b, 150 * scale.factor(), OPS, &mut |b, k| {
        match k {
            // String ops: scan of RNG length (often 1 → one-shot loops).
            0..=3 => var_loop(b, 1, 5, &mut |b, _| b.work(6)),
            // List ops: slightly longer RNG scans.
            4 | 5 => var_loop(b, 1, 8, &mut |b, _| b.work(4)),
            // Hash op: RNG probe chain with an inner fixed touch.
            6 => var_loop(b, 1, 4, &mut |b, _| {
                b.counted_loop(2, |b, _| b.work(3));
            }),
            // Regex op: the one deeper path — backtracking mini-nest.
            _ => var_loop(b, 1, 3, &mut |b, _| {
                var_loop(b, 1, 3, &mut |b, _| {
                    var_loop(b, 1, 3, &mut |b, _| b.work(4));
                });
            }),
        }
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_report;

    #[test]
    fn shape_matches_personality() {
        let r = run_report(&workload(), Scale::Test);
        assert!(r.avg_nesting < 2.6, "perl is the flattest: {r:?}");
        assert!(r.iter_per_exec < 6.0, "{r:?}");
        assert!(r.instr_per_iter < 60.0, "{r:?}");
    }
}
