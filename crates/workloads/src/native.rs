//! Kernel-backed workloads (`kern:<name>` selectors).
//!
//! One workload per [registered kernel](loopspec_isa::kernel): a thin
//! driver loop that repeatedly invokes the kernel through the native
//! `KernelCall` extension point and folds the results into a memory
//! accumulator. These are the [`Scale::Huge`](crate::Scale) carriers —
//! at `Scale::Huge` a single `kern:` run retires hundreds of millions
//! of instructions, nearly all of them inside natively dispatched
//! kernel bodies, so the interpreter cost per simulated instruction
//! collapses and the sharded/dist/svc overheads finally amortize.
//!
//! Every invocation passes the same trip count (`TRIPS`), so the
//! kernel's internal loop is perfectly regular — the STR predictor
//! locks on after the training iterations, mirroring the paper's
//! `compress`-class workloads — while the driver loop contributes one
//! ordinary program loop around it.

use loopspec_asm::{AsmError, Program, ProgramBuilder};
use loopspec_isa::kernel::{self, KernelDef};
use loopspec_isa::AluOp;

use crate::{PaperRow, Scale, Workload};

/// Iterations per kernel invocation. With [`reps`] scaling by
/// [`Scale::factor`], `Scale::Huge` reaches `8 × 4000 × 4096 ≈ 131 M`
/// kernel-loop iterations per workload.
const TRIPS: i64 = 4096;

/// Kernel invocations at `scale`: 8 at `Test`, scaled by the factor.
fn reps(scale: Scale) -> i64 {
    8 * scale.factor()
}

/// Resolves a `kern:<name>` selector to its registered kernel.
pub fn parse(name: &str) -> Option<&'static KernelDef> {
    kernel::by_name(name.strip_prefix("kern:")?)
}

/// Builds the driver program for `def` at `scale`.
///
/// # Errors
///
/// Propagates assembler errors (none occur for registered kernels —
/// the suite tests build every selector).
pub fn build(def: &KernelDef, scale: Scale) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let win_a = b.alloc_static(kernel::KMASK as i64 + 1);
    let win_b = b.alloc_static(kernel::KMASK as i64 + 1);
    let acc = b.alloc_static(1);
    let kfill = kernel::by_name("kfill").expect("kfill is built in");

    // Prefill both windows through the kernel path itself so the data
    // windows hold non-trivial values for ksum/kdot.
    for (win, seed) in [(win_a, 3), (win_b, 11)] {
        b.set_arg(0, kernel::KMASK as i64 + 1);
        b.set_arg(1, win);
        b.set_arg(2, seed);
        b.kernel_call(kfill.id);
    }

    b.counted_loop(reps(scale), |b, i| {
        b.set_arg(0, TRIPS);
        match def.name {
            "ksum" => b.set_arg(1, win_a),
            "kfill" => {
                b.set_arg(1, win_a);
                b.set_arg(2, i);
            }
            "kdot" => {
                b.set_arg(1, win_a);
                b.set_arg(2, win_b);
            }
            "khash" => b.set_arg(1, i),
            other => panic!("kern workload does not know builtin {other}"),
        }
        b.kernel_call(def.id);
        // Fold the result into the memory accumulator so every
        // invocation is observable in the final machine state.
        b.with_reg(|b, v| {
            b.load_static(v, acc);
            b.op(AluOp::Add, v, v, ProgramBuilder::RET_REG);
            b.store_static(v, acc);
        });
    });
    b.finish()
}

/// The `kern:` selector as a suite [`Workload`] (for drivers like
/// `repro --workload` that execute `Workload` values). The paper row
/// is all zeros — these workloads have no SPEC95 counterpart.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    const ROW: PaperRow = PaperRow {
        instr_g: 0.0,
        loops: 0,
        iter_per_exec: 0.0,
        instr_per_iter: 0.0,
        avg_nl: 0.0,
        max_nl: 0,
        hit_ratio: 0.0,
    };
    fn build_named(name: &str, scale: Scale) -> Result<Program, AsmError> {
        build(parse(name).expect("registered kernel"), scale)
    }
    fn b_ksum(s: Scale) -> Result<Program, AsmError> {
        build_named("kern:ksum", s)
    }
    fn b_kfill(s: Scale) -> Result<Program, AsmError> {
        build_named("kern:kfill", s)
    }
    fn b_kdot(s: Scale) -> Result<Program, AsmError> {
        build_named("kern:kdot", s)
    }
    fn b_khash(s: Scale) -> Result<Program, AsmError> {
        build_named("kern:khash", s)
    }
    let (name, description, build): (&'static str, &'static str, fn(Scale) -> _) = match name {
        "kern:ksum" => (
            "kern:ksum",
            "native kernel driver: masked-window sum",
            b_ksum,
        ),
        "kern:kfill" => (
            "kern:kfill",
            "native kernel driver: arithmetic fill",
            b_kfill,
        ),
        "kern:kdot" => (
            "kern:kdot",
            "native kernel driver: windowed dot product",
            b_kdot,
        ),
        "kern:khash" => (
            "kern:khash",
            "native kernel driver: register LCG mix",
            b_khash,
        ),
        _ => return None,
    };
    Some(Workload {
        name,
        description,
        paper: ROW,
        build,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_cpu::{Cpu, NullTracer, RunLimits};

    #[test]
    fn every_kern_selector_builds_and_halts_at_test_scale() {
        for def in kernel::all() {
            let name = format!("kern:{}", def.name);
            let def = parse(&name).unwrap_or_else(|| panic!("{name} must parse"));
            let p = build(def, Scale::Test).expect("assembles");
            let mut cpu = Cpu::new();
            let s = cpu
                .run(&p, &mut NullTracer, RunLimits::default())
                .unwrap_or_else(|e| panic!("{name} faulted: {e:?}"));
            assert!(s.halted(), "{name} did not halt");
            assert!(
                cpu.take_decoded_telemetry().kernel_calls >= 8,
                "{name} must dispatch kernels"
            );
        }
    }

    #[test]
    fn selectors_reject_unknown_and_malformed_names() {
        assert!(parse("kern:ksum").is_some());
        assert!(parse("kern:nope").is_none());
        assert!(parse("ksum").is_none());
        assert!(parse("kern:").is_none());
        assert!(workload_by_name("kern:kdot").is_some());
        assert!(workload_by_name("kdot").is_none());
    }
}
