//! Reusable loop-structure kernels.
//!
//! The 18 workloads are compositions of a small vocabulary of loop
//! shapes; each kernel here produces one shape with tunable parameters.
//! All kernels emit code through the [`ProgramBuilder`] and are careful
//! with the builder's register pool (a nest of depth *d* holds 2·*d*
//! registers live).

use loopspec_asm::ProgramBuilder;
use loopspec_isa::{AluOp, Cond, Reg};

/// A perfectly rectangular counted-loop nest with fixed trip counts and a
/// caller-supplied innermost body.
///
/// `trips` gives the counts outermost-first; depth is `trips.len()`.
///
/// ```
/// use loopspec_asm::ProgramBuilder;
/// use loopspec_workloads::kernels::nest;
///
/// let mut b = ProgramBuilder::new();
/// nest(&mut b, &[4, 8], &mut |b| b.work(3));
/// let p = b.finish().unwrap();
/// assert!(p.len() > 10);
/// ```
pub fn nest(b: &mut ProgramBuilder, trips: &[i64], body: &mut dyn FnMut(&mut ProgramBuilder)) {
    match trips.split_first() {
        None => body(b),
        Some((&t, rest)) => {
            b.counted_loop(t, |b, _i| nest(b, rest, body));
        }
    }
}

/// A rectangular nest whose innermost body is `ints` integer filler
/// instructions followed by `fps` floating-point ones, plus a
/// memory-resident accumulator (`cell += 1`) — the workhorse of the
/// regular Fortran-style workloads. The accumulator gives every such
/// loop a live-in memory location with a constant address and a strided
/// value, as array-walking Fortran kernels have.
pub fn nest_work(b: &mut ProgramBuilder, trips: &[i64], ints: u32, fps: u32) {
    let cell = b.alloc_static(1);
    nest(b, trips, &mut |b| {
        b.with_reg(|b, v| {
            b.load_static(v, cell);
            b.addi(v, v, 1);
            b.store_static(v, cell);
        });
        b.work(ints);
        b.fwork(fps);
    });
}

/// A counted loop whose trip count is drawn (at run time) uniformly from
/// `lo..=hi` via the guest LCG — the signature move of the *irregular*
/// workloads (`applu`, `perl`, `go`): the iteration-count stride
/// predictor cannot lock onto it.
pub fn var_loop(
    b: &mut ProgramBuilder,
    lo: i32,
    hi: i32,
    body: &mut dyn FnMut(&mut ProgramBuilder, Reg),
) {
    assert!(lo <= hi && lo >= 0, "need 0 <= lo <= hi");
    // Like `nest_work`, each call site owns a memory accumulator so that
    // even irregular loops have a live-in memory location (their values
    // stride by the — varying — trip count, so they predict only
    // partially, as the paper's integer codes do).
    let cell = b.alloc_static(1);
    let n = b.alloc_reg();
    b.rng_below(n, hi - lo + 1);
    b.op_imm(AluOp::Add, n, n, lo);
    b.counted_loop(n, |b, i| {
        b.with_reg(|b, v| {
            b.load_static(v, cell);
            b.addi(v, v, 1);
            b.store_static(v, cell);
        });
        body(b, i)
    });
    b.free_reg(n);
}

/// A triangular nest: the inner trip count equals the outer induction
/// value (iteration counts 0,1,2,… — a perfectly *strided* count that
/// rewards the STR predictor over last-count prediction).
pub fn triangular(b: &mut ProgramBuilder, n: i64, body: &mut dyn FnMut(&mut ProgramBuilder)) {
    b.counted_loop(n, |b, i| {
        b.loop_from_reg_zero(i, body);
    });
}

/// An interpreter-style dispatch loop: `outer` trips, each selecting one
/// of `arms` via the guest RNG and a jump table. `arm_gen` emits arm `k`'s
/// code (typically a distinct small loop — this is how the integer codes
/// get their large *static* loop populations).
pub fn dispatch_loop(
    b: &mut ProgramBuilder,
    outer: impl Into<loopspec_asm::Operand>,
    arms: usize,
    arm_gen: &mut dyn FnMut(&mut ProgramBuilder, usize),
) {
    b.counted_loop(outer, |b, _| {
        let sel = b.alloc_reg();
        b.rng_below(sel, arms as i32);
        b.switch_table(sel, arms, |b, k| arm_gen(b, k));
        b.free_reg(sel);
    });
}

/// A data-dependent `while` search: scans an array until a sentinel is
/// found. `len` values are written first so the scan length is
/// `pos_of_sentinel + 1`; with `sentinel_at` drawn from the RNG the trip
/// count varies per execution.
pub fn search_loop(b: &mut ProgramBuilder, base: i64, len: i32) {
    let idx = b.alloc_reg();
    let val = b.alloc_reg();
    let target = b.alloc_reg();
    // Pick a random sentinel position and store a marker there.
    b.rng_below(target, len);
    b.with_reg(|b, one| {
        b.li(one, 1);
        b.store_idx(one, base, target);
    });
    // Scan for it.
    b.li(idx, 0);
    b.while_loop(
        |b| {
            b.load_idx(val, base, idx);
            (Cond::Eq, val, Reg::ZERO)
        },
        |b| {
            b.addi(idx, idx, 1);
            b.work(2);
        },
    );
    // Clear the marker for the next execution.
    b.store_idx(Reg::ZERO, base, target);
    b.free_reg(target);
    b.free_reg(val);
    b.free_reg(idx);
}

/// A 2-D stencil sweep over a `rows × cols` array with `fps` FP
/// operations and a load/store per point — the memory-touching core of
/// `swim`/`tomcatv`/`hydro2d`.
pub fn stencil2d(b: &mut ProgramBuilder, base: i64, rows: i64, cols: i64, fps: u32) {
    let off = b.alloc_reg();
    let v = b.alloc_reg();
    b.counted_loop(rows, |b, j| {
        b.counted_loop(cols, |b, i| {
            // off = j * cols + i
            b.op_imm(AluOp::Mul, off, j, cols as i32);
            b.op(AluOp::Add, off, off, i);
            b.load_idx(v, base, off);
            b.addi(v, v, 1);
            b.fwork(fps);
            b.store_idx(v, base, off);
        });
    });
    b.free_reg(v);
    b.free_reg(off);
}

/// Defines a *self*-recursive tree-walk function `name`: each activation
/// runs a `fanout`-trip loop whose body recurses, plus `ints` filler
/// work. Invoke with `call_recursive`.
///
/// Note the paper's recursion rule (§2.2): all instantiations of the
/// *same static loop* reached through recursive activations without an
/// intervening return are classified as **one loop execution** — the CLS
/// finds `T` already present and treats the inner instance as a new
/// iteration. Self-recursion therefore does *not* build nesting depth;
/// use [`define_walker_chain`] (distinct loops per level) when depth is
/// the goal.
pub fn define_recursive_walker(b: &mut ProgramBuilder, name: &str, fanout: i64, ints: u32) {
    let name_owned = name.to_string();
    b.define_func(name, move |b| {
        let depth = b.alloc_reg();
        b.mov(depth, ProgramBuilder::ARG_REGS[0]);
        b.work(ints);
        b.with_reg(|b, zero_chk| {
            b.li(zero_chk, 0);
            b.if_then(Cond::GtS, depth, zero_chk, |b| {
                b.counted_loop(fanout, |b, _child| {
                    b.addi(ProgramBuilder::ARG_REGS[0], depth, -1);
                    b.call_func(&name_owned);
                });
            });
        });
        b.free_reg(depth);
    });
}

/// Calls a function defined by [`define_recursive_walker`] with the given
/// recursion depth.
pub fn call_recursive(b: &mut ProgramBuilder, name: &str, depth: impl Into<loopspec_asm::Operand>) {
    b.set_arg(0, depth);
    b.call_func(name);
}

/// Defines a *chain* of tree-walk functions `prefix0 … prefix{levels-1}`,
/// each containing its own statically distinct loop (RNG trip count in
/// `lo..=hi`) that calls the next level. This is how the deep-nesting
/// integer codes (`go`, `li`, `gcc`) stack 7–11 loops on the CLS: the
/// paper's recursion rule merges re-entered *identical* loops, so depth
/// requires distinct loops down the call chain.
///
/// Expected walk size grows as `((lo+hi)/2)^levels`; keep `levels ≤ 10`
/// with `hi ≤ 3`.
pub fn define_walker_chain(
    b: &mut ProgramBuilder,
    prefix: &str,
    levels: usize,
    lo: i32,
    hi: i32,
    ints: u32,
) {
    assert!(levels >= 1, "need at least one level");
    for k in 0..levels {
        let name = format!("{prefix}{k}");
        let child = if k + 1 < levels {
            Some(format!("{prefix}{}", k + 1))
        } else {
            None
        };
        b.define_func(&name, move |b| {
            b.work(ints);
            match &child {
                Some(child) => {
                    var_loop(b, lo, hi, &mut |b, _i| {
                        b.work(2);
                        b.call_func(child);
                    });
                }
                None => b.work(ints),
            }
        });
    }
}

/// Calls the root of a [`define_walker_chain`].
pub fn call_chain(b: &mut ProgramBuilder, prefix: &str) {
    b.call_func(&format!("{prefix}0"));
}

/// Extension trait hosting a small helper used by [`triangular`].
trait LoopFromZero {
    fn loop_from_reg_zero(&mut self, bound: Reg, body: &mut dyn FnMut(&mut ProgramBuilder));
}

impl LoopFromZero for ProgramBuilder {
    /// A counted loop from 0 up to the value of `bound`.
    fn loop_from_reg_zero(&mut self, bound: Reg, body: &mut dyn FnMut(&mut ProgramBuilder)) {
        let i = self.alloc_reg();
        self.li(i, 0);
        self.loop_from_reg(i, bound, |b, _| body(b));
        self.free_reg(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopspec_core::{EventCollector, LoopStats};
    use loopspec_cpu::{Cpu, RunLimits};

    fn run_stats(build: impl FnOnce(&mut ProgramBuilder)) -> (loopspec_core::LoopStatsReport, u64) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.finish().expect("assembles");
        let mut c = EventCollector::default();
        let summary = Cpu::new()
            .run(&p, &mut c, RunLimits::default())
            .expect("runs");
        assert!(summary.halted(), "kernel program must halt");
        let (events, n) = c.into_parts();
        let mut s = LoopStats::new();
        s.observe_all(&events);
        (s.report(n), n)
    }

    #[test]
    fn nest_reaches_requested_depth() {
        let (r, _) = run_stats(|b| nest_work(b, &[3, 3, 3, 3], 2, 0));
        assert_eq!(r.max_nesting, 4);
        assert_eq!(r.static_loops, 4);
    }

    #[test]
    fn var_loop_trip_counts_vary() {
        let (r, _) = run_stats(|b| {
            b.counted_loop(30, |b, _| {
                var_loop(b, 2, 9, &mut |b, _| b.work(1));
            });
        });
        // Average iterations of the inner loop sit strictly inside (2, 9).
        assert!(r.iter_per_exec > 2.0 && r.iter_per_exec < 12.0, "{r:?}");
        assert_eq!(r.max_nesting, 2);
    }

    #[test]
    fn triangular_executes_half_square() {
        let (r, _) = run_stats(|b| triangular(b, 12, &mut |b| b.work(1)));
        // Inner executions with i = 0 trips contribute nothing; the
        // detector sees executions for i >= 2 (i = 1 is a one-shot).
        assert_eq!(r.max_nesting, 2);
        assert!(r.executions > 10);
    }

    #[test]
    fn dispatch_loop_emits_distinct_static_loops() {
        let (r, _) = run_stats(|b| {
            dispatch_loop(b, 40, 5, &mut |b, k| {
                b.counted_loop(3 + k as i64, |b, _| b.work(2));
            });
        });
        // 1 outer + up to 5 arm loops (all visited with 40 spins).
        assert!(r.static_loops >= 5, "{r:?}");
    }

    #[test]
    fn search_loop_varies_and_terminates() {
        let (r, n) = run_stats(|b| {
            let base = b.alloc_static(64);
            b.counted_loop(20, |b, _| {
                search_loop(b, base, 40);
            });
        });
        assert!(n > 1000);
        assert!(r.iter_per_exec > 2.0, "{r:?}");
    }

    #[test]
    fn stencil_touches_memory_in_a_nest() {
        let (r, _) = run_stats(|b| {
            let base = b.alloc_static(64);
            stencil2d(b, base, 8, 8, 2);
        });
        assert_eq!(r.max_nesting, 2);
        assert!(r.instr_per_iter > 5.0);
    }

    #[test]
    fn self_recursion_merges_same_loop_instances() {
        // The paper's §2.2 recursion rule: re-entering the same static
        // loop through recursion is a new *iteration*, not a nested
        // execution — so depth stays at 1 despite 5 recursion levels.
        let (r, _) = run_stats(|b| {
            define_recursive_walker(b, "walk", 2, 3);
            call_recursive(b, "walk", 5i64);
        });
        assert_eq!(r.max_nesting, 1, "{r:?}");
        assert!(r.executions > 5);
    }

    #[test]
    fn walker_chain_stacks_distinct_loops() {
        let (r, _) = run_stats(|b| {
            define_walker_chain(b, "lvl", 6, 2, 3, 2);
            call_chain(b, "lvl");
        });
        // Five loop-bearing levels (the leaf has none).
        assert_eq!(r.static_loops, 5, "{r:?}");
        assert!(r.max_nesting >= 4, "distinct loops must nest: {r:?}");
    }
}
