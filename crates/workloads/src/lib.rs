//! # loopspec-workloads — the synthetic SPEC95-shaped benchmark suite
//!
//! The paper evaluates on the 18 SPEC95 programs compiled for DEC Alpha.
//! SPEC95 is proprietary and long-retired, so this crate substitutes a
//! suite of 18 synthetic SLA programs, one per SPEC95 program, each
//! *calibrated to that program's loop personality* as characterised by the
//! paper itself:
//!
//! * Table 1 — iterations/execution, instructions/iteration, average and
//!   maximum nesting level (our [`PaperRow`] carries the original
//!   values for side-by-side reporting);
//! * Table 2 — speculation hit ratio under STR(3), which reflects how
//!   *regular* each program's iteration counts are (`compress` at 100 %
//!   gets constant trip counts; `applu` at 54 % gets RNG-driven ones);
//! * structural traits called out in the paper: recursion (`li`, `go`),
//!   interpreter dispatch (`perl`, `m88ksim`, `gcc`), deep FP nests
//!   (`fpppp`, `ijpeg`), huge loop bodies (`fpppp`), time-step outer
//!   loops (the Fortran codes).
//!
//! Dynamic instruction counts are scaled down from the paper's 10⁹–10¹¹
//! range (see [`Scale`]); the paper's own Figure 5 shows that a reduced
//! prefix behaves like the full run. Static loop counts scale down
//! similarly (tens instead of hundreds-to-thousands).
//!
//! ## Example
//!
//! ```
//! use loopspec_workloads::{all, by_name, Scale};
//!
//! assert_eq!(all().len(), 18);
//! let w = by_name("swim").expect("swim exists");
//! let program = w.build(Scale::Test)?;
//! assert!(program.len() > 50);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod families;
pub mod kernels;
pub mod native;
mod suite;

use loopspec_asm::{AsmError, Program};

/// Run-length scale for a workload.
///
/// Scales the top-level repetition counts; loop *shapes* (trip counts,
/// nesting, body sizes) are scale-invariant so every statistic except
/// total instructions is stable across scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~100 k instructions — unit tests and doc examples.
    Test,
    /// ~0.5–1 M instructions — quick experiment sweeps.
    Small,
    /// ~2–6 M instructions — the EXPERIMENTS.md numbers.
    Full,
    /// Hundreds of millions of instructions — the kernel-backed stress
    /// tier. Intended for the [`native`] `kern:` workloads, whose inner
    /// bodies retire through the native `KernelCall` extension point;
    /// building one of the 18 interpreted suite programs at this scale
    /// works but takes interpreter-bound minutes.
    Huge,
}

impl Scale {
    /// Multiplier applied to top-level repetition counts.
    pub fn factor(self) -> i64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 6,
            Scale::Full => 24,
            Scale::Huge => 4000,
        }
    }
}

/// The paper's Table 1 row for the original SPEC95 program (for
/// side-by-side reporting in `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Dynamic instructions, in units of 10⁹.
    pub instr_g: f64,
    /// Static loop count.
    pub loops: u32,
    /// Average iterations per execution.
    pub iter_per_exec: f64,
    /// Average instructions per iteration.
    pub instr_per_iter: f64,
    /// Average nesting level.
    pub avg_nl: f64,
    /// Maximum nesting level.
    pub max_nl: u32,
    /// Table 2 hit ratio (%) under STR(3) with 4 TUs.
    pub hit_ratio: f64,
}

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// SPEC95 program name this workload mimics.
    pub name: &'static str,
    /// One-line description of the synthetic structure.
    pub description: &'static str,
    /// The paper's reference numbers for the original program.
    pub paper: PaperRow,
    build: fn(Scale) -> Result<Program, AsmError>,
}

impl Workload {
    /// Assembles the workload at the given scale.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors; the suite's tests guarantee these do
    /// not occur for shipped workloads.
    pub fn build(&self, scale: Scale) -> Result<Program, AsmError> {
        (self.build)(scale)
    }
}

/// All 18 workloads in the paper's (alphabetical) Table 1 order.
pub fn all() -> Vec<Workload> {
    suite::all()
}

/// Looks up a workload by its SPEC95 name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// `true` when `name` resolves to a buildable program: one of the 18
/// calibrated kernels, a well-formed `gen:<family>:<seed>` scenario
/// (see [`families`]), or a `kern:<kernel>` native-kernel driver (see
/// [`native`]). This is the admission-control predicate — a name this
/// rejects must never reach a worker.
pub fn known_name(name: &str) -> bool {
    if name.starts_with("gen:") {
        families::parse(name).is_some()
    } else if name.starts_with("kern:") {
        native::parse(name).is_some()
    } else {
        by_name(name).is_some()
    }
}

/// Builds any named program — calibrated kernel, generated scenario,
/// or native-kernel driver — at the given scale. Generated scenarios
/// use `scale.factor()` as their size parameter, so the same scale
/// ladder applies to all three namespaces.
///
/// Returns `None` for unknown names (see [`known_name`]), and
/// `Some(Err(..))` when the program fails to assemble.
pub fn build_named(name: &str, scale: Scale) -> Option<Result<Program, AsmError>> {
    if name.starts_with("gen:") {
        let token = families::parse(name)?;
        let ast = token.program(scale.factor() as u32)?;
        return Some(loopspec_gen::compile(&ast));
    }
    if name.starts_with("kern:") {
        return Some(native::build(native::parse(name)?, scale));
    }
    by_name(name).map(|w| w.build(scale))
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for per-workload shape tests.

    use loopspec_core::{EventCollector, LoopStats, LoopStatsReport};
    use loopspec_cpu::{Cpu, RunLimits};

    use crate::{Scale, Workload};

    /// Builds and runs a workload, returning its loop-statistics report.
    pub fn run_report(w: &Workload, scale: Scale) -> LoopStatsReport {
        let p = w
            .build(scale)
            .unwrap_or_else(|e| panic!("{} failed to assemble: {e}", w.name));
        let mut c = EventCollector::default();
        let summary = Cpu::new()
            .run(&p, &mut c, RunLimits::default())
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", w.name));
        assert!(summary.halted(), "{} must halt, got {summary:?}", w.name);
        let (events, n) = c.into_parts();
        let mut s = LoopStats::new();
        s.observe_all(&events);
        s.report(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_ordered() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "applu", "apsi", "compress", "fpppp", "gcc", "go", "hydro2d", "ijpeg", "li",
                "m88ksim", "mgrid", "perl", "su2cor", "swim", "tomcatv", "turb3d", "vortex",
                "wave5",
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("gcc").is_some());
        assert!(by_name("specmark").is_none());
    }

    #[test]
    fn named_lookup_covers_generated_scenarios() {
        assert!(known_name("compress"));
        assert!(known_name("gen:trips:5"));
        assert!(!known_name("gen:trips:x"));
        assert!(!known_name("gen:nope:1"));
        assert!(!known_name("specmark"));
        let p = build_named("gen:trips:5", Scale::Test)
            .expect("known name")
            .expect("assembles");
        assert!(!p.is_empty());
        // The name alone regenerates the identical program.
        let q = build_named("gen:trips:5", Scale::Test).unwrap().unwrap();
        assert_eq!(p.len(), q.len());
        assert!(build_named("specmark", Scale::Test).is_none());
    }

    #[test]
    fn every_workload_assembles_at_test_scale() {
        for w in all() {
            let p = w.build(Scale::Test).unwrap_or_else(|e| {
                panic!("{} failed to assemble: {e}", w.name);
            });
            assert!(p.len() > 20, "{} is suspiciously tiny", w.name);
        }
    }

    #[test]
    fn scale_factors_are_monotone() {
        assert!(Scale::Test.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
        assert!(Scale::Full.factor() < Scale::Huge.factor());
    }

    #[test]
    fn named_lookup_covers_kernel_drivers() {
        assert!(known_name("kern:ksum"));
        assert!(known_name("kern:khash"));
        assert!(!known_name("kern:nope"));
        assert!(!known_name("kern:"));
        let p = build_named("kern:ksum", Scale::Test)
            .expect("known name")
            .expect("assembles");
        assert!(!p.is_empty());
    }

    #[test]
    fn paper_rows_match_table_1() {
        let swim = by_name("swim").unwrap();
        assert_eq!(swim.paper.iter_per_exec, 188.54);
        assert_eq!(swim.paper.max_nl, 3);
        let go = by_name("go").unwrap();
        assert_eq!(go.paper.max_nl, 11);
        assert_eq!(go.paper.loops, 709);
    }
}
