//! Bridge from workload names to generated scenario families.
//!
//! Generated programs join the suite under `gen:<family>:<seed>`
//! names, so every consumer that addresses workloads by string — the
//! distributed job protocol, the replay service, `genfuzz` — reaches
//! them through the same [`build_named`](crate::build_named) door as
//! the 18 calibrated kernels. The seed travels inside the name, which
//! keeps jobs self-describing: a coordinator can hand `gen:chase:42`
//! to any worker and both sides regenerate the identical program.

use loopspec_gen::{family_by_name, ReplayToken};

/// Parses and validates a `gen:<family>:<seed>` workload name.
///
/// Returns `None` when the name lacks the `gen:` prefix, is not
/// `family:seed` shaped, names an unknown family, or carries a
/// non-numeric seed — the rejection paths admission control relies on.
pub fn parse(name: &str) -> Option<ReplayToken> {
    let rest = name.strip_prefix("gen:")?;
    let token = rest.parse::<ReplayToken>().ok()?;
    family_by_name(&token.family)?;
    Some(token)
}

/// The `gen:<family>:<seed>` name for a family/seed pair.
pub fn name_of(family: &str, seed: u64) -> String {
    format!("gen:{family}:{seed}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_tokens() {
        let t = parse("gen:chase:42").expect("valid");
        assert_eq!(t.family, "chase");
        assert_eq!(t.seed, 42);
        assert_eq!(name_of("chase", 42), "gen:chase:42");
    }

    #[test]
    fn parse_rejects_malformed_names() {
        assert!(parse("chase:42").is_none(), "missing prefix");
        assert!(parse("gen:chase").is_none(), "missing seed");
        assert!(parse("gen:chase:forty").is_none(), "non-numeric seed");
        assert!(parse("gen:unknown:1").is_none(), "unknown family");
        assert!(parse("gen::1").is_none(), "empty family");
    }
}
