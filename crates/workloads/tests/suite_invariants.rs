//! Suite-wide invariants: determinism, scale behaviour, CLS adequacy,
//! and — most importantly — that the *relative personalities* the paper
//! reports survive in the synthetic suite (hit-ratio ordering, nesting
//! ordering, body-size ordering).

use loopspec_core::{EventCollector, LoopEvent, LoopStats};
use loopspec_cpu::{Cpu, RunLimits};
use loopspec_workloads::{all, by_name, Scale, Workload};

fn events_of(w: &Workload, scale: Scale) -> (Vec<LoopEvent>, u64) {
    let p = w.build(scale).expect("assembles");
    let mut c = EventCollector::default();
    let s = Cpu::new()
        .run(&p, &mut c, RunLimits::with_fuel(1_000_000_000))
        .expect("runs");
    assert!(s.halted(), "{} must halt", w.name);
    c.into_parts()
}

#[test]
fn builds_are_deterministic() {
    for w in all() {
        let a = w.build(Scale::Test).unwrap();
        let b = w.build(Scale::Test).unwrap();
        assert_eq!(a.code(), b.code(), "{} build must be reproducible", w.name);
    }
}

#[test]
fn scaling_multiplies_instructions_roughly_linearly() {
    for name in ["swim", "gcc", "m88ksim"] {
        let w = by_name(name).unwrap();
        let (_, n_test) = events_of(&w, Scale::Test);
        let (_, n_small) = events_of(&w, Scale::Small);
        let ratio = n_small as f64 / n_test as f64;
        let expect = Scale::Small.factor() as f64 / Scale::Test.factor() as f64;
        assert!(
            ratio > expect * 0.5 && ratio < expect * 1.6,
            "{name}: scaling ratio {ratio:.2}, expected ≈{expect}"
        );
    }
}

#[test]
fn sixteen_entry_cls_never_overflows_on_the_suite() {
    // The paper: "a few entries are enough to guarantee no overflow for
    // most programs" — with max nesting 11 in SPEC95 and 10 in our
    // suite, 16 entries must never evict.
    for w in all() {
        let (events, _) = events_of(&w, Scale::Test);
        let evictions = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::Evicted { .. }))
            .count();
        assert_eq!(evictions, 0, "{} evicted with a 16-entry CLS", w.name);
    }
}

#[test]
fn nesting_orderings_match_the_paper() {
    let report = |name: &str| {
        let w = by_name(name).unwrap();
        let (events, n) = events_of(&w, Scale::Test);
        let mut s = LoopStats::new();
        s.observe_all(&events);
        s.report(n)
    };
    // go and li are the deepest (paper: 11 and 10); perl and m88ksim the
    // flattest (1.35 and 1.98); swim maxes at 3.
    let go = report("go");
    let li = report("li");
    let perl = report("perl");
    let m88 = report("m88ksim");
    let swim = report("swim");
    assert!(go.max_nesting >= 9, "go: {:?}", go.max_nesting);
    assert!(li.max_nesting >= 7, "li: {:?}", li.max_nesting);
    assert!(swim.max_nesting <= 4, "swim: {:?}", swim.max_nesting);
    assert!(perl.avg_nesting < swim.avg_nesting + 1.0);
    assert!(perl.avg_nesting < go.avg_nesting);
    assert!(m88.avg_nesting < go.avg_nesting);
}

#[test]
fn body_size_ordering_fpppp_dominates() {
    // fpppp's 3217 instructions/iteration is 6-80x everything else in
    // the paper; in our suite it must be the largest by a wide margin.
    let mut sizes: Vec<(String, f64)> = all()
        .iter()
        .map(|w| {
            let (events, n) = events_of(w, Scale::Test);
            let mut s = LoopStats::new();
            s.observe_all(&events);
            (w.name.to_string(), s.report(n).instr_per_iter)
        })
        .collect();
    sizes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    assert_eq!(sizes[0].0, "fpppp", "{sizes:?}");
    assert!(sizes[0].1 > 3.0 * sizes[1].1, "{sizes:?}");
}

#[test]
fn iteration_richness_ordering_swim_leads() {
    // swim has the most iterations/execution in the paper (188.5),
    // roughly 3x the median; the suite must preserve "swim leads".
    let mut iters: Vec<(String, f64)> = all()
        .iter()
        .map(|w| {
            let (events, n) = events_of(w, Scale::Test);
            let mut s = LoopStats::new();
            s.observe_all(&events);
            (w.name.to_string(), s.report(n).iter_per_exec)
        })
        .collect();
    iters.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    assert_eq!(iters[0].0, "swim", "{iters:?}");
}

#[test]
fn hit_ratio_personality_survives_speculation() {
    // The paper's Table 2 splits the suite into regular (hit > 95%) and
    // irregular (hit < 80%) programs. Run STR(3) at 4 TUs and check the
    // groups keep their order (group means, not individual values).
    use loopspec_mt::{AnnotatedTrace, Engine, StrNestedPolicy};
    let hit = |name: &str| {
        let w = by_name(name).unwrap();
        let (events, n) = events_of(&w, Scale::Test);
        let trace = AnnotatedTrace::build(&events, n);
        Engine::new(&trace, StrNestedPolicy::new(3), 4)
            .run()
            .spec
            .hit_ratio_percent()
    };
    let regular = ["compress", "hydro2d", "su2cor", "swim", "wave5"];
    let irregular = ["applu", "perl", "go", "li"];
    let avg = |names: &[&str]| names.iter().map(|n| hit(n)).sum::<f64>() / names.len() as f64;
    let (r, i) = (avg(&regular), avg(&irregular));
    assert!(
        r > i + 15.0,
        "regular group ({r:.1}%) must clearly beat irregular ({i:.1}%)"
    );
    assert!(r > 85.0, "regular group too low: {r:.1}%");
    assert!(i < 75.0, "irregular group too high: {i:.1}%");
}

#[test]
fn one_shot_share_is_highest_for_perl() {
    // perl's throwaway RNG loops frequently run a single iteration —
    // its one-shot share should be the suite's highest (its avg nl of
    // 1.35 in the paper reflects the same degeneracy).
    let one_shot_share = |name: &str| {
        let w = by_name(name).unwrap();
        let (events, _) = events_of(&w, Scale::Test);
        let one = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::OneShot { .. }))
            .count() as f64;
        let ends = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::ExecutionEnd { .. }))
            .count() as f64;
        one / (one + ends)
    };
    let perl = one_shot_share("perl");
    for other in ["swim", "hydro2d", "compress", "mgrid"] {
        assert!(
            perl > one_shot_share(other),
            "perl's one-shot share must exceed {other}'s"
        );
    }
}
