//! Golden semantics tests: every operation class executed on the real
//! interpreter and checked against architecturally expected values.

use loopspec_asm::ProgramBuilder;
use loopspec_cpu::{Completion, Cpu, CpuError, NullTracer, RunLimits};
use loopspec_isa::{Addr, AluOp, Cond, FAluOp, FReg, FUnOp, Instruction, Reg};

/// Runs a program and returns the final CPU state.
fn run(build: impl FnOnce(&mut ProgramBuilder)) -> Cpu {
    let mut b = ProgramBuilder::new();
    build(&mut b);
    let p = b.finish().expect("assembles");
    let mut cpu = Cpu::new();
    let s = cpu
        .run(&p, &mut NullTracer, RunLimits::default())
        .expect("runs");
    assert_eq!(s.completion, Completion::Halted);
    cpu
}

#[test]
fn every_alu_op_executes_architecturally() {
    let cases: &[(AluOp, i64, i64, i64)] = &[
        (AluOp::Add, 7, 5, 12),
        (AluOp::Sub, 7, 5, 2),
        (AluOp::Mul, -3, 5, -15),
        (AluOp::Div, -15, 4, -3),
        (AluOp::Rem, 15, 4, 3),
        (AluOp::And, 0b1100, 0b1010, 0b1000),
        (AluOp::Or, 0b1100, 0b1010, 0b1110),
        (AluOp::Xor, 0b1100, 0b1010, 0b0110),
        (AluOp::Shl, 3, 4, 48),
        (AluOp::Shr, 48, 4, 3),
        (AluOp::Sar, -48, 4, -3),
        (AluOp::SltS, -1, 0, 1),
        (AluOp::SltU, -1, 0, 0), // -1 as unsigned is huge
    ];
    for &(op, a, v, expect) in cases {
        let out_addr = std::cell::Cell::new(0i64);
        let cpu = run(|b| {
            let (ra, rb, rd) = (b.alloc_reg(), b.alloc_reg(), b.alloc_reg());
            b.li(ra, a);
            b.li(rb, v);
            b.op(op, rd, ra, rb);
            let out = b.alloc_static(1);
            out_addr.set(out);
            b.store_static(rd, out);
        });
        assert_eq!(
            cpu.mem().read(out_addr.get() as u64) as i64,
            expect,
            "{op:?}({a}, {v})"
        );
    }
}

#[test]
fn every_branch_condition_resolves() {
    // For each condition, branch over a "write 1" instruction when the
    // condition holds; check both polarity cases.
    let cases: &[(Cond, i64, i64, bool)] = &[
        (Cond::Eq, 3, 3, true),
        (Cond::Eq, 3, 4, false),
        (Cond::Ne, 3, 4, true),
        (Cond::LtS, -5, 0, true),
        (Cond::LeS, 5, 5, true),
        (Cond::GtS, 6, 5, true),
        (Cond::GeS, 5, 6, false),
        (Cond::LtU, 1, 2, true),
        (Cond::LtU, -1, 2, false),
        (Cond::GeU, -1, 2, true),
    ];
    for &(cond, a, v, taken) in cases {
        let out_addr = std::cell::Cell::new(0i64);
        let cpu = run(|b| {
            let (ra, rb, flag) = (b.alloc_reg(), b.alloc_reg(), b.alloc_reg());
            b.li(ra, a);
            b.li(rb, v);
            b.li(flag, 0);
            b.if_then(cond, ra, rb, |b| b.li(flag, 1));
            let out = b.alloc_static(1);
            out_addr.set(out);
            b.store_static(flag, out);
        });
        assert_eq!(
            cpu.mem().read(out_addr.get() as u64),
            taken as u64,
            "{cond:?}({a}, {v})"
        );
    }
}

#[test]
fn fp_ops_and_conversions() {
    let out_addr = std::cell::Cell::new(0i64);
    let cpu = run(|b| {
        b.emit(Instruction::FLoadImm {
            fd: FReg::F1,
            value: 9.0,
        });
        b.emit(Instruction::FUn {
            op: FUnOp::Sqrt,
            fd: FReg::F2,
            fa: FReg::F1,
        }); // 3.0
        b.emit(Instruction::FLoadImm {
            fd: FReg::F3,
            value: 0.5,
        });
        b.emit(Instruction::FAlu {
            op: FAluOp::Add,
            fd: FReg::F4,
            fa: FReg::F2,
            fb: FReg::F3,
        }); // 3.5
        b.emit(Instruction::FAlu {
            op: FAluOp::Mul,
            fd: FReg::F4,
            fa: FReg::F4,
            fb: FReg::F4,
        }); // 12.25
        b.emit(Instruction::FtoI {
            rd: Reg::R8,
            fa: FReg::F4,
        }); // trunc -> 12
        let out = b.alloc_static(1);
        out_addr.set(out);
        b.store_static(Reg::R8, out);
    });
    assert_eq!(cpu.mem().read(out_addr.get() as u64), 12);
}

#[test]
fn fp_compare_feeds_integer_branch() {
    let out_addr = std::cell::Cell::new(0i64);
    let cpu = run(|b| {
        b.emit(Instruction::FLoadImm {
            fd: FReg::F1,
            value: 1.5,
        });
        b.emit(Instruction::FLoadImm {
            fd: FReg::F2,
            value: 2.5,
        });
        b.emit(Instruction::FCmp {
            cond: Cond::LtS,
            rd: Reg::R8,
            fa: FReg::F1,
            fb: FReg::F2,
        });
        let out = b.alloc_static(1);
        out_addr.set(out);
        b.store_static(Reg::R8, out);
    });
    assert_eq!(cpu.mem().read(out_addr.get() as u64), 1);
}

#[test]
fn itof_round_trip() {
    let out_addr = std::cell::Cell::new(0i64);
    let cpu = run(|b| {
        let r = b.alloc_reg();
        b.li(r, -42);
        b.emit(Instruction::ItoF {
            fd: FReg::F1,
            ra: r,
        });
        b.emit(Instruction::FtoI {
            rd: r,
            fa: FReg::F1,
        });
        let out = b.alloc_static(1);
        out_addr.set(out);
        b.store_static(r, out);
    });
    assert_eq!(cpu.mem().read(out_addr.get() as u64) as i64, -42);
}

#[test]
fn deep_call_chain_uses_the_guest_stack() {
    // 200-deep recursion: every frame saves 10 words; the stack pages in
    // and unwinds correctly.
    let out_addr = std::cell::Cell::new(0i64);
    let cpu = run(|b| {
        b.define_func("down", |b| {
            let d = b.alloc_reg();
            b.mov(d, ProgramBuilder::ARG_REGS[0]);
            b.if_else(
                Cond::GtS,
                d,
                Reg::R0,
                |b| {
                    b.addi(ProgramBuilder::ARG_REGS[0], d, -1);
                    b.call_func("down");
                    b.addi(ProgramBuilder::RET_REG, ProgramBuilder::RET_REG, 1);
                },
                |b| b.set_ret(0i64),
            );
            b.free_reg(d);
        });
        b.set_arg(0, 200i64);
        b.call_func("down");
        let out = b.alloc_static(1);
        out_addr.set(out);
        b.store_static(ProgramBuilder::RET_REG, out);
    });
    assert_eq!(cpu.mem().read(out_addr.get() as u64), 200);
}

#[test]
fn pc_out_of_range_is_a_fault() {
    // A program whose last instruction is not a halt: control runs off
    // the end.
    use loopspec_asm::Assembler;
    let mut a = Assembler::new();
    a.emit(Instruction::Nop);
    let p = a.finish().unwrap();
    let err = Cpu::new()
        .run(&p, &mut NullTracer, RunLimits::default())
        .unwrap_err();
    assert_eq!(err, CpuError::PcOutOfRange { pc: Addr::new(1) });
}

#[test]
fn bad_indirect_target_is_a_fault() {
    use loopspec_asm::Assembler;
    let mut a = Assembler::new();
    a.emit(Instruction::LoadImm {
        rd: Reg::R1,
        imm: 1 << 40,
    });
    a.emit(Instruction::JumpInd { base: Reg::R1 });
    let p = a.finish().unwrap();
    let err = Cpu::new()
        .run(&p, &mut NullTracer, RunLimits::default())
        .unwrap_err();
    assert!(matches!(err, CpuError::BadIndirectTarget { .. }));
    assert!(err.to_string().contains("indirect"));
}

#[test]
fn memory_limit_trips() {
    // Touch one word in each of many pages until the limit fires.
    let mut b = ProgramBuilder::new();
    let (addr, step) = (b.alloc_reg(), b.alloc_reg());
    b.li(addr, 0);
    b.li(step, 4096);
    b.loop_forever(|b| {
        b.emit(Instruction::Store {
            src: Reg::R0,
            base: addr,
            offset: 0,
        });
        b.op(AluOp::Add, addr, addr, step);
    });
    let p = b.finish().unwrap();
    let err = Cpu::new()
        .run(
            &p,
            &mut NullTracer,
            RunLimits {
                max_instrs: 10_000_000,
                max_pages: 64,
            },
        )
        .unwrap_err();
    assert!(matches!(err, CpuError::MemoryLimit { pages } if pages > 64));
}

#[test]
fn lcg_sequence_matches_reference() {
    // The guest LCG must match the host-side reference implementation.
    let out_addr = std::cell::Cell::new(0i64);
    let cpu = run(|b| {
        let s = b.alloc_reg();
        b.li(s, 1);
        let out = b.alloc_static(8);
        out_addr.set(out);
        b.counted_loop(8, |b, i| {
            b.lcg_next(s);
            b.store_idx(s, out, i);
        });
    });
    let mut state: u64 = 1;
    for k in 0..8u64 {
        state = state.wrapping_mul(1_103_515_245).wrapping_add(12_345) & 0x7fff_ffff;
        assert_eq!(cpu.mem().read(out_addr.get() as u64 + k), state, "step {k}");
    }
}
