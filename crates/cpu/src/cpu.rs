//! The functional interpreter.

use std::fmt;
use std::time::{Duration, Instant};

use loopspec_asm::Program;
use loopspec_isa::{Addr, Instruction, Reg};

use crate::mem::Memory;
use crate::tracer::{ArchReg, ControlOutcome, InstrEvent, MemAccess, RegRead, RegWrite, Tracer};

/// Why a run stopped without error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The program executed a `halt` instruction.
    Halted,
    /// The instruction budget ([`RunLimits::max_instrs`]) was exhausted.
    OutOfFuel,
}

/// Result of a successful [`Cpu::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of retired instructions.
    pub retired: u64,
    /// Why execution stopped.
    pub completion: Completion,
    /// Wall-clock time the run took (diagnostic; see
    /// [`instrs_per_sec`](RunSummary::instrs_per_sec)).
    pub elapsed: Duration,
}

impl RunSummary {
    /// `true` when the program halted of its own accord.
    pub fn halted(&self) -> bool {
        self.completion == Completion::Halted
    }

    /// Interpreter throughput for this run: retired instructions per
    /// wall-clock second (`0.0` for an empty or unmeasurably short
    /// run).
    pub fn instrs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.retired as f64 / secs
        } else {
            0.0
        }
    }
}

/// Simulator faults (distinct from orderly completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// Control flowed outside the program code.
    PcOutOfRange {
        /// The faulting program counter.
        pc: Addr,
    },
    /// An indirect jump/call/return targeted an address that does not fit
    /// the code address space.
    BadIndirectTarget {
        /// PC of the faulting instruction.
        pc: Addr,
        /// The register value used as a target.
        value: u64,
    },
    /// The data-memory footprint exceeded [`RunLimits::max_pages`].
    MemoryLimit {
        /// Pages allocated when the limit tripped.
        pages: usize,
    },
    /// A `KernelCall` named an id absent from the kernel registry
    /// (see [`loopspec_isa::kernel`]).
    UnknownKernel {
        /// The unregistered kernel id.
        id: u32,
        /// PC of the faulting `KernelCall`.
        pc: Addr,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program code"),
            CpuError::BadIndirectTarget { pc, value } => {
                write!(
                    f,
                    "indirect target {value:#x} at {pc} is not a code address"
                )
            }
            CpuError::MemoryLimit { pages } => {
                write!(f, "data memory exceeded limit ({pages} pages allocated)")
            }
            CpuError::UnknownKernel { id, pc } => {
                write!(f, "kernel call at {pc} names unregistered kernel id {id}")
            }
        }
    }
}

impl std::error::Error for CpuError {}

/// Resource limits for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum instructions to retire before stopping with
    /// [`Completion::OutOfFuel`].
    pub max_instrs: u64,
    /// Maximum data-memory pages (32 KiB each) before faulting with
    /// [`CpuError::MemoryLimit`].
    pub max_pages: usize,
}

impl Default for RunLimits {
    /// 100 M instructions, 64 Ki pages (2 GiB of data memory).
    fn default() -> Self {
        RunLimits {
            max_instrs: 100_000_000,
            max_pages: 1 << 16,
        }
    }
}

impl RunLimits {
    /// Limits with a specific instruction budget.
    pub fn with_fuel(max_instrs: u64) -> Self {
        RunLimits {
            max_instrs,
            ..Self::default()
        }
    }
}

/// The SLA functional simulator.
///
/// Holds the architectural state (integer and FP register files, data
/// memory); [`Cpu::run`] executes a [`Program`] from its entry point,
/// invoking a [`Tracer`] on every retired instruction. State persists
/// across `run` calls, so phased execution is possible, but the common
/// pattern is one fresh `Cpu` per program.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Cpu {
    pub(crate) regs: [u64; 32],
    pub(crate) fregs: [f64; 32],
    pub(crate) pc: Addr,
    pub(crate) mem: Memory,
    pub(crate) retired: u64,
    /// Out-of-band dispatch counters (see [`crate::DecodedTelemetry`]):
    /// bumped by the decoded front-end, never serialized by
    /// [`Cpu::save_state`], never read by execution.
    pub(crate) telem: crate::DecodedTelemetry,
    /// Mid-body kernel pause cursor (see [`crate::kernel`]); `None`
    /// whenever the CPU sits between whole instructions.
    pub(crate) kernel: Option<crate::kernel::KernelResume>,
    /// How `KernelCall` bodies execute. Not architectural: every mode
    /// produces the same events, state and snapshot bytes.
    pub(crate) kernel_mode: crate::KernelMode,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a CPU with zeroed registers and empty memory.
    pub fn new() -> Self {
        Cpu {
            regs: [0; 32],
            fregs: [0.0; 32],
            pc: Addr::ZERO,
            mem: Memory::new(),
            retired: 0,
            telem: crate::DecodedTelemetry::default(),
            kernel: None,
            kernel_mode: crate::KernelMode::from_env(),
        }
    }

    /// Selects how `KernelCall` bodies execute (see
    /// [`crate::KernelMode`]). Purely an implementation choice: every
    /// mode yields identical events, architectural state and snapshot
    /// bytes, so this can be flipped at any instruction boundary —
    /// even between the fuel slices of one paused kernel.
    pub fn set_kernel_mode(&mut self, mode: crate::KernelMode) {
        self.kernel_mode = mode;
    }

    /// The current kernel execution mode.
    pub fn kernel_mode(&self) -> crate::KernelMode {
        self.kernel_mode
    }

    /// Returns the decoded-dispatch telemetry accumulated since the
    /// last take (or construction) and resets it to zero. Purely
    /// observational: taking (or ignoring) it never affects execution,
    /// snapshots, or reports.
    pub fn take_decoded_telemetry(&mut self) -> crate::DecodedTelemetry {
        std::mem::take(&mut self.telem)
    }

    /// Reads an integer register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Reads an FP register.
    #[inline]
    pub fn freg(&self, r: loopspec_isa::FReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Writes an integer register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Immutable view of data memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable view of data memory (for pre-loading inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Total instructions retired by this CPU across all runs.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Runs `program` from its entry point until `halt`, a fault, or fuel
    /// exhaustion, reporting every retired instruction to `tracer`.
    ///
    /// # Errors
    ///
    /// Returns a [`CpuError`] when control leaves the code, an indirect
    /// target is not a code address, or the memory limit is exceeded.
    pub fn run<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
        limits: RunLimits,
    ) -> Result<RunSummary, CpuError> {
        self.pc = program.entry();
        self.resume(program, tracer, limits)
    }

    /// Continues execution from the **current** program counter — the
    /// resumable half of [`Cpu::run`].
    ///
    /// After a fuel-exhausted `run`/`resume`, the CPU's cursor (pc,
    /// registers, memory, retired count) sits exactly at the next
    /// retirement boundary, so a later `resume` call picks up the
    /// instruction stream where the previous call stopped — including
    /// across a [`Cpu::save_state`]/[`Cpu::load_state`] round trip in
    /// another process. `limits.max_instrs` is the budget for *this*
    /// call, not a cumulative cap.
    ///
    /// # Errors
    ///
    /// Returns a [`CpuError`] when control leaves the code, an indirect
    /// target is not a code address, or the memory limit is exceeded.
    pub fn resume<T: Tracer>(
        &mut self,
        program: &Program,
        tracer: &mut T,
        limits: RunLimits,
    ) -> Result<RunSummary, CpuError> {
        let started = Instant::now();
        let start_retired = self.retired;
        let budget = limits.max_instrs;
        // Demand-mask fast path: the reads array is the expensive part
        // of event assembly (a reg_use walk per retirement); skip it
        // for tracers that declare they never look (e.g. NullTracer,
        // loop-only pipelines).
        let wants_reads = tracer.demand().reads();

        while self.retired - start_retired < budget {
            let pc = self.pc;
            let instr = *program.fetch(pc).ok_or(CpuError::PcOutOfRange { pc })?;

            // Kernel dispatch retires nothing itself (no event, no
            // counter bump); the body's instructions retire through
            // the shared kernel executor, and the pc moves past the
            // call only when the body completes.
            if let Instruction::KernelCall { id } = instr {
                let fuel = budget - (self.retired - start_retired);
                if self.exec_kernel(id, fuel, tracer, limits.max_pages)? {
                    self.pc = pc.next();
                }
                continue;
            }

            let mut ev = InstrEvent {
                seq: self.retired,
                pc,
                instr,
                control: ControlOutcome {
                    kind: instr.control_kind(),
                    taken: false,
                    target: pc.next(),
                },
                reads: [None; 5],
                write: None,
                mem_read: None,
                mem_write: None,
            };
            if wants_reads {
                self.capture_reads(&instr, &mut ev);
            }

            let mut next_pc = pc.next();
            let mut halted = false;

            match instr {
                Instruction::Nop => {}
                Instruction::Halt => halted = true,
                Instruction::Alu { op, rd, ra, rb } => {
                    let v = op.eval(self.reg(ra), self.reg(rb));
                    self.write_int(rd, v, &mut ev);
                }
                Instruction::AluImm { op, rd, ra, imm } => {
                    let v = op.eval(self.reg(ra), imm as i64 as u64);
                    self.write_int(rd, v, &mut ev);
                }
                Instruction::LoadImm { rd, imm } => {
                    self.write_int(rd, imm as u64, &mut ev);
                }
                Instruction::Load { rd, base, offset } => {
                    let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                    let v = self.mem.read(addr);
                    ev.mem_read = Some(MemAccess { addr, value: v });
                    self.write_int(rd, v, &mut ev);
                }
                Instruction::Store { src, base, offset } => {
                    let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                    let v = self.reg(src);
                    self.mem.write(addr, v);
                    ev.mem_write = Some(MemAccess { addr, value: v });
                }
                Instruction::FAlu { op, fd, fa, fb } => {
                    let v = op.eval(self.fregs[fa.index()], self.fregs[fb.index()]);
                    self.write_fp(fd, v, &mut ev);
                }
                Instruction::FUn { op, fd, fa } => {
                    let v = op.eval(self.fregs[fa.index()]);
                    self.write_fp(fd, v, &mut ev);
                }
                Instruction::FLoadImm { fd, value } => {
                    self.write_fp(fd, value as f64, &mut ev);
                }
                Instruction::FLoad { fd, base, offset } => {
                    let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                    let bits = self.mem.read(addr);
                    ev.mem_read = Some(MemAccess { addr, value: bits });
                    self.write_fp(fd, f64::from_bits(bits), &mut ev);
                }
                Instruction::FStore { fsrc, base, offset } => {
                    let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                    let bits = self.fregs[fsrc.index()].to_bits();
                    self.mem.write(addr, bits);
                    ev.mem_write = Some(MemAccess { addr, value: bits });
                }
                Instruction::FCmp { cond, rd, fa, fb } => {
                    // Compare through the IEEE total order of the raw
                    // values as signed integers is wrong for FP; evaluate
                    // numerically (NaN compares false except Ne).
                    let a = self.fregs[fa.index()];
                    let b = self.fregs[fb.index()];
                    let holds = match cond {
                        loopspec_isa::Cond::Eq => a == b,
                        loopspec_isa::Cond::Ne => a != b,
                        loopspec_isa::Cond::LtS | loopspec_isa::Cond::LtU => a < b,
                        loopspec_isa::Cond::LeS => a <= b,
                        loopspec_isa::Cond::GtS => a > b,
                        loopspec_isa::Cond::GeS | loopspec_isa::Cond::GeU => a >= b,
                    };
                    self.write_int(rd, holds as u64, &mut ev);
                }
                Instruction::ItoF { fd, ra } => {
                    let v = self.reg(ra) as i64 as f64;
                    self.write_fp(fd, v, &mut ev);
                }
                Instruction::FtoI { rd, fa } => {
                    // Rust `as` saturates and maps NaN to 0 — exactly the
                    // no-trap semantics we want.
                    let v = self.fregs[fa.index()] as i64 as u64;
                    self.write_int(rd, v, &mut ev);
                }
                Instruction::Branch {
                    cond,
                    ra,
                    rb,
                    target,
                } => {
                    if cond.eval(self.reg(ra), self.reg(rb)) {
                        ev.control.taken = true;
                        ev.control.target = target;
                        next_pc = target;
                    }
                }
                Instruction::Jump { target } => {
                    ev.control.taken = true;
                    ev.control.target = target;
                    next_pc = target;
                }
                Instruction::JumpInd { base } => {
                    let target = self.indirect_target(pc, self.reg(base))?;
                    ev.control.taken = true;
                    ev.control.target = target;
                    next_pc = target;
                }
                Instruction::Call { target, link } => {
                    self.write_int(link, pc.next().index() as u64, &mut ev);
                    ev.control.taken = true;
                    ev.control.target = target;
                    next_pc = target;
                }
                Instruction::CallInd { base, link } => {
                    let target = self.indirect_target(pc, self.reg(base))?;
                    self.write_int(link, pc.next().index() as u64, &mut ev);
                    ev.control.taken = true;
                    ev.control.target = target;
                    next_pc = target;
                }
                Instruction::Ret { link } => {
                    let target = self.indirect_target(pc, self.reg(link))?;
                    ev.control.taken = true;
                    ev.control.target = target;
                    next_pc = target;
                }
                Instruction::KernelCall { .. } => {
                    unreachable!("kernel calls are intercepted before event assembly")
                }
            }

            self.retired += 1;
            tracer.on_retire(&ev);

            if self.mem.pages_allocated() > limits.max_pages {
                return Err(CpuError::MemoryLimit {
                    pages: self.mem.pages_allocated(),
                });
            }
            if halted {
                return Ok(RunSummary {
                    retired: self.retired - start_retired,
                    completion: Completion::Halted,
                    elapsed: started.elapsed(),
                });
            }
            self.pc = next_pc;
        }

        Ok(RunSummary {
            retired: self.retired - start_retired,
            completion: Completion::OutOfFuel,
            elapsed: started.elapsed(),
        })
    }

    /// Serializes the full architectural state — pc, integer and FP
    /// register files, retired-instruction count, and every materialised
    /// memory page — as the CPU cursor section of a checkpoint.
    ///
    /// The bytes are deterministic (equal state → equal bytes) and carry
    /// no reference to the [`Program`]: a checkpoint is only meaningful
    /// against the same program it was taken from, which the caller is
    /// responsible for re-providing at resume time.
    pub fn save_state(&self, out: &mut loopspec_isa::snap::Enc) {
        for &r in &self.regs {
            out.u64(r);
        }
        for &f in &self.fregs {
            out.u64(f.to_bits());
        }
        out.u32(self.pc.index());
        out.u64(self.retired);
        self.mem.save_state(out);
        // Kernel pause cursor: fixed layout (flag + id + body pc) so
        // equal state means equal bytes whether or not a kernel is in
        // flight.
        let r = self
            .kernel
            .unwrap_or(crate::kernel::KernelResume { id: 0, bpc: 0 });
        out.bool(self.kernel.is_some());
        out.u32(r.id);
        out.u32(r.bpc);
    }

    /// Restores state written by [`Cpu::save_state`], replacing the
    /// current registers, pc, retired count and memory. A subsequent
    /// [`Cpu::resume`] continues the interrupted instruction stream.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`](loopspec_isa::snap::SnapError) on
    /// truncated or corrupt input; the CPU state is unspecified (but
    /// memory-safe) after an error.
    pub fn load_state(
        &mut self,
        src: &mut loopspec_isa::snap::Dec<'_>,
    ) -> Result<(), loopspec_isa::snap::SnapError> {
        for r in self.regs.iter_mut() {
            *r = src.u64()?;
        }
        for f in self.fregs.iter_mut() {
            *f = f64::from_bits(src.u64()?);
        }
        self.pc = Addr::new(src.u32()?);
        self.retired = src.u64()?;
        self.mem.load_state(src)?;
        let active = src.bool()?;
        let id = src.u32()?;
        let bpc = src.u32()?;
        self.kernel = active.then_some(crate::kernel::KernelResume { id, bpc });
        Ok(())
    }

    pub(crate) fn indirect_target(&self, pc: Addr, value: u64) -> Result<Addr, CpuError> {
        if value > u32::MAX as u64 {
            return Err(CpuError::BadIndirectTarget { pc, value });
        }
        Ok(Addr::new(value as u32))
    }

    #[inline]
    fn write_int(&mut self, rd: Reg, v: u64, ev: &mut InstrEvent) {
        ev.write = Some(RegWrite {
            reg: ArchReg::Int(rd),
            value: v,
        });
        self.set_reg(rd, v);
    }

    #[inline]
    fn write_fp(&mut self, fd: loopspec_isa::FReg, v: f64, ev: &mut InstrEvent) {
        ev.write = Some(RegWrite {
            reg: ArchReg::Fp(fd),
            value: v.to_bits(),
        });
        self.fregs[fd.index()] = v;
    }

    #[inline]
    fn capture_reads(&self, instr: &Instruction, ev: &mut InstrEvent) {
        let u = instr.reg_use();
        let mut slot = 0;
        for r in u.reads.iter().flatten() {
            ev.reads[slot] = Some(RegRead {
                reg: ArchReg::Int(*r),
                value: self.reg(*r),
            });
            slot += 1;
        }
        for r in u.freads.iter().flatten() {
            ev.reads[slot] = Some(RegRead {
                reg: ArchReg::Fp(*r),
                value: self.fregs[r.index()].to_bits(),
            });
            slot += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{CountingTracer, NullTracer};
    use loopspec_asm::ProgramBuilder;
    use loopspec_isa::{AluOp, Cond, ControlKind};

    fn run_counting(program: &Program) -> (Cpu, CountingTracer, RunSummary) {
        let mut cpu = Cpu::new();
        let mut t = CountingTracer::default();
        let s = cpu
            .run(program, &mut t, RunLimits::default())
            .expect("run succeeds");
        (cpu, t, s)
    }

    #[test]
    fn sum_loop_computes_correctly() {
        // sum = Σ i for i in 0..10 — checked through architectural state.
        let mut b = ProgramBuilder::new();
        let sum = b.alloc_reg();
        b.li(sum, 0);
        b.counted_loop(10, |b, i| {
            b.op(AluOp::Add, sum, sum, i);
        });
        let out = b.alloc_static(1);
        b.store_static(sum, out);
        let p = b.finish().unwrap();
        let (cpu, _, s) = run_counting(&p);
        assert!(s.halted());
        assert_eq!(cpu.mem().read(out as u64), 45);
    }

    #[test]
    fn while_loop_runs_expected_iterations() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc_reg();
        let n = b.alloc_reg();
        b.li(x, 0);
        b.li(n, 7);
        b.while_loop(
            |_| (Cond::LtS, x, n),
            |b| {
                b.addi(x, x, 1);
            },
        );
        let out = b.alloc_static(1);
        b.store_static(x, out);
        let p = b.finish().unwrap();
        let (cpu, _, _) = run_counting(&p);
        assert_eq!(cpu.mem().read(out as u64), 7);
    }

    #[test]
    fn function_call_round_trips() {
        let mut b = ProgramBuilder::new();
        b.define_func("double", |b| {
            // ret = arg0 * 2
            b.op(
                AluOp::Add,
                ProgramBuilder::RET_REG,
                ProgramBuilder::ARG_REGS[0],
                ProgramBuilder::ARG_REGS[0],
            );
        });
        b.set_arg(0, 21);
        b.call_func("double");
        let out = b.alloc_static(1);
        b.store_static(ProgramBuilder::RET_REG, out);
        let p = b.finish().unwrap();
        let (cpu, t, _) = run_counting(&p);
        assert_eq!(cpu.mem().read(out as u64), 42);
        assert_eq!(t.calls, 1);
        assert_eq!(t.returns, 1);
    }

    #[test]
    fn recursion_computes_factorial() {
        // fact(n): if n <= 1 { 1 } else { n * fact(n-1) }
        let mut b = ProgramBuilder::new();
        b.define_func("fact", |b| {
            let n = b.alloc_reg();
            b.mov(n, ProgramBuilder::ARG_REGS[0]);
            b.with_reg(|b, one| {
                b.li(one, 1);
                b.if_else(
                    Cond::LeS,
                    n,
                    one,
                    |b| b.set_ret(1i64),
                    |b| {
                        b.addi(ProgramBuilder::ARG_REGS[0], n, -1);
                        b.call_func("fact");
                        b.op(
                            AluOp::Mul,
                            ProgramBuilder::RET_REG,
                            ProgramBuilder::RET_REG,
                            n,
                        );
                    },
                );
            });
            b.free_reg(n);
        });
        b.set_arg(0, 10);
        b.call_func("fact");
        let out = b.alloc_static(1);
        b.store_static(ProgramBuilder::RET_REG, out);
        let p = b.finish().unwrap();
        let (cpu, t, _) = run_counting(&p);
        assert_eq!(cpu.mem().read(out as u64), 3_628_800);
        assert_eq!(t.calls, 10);
        assert_eq!(t.returns, 10);
    }

    #[test]
    fn switch_table_dispatches_each_arm() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_static(4);
        let idx = b.alloc_reg();
        let val = b.alloc_reg();
        b.counted_loop(4, |b, i| {
            b.mov(idx, i);
            b.switch_table(idx, 4, |b, k| {
                b.li(val, (k as i64 + 1) * 100);
                b.store_idx(val, out, i);
            });
        });
        let p = b.finish().unwrap();
        let (cpu, _, _) = run_counting(&p);
        for k in 0..4u64 {
            assert_eq!(cpu.mem().read(out as u64 + k), (k + 1) * 100);
        }
    }

    #[test]
    fn fuel_exhaustion_reports_out_of_fuel() {
        let mut b = ProgramBuilder::new();
        b.loop_forever(|b| b.work(1));
        let p = b.finish().unwrap();
        let mut cpu = Cpu::new();
        let s = cpu
            .run(&p, &mut NullTracer, RunLimits::with_fuel(1000))
            .unwrap();
        assert_eq!(s.completion, Completion::OutOfFuel);
        assert_eq!(s.retired, 1000);
    }

    #[test]
    fn fp_pipeline_works() {
        use loopspec_isa::{FReg, Instruction};
        let mut b = ProgramBuilder::new();
        b.emit(Instruction::FLoadImm {
            fd: FReg::F1,
            value: 1.5,
        });
        b.emit(Instruction::FLoadImm {
            fd: FReg::F2,
            value: 2.0,
        });
        b.emit(Instruction::FAlu {
            op: loopspec_isa::FAluOp::Mul,
            fd: FReg::F3,
            fa: FReg::F1,
            fb: FReg::F2,
        });
        b.emit(Instruction::FtoI {
            rd: Reg::R8,
            fa: FReg::F3,
        });
        let out = b.alloc_static(1);
        b.store_static(Reg::R8, out);
        let p = b.finish().unwrap();
        let (cpu, _, _) = run_counting(&p);
        assert_eq!(cpu.mem().read(out as u64), 3);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut b = ProgramBuilder::new();
        b.op_imm(AluOp::Add, Reg::R0, Reg::R0, 99);
        let out = b.alloc_static(1);
        b.store_static(Reg::R0, out);
        let p = b.finish().unwrap();
        let (cpu, _, _) = run_counting(&p);
        assert_eq!(cpu.mem().read(out as u64), 0);
        assert_eq!(cpu.reg(Reg::R0), 0);
    }

    #[test]
    fn rng_below_is_in_range_and_deterministic() {
        let mut b = ProgramBuilder::with_seed(7);
        let r = b.alloc_reg();
        let out = b.alloc_static(16);
        b.counted_loop(16, |b, i| {
            b.rng_below(r, 10);
            b.store_idx(r, out, i);
        });
        let p = b.finish().unwrap();
        let (cpu1, _, _) = run_counting(&p);
        let (cpu2, _, _) = run_counting(&p);
        let mut distinct = std::collections::HashSet::new();
        for k in 0..16u64 {
            let v = cpu1.mem().read(out as u64 + k);
            assert!(v < 10, "rng_below out of range: {v}");
            assert_eq!(v, cpu2.mem().read(out as u64 + k), "determinism");
            distinct.insert(v);
        }
        assert!(distinct.len() > 3, "rng values look degenerate");
    }

    #[test]
    fn event_reads_report_pre_write_values() {
        struct Probe {
            seen: Vec<(u64, u64)>,
        }
        impl Tracer for Probe {
            fn on_retire(&mut self, ev: &InstrEvent) {
                if let Instruction::AluImm { .. } = ev.instr {
                    if let Some(r) = ev.reads[0] {
                        let w = ev.write.unwrap();
                        self.seen.push((r.value, w.value));
                    }
                }
            }
        }
        let mut b = ProgramBuilder::new();
        let x = b.alloc_reg();
        b.li(x, 5);
        b.addi(x, x, 1); // reads 5, writes 6
        let p = b.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut probe = Probe { seen: Vec::new() };
        cpu.run(&p, &mut probe, RunLimits::default()).unwrap();
        assert!(probe.seen.contains(&(5, 6)));
    }

    #[test]
    fn resume_continues_an_interrupted_run() {
        // sum = Σ i for i in 0..10 in three fuel slices must equal the
        // uninterrupted run, architecturally and in retirement count.
        let mut b = ProgramBuilder::new();
        let sum = b.alloc_reg();
        b.li(sum, 0);
        b.counted_loop(10, |b, i| {
            b.op(AluOp::Add, sum, sum, i);
        });
        let out = b.alloc_static(1);
        b.store_static(sum, out);
        let p = b.finish().unwrap();

        let (reference, _, ref_summary) = run_counting(&p);

        let mut cpu = Cpu::new();
        let mut t = CountingTracer::default();
        let first = cpu.run(&p, &mut t, RunLimits::with_fuel(7)).unwrap();
        assert_eq!(first.completion, Completion::OutOfFuel);
        loop {
            let s = cpu.resume(&p, &mut t, RunLimits::with_fuel(9)).unwrap();
            if s.halted() {
                break;
            }
        }
        assert_eq!(cpu.retired(), ref_summary.retired);
        assert_eq!(t.retired, ref_summary.retired);
        assert_eq!(cpu.mem().read(out as u64), reference.mem().read(out as u64));
    }

    #[test]
    fn state_round_trips_across_a_fresh_cpu() {
        let mut b = ProgramBuilder::new();
        let acc = b.alloc_reg();
        b.li(acc, 0);
        b.counted_loop(50, |b, i| {
            b.op(AluOp::Add, acc, acc, i);
            b.store_idx(acc, 0x100, i);
        });
        let out = b.alloc_static(1);
        b.store_static(acc, out);
        let p = b.finish().unwrap();

        let (reference, _, _) = run_counting(&p);

        let mut cpu = Cpu::new();
        cpu.run(&p, &mut NullTracer, RunLimits::with_fuel(101))
            .unwrap();

        // Snapshot, restore into a fresh CPU, and finish the run there.
        let mut enc = loopspec_isa::snap::Enc::new();
        cpu.save_state(&mut enc);
        let bytes = enc.into_bytes();

        // Determinism: saving the same state twice yields the same bytes.
        let mut enc2 = loopspec_isa::snap::Enc::new();
        cpu.save_state(&mut enc2);
        assert_eq!(bytes, enc2.into_bytes());

        let mut fresh = Cpu::new();
        let mut dec = loopspec_isa::snap::Dec::new(&bytes);
        fresh.load_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(fresh.retired(), 101);

        let s = fresh
            .resume(&p, &mut NullTracer, RunLimits::default())
            .unwrap();
        assert!(s.halted());
        assert_eq!(fresh.retired(), reference.retired());
        assert_eq!(
            fresh.mem().read(out as u64),
            reference.mem().read(out as u64)
        );
        for r in 0..32usize {
            let reg = Reg::from_index(r).unwrap();
            assert_eq!(fresh.reg(reg), reference.reg(reg));
        }
    }

    #[test]
    fn truncated_state_is_rejected() {
        let cpu = Cpu::new();
        let mut enc = loopspec_isa::snap::Enc::new();
        cpu.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut fresh = Cpu::new();
        let mut dec = loopspec_isa::snap::Dec::new(&bytes[..bytes.len() - 1]);
        assert!(fresh.load_state(&mut dec).is_err());
    }

    #[test]
    fn control_outcome_targets_resolve_returns() {
        struct RetProbe {
            ret_target: Option<Addr>,
            call_pc: Option<Addr>,
        }
        impl Tracer for RetProbe {
            fn on_retire(&mut self, ev: &InstrEvent) {
                match ev.control.kind {
                    ControlKind::Ret => self.ret_target = Some(ev.control.target),
                    ControlKind::Call { .. } => self.call_pc = Some(ev.pc),
                    _ => {}
                }
            }
        }
        let mut b = ProgramBuilder::new();
        b.define_func("f", |b| b.work(1));
        b.call_func("f");
        let p = b.finish().unwrap();
        let mut probe = RetProbe {
            ret_target: None,
            call_pc: None,
        };
        Cpu::new()
            .run(&p, &mut probe, RunLimits::default())
            .unwrap();
        assert_eq!(probe.ret_target.unwrap(), probe.call_pc.unwrap().next());
    }
}
