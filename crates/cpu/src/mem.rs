//! Sparse, paged data memory.

use std::collections::HashMap;

/// Words per page (2¹² words = 32 KiB of 64-bit words).
const PAGE_WORDS: u64 = 1 << 12;
const PAGE_MASK: u64 = PAGE_WORDS - 1;

/// Word-addressed, sparsely allocated data memory.
///
/// SLA data memory is a flat space of 2⁶⁴ 64-bit words, materialised in
/// pages on first *write*; reads of never-written locations return `0`
/// without allocating. This matches what trace-driven simulators need:
/// programs can scatter a stack at [`loopspec_asm::STACK_BASE`]
/// (`2³⁰`) and static data at `2¹⁶` without any contiguous allocation.
///
/// ```
/// use loopspec_cpu::Memory;
/// let mut m = Memory::new();
/// assert_eq!(m.read(12345), 0);     // untouched memory reads as zero
/// m.write(12345, 42);
/// assert_eq!(m.read(12345), 42);
/// assert_eq!(m.pages_allocated(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64]>>,
}

impl Memory {
    /// Creates an empty memory (all zeros).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr`; unwritten memory reads as `0`.
    #[inline]
    pub fn read(&self, addr: u64) -> u64 {
        match self.pages.get(&(addr / PAGE_WORDS)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes the word at `addr`, allocating its page if needed.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        let page = self
            .pages
            .entry(addr / PAGE_WORDS)
            .or_insert_with(|| vec![0u64; PAGE_WORDS as usize].into_boxed_slice());
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Number of pages currently materialised.
    pub fn pages_allocated(&self) -> usize {
        self.pages.len()
    }

    /// Releases all pages, returning the memory to the all-zeros state.
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    /// Serializes the materialised pages into `out` (part of the CPU's
    /// checkpoint section; see [`Cpu::save_state`](crate::Cpu::save_state)).
    ///
    /// Pages are written sorted by page index so equal memory contents
    /// always produce equal bytes, regardless of hash-map iteration
    /// order.
    pub fn save_state(&self, out: &mut loopspec_isa::snap::Enc) {
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        out.u64(indices.len() as u64);
        for idx in indices {
            out.u64(idx);
            for &word in self.pages[&idx].iter() {
                out.u64(word);
            }
        }
    }

    /// Restores the memory from bytes written by [`Memory::save_state`],
    /// replacing the current contents.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`](loopspec_isa::snap::SnapError) on
    /// truncated or corrupt input.
    pub fn load_state(
        &mut self,
        src: &mut loopspec_isa::snap::Dec<'_>,
    ) -> Result<(), loopspec_isa::snap::SnapError> {
        // Each page encodes as an 8-byte index plus PAGE_WORDS words —
        // sizing the count check to that keeps a corrupt count from
        // reserving map capacity far beyond the input.
        let n = src.count_elems(8 * (1 + PAGE_WORDS as usize))?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let idx = src.u64()?;
            let mut page = vec![0u64; PAGE_WORDS as usize].into_boxed_slice();
            for word in page.iter_mut() {
                *word = src.u64()?;
            }
            pages.insert(idx, page);
        }
        self.pages = pages;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u64::MAX), 0);
        assert_eq!(m.pages_allocated(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = Memory::new();
        for addr in [0u64, 1, PAGE_WORDS - 1, PAGE_WORDS, 1 << 30, u64::MAX] {
            m.write(addr, addr ^ 0xdead_beef);
        }
        for addr in [0u64, 1, PAGE_WORDS - 1, PAGE_WORDS, 1 << 30, u64::MAX] {
            assert_eq!(m.read(addr), addr ^ 0xdead_beef);
        }
    }

    #[test]
    fn pages_are_shared_within_page_and_distinct_across() {
        let mut m = Memory::new();
        m.write(0, 1);
        m.write(PAGE_WORDS - 1, 2);
        assert_eq!(m.pages_allocated(), 1);
        m.write(PAGE_WORDS, 3);
        assert_eq!(m.pages_allocated(), 2);
    }

    #[test]
    fn reads_do_not_allocate() {
        let mut m = Memory::new();
        let _ = m.read(999_999);
        assert_eq!(m.pages_allocated(), 0);
        m.write(999_999, 7);
        assert_eq!(m.pages_allocated(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut m = Memory::new();
        m.write(5, 5);
        m.clear();
        assert_eq!(m.read(5), 0);
        assert_eq!(m.pages_allocated(), 0);
    }

    #[test]
    fn overwrite_takes_latest() {
        let mut m = Memory::new();
        m.write(42, 1);
        m.write(42, 2);
        assert_eq!(m.read(42), 2);
    }
}
